file(REMOVE_RECURSE
  "libhompres.a"
)
