
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/subsets.cc" "src/CMakeFiles/hompres.dir/base/subsets.cc.o" "gcc" "src/CMakeFiles/hompres.dir/base/subsets.cc.o.d"
  "/root/repo/src/combinatorics/ramsey.cc" "src/CMakeFiles/hompres.dir/combinatorics/ramsey.cc.o" "gcc" "src/CMakeFiles/hompres.dir/combinatorics/ramsey.cc.o.d"
  "/root/repo/src/combinatorics/sunflower.cc" "src/CMakeFiles/hompres.dir/combinatorics/sunflower.cc.o" "gcc" "src/CMakeFiles/hompres.dir/combinatorics/sunflower.cc.o.d"
  "/root/repo/src/core/classes.cc" "src/CMakeFiles/hompres.dir/core/classes.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/classes.cc.o.d"
  "/root/repo/src/core/density.cc" "src/CMakeFiles/hompres.dir/core/density.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/density.cc.o.d"
  "/root/repo/src/core/extension_preservation.cc" "src/CMakeFiles/hompres.dir/core/extension_preservation.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/extension_preservation.cc.o.d"
  "/root/repo/src/core/lemmas.cc" "src/CMakeFiles/hompres.dir/core/lemmas.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/lemmas.cc.o.d"
  "/root/repo/src/core/minimal_models.cc" "src/CMakeFiles/hompres.dir/core/minimal_models.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/minimal_models.cc.o.d"
  "/root/repo/src/core/plebian.cc" "src/CMakeFiles/hompres.dir/core/plebian.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/plebian.cc.o.d"
  "/root/repo/src/core/preservation.cc" "src/CMakeFiles/hompres.dir/core/preservation.cc.o" "gcc" "src/CMakeFiles/hompres.dir/core/preservation.cc.o.d"
  "/root/repo/src/cq/cq.cc" "src/CMakeFiles/hompres.dir/cq/cq.cc.o" "gcc" "src/CMakeFiles/hompres.dir/cq/cq.cc.o.d"
  "/root/repo/src/cq/decomposed_eval.cc" "src/CMakeFiles/hompres.dir/cq/decomposed_eval.cc.o" "gcc" "src/CMakeFiles/hompres.dir/cq/decomposed_eval.cc.o.d"
  "/root/repo/src/cq/ucq.cc" "src/CMakeFiles/hompres.dir/cq/ucq.cc.o" "gcc" "src/CMakeFiles/hompres.dir/cq/ucq.cc.o.d"
  "/root/repo/src/datalog/eval.cc" "src/CMakeFiles/hompres.dir/datalog/eval.cc.o" "gcc" "src/CMakeFiles/hompres.dir/datalog/eval.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/hompres.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/hompres.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/hompres.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/hompres.dir/datalog/program.cc.o.d"
  "/root/repo/src/datalog/stages.cc" "src/CMakeFiles/hompres.dir/datalog/stages.cc.o" "gcc" "src/CMakeFiles/hompres.dir/datalog/stages.cc.o.d"
  "/root/repo/src/fo/cqk.cc" "src/CMakeFiles/hompres.dir/fo/cqk.cc.o" "gcc" "src/CMakeFiles/hompres.dir/fo/cqk.cc.o.d"
  "/root/repo/src/fo/ep.cc" "src/CMakeFiles/hompres.dir/fo/ep.cc.o" "gcc" "src/CMakeFiles/hompres.dir/fo/ep.cc.o.d"
  "/root/repo/src/fo/eval.cc" "src/CMakeFiles/hompres.dir/fo/eval.cc.o" "gcc" "src/CMakeFiles/hompres.dir/fo/eval.cc.o.d"
  "/root/repo/src/fo/formula.cc" "src/CMakeFiles/hompres.dir/fo/formula.cc.o" "gcc" "src/CMakeFiles/hompres.dir/fo/formula.cc.o.d"
  "/root/repo/src/fo/locality.cc" "src/CMakeFiles/hompres.dir/fo/locality.cc.o" "gcc" "src/CMakeFiles/hompres.dir/fo/locality.cc.o.d"
  "/root/repo/src/fo/parser.cc" "src/CMakeFiles/hompres.dir/fo/parser.cc.o" "gcc" "src/CMakeFiles/hompres.dir/fo/parser.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/hompres.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/hompres.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/builders.cc" "src/CMakeFiles/hompres.dir/graph/builders.cc.o" "gcc" "src/CMakeFiles/hompres.dir/graph/builders.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/hompres.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/hompres.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/hompres.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/hompres.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/minor.cc" "src/CMakeFiles/hompres.dir/graph/minor.cc.o" "gcc" "src/CMakeFiles/hompres.dir/graph/minor.cc.o.d"
  "/root/repo/src/graph/scattered.cc" "src/CMakeFiles/hompres.dir/graph/scattered.cc.o" "gcc" "src/CMakeFiles/hompres.dir/graph/scattered.cc.o.d"
  "/root/repo/src/hom/core.cc" "src/CMakeFiles/hompres.dir/hom/core.cc.o" "gcc" "src/CMakeFiles/hompres.dir/hom/core.cc.o.d"
  "/root/repo/src/hom/homomorphism.cc" "src/CMakeFiles/hompres.dir/hom/homomorphism.cc.o" "gcc" "src/CMakeFiles/hompres.dir/hom/homomorphism.cc.o.d"
  "/root/repo/src/pebble/pebble_game.cc" "src/CMakeFiles/hompres.dir/pebble/pebble_game.cc.o" "gcc" "src/CMakeFiles/hompres.dir/pebble/pebble_game.cc.o.d"
  "/root/repo/src/structure/gaifman.cc" "src/CMakeFiles/hompres.dir/structure/gaifman.cc.o" "gcc" "src/CMakeFiles/hompres.dir/structure/gaifman.cc.o.d"
  "/root/repo/src/structure/generators.cc" "src/CMakeFiles/hompres.dir/structure/generators.cc.o" "gcc" "src/CMakeFiles/hompres.dir/structure/generators.cc.o.d"
  "/root/repo/src/structure/isomorphism.cc" "src/CMakeFiles/hompres.dir/structure/isomorphism.cc.o" "gcc" "src/CMakeFiles/hompres.dir/structure/isomorphism.cc.o.d"
  "/root/repo/src/structure/parser.cc" "src/CMakeFiles/hompres.dir/structure/parser.cc.o" "gcc" "src/CMakeFiles/hompres.dir/structure/parser.cc.o.d"
  "/root/repo/src/structure/structure.cc" "src/CMakeFiles/hompres.dir/structure/structure.cc.o" "gcc" "src/CMakeFiles/hompres.dir/structure/structure.cc.o.d"
  "/root/repo/src/tw/nice.cc" "src/CMakeFiles/hompres.dir/tw/nice.cc.o" "gcc" "src/CMakeFiles/hompres.dir/tw/nice.cc.o.d"
  "/root/repo/src/tw/tree_decomposition.cc" "src/CMakeFiles/hompres.dir/tw/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/hompres.dir/tw/tree_decomposition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
