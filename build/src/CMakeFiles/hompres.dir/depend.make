# Empty dependencies file for hompres.
# This may be replaced when dependencies are built.
