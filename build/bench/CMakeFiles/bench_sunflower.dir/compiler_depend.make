# Empty compiler generated dependencies file for bench_sunflower.
# This may be replaced when dependencies are built.
