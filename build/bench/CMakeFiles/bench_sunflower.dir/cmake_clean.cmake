file(REMOVE_RECURSE
  "CMakeFiles/bench_sunflower.dir/bench_sunflower.cc.o"
  "CMakeFiles/bench_sunflower.dir/bench_sunflower.cc.o.d"
  "bench_sunflower"
  "bench_sunflower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sunflower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
