file(REMOVE_RECURSE
  "CMakeFiles/bench_cqk.dir/bench_cqk.cc.o"
  "CMakeFiles/bench_cqk.dir/bench_cqk.cc.o.d"
  "bench_cqk"
  "bench_cqk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
