# Empty dependencies file for bench_cqk.
# This may be replaced when dependencies are built.
