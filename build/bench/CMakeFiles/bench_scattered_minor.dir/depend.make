# Empty dependencies file for bench_scattered_minor.
# This may be replaced when dependencies are built.
