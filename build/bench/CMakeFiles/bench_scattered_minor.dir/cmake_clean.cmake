file(REMOVE_RECURSE
  "CMakeFiles/bench_scattered_minor.dir/bench_scattered_minor.cc.o"
  "CMakeFiles/bench_scattered_minor.dir/bench_scattered_minor.cc.o.d"
  "bench_scattered_minor"
  "bench_scattered_minor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scattered_minor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
