file(REMOVE_RECURSE
  "CMakeFiles/bench_scattered_treewidth.dir/bench_scattered_treewidth.cc.o"
  "CMakeFiles/bench_scattered_treewidth.dir/bench_scattered_treewidth.cc.o.d"
  "bench_scattered_treewidth"
  "bench_scattered_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scattered_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
