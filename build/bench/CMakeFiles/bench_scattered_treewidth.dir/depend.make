# Empty dependencies file for bench_scattered_treewidth.
# This may be replaced when dependencies are built.
