# Empty compiler generated dependencies file for bench_bipartite_minor.
# This may be replaced when dependencies are built.
