file(REMOVE_RECURSE
  "CMakeFiles/bench_bipartite_minor.dir/bench_bipartite_minor.cc.o"
  "CMakeFiles/bench_bipartite_minor.dir/bench_bipartite_minor.cc.o.d"
  "bench_bipartite_minor"
  "bench_bipartite_minor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bipartite_minor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
