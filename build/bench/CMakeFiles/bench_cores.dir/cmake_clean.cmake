file(REMOVE_RECURSE
  "CMakeFiles/bench_cores.dir/bench_cores.cc.o"
  "CMakeFiles/bench_cores.dir/bench_cores.cc.o.d"
  "bench_cores"
  "bench_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
