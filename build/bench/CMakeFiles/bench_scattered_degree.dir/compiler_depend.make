# Empty compiler generated dependencies file for bench_scattered_degree.
# This may be replaced when dependencies are built.
