file(REMOVE_RECURSE
  "CMakeFiles/bench_scattered_degree.dir/bench_scattered_degree.cc.o"
  "CMakeFiles/bench_scattered_degree.dir/bench_scattered_degree.cc.o.d"
  "bench_scattered_degree"
  "bench_scattered_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scattered_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
