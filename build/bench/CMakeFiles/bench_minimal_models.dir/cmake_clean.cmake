file(REMOVE_RECURSE
  "CMakeFiles/bench_minimal_models.dir/bench_minimal_models.cc.o"
  "CMakeFiles/bench_minimal_models.dir/bench_minimal_models.cc.o.d"
  "bench_minimal_models"
  "bench_minimal_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimal_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
