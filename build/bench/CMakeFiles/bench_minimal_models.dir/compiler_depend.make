# Empty compiler generated dependencies file for bench_minimal_models.
# This may be replaced when dependencies are built.
