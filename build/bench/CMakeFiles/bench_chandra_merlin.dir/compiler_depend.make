# Empty compiler generated dependencies file for bench_chandra_merlin.
# This may be replaced when dependencies are built.
