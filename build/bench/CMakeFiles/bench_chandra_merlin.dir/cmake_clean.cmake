file(REMOVE_RECURSE
  "CMakeFiles/bench_chandra_merlin.dir/bench_chandra_merlin.cc.o"
  "CMakeFiles/bench_chandra_merlin.dir/bench_chandra_merlin.cc.o.d"
  "bench_chandra_merlin"
  "bench_chandra_merlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chandra_merlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
