file(REMOVE_RECURSE
  "CMakeFiles/minor_test.dir/minor_test.cc.o"
  "CMakeFiles/minor_test.dir/minor_test.cc.o.d"
  "minor_test"
  "minor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
