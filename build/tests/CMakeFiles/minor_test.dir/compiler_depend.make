# Empty compiler generated dependencies file for minor_test.
# This may be replaced when dependencies are built.
