file(REMOVE_RECURSE
  "CMakeFiles/scattered_test.dir/scattered_test.cc.o"
  "CMakeFiles/scattered_test.dir/scattered_test.cc.o.d"
  "scattered_test"
  "scattered_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scattered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
