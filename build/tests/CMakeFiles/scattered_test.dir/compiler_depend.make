# Empty compiler generated dependencies file for scattered_test.
# This may be replaced when dependencies are built.
