# Empty dependencies file for io_roundtrip_test.
# This may be replaced when dependencies are built.
