file(REMOVE_RECURSE
  "CMakeFiles/decomposed_eval_test.dir/decomposed_eval_test.cc.o"
  "CMakeFiles/decomposed_eval_test.dir/decomposed_eval_test.cc.o.d"
  "decomposed_eval_test"
  "decomposed_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposed_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
