file(REMOVE_RECURSE
  "CMakeFiles/tw_test.dir/tw_test.cc.o"
  "CMakeFiles/tw_test.dir/tw_test.cc.o.d"
  "tw_test"
  "tw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
