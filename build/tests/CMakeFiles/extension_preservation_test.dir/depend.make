# Empty dependencies file for extension_preservation_test.
# This may be replaced when dependencies are built.
