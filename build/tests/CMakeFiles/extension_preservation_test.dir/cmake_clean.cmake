file(REMOVE_RECURSE
  "CMakeFiles/extension_preservation_test.dir/extension_preservation_test.cc.o"
  "CMakeFiles/extension_preservation_test.dir/extension_preservation_test.cc.o.d"
  "extension_preservation_test"
  "extension_preservation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_preservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
