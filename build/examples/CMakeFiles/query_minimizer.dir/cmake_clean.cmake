file(REMOVE_RECURSE
  "CMakeFiles/query_minimizer.dir/query_minimizer.cpp.o"
  "CMakeFiles/query_minimizer.dir/query_minimizer.cpp.o.d"
  "query_minimizer"
  "query_minimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
