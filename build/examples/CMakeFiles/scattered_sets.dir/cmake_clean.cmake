file(REMOVE_RECURSE
  "CMakeFiles/scattered_sets.dir/scattered_sets.cpp.o"
  "CMakeFiles/scattered_sets.dir/scattered_sets.cpp.o.d"
  "scattered_sets"
  "scattered_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scattered_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
