# Empty compiler generated dependencies file for scattered_sets.
# This may be replaced when dependencies are built.
