# Empty compiler generated dependencies file for preservation_pipeline.
# This may be replaced when dependencies are built.
