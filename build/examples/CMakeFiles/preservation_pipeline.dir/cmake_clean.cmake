file(REMOVE_RECURSE
  "CMakeFiles/preservation_pipeline.dir/preservation_pipeline.cpp.o"
  "CMakeFiles/preservation_pipeline.dir/preservation_pipeline.cpp.o.d"
  "preservation_pipeline"
  "preservation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preservation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
