file(REMOVE_RECURSE
  "CMakeFiles/hompres_cli.dir/hompres_cli.cpp.o"
  "CMakeFiles/hompres_cli.dir/hompres_cli.cpp.o.d"
  "hompres_cli"
  "hompres_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hompres_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
