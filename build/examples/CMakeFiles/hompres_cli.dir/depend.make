# Empty dependencies file for hompres_cli.
# This may be replaced when dependencies are built.
