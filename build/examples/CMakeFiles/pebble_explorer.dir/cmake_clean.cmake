file(REMOVE_RECURSE
  "CMakeFiles/pebble_explorer.dir/pebble_explorer.cpp.o"
  "CMakeFiles/pebble_explorer.dir/pebble_explorer.cpp.o.d"
  "pebble_explorer"
  "pebble_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
