# Empty dependencies file for pebble_explorer.
# This may be replaced when dependencies are built.
