# Empty compiler generated dependencies file for datalog_boundedness.
# This may be replaced when dependencies are built.
