file(REMOVE_RECURSE
  "CMakeFiles/datalog_boundedness.dir/datalog_boundedness.cpp.o"
  "CMakeFiles/datalog_boundedness.dir/datalog_boundedness.cpp.o.d"
  "datalog_boundedness"
  "datalog_boundedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_boundedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
