// scattered_sets: the combinatorial heart of the paper, visualized. Runs
// the Lemma 4.2 (bounded treewidth) and Theorem 5.3 (excluded minor)
// constructions on a star, a long path, and a grid, prints the witnesses
// (removal set + d-scattered set), and emits Graphviz DOT with the
// scattered vertices highlighted.

#include <cstdio>

#include "core/lemmas.h"
#include "graph/builders.h"
#include "graph/io.h"
#include "graph/scattered.h"
#include "tw/tree_decomposition.h"

namespace {

void Show(const char* name, const hompres::Graph& g,
          const std::optional<hompres::ScatteredWitness>& witness, int d) {
  std::printf("== %s (n=%d, m=%d edges)\n", name, g.NumVertices(),
              g.NumEdges());
  if (!witness.has_value()) {
    std::printf("  no witness at this size\n\n");
    return;
  }
  std::printf("  remove {");
  for (size_t i = 0; i < witness->removed.size(); ++i) {
    std::printf("%s%d", i ? "," : "", witness->removed[i]);
  }
  std::printf("} -> %d-scattered set {", d);
  for (size_t i = 0; i < witness->scattered.size(); ++i) {
    std::printf("%s%d", i ? "," : "", witness->scattered[i]);
  }
  std::printf("}\n  verified: %s\n\n",
              VerifyScatteredWitness(
                  g, *witness, static_cast<int>(witness->removed.size()), d,
                  static_cast<int>(witness->scattered.size()))
                  ? "yes"
                  : "NO");
}

}  // namespace

int main() {
  using namespace hompres;

  // Lemma 4.2 Case 1: the star needs its hub removed.
  Graph star = StarGraph(9);
  Show("star S9 via Lemma 4.2", star,
       Lemma42Witness(star, HeuristicTreeDecomposition(star), 2, 2, 6), 2);

  // Lemma 4.2 Case 2: a long path scatters via the sunflower on its bag
  // path (empty core: nothing removed).
  Graph path = PathGraph(30);
  Show("path P30 via Lemma 4.2", path,
       Lemma42Witness(path, HeuristicTreeDecomposition(path), 2, 1, 4), 1);

  // Theorem 5.3 on a planar (K5-minor-free) grid.
  Graph grid = GridGraph(5, 5);
  const auto grid_witness = Theorem53Witness(grid, 5, 1, 4);
  Show("5x5 grid via Theorem 5.3", grid, grid_witness, 1);

  if (grid_witness.has_value()) {
    std::printf("DOT of the grid with the scattered set highlighted:\n%s\n",
                GraphToDot(grid, grid_witness->scattered).c_str());
  }
  return 0;
}
