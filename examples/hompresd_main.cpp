// hompresd: the query-serving daemon (DESIGN.md §4.7).
//
//   ./build/examples/hompresd --socket /tmp/hompresd.sock
//       [--workers <n>] [--max-batch <n>] [--no-batching]
//       [--max-queue <n>] [--max-inflight <n>]
//       [--max-steps-cap <n>] [--timeout-ms-cap <n>]
//       [--no-shared-cache] [--no-optimize]
//       [--optimize-max-steps <n>] [--containment-cache-capacity <n>]
//
// Runs until SIGINT/SIGTERM, then drains and exits. Clients speak the
// length-prefixed JSON protocol of server/protocol.h; try:
//
//   printf '{"id":1,"op":"ping"}' | <frame it> | nc -U /tmp/hompresd.sock
//
// or use the bundled load generator (bench/bench_server.cc).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "opt/containment_cache.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

uint64_t ParseCount(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "hompresd: %s wants a number, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hompres;

  ServerOptions options;
  options.socket_path = "/tmp/hompresd.sock";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hompresd: %s wants a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next("--socket");
    } else if (arg == "--workers") {
      options.num_workers =
          static_cast<int>(ParseCount("--workers", next("--workers")));
    } else if (arg == "--max-batch") {
      options.max_batch =
          static_cast<size_t>(ParseCount("--max-batch", next("--max-batch")));
    } else if (arg == "--no-batching") {
      options.batching = false;
    } else if (arg == "--no-shared-cache") {
      options.shared_cache = false;
    } else if (arg == "--no-optimize") {
      options.optimize = false;
    } else if (arg == "--optimize-max-steps") {
      options.optimize_max_steps =
          ParseCount("--optimize-max-steps", next("--optimize-max-steps"));
    } else if (arg == "--containment-cache-capacity") {
      ContainmentCache::Global().SetTotalCapacity(ParseCount(
          "--containment-cache-capacity",
          next("--containment-cache-capacity")));
    } else if (arg == "--max-queue") {
      options.admission.max_queue =
          static_cast<size_t>(ParseCount("--max-queue", next("--max-queue")));
    } else if (arg == "--max-inflight") {
      options.admission.max_inflight_per_client = static_cast<size_t>(
          ParseCount("--max-inflight", next("--max-inflight")));
    } else if (arg == "--max-steps-cap") {
      options.admission.max_steps_cap =
          ParseCount("--max-steps-cap", next("--max-steps-cap"));
    } else if (arg == "--timeout-ms-cap") {
      options.admission.timeout_ms_cap =
          ParseCount("--timeout-ms-cap", next("--timeout-ms-cap"));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hompresd --socket PATH [--workers N] [--max-batch N]\n"
          "                [--no-batching] [--no-shared-cache]\n"
          "                [--no-optimize] [--optimize-max-steps N]\n"
          "                [--containment-cache-capacity N]\n"
          "                [--max-queue N] [--max-inflight N]\n"
          "                [--max-steps-cap N] [--timeout-ms-cap N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "hompresd: unknown flag '%s' (try --help)\n",
                   argv[i]);
      return 2;
    }
  }

  Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "hompresd: start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("hompresd: serving on %s (%d workers, max batch %zu%s)\n",
              server.SocketPath().c_str(), options.num_workers,
              options.max_batch, options.batching ? "" : ", batching off");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) sigsuspend(&mask);

  std::printf("hompresd: shutting down\n");
  server.Stop();
  const ServerMetricsSnapshot metrics = server.Metrics();
  std::printf(
      "hompresd: served %llu requests (%llu ok, %llu error) over %llu "
      "connections; %llu batches, max batch %llu; p50 %lluus p99 %lluus\n",
      static_cast<unsigned long long>(metrics.requests_received),
      static_cast<unsigned long long>(metrics.requests_ok),
      static_cast<unsigned long long>(metrics.requests_error),
      static_cast<unsigned long long>(metrics.connections_accepted),
      static_cast<unsigned long long>(metrics.batches_executed),
      static_cast<unsigned long long>(metrics.max_batch_size),
      static_cast<unsigned long long>(metrics.latency.p50_us),
      static_cast<unsigned long long>(metrics.latency.p99_us));
  return 0;
}
