// hompres_cli: a small interactive shell over the library. Define
// structures in the text format, then query them: homomorphisms, cores,
// treewidth, FO evaluation, Datalog, scattered sets.
//
//   ./build/examples/hompres_cli [--timeout-ms <n>] [--max-steps <n>]
//                                [--threads <n>] [--retries <n>]
//                                [--explain]
//   > let a = |A|=3; E={(0 1),(1 2),(2 0)}
//   > let b = |A|=2; E={(0 1),(1 0)}
//   > hom a b
//   > core a
//   > eval a exists x E(x,x)
//   > tw a
//   > help
//
// --timeout-ms / --max-steps bound every search command; a search that
// hits the budget prints "budget exhausted" instead of hanging.
// --threads <n> runs the hom / core / datalog commands on n worker
// threads (0, the default, is the serial engine). --retries <n> reruns
// an exhausted hom query up to n more times with geometrically
// escalating budgets (base/retry.h). --explain prints the engine's
// query plan and execution trace before each hom answer.
//
// SIGINT / SIGTERM raise a cancel flag checked by every budgeted
// command: the running search stops with reason=cancelled, its partial
// budget report is printed, and the shell exits.
//
// Exit codes: 0 = all commands completed, 2 = some command exhausted its
// budget, 3 = some input failed to parse (parse errors win over budget
// exhaustion), 4 = interrupted by SIGINT/SIGTERM (wins over 2 and 3).

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "base/budget.h"
#include "base/outcome.h"
#include "base/parse_error.h"
#include "base/retry.h"
#include "core/preservation.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/problem.h"
#include "fo/eval.h"
#include "fo/parser.h"
#include "graph/scattered.h"
#include "hom/core.h"
#include "hom/homomorphism.h"
#include "structure/gaifman.h"
#include "structure/parser.h"
#include "structure/vocabulary.h"
#include "tw/tree_decomposition.h"

namespace {

using namespace hompres;

constexpr int kExitDone = 0;
constexpr int kExitUsage = 1;
constexpr int kExitExhausted = 2;
constexpr int kExitParseError = 3;
constexpr int kExitInterrupted = 4;

// Raised by SIGINT/SIGTERM; every budgeted command polls it through its
// budget's cancel flag, so a Ctrl-C stops the search at the next
// checkpoint instead of killing the process mid-write.
std::atomic<bool> g_interrupted{false};

extern "C" void HandleInterrupt(int /*signum*/) {
  g_interrupted.store(true, std::memory_order_relaxed);
}

struct CliLimits {
  uint64_t max_steps = 0;       // 0 = unlimited
  uint64_t timeout_ms = 0;      // 0 = unlimited
  uint64_t threads = 0;         // 0 = serial engines
  uint64_t retries = 0;         // extra escalated hom attempts
  bool explain = false;         // print plan + trace for hom queries
};

Budget MakeBudget(const CliLimits& limits) {
  Budget budget = Budget::Unlimited();
  if (limits.max_steps != 0) budget.WithMaxSteps(limits.max_steps);
  if (limits.timeout_ms != 0) {
    budget.WithTimeout(std::chrono::milliseconds(limits.timeout_ms));
  }
  budget.WithCancelFlag(&g_interrupted);
  return budget;
}

// The hom command's escalation schedule: attempt 0 runs with the CLI
// limits; each of the `retries` extra attempts quadruples both limits.
RetryPolicy MakeHomRetryPolicy(const CliLimits& limits) {
  RetryPolicy policy;
  policy.initial_steps = limits.max_steps;
  policy.initial_timeout = std::chrono::milliseconds(limits.timeout_ms);
  policy.max_attempts =
      1 + static_cast<int>(std::min<uint64_t>(limits.retries, 16));
  policy.escalation_factor = 4;
  policy.cancel = &g_interrupted;
  return policy;
}

void PrintExhausted(const BudgetReport& report) {
  std::printf(
      "budget exhausted (%s after %llu steps, %lld ms)\n",
      StopReasonName(report.reason),
      static_cast<unsigned long long>(report.steps_used),
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              report.elapsed)
              .count()));
}

void PrintHelp() {
  std::printf(
      "commands (vocabulary is {E/2}):\n"
      "  let <name> = |A|=<n>; E={(a b),...}   define a structure\n"
      "  show <name>                            print it\n"
      "  hom <a> <b>                            homomorphism a -> b?\n"
      "  core <name>                            compute the core\n"
      "  tw <name>                              exact treewidth (n<=22)\n"
      "  eval <name> <FO sentence>              evaluate a sentence\n"
      "  datalog <name> <rules>                 run a Datalog program\n"
      "  scattered <name> <s> <d>               max d-scattered set after\n"
      "                                         removing <= s vertices\n"
      "  help | quit\n");
}

// Overflow-checked flag-value parse (no exceptions).
bool ParseUint64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  uint64_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliLimits limits;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t* target = nullptr;
    if (std::strcmp(arg, "--explain") == 0) {
      limits.explain = true;
      continue;
    } else if (std::strcmp(arg, "--timeout-ms") == 0) {
      target = &limits.timeout_ms;
    } else if (std::strcmp(arg, "--max-steps") == 0) {
      target = &limits.max_steps;
    } else if (std::strcmp(arg, "--threads") == 0) {
      target = &limits.threads;
    } else if (std::strcmp(arg, "--retries") == 0) {
      target = &limits.retries;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --timeout-ms <n>, "
                   "--max-steps <n>, --threads <n>, --retries <n>, "
                   "--explain)\n",
                   arg);
      return kExitUsage;
    }
    if (i + 1 >= argc || !ParseUint64(argv[i + 1], target)) {
      std::fprintf(stderr, "flag '%s' needs a non-negative integer\n", arg);
      return kExitUsage;
    }
    ++i;
  }

  const int num_threads =
      static_cast<int>(std::min<uint64_t>(limits.threads, 256));

  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);

  std::map<std::string, Structure> environment;
  const Vocabulary voc = GraphVocabulary();
  bool saw_parse_error = false;
  bool saw_exhausted = false;
  PrintHelp();
  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (g_interrupted.load(std::memory_order_relaxed)) break;
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command == "quit" || command == "exit") break;
    if (command == "help" || command.empty()) {
      PrintHelp();
    } else if (command == "let") {
      std::string name;
      std::string equals;
      in >> name >> equals;
      std::string rest;
      std::getline(in, rest);
      ParseError error;
      auto s = ParseStructure(rest, voc, &error);
      if (equals != "=" || !s.has_value()) {
        saw_parse_error = true;
        std::printf("parse error: %s\n",
                    error.message.empty() ? "usage: let x = |A|=..."
                                          : error.ToString().c_str());
      } else {
        environment.insert_or_assign(name, std::move(*s));
        std::printf("ok\n");
      }
    } else if (command == "show" || command == "core" || command == "tw") {
      std::string name;
      in >> name;
      auto it = environment.find(name);
      if (it == environment.end()) {
        std::printf("error: unknown structure '%s'\n", name.c_str());
      } else if (command == "show") {
        std::printf("%s\n", it->second.DebugString().c_str());
      } else if (command == "core") {
        Budget budget = MakeBudget(limits);
        auto core = ComputeCoreBudgeted(it->second, budget, num_threads);
        if (!core.IsDone()) {
          saw_exhausted = true;
          PrintExhausted(core.Report());
        } else {
          std::printf("%s\n", core.Value().DebugString().c_str());
        }
      } else {
        std::printf("treewidth = %d\n", StructureTreewidth(it->second));
      }
    } else if (command == "hom") {
      std::string a;
      std::string b;
      in >> a >> b;
      auto ita = environment.find(a);
      auto itb = environment.find(b);
      if (ita == environment.end() || itb == environment.end()) {
        std::printf("error: unknown structure\n");
      } else {
        EngineConfig config;
        config.num_threads = num_threads;
        config.deterministic_witness = true;  // stable CLI output
        HomProblem problem;
        problem.source = &ita->second;
        problem.target = &itb->second;
        problem.mode = HomQueryMode::kFind;
        // Compat planning: deterministic_witness without threads is
        // normalized away instead of rejected.
        const PlanResult planned =
            PlanHomQuery(problem, config, PlanMode::kCompat);
        const HomPlan& plan = *planned.plan;
        if (limits.explain) std::printf("%s", plan.Explain().c_str());
        ExecutionTrace trace;
        const RetrySchedule schedule(MakeHomRetryPolicy(limits));
        auto run_attempt = [&](int attempt) {
          trace = ExecutionTrace{};
          Budget budget = schedule.MakeBudget(attempt);
          return Engine::Execute(plan, budget,
                                 limits.explain ? &trace : nullptr);
        };
        auto h = run_attempt(0);
        for (int attempt = 1; attempt < schedule.NumAttempts() &&
                              !h.IsDone() && !h.IsCancelled();
             ++attempt) {
          if (!schedule.Backoff(attempt)) break;
          if (limits.explain) {
            const RetryAttempt next = schedule.Attempt(attempt);
            std::printf("retry %d/%d (max_steps=%llu timeout_ms=%lld)\n",
                        attempt, schedule.NumAttempts() - 1,
                        static_cast<unsigned long long>(next.max_steps),
                        static_cast<long long>(
                            std::chrono::duration_cast<
                                std::chrono::milliseconds>(next.timeout)
                                .count()));
          }
          h = run_attempt(attempt);
        }
        if (limits.explain) {
          std::printf("%s\n", trace.ToString().c_str());
        }
        if (!h.IsDone()) {
          saw_exhausted = true;
          PrintExhausted(h.Report());
        } else if (!h.Value().witness.has_value()) {
          std::printf("no homomorphism\n");
        } else {
          std::printf("h = [");
          const auto& map = *h.Value().witness;
          for (size_t i = 0; i < map.size(); ++i) {
            std::printf("%s%d->%d", i ? ", " : "", static_cast<int>(i),
                        map[i]);
          }
          std::printf("]\n");
        }
      }
    } else if (command == "eval") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      auto it = environment.find(name);
      ParseError error;
      auto f = ParseFormula(rest, &error);
      std::string vocabulary_error;
      if (it == environment.end()) {
        std::printf("error: unknown structure '%s'\n", name.c_str());
      } else if (!f.has_value()) {
        saw_parse_error = true;
        std::printf("parse error: %s\n", error.ToString().c_str());
      } else if (!IsSentence(*f)) {
        saw_parse_error = true;
        std::printf("parse error: formula has free variables\n");
      } else if (!ValidateFormulaForVocabulary(*f, voc,
                                               &vocabulary_error)) {
        saw_parse_error = true;
        std::printf("parse error: %s\n", vocabulary_error.c_str());
      } else {
        std::printf("%s\n",
                    EvaluateSentence(it->second, *f) ? "true" : "false");
      }
    } else if (command == "datalog") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      auto it = environment.find(name);
      ParseError error;
      auto program = ParseDatalogProgram(rest, voc, &error);
      if (it == environment.end()) {
        std::printf("error: unknown structure '%s'\n", name.c_str());
      } else if (!program.has_value()) {
        saw_parse_error = true;
        std::printf("parse error: %s\n", error.ToString().c_str());
      } else {
        Budget budget = MakeBudget(limits);
        auto outcome = EvaluateSemiNaiveBudgeted(*program, it->second,
                                                 budget, num_threads);
        if (!outcome.IsDone()) {
          saw_exhausted = true;
          PrintExhausted(outcome.Report());
        } else {
          const DatalogResult& result = outcome.Value();
          for (int idb = 0; idb < program->Idb().NumRelations(); ++idb) {
            std::printf("%s:", program->Idb().Name(idb).c_str());
            for (const Tuple& t : result.idb[static_cast<size_t>(idb)]) {
              std::printf(" (");
              for (size_t i = 0; i < t.size(); ++i) {
                std::printf("%s%d", i ? " " : "", t[i]);
              }
              std::printf(")");
            }
            std::printf("\n");
          }
          std::printf("fixpoint after %d stage(s)\n", result.stages);
        }
      }
    } else if (command == "scattered") {
      std::string name;
      int s = 0;
      int d = 0;
      in >> name >> s >> d;
      auto it = environment.find(name);
      if (it == environment.end() || s < 0 || d < 0) {
        std::printf("error: usage: scattered <name> <s> <d>\n");
      } else {
        const Graph g = GaifmanGraph(it->second);
        Budget budget = MakeBudget(limits);
        int best = 0;
        bool exhausted = false;
        for (int m = 1; m <= g.NumVertices(); ++m) {
          auto witness = FindScatteredAfterRemovalBudgeted(g, s, d, m,
                                                           budget);
          if (!witness.IsDone()) {
            exhausted = true;
            saw_exhausted = true;
            PrintExhausted(witness.Report());
            break;
          }
          if (witness.Value().has_value()) {
            best = m;
          } else {
            break;
          }
        }
        if (!exhausted) {
          std::printf("max %d-scattered set after removing <= %d: %d\n", d,
                      s, best);
        }
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::printf("\ninterrupted\n");
    return kExitInterrupted;
  }
  if (saw_parse_error) return kExitParseError;
  if (saw_exhausted) return kExitExhausted;
  return kExitDone;
}
