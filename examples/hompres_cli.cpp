// hompres_cli: a small interactive shell over the library. Define
// structures in the text format, then query them: homomorphisms, cores,
// treewidth, FO evaluation, Datalog, scattered sets.
//
//   ./build/examples/hompres_cli
//   > let a = |A|=3; E={(0 1),(1 2),(2 0)}
//   > let b = |A|=2; E={(0 1),(1 0)}
//   > hom a b
//   > core a
//   > eval a exists x E(x,x)
//   > tw a
//   > help

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/preservation.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "fo/eval.h"
#include "fo/parser.h"
#include "graph/scattered.h"
#include "hom/core.h"
#include "hom/homomorphism.h"
#include "structure/gaifman.h"
#include "structure/parser.h"
#include "structure/vocabulary.h"
#include "tw/tree_decomposition.h"

namespace {

using namespace hompres;

void PrintHelp() {
  std::printf(
      "commands (vocabulary is {E/2}):\n"
      "  let <name> = |A|=<n>; E={(a b),...}   define a structure\n"
      "  show <name>                            print it\n"
      "  hom <a> <b>                            homomorphism a -> b?\n"
      "  core <name>                            compute the core\n"
      "  tw <name>                              exact treewidth (n<=22)\n"
      "  eval <name> <FO sentence>              evaluate a sentence\n"
      "  datalog <name> <rules>                 run a Datalog program\n"
      "  scattered <name> <s> <d>               max d-scattered set after\n"
      "                                         removing <= s vertices\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  std::map<std::string, Structure> environment;
  const Vocabulary voc = GraphVocabulary();
  PrintHelp();
  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command == "quit" || command == "exit") break;
    if (command == "help" || command.empty()) {
      PrintHelp();
    } else if (command == "let") {
      std::string name;
      std::string equals;
      in >> name >> equals;
      std::string rest;
      std::getline(in, rest);
      std::string error;
      auto s = ParseStructure(rest, voc, &error);
      if (equals != "=" || !s.has_value()) {
        std::printf("error: %s\n", error.empty() ? "usage: let x = |A|=..."
                                                 : error.c_str());
      } else {
        environment.insert_or_assign(name, std::move(*s));
        std::printf("ok\n");
      }
    } else if (command == "show" || command == "core" || command == "tw") {
      std::string name;
      in >> name;
      auto it = environment.find(name);
      if (it == environment.end()) {
        std::printf("error: unknown structure '%s'\n", name.c_str());
      } else if (command == "show") {
        std::printf("%s\n", it->second.DebugString().c_str());
      } else if (command == "core") {
        std::printf("%s\n", ComputeCore(it->second).DebugString().c_str());
      } else {
        std::printf("treewidth = %d\n", StructureTreewidth(it->second));
      }
    } else if (command == "hom") {
      std::string a;
      std::string b;
      in >> a >> b;
      auto ita = environment.find(a);
      auto itb = environment.find(b);
      if (ita == environment.end() || itb == environment.end()) {
        std::printf("error: unknown structure\n");
      } else {
        auto h = FindHomomorphism(ita->second, itb->second);
        if (!h.has_value()) {
          std::printf("no homomorphism\n");
        } else {
          std::printf("h = [");
          for (size_t i = 0; i < h->size(); ++i) {
            std::printf("%s%d->%d", i ? ", " : "", static_cast<int>(i),
                        (*h)[i]);
          }
          std::printf("]\n");
        }
      }
    } else if (command == "eval") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      auto it = environment.find(name);
      std::string error;
      auto f = ParseFormula(rest, &error);
      if (it == environment.end()) {
        std::printf("error: unknown structure '%s'\n", name.c_str());
      } else if (!f.has_value()) {
        std::printf("parse error: %s\n", error.c_str());
      } else if (!IsSentence(*f)) {
        std::printf("error: formula has free variables\n");
      } else {
        std::printf("%s\n",
                    EvaluateSentence(it->second, *f) ? "true" : "false");
      }
    } else if (command == "datalog") {
      std::string name;
      in >> name;
      std::string rest;
      std::getline(in, rest);
      auto it = environment.find(name);
      std::string error;
      auto program = ParseDatalogProgram(rest, voc, &error);
      if (it == environment.end()) {
        std::printf("error: unknown structure '%s'\n", name.c_str());
      } else if (!program.has_value()) {
        std::printf("parse error: %s\n", error.c_str());
      } else {
        DatalogResult result = EvaluateSemiNaive(*program, it->second);
        for (int idb = 0; idb < program->Idb().NumRelations(); ++idb) {
          std::printf("%s:", program->Idb().Name(idb).c_str());
          for (const Tuple& t : result.idb[static_cast<size_t>(idb)]) {
            std::printf(" (");
            for (size_t i = 0; i < t.size(); ++i) {
              std::printf("%s%d", i ? " " : "", t[i]);
            }
            std::printf(")");
          }
          std::printf("\n");
        }
        std::printf("fixpoint after %d stage(s)\n", result.stages);
      }
    } else if (command == "scattered") {
      std::string name;
      int s = 0;
      int d = 0;
      in >> name >> s >> d;
      auto it = environment.find(name);
      if (it == environment.end() || s < 0 || d < 0) {
        std::printf("error: usage: scattered <name> <s> <d>\n");
      } else {
        const Graph g = GaifmanGraph(it->second);
        const auto witness =
            FindScatteredAfterRemoval(g, s, d, /*m=*/1);
        int best = 0;
        for (int m = 1; m <= g.NumVertices(); ++m) {
          if (FindScatteredAfterRemoval(g, s, d, m).has_value()) {
            best = m;
          } else {
            break;
          }
        }
        (void)witness;
        std::printf("max %d-scattered set after removing <= %d: %d\n", d, s,
                    best);
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}
