// datalog_boundedness: the Ajtai-Gurevich theorem (Section 7) as a tool.
// A Datalog program is bounded iff it is first-order definable; bounded
// programs are detected by checking whether the stage formulas Theta^s
// (Theorem 7.1's finite disjunctions of CQ^k) stabilize up to logical
// equivalence — decided with Sagiv-Yannakakis containment.

#include <cstdio>

#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/stages.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

int main() {
  using namespace hompres;

  auto report = [](const char* name, const DatalogProgram& program) {
    std::printf("== %s (a %d-Datalog program)\n%s", name,
                program.TotalVariableCount(),
                program.DebugString().c_str());
    for (int m = 1; m <= 3; ++m) {
      UnionOfCq theta = StageUcq(program, 0, m);
      std::printf("  Theta^%d: %zu CQ disjunct(s)\n", m,
                  theta.Disjuncts().size());
    }
    const auto witness = FindBoundednessWitness(program, 0, 5);
    if (witness.has_value()) {
      std::printf(
          "  BOUNDED: Theta^%d is logically equivalent to Theta^%d — the\n"
          "  fixpoint is reached within %d stage(s) on every finite "
          "structure,\n  so the program is first-order definable.\n\n",
          *witness, *witness + 1, *witness);
    } else {
      std::printf(
          "  UNBOUNDED up to stage 5: each Theta^s is strictly weaker "
          "than\n  Theta^{s+1} (new path lengths keep appearing), "
          "consistent with\n  non-first-order-definability.\n\n");
    }
  };

  report("transitive closure", DatalogProgram::TransitiveClosure());
  report("two-step reachability", DatalogProgram::TwoStepReachability());
  report("vacuously recursive self-loop",
         DatalogProgram(
             GraphVocabulary(),
             {DatalogRule{{"S", {"x"}}, {{"E", {"x", "x"}}}},
              DatalogRule{{"S", {"x"}},
                          {{"E", {"x", "x"}}, {"S", {"x"}}}}}));

  // Stage semantics in action: transitive closure on a path.
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  Structure p6 = DirectedPathStructure(6);
  std::printf("== stages of TC on the directed path with 5 edges\n");
  for (int m = 0; m <= 5; ++m) {
    std::printf("  |Phi^%d(T)| = %zu\n", m, Stage(tc, p6, m)[0].size());
  }
  DatalogResult naive = EvaluateNaive(tc, p6);
  DatalogResult semi = EvaluateSemiNaive(tc, p6);
  std::printf(
      "  fixpoint after %d stages; naive did %lld body matches, "
      "semi-naive %lld\n",
      naive.stages, naive.derivations, semi.derivations);
  return 0;
}
