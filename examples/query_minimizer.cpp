// query_minimizer: the database-side motivation from the paper's
// introduction — select-project-join-union queries are the bread and
// butter of relational systems, and Chandra-Merlin minimization removes
// redundant joins. Feed an existential-positive formula (or use the
// default), get back the minimized union of conjunctive queries.
//
//   ./build/examples/query_minimizer
//   ./build/examples/query_minimizer "exists x exists y exists z (E(x,y) & E(x,z))"

#include <cstdio>
#include <string>

#include "cq/ucq.h"
#include "fo/ep.h"
#include "fo/parser.h"
#include "structure/vocabulary.h"

int main(int argc, char** argv) {
  using namespace hompres;

  const std::string text =
      argc > 1 ? argv[1]
               : "exists x exists y exists z exists w "
                 "(E(x,y) & E(x,z) & E(z,w)) | "
                 "exists u exists v (E(u,v) & E(u,v) & exists t E(v,t))";
  std::printf("input formula: %s\n", text.c_str());

  std::string error;
  auto formula = ParseFormula(text, &error);
  if (!formula.has_value()) {
    std::printf("parse error: %s\n", error.c_str());
    return 1;
  }
  if (!IsExistentialPositive(*formula)) {
    std::printf(
        "not existential-positive: only atoms, =, &, | and exists are "
        "SPJU-expressible\n");
    return 1;
  }

  auto ucq = ExistentialPositiveSentenceToUcq(*formula, GraphVocabulary());
  if (!ucq.has_value()) {
    std::printf("conversion failed (unknown relation or wrong arity?)\n");
    return 1;
  }
  std::printf("\nas a union of conjunctive queries (%zu disjuncts):\n",
              ucq->Disjuncts().size());
  for (const auto& d : ucq->Disjuncts()) {
    std::printf("  %s   [%d joins]\n", d.ToString().c_str(),
                d.Canonical().NumTuples());
  }

  UnionOfCq minimized = MinimizeUcq(*ucq);
  std::printf("\nafter Chandra-Merlin minimization (%zu disjuncts):\n",
              minimized.Disjuncts().size());
  int before = 0;
  int after = 0;
  for (const auto& d : ucq->Disjuncts()) before += d.Canonical().NumTuples();
  for (const auto& d : minimized.Disjuncts()) {
    std::printf("  %s   [%d joins]\n", d.ToString().c_str(),
                d.Canonical().NumTuples());
    after += d.Canonical().NumTuples();
  }
  std::printf("\njoins before: %d, after: %d, equivalent: %s\n", before,
              after, UcqEquivalent(*ucq, minimized) ? "yes" : "no");
  return 0;
}
