// preservation_pipeline: the paper's headline result as an executable
// procedure. Give a first-order sentence that is preserved under
// homomorphisms on a restricted class (bounded degree / treewidth /
// excluded minor); the pipeline enumerates its minimal models and emits
// the equivalent union of conjunctive queries, then verifies the
// equivalence exhaustively on the class up to a size cap.
//
//   ./build/examples/preservation_pipeline
//   ./build/examples/preservation_pipeline "exists x E(x,x)" treewidth 2

#include <cstdio>
#include <string>

#include "core/classes.h"
#include "core/preservation.h"
#include "cq/cq.h"
#include "fo/parser.h"
#include "structure/vocabulary.h"

int main(int argc, char** argv) {
  using namespace hompres;

  const std::string text =
      argc > 1 ? argv[1] : "exists x exists y exists z (E(x,y) & E(y,z))";
  const std::string class_kind = argc > 2 ? argv[2] : "treewidth";
  const int parameter = argc > 3 ? std::atoi(argv[3]) : 2;

  StructureClass c = AllStructuresClass();
  if (class_kind == "degree") {
    c = BoundedDegreeClass(parameter);
  } else if (class_kind == "treewidth") {
    c = BoundedTreewidthClass(parameter);
  } else if (class_kind == "minor") {
    c = ExcludesMinorClass(parameter);
  }

  std::string error;
  auto formula = ParseFormula(text, &error);
  if (!formula.has_value()) {
    std::printf("parse error: %s\n", error.c_str());
    return 1;
  }

  std::printf("sentence: %s\nclass:    %s\n", text.c_str(), c.name.c_str());
  PreservationResult result = PreservationPipeline(
      *formula, GraphVocabulary(), c, /*search_universe=*/3,
      /*verify_universe=*/3);

  std::printf("\nminimal models found (up to isomorphism): %zu\n",
              result.minimal_models.size());
  for (const Structure& model : result.minimal_models) {
    std::printf("  %s\n", model.DebugString().c_str());
  }
  std::printf("\nequivalent union of conjunctive queries:\n  %s\n",
              result.equivalent_ucq.ToString().c_str());
  std::printf(
      "\nexhaustively verified on every %s-structure with <= %d elements: "
      "%s\n",
      c.name.c_str(), result.verify_universe,
      result.verified ? "EQUIVALENT" : "NOT equivalent (the sentence is "
                                       "probably not preserved under "
                                       "homomorphisms on this class)");
  return 0;
}
