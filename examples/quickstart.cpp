// Quickstart: structures, homomorphisms, cores, and conjunctive queries.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cq/cq.h"
#include "graph/builders.h"
#include "hom/core.h"
#include "hom/homomorphism.h"
#include "structure/gaifman.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

int main() {
  using namespace hompres;

  // 1. Structures: the directed 6-cycle and 3-cycle over vocabulary {E/2}.
  Structure c6 = DirectedCycleStructure(6);
  Structure c3 = DirectedCycleStructure(3);
  std::printf("C6: %s\n", c6.DebugString().c_str());

  // 2. Homomorphisms: C6 -> C3 exists (wind around twice), C3 -> C6 does
  // not (cycle lengths must divide).
  std::printf("hom(C6, C3) = %s\n", HasHomomorphism(c6, c3) ? "yes" : "no");
  std::printf("hom(C3, C6) = %s\n", HasHomomorphism(c3, c6) ? "yes" : "no");

  // 3. Cores: every bipartite graph's core is a single edge (K2).
  Structure grid = UndirectedGraphStructure(GridGraph(3, 4));
  Structure core = ComputeCore(grid);
  std::printf("core of the 3x4 grid has %d elements (K2 expected)\n",
              core.UniverseSize());

  // 4. Conjunctive queries via Chandra-Merlin: phi_A is satisfied by B
  // exactly when hom(A, B) exists.
  ConjunctiveQuery path3 =
      ConjunctiveQuery::BooleanQueryOf(DirectedPathStructure(4));
  std::printf("phi = %s\n", path3.ToString().c_str());
  std::printf("C3 |= phi (a cycle contains arbitrarily long paths): %s\n",
              path3.SatisfiedBy(c3) ? "yes" : "no");

  // 5. Non-Boolean queries: q(x) = "x has an out-edge".
  Structure edge(GraphVocabulary(), 2);
  edge.AddTuple(0, {0, 1});
  ConjunctiveQuery q(edge, {0});
  const auto answers = q.Evaluate(DirectedPathStructure(4));
  std::printf("elements of P4 with an out-edge:");
  for (const Tuple& t : answers) std::printf(" %d", t[0]);
  std::printf("\n");

  // 6. Gaifman graphs tie structures back to graph theory.
  std::printf("Gaifman degree of the grid structure: %d\n",
              StructureDegree(grid));
  return 0;
}
