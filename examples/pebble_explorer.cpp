// pebble_explorer: Section 7.2's separating example, live. The query
// q(C3, 2) — "the Duplicator wins the existential 2-pebble game against
// the directed triangle" — holds on a finite digraph exactly when it
// contains a directed cycle (Proposition 7.9), so it is not first-order
// definable, and with k = 3 pebbles the game collapses to plain
// homomorphism existence.

#include <cstdio>

#include "hom/homomorphism.h"
#include "pebble/pebble_game.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

int main() {
  using namespace hompres;

  Structure c3 = DirectedCycleStructure(3);
  std::printf("A = directed triangle C3\n\n");
  std::printf("%-28s %10s %10s %10s\n", "B", "2-pebble", "3-pebble",
              "hom(C3,B)");

  auto row = [&](const char* name, const Structure& b) {
    std::printf("%-28s %10s %10s %10s\n", name,
                DuplicatorWinsExistentialKPebbleGame(c3, b, 2) ? "Dup"
                                                               : "Spoiler",
                DuplicatorWinsExistentialKPebbleGame(c3, b, 3) ? "Dup"
                                                               : "Spoiler",
                HasHomomorphism(c3, b) ? "yes" : "no");
  };

  row("directed path P5 (acyclic)", DirectedPathStructure(5));
  row("directed cycle C3", DirectedCycleStructure(3));
  row("directed cycle C4", DirectedCycleStructure(4));
  row("directed cycle C5", DirectedCycleStructure(5));
  row("directed cycle C6", DirectedCycleStructure(6));
  row("P3 + C4 (has a cycle)",
      DirectedPathStructure(3).DisjointUnion(DirectedCycleStructure(4)));

  std::printf(
      "\nReading the table: with 2 pebbles the Duplicator survives on\n"
      "every structure containing a directed cycle — even C4, where no\n"
      "homomorphism from C3 exists — so q(C3,2) computes cyclicity, a\n"
      "non-first-order query (Proposition 7.9). With 3 pebbles the game\n"
      "matches homomorphism existence: C3 is its own core and has\n"
      "treewidth 2 < 3, so the Dalmau-Kolaitis-Vardi characterization\n"
      "applies.\n");
  return 0;
}
