// E4 — Lemma 4.2: on treewidth < k graphs, removing at most k vertices
// leaves a d-scattered set of size m once the graph is large. Runs the
// constructive proof (antichain bags + Case 1 / sunflower Case 2) on
// bounded-treewidth families and reports witness shapes; the paper bound
// k(m-1)^{k!(p-1)^k} saturates (reported as 0 when astronomic) while the
// measured sizes are tiny.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "base/saturating.h"
#include "core/lemmas.h"
#include "graph/builders.h"
#include "tw/tree_decomposition.h"

namespace hompres {
namespace {

double BoundCounter(uint64_t bound) {
  return bound == kSaturated ? 0.0 : static_cast<double>(bound);
}

void BM_Lemma42OnPaths(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = PathGraph(n);
  TreeDecomposition td = HeuristicTreeDecomposition(g);
  bool found = false;
  size_t removed = 0;
  for (auto _ : state) {
    const auto witness = Lemma42Witness(g, td, 2, 1, 4);
    found = witness.has_value();
    if (found) removed = witness->removed.size();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_found"] = found ? 1.0 : 0.0;
  state.counters["removed"] = static_cast<double>(removed);
  state.counters["paper_bound_or_0_if_astronomic"] =
      BoundCounter(Lemma42Bound(2, 1, 4));
}

BENCHMARK(BM_Lemma42OnPaths)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_Lemma42OnKTrees(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(5);
  Graph g = RandomKTree(n, k, rng);
  TreeDecomposition td = HeuristicTreeDecomposition(g);
  bool found = false;
  for (auto _ : state) {
    const auto witness = Lemma42Witness(g, td, k + 1, 1, 3);
    found = witness.has_value();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_found"] = found ? 1.0 : 0.0;
  state.counters["paper_bound_or_0_if_astronomic"] =
      BoundCounter(Lemma42Bound(k + 1, 1, 3));
}

BENCHMARK(BM_Lemma42OnKTrees)
    ->Args({30, 2})
    ->Args({60, 2})
    ->Args({30, 3})
    ->Args({60, 3});

void BM_Lemma42OnStars(benchmark::State& state) {
  // Case 1 instances: the Section 4 motivating example.
  const int leaves = static_cast<int>(state.range(0));
  Graph g = StarGraph(leaves);
  TreeDecomposition td = HeuristicTreeDecomposition(g);
  bool found = false;
  for (auto _ : state) {
    const auto witness = Lemma42Witness(g, td, 2, 2, leaves / 2);
    found = witness.has_value();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_found"] = found ? 1.0 : 0.0;
}

BENCHMARK(BM_Lemma42OnStars)->Arg(8)->Arg(16)->Arg(32);

// The measured threshold: smallest path length where the witness exists
// for (k=2, d, m), vs the saturating paper bound.
void BM_Lemma42MeasuredThreshold(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  int measured = -1;
  for (auto _ : state) {
    for (int n = 2; n <= 512; n *= 2) {
      Graph g = PathGraph(n);
      TreeDecomposition td = HeuristicTreeDecomposition(g);
      if (Lemma42Witness(g, td, 2, d, m).has_value()) {
        measured = n;
        break;
      }
    }
  }
  state.counters["measured_threshold_upper"] =
      static_cast<double>(measured);
  state.counters["paper_bound_or_0_if_astronomic"] =
      BoundCounter(Lemma42Bound(2, d, m));
}

BENCHMARK(BM_Lemma42MeasuredThreshold)
    ->Args({1, 3})
    ->Args({1, 5})
    ->Args({2, 3})
    ->Iterations(1);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
