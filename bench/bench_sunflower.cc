// E5 — Theorem 4.1 (Sunflower Lemma): families of k-sets larger than
// k!(p-1)^k always contain a p-petal sunflower. Benchmarks the
// Erdos-Rado finder and measures the success rate exactly at, above, and
// below the bound (above: always 1.0; below: can dip).

#include <benchmark/benchmark.h>

#include "json_main.h"

#include <vector>

#include "base/rng.h"
#include "combinatorics/sunflower.h"

namespace hompres {
namespace {

std::vector<std::vector<int>> RandomFamily(int count, int k, int universe,
                                           Rng& rng) {
  std::vector<std::vector<int>> family;
  while (static_cast<int>(family.size()) < count) {
    std::vector<int> set;
    while (static_cast<int>(set.size()) < k) {
      const int x = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(universe)));
      if (std::find(set.begin(), set.end(), x) == set.end()) {
        set.push_back(x);
      }
    }
    std::sort(set.begin(), set.end());
    if (std::find(family.begin(), family.end(), set) == family.end()) {
      family.push_back(std::move(set));
    }
  }
  return family;
}

void RunAtSize(benchmark::State& state, int k, int p, double fraction) {
  const int bound = static_cast<int>(SunflowerBound(k, p));
  const int count = std::max(p, static_cast<int>(bound * fraction) + 1);
  Rng rng(31);
  long long trials = 0;
  long long successes = 0;
  for (auto _ : state) {
    auto family = RandomFamily(count, k, 6 * count, rng);
    ++trials;
    if (FindSunflower(family, p).has_value()) ++successes;
  }
  state.counters["family_size"] = static_cast<double>(count);
  state.counters["paper_bound"] = static_cast<double>(bound);
  state.counters["success_rate"] =
      static_cast<double>(successes) / static_cast<double>(trials);
}

void BM_SunflowerAboveBound(benchmark::State& state) {
  RunAtSize(state, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), 1.0);
}

BENCHMARK(BM_SunflowerAboveBound)
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({3, 3});

void BM_SunflowerBelowBound(benchmark::State& state) {
  RunAtSize(state, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), 0.25);
}

BENCHMARK(BM_SunflowerBelowBound)
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({3, 3});

void BM_SunflowerFinderScaling(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  Rng rng(77);
  auto family = RandomFamily(count, 3, 4 * count, rng);
  for (auto _ : state) {
    auto sunflower = FindSunflower(family, 4);
    benchmark::DoNotOptimize(sunflower);
  }
}

BENCHMARK(BM_SunflowerFinderScaling)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
