// E13 — Proposition 7.9 / Corollary 7.10: the query q(C3, 2) (Duplicator
// wins the existential 2-pebble game against C3) holds exactly on
// structures containing a directed cycle — a non-first-order query — and
// with 3 pebbles the game collapses to homomorphism on treewidth-2 cores
// (Dalmau-Kolaitis-Vardi).

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "hom/homomorphism.h"
#include "pebble/pebble_game.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

// Does the directed graph structure contain a directed cycle? (DFS.)
bool HasDirectedCycle(const Structure& b) {
  const int n = b.UniverseSize();
  std::vector<int> color(static_cast<size_t>(n), 0);  // 0 new 1 open 2 done
  std::function<bool(int)> dfs = [&](int u) {
    color[static_cast<size_t>(u)] = 1;
    for (const Tuple& t : b.Tuples(0)) {
      if (t[0] != u) continue;
      if (color[static_cast<size_t>(t[1])] == 1) return true;
      if (color[static_cast<size_t>(t[1])] == 0 && dfs(t[1])) return true;
    }
    color[static_cast<size_t>(u)] = 2;
    return false;
  };
  for (int u = 0; u < n; ++u) {
    if (color[static_cast<size_t>(u)] == 0 && dfs(u)) return true;
  }
  return false;
}

void BM_Proposition79Acyclicity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Structure c3 = DirectedCycleStructure(3);
  Rng rng(9);
  long long checked = 0;
  long long agreements = 0;
  for (auto _ : state) {
    Structure b = RandomStructure(GraphVocabulary(), n, 2 * n, rng);
    const bool game = PebbleGameQuery(c3, 2, b);
    const bool cyclic = HasDirectedCycle(b);
    ++checked;
    if (game == cyclic) ++agreements;
    benchmark::DoNotOptimize(game);
  }
  state.counters["agreement_with_cyclicity"] =
      static_cast<double>(agreements) / static_cast<double>(checked);
}

BENCHMARK(BM_Proposition79Acyclicity)->Arg(3)->Arg(5)->Arg(7);

void BM_PebbleVsHomomorphismOnLowTreewidthCores(benchmark::State& state) {
  // Dalmau et al.: A with core of treewidth < k => game(A,B,k) == hom.
  // Directed paths have treewidth 1.
  const int n = static_cast<int>(state.range(0));
  Structure a = DirectedPathStructure(4);
  Rng rng(21);
  long long checked = 0;
  long long agreements = 0;
  for (auto _ : state) {
    Structure b = RandomStructure(GraphVocabulary(), n, 2 * n, rng);
    const bool game = DuplicatorWinsExistentialKPebbleGame(a, b, 2);
    const bool hom = HasHomomorphism(a, b);
    ++checked;
    if (game == hom) ++agreements;
    benchmark::DoNotOptimize(game);
  }
  state.counters["agreement_with_hom"] =
      static_cast<double>(agreements) / static_cast<double>(checked);
}

BENCHMARK(BM_PebbleVsHomomorphismOnLowTreewidthCores)->Arg(4)->Arg(6);

void BM_PebbleGameCost(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Structure a = DirectedCycleStructure(3);
  Rng rng(5);
  Structure b = RandomStructure(GraphVocabulary(), n, 3 * n, rng);
  for (auto _ : state) {
    bool wins = DuplicatorWinsExistentialKPebbleGame(a, b, k);
    benchmark::DoNotOptimize(wins);
  }
}

// The n=6/10 rows keep the historical small-instance baseline; the
// n=32/16 rows extend the cost curve to larger position-map families.
// Pebble value-set rows are target-universe-wide (n bits), so all of
// these stay on the inline scalar bitset path — the fixpoint cost here
// scales with the family size, not the row width.
BENCHMARK(BM_PebbleGameCost)
    ->Args({2, 6})
    ->Args({2, 10})
    ->Args({2, 32})
    ->Args({3, 6})
    ->Args({3, 10})
    ->Args({3, 16});

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
