// E6 — Lemma 5.2: large K_k-minor-free bipartite graphs contain a large
// 1-scattered A' after removing < k-1 exceptional B-vertices that are
// complete to A'. Runs the decision procedure on minor-free bipartite
// families and reports witness shapes.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "core/lemmas.h"
#include "combinatorics/ramsey.h"
#include "graph/builders.h"
#include "graph/minor.h"

namespace hompres {
namespace {

// Bipartite "double star": two centers, each adjacent to all of side A.
// K4-minor-free... (it contains K_{2,a}) — used as the k = 4 family.
Graph DoubleStar(int side_a) {
  Graph g(side_a + 2);
  for (int a = 0; a < side_a; ++a) {
    g.AddEdge(a, side_a);
    g.AddEdge(a, side_a + 1);
  }
  return g;
}

void BM_Lemma52OnStars(benchmark::State& state) {
  const int side_a = static_cast<int>(state.range(0));
  Graph h = CompleteBipartiteGraph(side_a, 1);
  bool found = false;
  size_t removed = 0;
  for (auto _ : state) {
    const auto witness =
        Lemma52Witness(h, side_a, side_a / 2, /*max_b=*/1);
    found = witness.has_value();
    if (found) removed = witness->b_prime.size();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_found"] = found ? 1.0 : 0.0;
  state.counters["b_prime"] = static_cast<double>(removed);
}

BENCHMARK(BM_Lemma52OnStars)->Arg(8)->Arg(16)->Arg(32);

void BM_Lemma52OnDoubleStars(benchmark::State& state) {
  const int side_a = static_cast<int>(state.range(0));
  Graph h = DoubleStar(side_a);
  bool found = false;
  size_t removed = 0;
  for (auto _ : state) {
    const auto witness =
        Lemma52Witness(h, side_a, side_a / 2, /*max_b=*/2);
    found = witness.has_value();
    if (found) removed = witness->b_prime.size();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_found"] = found ? 1.0 : 0.0;
  state.counters["b_prime"] = static_cast<double>(removed);
}

BENCHMARK(BM_Lemma52OnDoubleStars)->Arg(8)->Arg(16)->Arg(32);

void BM_Lemma52OnRandomForests(benchmark::State& state) {
  // Random bipartite forests: K3-minor-free, so |B'| <= 1 must suffice.
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Graph tree = RandomTree(n, rng);
  // Split by BFS parity: relabel so side A = even-depth vertices first.
  // Trees are bipartite; use vertex ids directly by building a bipartite
  // copy: side A = vertices 0..n-1 of the tree mapped... simplest: use
  // the tree as-is when it happens to be bipartitioned by id order is
  // wrong, so instead use caterpillars whose spine/leaf split is clean.
  Graph caterpillar = CaterpillarGraph(n / 3, 2);
  // Sides: spine = 0..n/3-1 (side B), leaves after (side A). Reorder:
  const int spine = n / 3;
  const int leaves = caterpillar.NumVertices() - spine;
  Graph h(caterpillar.NumVertices());
  // leaves first (side A), then spine.
  auto remap = [&](int v) { return v < spine ? leaves + v : v - spine; };
  for (const auto& [u, v] : caterpillar.Edges()) {
    const int ru = remap(u);
    const int rv = remap(v);
    if (!h.HasEdge(ru, rv)) h.AddEdge(ru, rv);
  }
  // Spine-spine edges break bipartiteness of the A/B split; drop them.
  for (int s = 0; s + 1 < spine; ++s) {
    if (h.HasEdge(leaves + s, leaves + s + 1)) {
      h.RemoveEdge(leaves + s, leaves + s + 1);
    }
  }
  bool found = false;
  size_t a_prime = 0;
  for (auto _ : state) {
    // One leaf per spine vertex is 1-scattered with no removals; ask for
    // just under that.
    const auto witness = Lemma52Witness(h, leaves, spine - 1, 1);
    found = witness.has_value();
    if (found) a_prime = witness->a_prime.size();
    benchmark::DoNotOptimize(witness);
  }
  state.counters["witness_found"] = found ? 1.0 : 0.0;
  state.counters["a_prime"] = static_cast<double>(a_prime);
  state.counters["paper_bound_is_astronomic"] = 1.0;
  benchmark::DoNotOptimize(Lemma52Bound(3, static_cast<uint64_t>(n)));
}

BENCHMARK(BM_Lemma52OnRandomForests)->Arg(18)->Arg(30);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
