// Shared main() for the bench_* binaries, adding a `--json` mode.
//
// Default (no flag): byte-for-byte the stock BENCHMARK_MAIN() console
// output. With `--json` (stripped before Google Benchmark sees the
// arguments), every benchmark row is emitted as one self-contained JSON
// object per line on stdout:
//
//   {"name":"BM_Foo/8","git_sha":"62c4808","mode":"quick","simd":"avx2",
//    "real_time_ns":123.4,"cpu_time_ns":120.1,
//    "iterations":1000,"counters":{"satisfiable":0}}
//
// The `simd` field is the dispatched bitset64 kernel level for the whole
// process (base/simd.h: CPUID clamped by HOMPRES_SIMD), so baselines
// recorded on different ISAs are distinguishable —
// bench/check_regression.py only compares timings of like-for-like rows.
//
// One line per row keeps the format shell-friendly: bench/run_all.sh
// concatenates the lines of every binary into BENCH_results.json without
// a JSON parser. Aggregate rows (mean/stddev) and errored runs are
// skipped; times are converted to nanoseconds regardless of each
// benchmark's display unit.
//
// `--json-sha=<sha>` and `--json-mode=<quick|full>` (also stripped before
// Google Benchmark parses the arguments) stamp every row with the
// provenance of the run, so a committed BENCH_results.json records which
// commit and measurement regime produced it. All string fields, including
// these, go through JsonEscape.

#ifndef HOMPRES_BENCH_JSON_MAIN_H_
#define HOMPRES_BENCH_JSON_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/simd.h"

namespace hompres {
namespace bench_internal {

inline double ToNanoseconds(double value, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return value;
    case benchmark::kMicrosecond:
      return value * 1e3;
    case benchmark::kMillisecond:
      return value * 1e6;
    case benchmark::kSecond:
      return value * 1e9;
  }
  return value;
}

// Minimal JSON string escape (benchmark names contain '/' and ':' only,
// but counters are user-named, so quote defensively).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  JsonLinesReporter(std::string git_sha, std::string mode)
      : git_sha_(std::move(git_sha)), mode_(std::move(mode)) {}

  bool ReportContext(const Context& context) override {
    (void)context;
    return true;
  }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::ostream& out = GetOutputStream();
      out << "{\"name\":\"" << JsonEscape(run.benchmark_name()) << "\""
          << ",\"git_sha\":\"" << JsonEscape(git_sha_) << "\""
          << ",\"mode\":\"" << JsonEscape(mode_) << "\""
          << ",\"simd\":\"" << simd::SimdLevelName(simd::ActiveSimdLevel())
          << "\"";
      if (!run.report_label.empty()) {
        // Benchmarks label themselves with the engine's plan summary
        // (HomPlan::Summary()); bench/check_regression.py diffs it.
        out << ",\"plan\":\"" << JsonEscape(run.report_label) << "\"";
      }
      out << ",\"real_time_ns\":"
          << ToNanoseconds(run.GetAdjustedRealTime(), run.time_unit)
          << ",\"cpu_time_ns\":"
          << ToNanoseconds(run.GetAdjustedCPUTime(), run.time_unit)
          << ",\"iterations\":" << run.iterations << ",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) out << ",";
        first = false;
        out << "\"" << JsonEscape(name) << "\":" << counter.value;
      }
      out << "}}" << std::endl;
    }
  }

 private:
  std::string git_sha_;
  std::string mode_;
};

// Runs the registered benchmarks; `--json` anywhere in argv selects the
// line-per-row reporter above, `--json-sha=`/`--json-mode=` set the
// provenance fields stamped on every row.
inline int BenchmarkMain(int argc, char** argv) {
  bool json = false;
  std::string git_sha = "unknown";
  std::string mode = "default";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json-sha=", 11) == 0) {
      git_sha = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--json-mode=", 12) == 0) {
      mode = argv[i] + 12;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json) {
    JsonLinesReporter reporter(git_sha, mode);
    reporter.SetOutputStream(&std::cout);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_internal
}  // namespace hompres

#define HOMPRES_BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                               \
    return ::hompres::bench_internal::BenchmarkMain(argc, argv);  \
  }

#endif  // HOMPRES_BENCH_JSON_MAIN_H_
