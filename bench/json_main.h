// Shared main() for the bench_* binaries, adding a `--json` mode.
//
// Default (no flag): byte-for-byte the stock BENCHMARK_MAIN() console
// output. With `--json` (stripped before Google Benchmark sees the
// arguments), every benchmark row is emitted as one self-contained JSON
// object per line on stdout:
//
//   {"name":"BM_Foo/8","real_time_ns":123.4,"cpu_time_ns":120.1,
//    "iterations":1000,"counters":{"satisfiable":0}}
//
// One line per row keeps the format shell-friendly: bench/run_all.sh
// concatenates the lines of every binary into BENCH_results.json without
// a JSON parser. Aggregate rows (mean/stddev) and errored runs are
// skipped; times are converted to nanoseconds regardless of each
// benchmark's display unit.

#ifndef HOMPRES_BENCH_JSON_MAIN_H_
#define HOMPRES_BENCH_JSON_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace hompres {
namespace bench_internal {

inline double ToNanoseconds(double value, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return value;
    case benchmark::kMicrosecond:
      return value * 1e3;
    case benchmark::kMillisecond:
      return value * 1e6;
    case benchmark::kSecond:
      return value * 1e9;
  }
  return value;
}

// Minimal JSON string escape (benchmark names contain '/' and ':' only,
// but counters are user-named, so quote defensively).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& context) override {
    (void)context;
    return true;
  }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::ostream& out = GetOutputStream();
      out << "{\"name\":\"" << JsonEscape(run.benchmark_name()) << "\""
          << ",\"real_time_ns\":"
          << ToNanoseconds(run.GetAdjustedRealTime(), run.time_unit)
          << ",\"cpu_time_ns\":"
          << ToNanoseconds(run.GetAdjustedCPUTime(), run.time_unit)
          << ",\"iterations\":" << run.iterations << ",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) out << ",";
        first = false;
        out << "\"" << JsonEscape(name) << "\":" << counter.value;
      }
      out << "}}" << std::endl;
    }
  }
};

// Runs the registered benchmarks; `--json` anywhere in argv selects the
// line-per-row reporter above.
inline int BenchmarkMain(int argc, char** argv) {
  bool json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json) {
    JsonLinesReporter reporter;
    reporter.SetOutputStream(&std::cout);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_internal
}  // namespace hompres

#define HOMPRES_BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                               \
    return ::hompres::bench_internal::BenchmarkMain(argc, argv);  \
  }

#endif  // HOMPRES_BENCH_JSON_MAIN_H_
