// E11 — Lemma 7.2: every CQ^k sentence has a canonical structure of
// treewidth < k. Benchmarks the construction on random CQ^k sentences
// and reports (as counters) the certified decomposition width and the
// evaluation agreement between the sentence and the canonical query.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "cq/cq.h"
#include "fo/cqk.h"
#include "fo/eval.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

void BM_CqkCanonicalStructure(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int atoms = static_cast<int>(state.range(1));
  Rng rng(42);
  int max_width = -1;
  long long agreements = 0;
  long long checked = 0;
  for (auto _ : state) {
    FormulaPtr f = RandomCqkSentence(GraphVocabulary(), k, atoms, rng);
    auto result = CqkCanonicalStructure(f, GraphVocabulary(), k);
    if (!result.has_value()) continue;
    max_width = std::max(max_width, result->decomposition.Width());
    ConjunctiveQuery q =
        ConjunctiveQuery::BooleanQueryOf(result->structure);
    Structure b = RandomStructure(GraphVocabulary(), 3, 4, rng);
    ++checked;
    if (EvaluateSentence(b, f) == q.SatisfiedBy(b)) ++agreements;
    benchmark::DoNotOptimize(result);
  }
  state.counters["max_width"] = static_cast<double>(max_width);
  state.counters["width_bound"] = static_cast<double>(k - 1);
  state.counters["agreement"] =
      checked == 0 ? 1.0 : static_cast<double>(agreements) /
                               static_cast<double>(checked);
}

BENCHMARK(BM_CqkCanonicalStructure)
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 6})
    ->Args({4, 8});

void BM_PaperExamplePathSentence(benchmark::State& state) {
  // The Section 7.1 example: CQ^2 sentence for "path of length 3".
  Rng rng(1);
  FormulaPtr path3 = Formula::Exists(
      "x1",
      Formula::Exists(
          "x2",
          Formula::And(
              {Formula::Atom("E", {"x1", "x2"}),
               Formula::Exists(
                   "x1",
                   Formula::And(
                       {Formula::Atom("E", {"x2", "x1"}),
                        Formula::Exists(
                            "x2", Formula::Atom("E", {"x1", "x2"}))}))})));
  int width = -1;
  int universe = 0;
  for (auto _ : state) {
    auto result = CqkCanonicalStructure(path3, GraphVocabulary(), 2);
    width = result->decomposition.Width();
    universe = result->structure.UniverseSize();
    benchmark::DoNotOptimize(result);
  }
  state.counters["width"] = static_cast<double>(width);        // <= 1
  state.counters["universe"] = static_cast<double>(universe);  // 4
  benchmark::DoNotOptimize(rng.Next());
}

BENCHMARK(BM_PaperExamplePathSentence);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
