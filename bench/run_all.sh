#!/usr/bin/env bash
# Runs every bench_* binary in --json mode and aggregates the rows into a
# single JSON array, one object per benchmark row, each tagged with the
# binary it came from:
#
#   bench/run_all.sh <build_dir> [<output.json>] [--quick]
#
# <build_dir>   CMake build directory holding bench/bench_* binaries.
# <output.json> Aggregated output (default: BENCH_results.json in the
#               current directory).
# --quick       Reduced measurement time for CI smoke runs (the relative
#               indexed-vs-scan ratios survive; absolute times are noisy).
#
# No JSON tooling required: each binary emits one object per line, so the
# aggregation is pure shell.

set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <build_dir> [<output.json>] [--quick]" >&2
  exit 2
fi

build_dir=$1
shift
output=BENCH_results.json
quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) output=$arg ;;
  esac
done

bench_dir="$build_dir/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found (build the project first)" >&2
  exit 1
fi

# Every row records which commit and measurement regime produced it.
repo_root=$(cd "$(dirname "$0")/.." && pwd)
git_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
if [[ $quick -eq 1 ]]; then
  mode=quick
else
  mode=full
fi

extra_args=("--json-sha=$git_sha" "--json-mode=$mode")
if [[ $quick -eq 1 ]]; then
  extra_args+=("--benchmark_min_time=0.01")
else
  extra_args+=("--benchmark_min_time=0.05")
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for bench in "$bench_dir"/bench_*; do
  [[ -x "$bench" ]] || continue
  name=$(basename "$bench")
  echo "running $name ..." >&2
  # Tag each row with its binary so names stay unique in the aggregate.
  # A crashing or failing binary must fail the whole run (with pipefail
  # the pipeline status reflects the binary, not the sed): a truncated
  # aggregate that looks complete is worse than no aggregate.
  if ! "$bench" --json "${extra_args[@]}" \
    | sed "s/^{/{\"bench\":\"$name\",/" >>"$tmp"; then
    echo "error: $name exited nonzero; aborting without writing $output" >&2
    exit 1
  fi
done

{
  echo "["
  sed '$!s/$/,/' "$tmp"
  echo "]"
} >"$output"

rows=$(wc -l <"$tmp")
echo "wrote $output ($rows rows)" >&2
