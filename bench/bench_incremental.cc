// E18 — incremental view maintenance (src/datalog/incremental.h).
// Two questions, matching DESIGN.md §4.10 and the EXPERIMENTS.md table:
//
//  1. Update-stream throughput: a MaterializedView following a stream of
//     single-tuple deltas (insert then delete, so the view is in steady
//     state and every iteration measures the same work) against the
//     forced from-scratch refixpoint baseline on the same stream. The
//     incremental/scratch ratio must grow with the base size — the
//     acceptance bar is >=5x at the largest Arg.
//  2. The bounded-UCQ crossover: for a certified-bounded program the
//     planner can either re-evaluate the optimized stage UCQ (cost
//     independent of the delta) or run counting maintenance (cost
//     proportional to the delta). The batch-size sweep measures where
//     the curves cross; check_regression.py keeps both rows honest.
//
// Every row labels itself with the MaintenancePlan summary of the last
// delete-side Apply ("maintain=dred ..."), so a silent strategy change
// or a degraded run shows up in the JSON diff, and exports an `agree`
// counter comparing the maintained IDB against a from-scratch
// EvaluateSemiNaive of the mutated base — a 0 is a correctness bug, not
// a slow run.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "json_main.h"

#include "base/rng.h"
#include "datalog/eval.h"
#include "datalog/incremental.h"
#include "datalog/program.h"
#include "structure/delta.h"
#include "structure/structure.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

// Directed path 0 -> 1 -> ... -> n-1 plus one spare element n with no
// incident edges: the stream's pendant edge (n-1, n) hangs off the end,
// so inserting it derives the n new TC facts (i, n) and deleting it
// DRed-overdeletes exactly those — a genuinely small delta against an
// O(n^2)-fact fixpoint.
Structure PathWithSpare(int n) {
  Structure s(GraphVocabulary(), n + 1);
  for (int i = 0; i + 1 < n; ++i) s.AddTuple(0, {i, i + 1});
  return s;
}

bool IdbAgrees(const MaterializedView& view) {
  const DatalogResult scratch =
      EvaluateSemiNaive(view.GetProgram(), view.Base());
  return scratch.idb == view.Idb();
}

int IdbTuples(const MaterializedView& view) {
  int total = 0;
  for (const auto& relation : view.Idb()) {
    total += static_cast<int>(relation.size());
  }
  return total;
}

// One stream step = insert the pendant edge, then delete it: the
// incremental view runs delta-insert then DRed; the baseline runs two
// full refixpoints. Identical start and end state either way.
void RunTcPendantStream(benchmark::State& state, bool force_scratch) {
  const int n = static_cast<int>(state.range(0));
  MaterializedViewOptions options;
  options.force_from_scratch = force_scratch;
  MaterializedView view(DatalogProgram::TransitiveClosure(),
                        PathWithSpare(n), options);
  StructureDelta insert;
  insert.InsertTuple(0, {n - 1, n});
  StructureDelta remove;
  remove.RemoveTuple(0, {n - 1, n});
  ViewMaintenanceStats last;
  long long derivations = 0;
  for (auto _ : state) {
    const ViewMaintenanceStats ins = view.Apply(insert);
    last = view.Apply(remove);
    derivations = ins.derivations + last.derivations;
    benchmark::DoNotOptimize(view.Idb());
  }
  state.SetLabel(last.plan.Summary());
  state.counters["derivations_per_step"] = static_cast<double>(derivations);
  state.counters["idb_tuples"] = static_cast<double>(IdbTuples(view));
  state.counters["agree"] = IdbAgrees(view) ? 1.0 : 0.0;
}

void BM_TcPendantStreamIncremental(benchmark::State& state) {
  RunTcPendantStream(state, /*force_scratch=*/false);
}
BENCHMARK(BM_TcPendantStreamIncremental)->Arg(64)->Arg(256)->Arg(512);

void BM_TcPendantStreamScratch(benchmark::State& state) {
  RunTcPendantStream(state, /*force_scratch=*/true);
}
BENCHMARK(BM_TcPendantStreamScratch)->Arg(64)->Arg(256)->Arg(512);

// --- Non-recursive stream: counting vs from-scratch. ---

// Random digraph with 3n edges and one reserved absent edge (0, n-1)
// for the stream (the generator never emits it: a != 0 guards it).
Structure RandomDigraph(int n, uint64_t seed) {
  Rng rng(seed);
  Structure s(GraphVocabulary(), n);
  int added = 0;
  while (added < 3 * n) {
    const int a = 1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(n - 1)));
    const int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    if (a == b) continue;
    if (s.AddTuple(0, {a, b})) ++added;
  }
  return s;
}

void RunTwoStepStream(benchmark::State& state, bool force_scratch) {
  const int n = static_cast<int>(state.range(0));
  MaterializedViewOptions options;
  options.force_from_scratch = force_scratch;
  // Boundedness probe off: this pair isolates counting maintenance; the
  // crossover sweep below is where bounded-UCQ gets its turn.
  options.max_bounded_stage = 0;
  MaterializedView view(DatalogProgram::TwoStepReachability(),
                        RandomDigraph(n, /*seed=*/0x5eed0018), options);
  StructureDelta insert;
  insert.InsertTuple(0, {0, n - 1});
  StructureDelta remove;
  remove.RemoveTuple(0, {0, n - 1});
  ViewMaintenanceStats last;
  long long derivations = 0;
  for (auto _ : state) {
    const ViewMaintenanceStats ins = view.Apply(insert);
    last = view.Apply(remove);
    derivations = ins.derivations + last.derivations;
    benchmark::DoNotOptimize(view.Idb());
  }
  state.SetLabel(last.plan.Summary());
  state.counters["derivations_per_step"] = static_cast<double>(derivations);
  state.counters["idb_tuples"] = static_cast<double>(IdbTuples(view));
  state.counters["agree"] = IdbAgrees(view) ? 1.0 : 0.0;
}

void BM_TwoStepStreamCounting(benchmark::State& state) {
  RunTwoStepStream(state, /*force_scratch=*/false);
}
BENCHMARK(BM_TwoStepStreamCounting)->Arg(64)->Arg(256)->Arg(512);

void BM_TwoStepStreamScratch(benchmark::State& state) {
  RunTwoStepStream(state, /*force_scratch=*/true);
}
BENCHMARK(BM_TwoStepStreamScratch)->Arg(64)->Arg(256)->Arg(512);

// --- Bounded-UCQ crossover sweep. ---
//
// Fixed 96-element base, batch size B swept across the Args. The same
// two-step program is maintained twice: once with the boundedness probe
// on (the planner picks bounded-ucq — stage-UCQ re-evaluation, cost
// independent of B) and once with it off (counting — cost grows with
// B). Small B favors counting, large B favors bounded-ucq; the measured
// crossover is the pair of adjacent rows where the faster column flips,
// recorded in EXPERIMENTS.md.
constexpr int kCrossoverUniverse = 96;

// B distinct edges absent from the base graph, chosen deterministically.
std::vector<std::pair<int, int>> AbsentEdges(const Structure& base, int count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::set<std::pair<int, int>> picked;
  const int n = base.UniverseSize();
  while (static_cast<int>(picked.size()) < count) {
    const int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    const int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    if (a == b || a == 0) continue;  // (0, *) is the stream pair's reserve
    if (base.HasTuple(0, {a, b})) continue;
    picked.insert({a, b});
  }
  return {picked.begin(), picked.end()};
}

void RunCrossoverBatch(benchmark::State& state, int max_bounded_stage) {
  const int batch = static_cast<int>(state.range(0));
  const Structure base =
      RandomDigraph(kCrossoverUniverse, /*seed=*/0x5eed0018);
  const std::vector<std::pair<int, int>> fresh =
      AbsentEdges(base, batch, /*seed=*/0xc305507e);
  MaterializedViewOptions options;
  options.max_bounded_stage = max_bounded_stage;
  MaterializedView view(DatalogProgram::TwoStepReachability(), base, options);
  StructureDelta insert;
  StructureDelta remove;
  for (const auto& [a, b] : fresh) {
    insert.InsertTuple(0, {a, b});
    remove.RemoveTuple(0, {a, b});
  }
  ViewMaintenanceStats last;
  for (auto _ : state) {
    view.Apply(insert);
    last = view.Apply(remove);
    benchmark::DoNotOptimize(view.Idb());
  }
  state.SetLabel(last.plan.Summary());
  state.counters["delta_tuples"] = static_cast<double>(batch);
  state.counters["bounded"] = view.Bounded() ? 1.0 : 0.0;
  state.counters["idb_tuples"] = static_cast<double>(IdbTuples(view));
  state.counters["agree"] = IdbAgrees(view) ? 1.0 : 0.0;
}

void BM_CrossoverBoundedUcq(benchmark::State& state) {
  RunCrossoverBatch(state, /*max_bounded_stage=*/2);
}
BENCHMARK(BM_CrossoverBoundedUcq)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CrossoverCounting(benchmark::State& state) {
  RunCrossoverBatch(state, /*max_bounded_stage=*/0);
}
BENCHMARK(BM_CrossoverCounting)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
