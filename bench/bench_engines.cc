// E14 — Engine baselines: arc-consistency vs naive homomorphism search,
// exact vs heuristic treewidth, and core computation cost. These ablate
// the design choices DESIGN.md calls out (the solver architecture is the
// substrate every theorem-level experiment stands on).

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "graph/builders.h"
#include "cq/decomposed_eval.h"
#include "engine/plan.h"
#include "engine/problem.h"
#include "hom/core.h"
#include "hom/homomorphism.h"
#include "structure/gaifman.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"
#include "tw/tree_decomposition.h"

namespace hompres {
namespace {

// Hard coloring (homomorphism) instances: iterated Mycielski graphs are
// triangle-free with chromatic number rising by one per level, so
// "level-L Mycielskian -> K_{L+1}" is unsatisfiable and forces real
// search. Level 1 = C5 (Mycielskian of K2), level 2 = the Grötzsch graph
// (11 vertices), level 3 = 23 vertices.
Structure MycielskiInstance(int level) {
  Graph g = CompleteGraph(2);
  for (int i = 0; i < level; ++i) g = MycielskiGraph(g);
  return UndirectedGraphStructure(g);
}

// Labels the row with the engine's plan summary for the query the
// benchmark body runs; --json emits the label as the "plan" field, and
// bench/check_regression.py flags rows whose summary changed.
void LabelPlan(benchmark::State& state, const Structure& a,
               const Structure& b, HomQueryMode mode,
               const HomOptions& options = {}) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = mode;
  const PlanResult planned =
      PlanHomQuery(problem, options.ToEngineConfig(), PlanMode::kCompat);
  state.SetLabel(planned.plan->Summary());
}

void BM_HomomorphismWithAC(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  Structure a = MycielskiInstance(level);
  // chi = level + 2, so level+1 colors are not enough: unsatisfiable.
  Structure target = UndirectedGraphStructure(CompleteGraph(level + 1));
  bool sat = true;
  for (auto _ : state) {
    auto h = FindHomomorphism(a, target);
    sat = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["satisfiable"] = sat ? 1.0 : 0.0;
  LabelPlan(state, a, target, HomQueryMode::kFind);
}

BENCHMARK(BM_HomomorphismWithAC)->Arg(1)->Arg(2)->Arg(3);

void BM_HomomorphismNaive(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  Structure a = MycielskiInstance(level);
  Structure target = UndirectedGraphStructure(CompleteGraph(level + 1));
  HomOptions naive;
  naive.use_arc_consistency = false;
  bool sat = true;
  for (auto _ : state) {
    auto h = FindHomomorphism(a, target, naive);
    sat = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["satisfiable"] = sat ? 1.0 : 0.0;
  LabelPlan(state, a, target, HomQueryMode::kFind, naive);
}

BENCHMARK(BM_HomomorphismNaive)->Arg(1)->Arg(2)->Iterations(3);

// Serial vs parallel engine on the same adversarial family. Args are
// {level, threads}; threads = 0 is the serial engine, so comparing rows
// with equal level gives the parallel speedup (expect ~linear scaling up
// to the core count on the unsatisfiable instances: the subtree tasks
// partition the search space with little overlap).
void BM_HomomorphismParallel(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  Structure a = MycielskiInstance(level);
  Structure target = UndirectedGraphStructure(CompleteGraph(level + 1));
  HomOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  bool sat = true;
  for (auto _ : state) {
    auto h = FindHomomorphism(a, target, options);
    sat = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["satisfiable"] = sat ? 1.0 : 0.0;
  state.counters["threads"] = static_cast<double>(options.num_threads);
  LabelPlan(state, a, target, HomQueryMode::kFind, options);
}

BENCHMARK(BM_HomomorphismParallel)
    ->Args({2, 0})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({3, 0})
    ->Args({3, 2})
    ->Args({3, 4});

// Core computation with parallel retraction searches; rows with equal n
// compare the serial (threads = 0) and fanned-out candidate checks.
void BM_CoreComputationParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Structure b = UndirectedGraphStructure(BicycleGraph(n));
  for (auto _ : state) {
    Structure core = ComputeCore(b, threads);
    benchmark::DoNotOptimize(core);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

BENCHMARK(BM_CoreComputationParallel)
    ->Args({9, 0})
    ->Args({9, 2})
    ->Args({9, 4});

void BM_ExactTreewidth(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  Graph g = RandomGraph(n, 0.3, rng);
  int tw = 0;
  for (auto _ : state) {
    tw = ExactTreewidth(g);
    benchmark::DoNotOptimize(tw);
  }
  state.counters["treewidth"] = static_cast<double>(tw);
}

BENCHMARK(BM_ExactTreewidth)->Arg(8)->Arg(12)->Arg(16);

void BM_HeuristicTreewidth(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  Graph g = RandomGraph(n, 0.3, rng);
  int width = 0;
  for (auto _ : state) {
    width = TreewidthUpperBound(g);
    benchmark::DoNotOptimize(width);
  }
  state.counters["heuristic_width"] = static_cast<double>(width);
  state.counters["exact_width"] =
      n <= 16 ? static_cast<double>(ExactTreewidth(g)) : -1.0;
}

BENCHMARK(BM_HeuristicTreewidth)->Arg(8)->Arg(16)->Arg(32);

void BM_CoreComputation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Structure b = UndirectedGraphStructure(BicycleGraph(n));
  for (auto _ : state) {
    Structure core = ComputeCore(b);
    benchmark::DoNotOptimize(core);
  }
}

BENCHMARK(BM_CoreComputation)->Arg(5)->Arg(7)->Arg(9);

// Bounded-treewidth DP evaluation (Dechter-Pearl) vs the generic
// backtracking solver on long path queries: the DP's |B|^{w+1} bound is
// the tractability result the paper's introduction cites.
void BM_PathQueryViaTreewidthDp(benchmark::State& state) {
  const int query_length = static_cast<int>(state.range(0));
  const int target_size = static_cast<int>(state.range(1));
  ConjunctiveQuery q = ConjunctiveQuery::BooleanQueryOf(
      DirectedPathStructure(query_length));
  Rng rng(41);
  Structure b =
      RandomStructure(GraphVocabulary(), target_size, 3 * target_size, rng);
  const TreeDecomposition td =
      ExactTreeDecomposition(GaifmanGraph(q.Canonical()));
  bool result = false;
  for (auto _ : state) {
    result = SatisfiedByTreewidthDp(q, b, td);
    benchmark::DoNotOptimize(result);
  }
  state.counters["satisfied"] = result ? 1.0 : 0.0;
}

BENCHMARK(BM_PathQueryViaTreewidthDp)
    ->Args({8, 10})
    ->Args({8, 20})
    ->Args({16, 20});

void BM_PathQueryViaSolver(benchmark::State& state) {
  const int query_length = static_cast<int>(state.range(0));
  const int target_size = static_cast<int>(state.range(1));
  ConjunctiveQuery q = ConjunctiveQuery::BooleanQueryOf(
      DirectedPathStructure(query_length));
  Rng rng(41);
  Structure b =
      RandomStructure(GraphVocabulary(), target_size, 3 * target_size, rng);
  bool result = false;
  for (auto _ : state) {
    result = q.SatisfiedBy(b);
    benchmark::DoNotOptimize(result);
  }
  state.counters["satisfied"] = result ? 1.0 : 0.0;
}

BENCHMARK(BM_PathQueryViaSolver)
    ->Args({8, 10})
    ->Args({8, 20})
    ->Args({16, 20});

// Index-aware vs pure-scan AC-3 propagation: counting embeddings of a
// short directed path in a large sparse random digraph. Propagation
// dominates here, and each revision touches only the inverted list of
// the one bound endpoint instead of scanning every edge, so rows with
// equal target size give the index speedup (counts are identical by
// construction).
void RunPathCountEngines(benchmark::State& state, bool use_index) {
  const int target_size = static_cast<int>(state.range(0));
  Structure path = DirectedPathStructure(5);
  Rng rng(47);
  Structure b =
      RandomStructure(GraphVocabulary(), target_size, 4 * target_size, rng);
  HomOptions options;
  options.use_index = use_index;
  uint64_t count = 0;
  for (auto _ : state) {
    count = CountHomomorphisms(path, b, /*limit=*/0, options);
    benchmark::DoNotOptimize(count);
  }
  state.counters["hom_count"] = static_cast<double>(count);
  LabelPlan(state, path, b, HomQueryMode::kCount, options);
}

void BM_PathCountIndexed(benchmark::State& state) {
  RunPathCountEngines(state, /*use_index=*/true);
}

// The 1024-element target puts 16 words in every domain row, so the AC-3
// revisions run on the dispatched SIMD kernels; the smaller rows stay on
// the inline scalar path and preserve the historical baseline. The scan
// ablation skips 1024: without the index (and hence without the bitwise
// adjacency rows) each revision rescans all ~3n tuples and a single
// iteration takes tens of seconds.
BENCHMARK(BM_PathCountIndexed)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);

void BM_PathCountScan(benchmark::State& state) {
  RunPathCountEngines(state, /*use_index=*/false);
}

BENCHMARK(BM_PathCountScan)->Arg(64)->Arg(128)->Arg(256);

void BM_HomomorphismCounting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Structure cycle = UndirectedGraphStructure(CycleGraph(5));
  Structure target = UndirectedGraphStructure(CompleteGraph(n));
  uint64_t count = 0;
  for (auto _ : state) {
    count = CountHomomorphisms(cycle, target);
    benchmark::DoNotOptimize(count);
  }
  state.counters["hom_count"] = static_cast<double>(count);
  LabelPlan(state, cycle, target, HomQueryMode::kCount);
}

BENCHMARK(BM_HomomorphismCounting)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
