// E15 — Theorem 3.2, measured: the minimal models of a FIRST-ORDER query
// preserved under homomorphisms cannot contain large d-scattered sets
// (even after removing s elements). The contrapositive is visible in
// data: transitive-closure reachability — hom-preserved but NOT
// first-order — has the directed paths P_n as minimal models, whose
// 1-scattered sets grow without bound; every FO UCQ's minimal models
// have a fixed, small scatter profile. This bench also covers the
// Section 8 Łoś-Tarski pipeline (preservation under extensions).

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "core/classes.h"
#include "core/density.h"
#include "core/extension_preservation.h"
#include "core/minimal_models.h"
#include "cq/cq.h"
#include "fo/parser.h"
#include "structure/gaifman.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

void BM_FoQueryMinimalModelProfile(benchmark::State& state) {
  // UCQ "path of length L": its minimal models are tiny (loop + small
  // quotients), so the scatter profile is a constant.
  const int length = static_cast<int>(state.range(0));
  UnionOfCq q({ConjunctiveQuery::BooleanQueryOf(
      DirectedPathStructure(length + 1))});
  int max_profile = 0;
  for (auto _ : state) {
    const auto models = MinimalModelsOfUcq(q, AllStructuresClass());
    max_profile = 0;
    for (const Structure& m : models) {
      max_profile =
          std::max(max_profile, StructureScatterProfile(m, /*s=*/1,
                                                        /*d=*/1));
    }
    benchmark::DoNotOptimize(models);
  }
  state.counters["max_scatter_profile"] =
      static_cast<double>(max_profile);
}

BENCHMARK(BM_FoQueryMinimalModelProfile)->Arg(2)->Arg(3)->Arg(4);

void BM_TransitiveClosureMinimalModelProfile(benchmark::State& state) {
  // The Boolean query "b is reachable from a" (pointed via plebian-style
  // encoding is overkill here): take the unpointed "there is a path of
  // length exactly n" family — its minimal model P_n grows, and so does
  // the scatter profile, certifying via Theorem 3.2 that the union over
  // all n (i.e. reachability / TC) is not first-order.
  const int n = static_cast<int>(state.range(0));
  Structure path = DirectedPathStructure(n);
  int profile = 0;
  for (auto _ : state) {
    profile = StructureScatterProfile(path, /*s=*/1, /*d=*/1);
    benchmark::DoNotOptimize(profile);
  }
  state.counters["scatter_profile_of_Pn"] = static_cast<double>(profile);
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(BM_TransitiveClosureMinimalModelProfile)
    ->Arg(6)
    ->Arg(12)
    ->Arg(18);

void BM_LosTarskiPipeline(benchmark::State& state) {
  // Section 8: the extension-preservation pipeline on a preserved
  // sentence (0) and a non-preserved one (1).
  const bool preserved = state.range(0) == 0;
  const FormulaPtr sentence =
      *ParseFormula(preserved ? "exists x E(x,x)" : "forall x E(x,x)");
  ExtensionPreservationResult result;
  for (auto _ : state) {
    result = ExtensionPreservationPipeline(sentence, GraphVocabulary(),
                                           AllStructuresClass(), 2, 3);
    benchmark::DoNotOptimize(result);
  }
  state.counters["verified"] = result.verified ? 1.0 : 0.0;
  state.counters["minimal_models"] =
      static_cast<double>(result.minimal_models.size());
}

BENCHMARK(BM_LosTarskiPipeline)->Arg(0)->Arg(1);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
