#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

    bench/check_regression.py <baseline.json> <current.json> [--threshold=3.0]

Both inputs are run_all.sh aggregates: a JSON array of rows, each with a
"bench" (binary) and "name" (benchmark/args) field plus timings. Rows are
matched on (bench, name); rows present on only one side are reported but
never fail the gate (benchmarks come and go across PRs).

A shared row fails when current real_time exceeds baseline real_time by
more than the threshold factor (default 3x). The threshold is deliberately
loose: CI runners are noisy and the committed baseline was measured on
different hardware, so only order-of-magnitude blowups — an accidentally
quadratic kernel, a lost index — should trip it. Exit status: 0 clean,
1 regression detected, 2 usage/parse error.

Timings are only compared like-for-like on ISA: every row carries a
"simd" field (the dispatched bitset64 kernel level — scalar, avx2 or
avx512), and a shared row whose baseline and current levels differ is
skipped with a note instead of silently gating an AVX run against a
scalar baseline (or vice versa). Rows from baselines old enough to lack
the field are compared as before.

Rows stamped with a "plan" field (the engine's HomPlan::Summary()) are
additionally diffed: a changed kernel=, simd=, or components= token is
printed as a PLAN CHANGE warning. Plan changes are informational, never
fatal — they explain timing shifts (a query that stopped factorizing, a
kernel swap) rather than gate them.

The exception is the "degraded=" token: the engine stamps it only when a
run fell down the degradation ladder (index -> scan, parallel -> serial,
...; see DESIGN.md §4.6). A current row carrying a degraded kind absent
from its baseline row means the bench silently measured a fallback path
— for example, an index build failing on the runner — so it fails the
gate like a timing regression does.
"""

import json
import sys


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(rows, list):
        print(f"error: {path}: expected a JSON array of rows", file=sys.stderr)
        sys.exit(2)
    table = {}
    plans = {}
    simd = {}
    for row in rows:
        key = (row.get("bench", "?"), row.get("name", "?"))
        time = row.get("real_time_ns")
        if isinstance(time, (int, float)) and time > 0:
            table[key] = float(time)
        plan = row.get("plan")
        if isinstance(plan, str) and plan:
            plans[key] = plan
        level = row.get("simd")
        if isinstance(level, str) and level:
            simd[key] = level
    return table, plans, simd


def plan_tokens(summary):
    """The dispatch-relevant tokens of a plan summary, as a dict."""
    tokens = {}
    for part in summary.split():
        if "=" in part:
            name, _, value = part.partition("=")
            if name in ("kernel", "components", "strategy", "simd"):
                tokens[name] = value
    return tokens


def degraded_kinds(summary):
    """The degradation kinds of a plan summary ("degraded=a+b"), as a set."""
    for part in summary.split():
        if part.startswith("degraded="):
            return set(part[len("degraded="):].split("+")) - {""}
    return set()


def main(argv):
    threshold = 3.0
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2

    baseline, base_plans, base_simd = load_rows(paths[0])
    current, cur_plans, cur_simd = load_rows(paths[1])
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no shared (bench, name) rows to compare", file=sys.stderr)
        return 2

    only_base = len(set(baseline) - set(current))
    only_cur = len(set(current) - set(baseline))
    if only_base or only_cur:
        print(f"note: {only_base} baseline-only and {only_cur} current-only "
              "rows skipped", file=sys.stderr)

    # Like-for-like ISA: timings from different dispatched SIMD levels are
    # not comparable (that difference is the point of the dispatch), so
    # mismatched rows sit out the timing gate. Rows lacking the field on
    # either side (pre-simd baselines) are compared as before.
    isa_skipped = []
    comparable = []
    for key in shared:
        b_level = base_simd.get(key)
        c_level = cur_simd.get(key)
        if b_level is not None and c_level is not None and b_level != c_level:
            isa_skipped.append((key, b_level, c_level))
        else:
            comparable.append(key)
    if isa_skipped:
        print(f"note: {len(isa_skipped)} shared row(s) skipped: baseline and "
              "current ran different SIMD levels", file=sys.stderr)
        for (bench, name), b_level, c_level in isa_skipped:
            print(f"ISA MISMATCH  {bench}  {name}  "
                  f"(baseline {b_level}, current {c_level})")

    regressions = []
    for key in comparable:
        ratio = current[key] / baseline[key]
        if ratio > threshold:
            regressions.append((ratio, key))

    # Non-fatal plan diffs: a changed kernel, strategy, or component
    # count explains (or predicts) a timing shift. Unexpected degraded=
    # tokens are fatal: the current run silently measured a fallback.
    plan_changes = 0
    degradations = []
    for key in shared:
        if key not in cur_plans:
            continue
        base_plan = base_plans.get(key, "")
        unexpected = sorted(degraded_kinds(cur_plans[key]) -
                            degraded_kinds(base_plan))
        if unexpected:
            degradations.append((key, unexpected))
        if key not in base_plans:
            continue
        before = plan_tokens(base_plan)
        after = plan_tokens(cur_plans[key])
        changed = sorted(name for name in set(before) | set(after)
                         if before.get(name) != after.get(name))
        if changed:
            plan_changes += 1
            bench, name = key
            detail = ", ".join(
                f"{n}: {before.get(n, '?')} -> {after.get(n, '?')}"
                for n in changed)
            print(f"PLAN CHANGE  {bench}  {name}  ({detail})")

    print(f"compared {len(comparable)} shared rows "
          f"(threshold {threshold:.1f}x on real_time_ns"
          + (f"; {len(isa_skipped)} ISA-mismatched skipped" if isa_skipped
             else "") + ")")
    if plan_changes:
        print(f"{plan_changes} row(s) changed plan (informational)")
    for (bench, name), kinds in degradations:
        print(f"DEGRADED  {bench}  {name}  ({'+'.join(kinds)})")
    if regressions:
        regressions.sort(reverse=True)
        for ratio, (bench, name) in regressions:
            print(f"REGRESSION {ratio:6.2f}x  {bench}  {name}  "
                  f"({baseline[(bench, name)]:.0f}ns -> "
                  f"{current[(bench, name)]:.0f}ns)")
        print(f"{len(regressions)} row(s) regressed beyond {threshold:.1f}x",
              file=sys.stderr)
        return 1
    if degradations:
        print(f"{len(degradations)} row(s) ran degraded with no degraded "
              "baseline (injected or real fault during the bench run)",
              file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
