// E2 — Theorem 3.1: minimal models <=> existential-positive definability.
// Benchmarks minimal-model enumeration for UCQs, the rebuild of the
// equivalent EP sentence, and reports (as counters) the number of minimal
// models and whether the round trip is logically equivalent.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "core/classes.h"
#include "core/minimal_models.h"
#include "cq/cq.h"
#include "structure/generators.h"

namespace hompres {
namespace {

UnionOfCq PathUnion(int max_length) {
  std::vector<ConjunctiveQuery> disjuncts;
  for (int l = 1; l <= max_length; ++l) {
    disjuncts.push_back(
        ConjunctiveQuery::BooleanQueryOf(DirectedPathStructure(l + 1)));
  }
  return UnionOfCq(std::move(disjuncts));
}

void BM_MinimalModelsOfPathUnion(benchmark::State& state) {
  const int max_length = static_cast<int>(state.range(0));
  const UnionOfCq q = PathUnion(max_length);
  const StructureClass all = AllStructuresClass();
  size_t models = 0;
  bool equivalent = true;
  for (auto _ : state) {
    const auto found = MinimalModelsOfUcq(q, all);
    models = found.size();
    equivalent = UcqEquivalent(q, UcqFromMinimalModels(found));
    benchmark::DoNotOptimize(found);
  }
  state.counters["minimal_models"] = static_cast<double>(models);
  state.counters["roundtrip_equivalent"] = equivalent ? 1.0 : 0.0;
}

BENCHMARK(BM_MinimalModelsOfPathUnion)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_MinimalModelsCycleQuery(benchmark::State& state) {
  const int cycle = static_cast<int>(state.range(0));
  UnionOfCq q(
      {ConjunctiveQuery::BooleanQueryOf(DirectedCycleStructure(cycle))});
  const StructureClass all = AllStructuresClass();
  size_t models = 0;
  for (auto _ : state) {
    const auto found = MinimalModelsOfUcq(q, all);
    models = found.size();
    benchmark::DoNotOptimize(found);
  }
  // Minimal models of "contains a hom image of C_n" are the quotient
  // cycles whose length divides n (loops included).
  state.counters["minimal_models"] = static_cast<double>(models);
}

BENCHMARK(BM_MinimalModelsCycleQuery)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_MinimalModelsRestrictedClass(benchmark::State& state) {
  // Same query, smaller class: the loop-free structures of degree <= 2.
  const int length = static_cast<int>(state.range(0));
  UnionOfCq q({ConjunctiveQuery::BooleanQueryOf(
      DirectedPathStructure(length + 1))});
  StructureClass degree2 = BoundedDegreeClass(2);
  size_t models = 0;
  for (auto _ : state) {
    const auto found = MinimalModelsOfUcq(q, degree2);
    models = found.size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["minimal_models"] = static_cast<double>(models);
}

BENCHMARK(BM_MinimalModelsRestrictedClass)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
