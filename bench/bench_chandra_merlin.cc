// E1 — Theorem 2.1 (Chandra-Merlin): hom(A,B) <=> B |= phi_A <=> phi_B
// implies phi_A. Benchmarks the three decision procedures on random
// structures and checks (as a counter) that they agree on every instance.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "cq/cq.h"
#include "hom/homomorphism.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

void BM_ChandraMerlinAgreement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int tuples = static_cast<int>(state.range(1));
  Rng rng(2024);
  long long checked = 0;
  long long agreements = 0;
  for (auto _ : state) {
    Structure a = RandomStructure(GraphVocabulary(), n, tuples, rng);
    Structure b = RandomStructure(GraphVocabulary(), n, tuples, rng);
    const bool hom = HasHomomorphism(a, b);
    // B |= phi_A.
    const bool models =
        ConjunctiveQuery::BooleanQueryOf(a).SatisfiedBy(b);
    // phi_B implies phi_A (containment of the canonical queries).
    const bool implies =
        CqContained(ConjunctiveQuery::BooleanQueryOf(b),
                    ConjunctiveQuery::BooleanQueryOf(a));
    ++checked;
    if (hom == models && models == implies) ++agreements;
    benchmark::DoNotOptimize(hom);
  }
  state.counters["agreement"] =
      checked == 0 ? 1.0 : static_cast<double>(agreements) /
                               static_cast<double>(checked);
}

BENCHMARK(BM_ChandraMerlinAgreement)
    ->Args({4, 5})
    ->Args({6, 8})
    ->Args({8, 12})
    ->Args({10, 16});

void BM_HomomorphismCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Structure a = RandomStructure(GraphVocabulary(), n, 2 * n, rng);
  Structure b = RandomStructure(GraphVocabulary(), n + 2, 3 * n, rng);
  long long yes = 0;
  long long total = 0;
  for (auto _ : state) {
    yes += HasHomomorphism(a, b) ? 1 : 0;
    ++total;
  }
  state.counters["sat_fraction"] =
      static_cast<double>(yes) / static_cast<double>(total);
}

BENCHMARK(BM_HomomorphismCheck)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
