// E17 — the containment-driven UCQ optimizer (src/opt). Benchmarks the
// historical O(n^2) MinimizeUcq scan (reproduced verbatim below as the
// baseline, including its always-on equivalence CHECK) against the
// production OptimizeUcq configuration — the one preservation.cc and
// hompresd run, sound by construction so without the post-hoc verify —
// on generated redundant unions and on real Theorem 3.1 pipeline
// outputs. The `answers` counter is the number
// of satisfied structures on a fixed random panel and must be identical
// between each Legacy/Optimized pair; `agree` is an explicit equivalence
// check of the two minimized unions. `ccache_hit_rate` and the plan
// label's `ccache-hit-rate` token surface how much containment work the
// verdict cache absorbed.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "json_main.h"

#include "base/check.h"
#include "base/rng.h"
#include "core/classes.h"
#include "core/minimal_models.h"
#include "core/preservation.h"
#include "cq/cq.h"
#include "cq/ucq.h"
#include "engine/config.h"
#include "engine/plan.h"
#include "engine/problem.h"
#include "fo/parser.h"
#include "opt/containment_cache.h"
#include "opt/optimizer.h"
#include "structure/generators.h"
#include "structure/structure.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

// The pre-optimizer MinimizeUcq, verbatim: MinimizeCq on every disjunct,
// a full O(n^2) pairwise CqContained scan with no fingerprint dedup,
// prefilter, or verdict memo, and the historical verify check.
UnionOfCq LegacyMinimizeUcq(const UnionOfCq& q) {
  std::vector<ConjunctiveQuery> minimized;
  minimized.reserve(q.Disjuncts().size());
  for (const auto& d : q.Disjuncts()) {
    minimized.push_back(MinimizeCq(d));
  }
  std::vector<bool> keep(minimized.size(), true);
  for (size_t i = 0; i < minimized.size(); ++i) {
    if (!keep[i]) continue;
    for (size_t j = 0; j < minimized.size(); ++j) {
      if (i == j || !keep[j]) continue;
      if (CqContained(minimized[i], minimized[j])) {
        if (!(CqContained(minimized[j], minimized[i]) && i < j)) {
          keep[i] = false;
          break;
        }
      }
    }
  }
  std::vector<ConjunctiveQuery> kept;
  for (size_t i = 0; i < minimized.size(); ++i) {
    if (keep[i]) kept.push_back(std::move(minimized[i]));
  }
  UnionOfCq result(std::move(kept), q.Arity());
  HOMPRES_CHECK(UcqEquivalent(q, result));
  return result;
}

// Renamed copy: same query under a random permutation of the elements.
// Collapsed by the optimizer's fingerprint pass with zero hom searches;
// full minimize-and-scan cost for the legacy baseline.
ConjunctiveQuery RenamedCopy(const ConjunctiveQuery& q, Rng& rng) {
  const Structure& canonical = q.Canonical();
  const int n = canonical.UniverseSize();
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<size_t>(i)],
              perm[rng.Next() % static_cast<uint64_t>(i + 1)]);
  }
  Structure renamed(canonical.GetVocabulary(), n);
  for (int rel = 0; rel < canonical.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : canonical.Tuples(rel)) {
      Tuple image(t.size());
      for (size_t i = 0; i < t.size(); ++i) {
        image[i] = perm[static_cast<size_t>(t[i])];
      }
      renamed.AddTuple(rel, image);
    }
  }
  std::vector<int> free_elements;
  for (int e : q.FreeElements()) {
    free_elements.push_back(perm[static_cast<size_t>(e)]);
  }
  return ConjunctiveQuery(std::move(renamed), std::move(free_elements));
}

// Specialization: the query plus one pendant edge out of element 0. The
// canonical structure includes into it, so the specialization is
// contained in (and pruned in favor of) the original.
ConjunctiveQuery Specialized(const ConjunctiveQuery& q) {
  const Structure& canonical = q.Canonical();
  Structure wider(canonical.GetVocabulary(), canonical.UniverseSize() + 1);
  for (int rel = 0; rel < canonical.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : canonical.Tuples(rel)) wider.AddTuple(rel, t);
  }
  wider.AddTuple(0, {0, canonical.UniverseSize()});
  return ConjunctiveQuery(std::move(wider), q.FreeElements());
}

// A redundant boolean union: `base` random CQs, three renamed
// respellings of each, and a pendant-edge specialization of each — 5x
// the minimal disjunct count, the shape Theorem 3.1 enumeration and
// hand-written unions both produce. The legacy scan pays a full
// MinimizeCq per respelling; the optimizer collapses them for the price
// of a fingerprint.
UnionOfCq RedundantUnion(int base, uint64_t seed) {
  Rng rng(seed);
  std::vector<ConjunctiveQuery> disjuncts;
  for (int i = 0; i < base; ++i) {
    // Loop-free acyclic bases: with loops (or short cycles) present,
    // every core degenerates to the cycle and the workload goes trivial.
    // DAG cores are directed paths of varying length, so per-disjunct
    // minimization does real work for both contenders.
    const int n = 4 + static_cast<int>(rng.Next() % 3);
    const int edges = 4 + static_cast<int>(rng.Next() % 4);
    Structure s(GraphVocabulary(), n);
    for (int e = 0; e < edges; ++e) {
      const int a = static_cast<int>(rng.Next() % static_cast<uint64_t>(n));
      const int b = static_cast<int>(rng.Next() % static_cast<uint64_t>(n));
      if (a == b) continue;
      s.AddTuple(0, {std::min(a, b), std::max(a, b)});
    }
    disjuncts.push_back(ConjunctiveQuery::BooleanQueryOf(std::move(s)));
  }
  for (int i = 0; i < base; ++i) {
    for (int copy = 0; copy < 3; ++copy) {
      disjuncts.push_back(
          RenamedCopy(disjuncts[static_cast<size_t>(i)], rng));
    }
    disjuncts.push_back(Specialized(disjuncts[static_cast<size_t>(i)]));
  }
  return UnionOfCq(std::move(disjuncts), 0);
}

// Fixed panel of evaluation targets for the bit-identical answer counter.
std::vector<Structure> AnswerPanel(uint64_t seed) {
  Rng rng(seed);
  std::vector<Structure> panel;
  for (int i = 0; i < 8; ++i) {
    const int n = 2 + static_cast<int>(rng.Next() % 4);
    const int tuples = 1 + static_cast<int>(rng.Next() % 7);
    panel.push_back(RandomStructure(GraphVocabulary(), n, tuples, rng));
  }
  return panel;
}

int CountSatisfied(const UnionOfCq& q, const std::vector<Structure>& panel) {
  int satisfied = 0;
  for (const Structure& b : panel) {
    if (q.SatisfiedBy(b)) ++satisfied;
  }
  return satisfied;
}

// Stamps the row's plan label with an optimizer-attributed plan summary:
// check_regression.py then records the containment cache hit rate (the
// `ccache-hit-rate` token) alongside the timing.
void LabelWithOptimizerPlan(benchmark::State& state, const UnionOfCq& q) {
  if (q.Disjuncts().empty()) return;
  const Structure& sample = q.Disjuncts().front().Canonical();
  HomProblem problem;
  problem.source = &sample;
  problem.target = &sample;
  problem.mode = HomQueryMode::kHas;
  EngineConfig config;
  config.optimizer = true;
  const PlanResult planned = PlanHomQuery(problem, config, PlanMode::kCompat);
  if (planned.plan.has_value()) state.SetLabel(planned.plan->Summary());
}

void ExportStats(benchmark::State& state, const UnionOfCq& input,
                 const UnionOfCq& output,
                 const std::vector<Structure>& panel) {
  state.counters["input_disjuncts"] =
      static_cast<double>(input.Disjuncts().size());
  state.counters["output_disjuncts"] =
      static_cast<double>(output.Disjuncts().size());
  state.counters["answers"] =
      static_cast<double>(CountSatisfied(output, panel));
  const ContainmentCacheStats ccache = ContainmentCache::Global().Stats();
  state.counters["ccache_hit_rate"] =
      static_cast<double>(ccache.HitRatePercent());
}

void BM_MinimizeRedundantUcqLegacy(benchmark::State& state) {
  const int base = static_cast<int>(state.range(0));
  const UnionOfCq redundant = RedundantUnion(base, 424242);
  const std::vector<Structure> panel = AnswerPanel(171717);
  UnionOfCq minimized({}, 0);
  for (auto _ : state) {
    minimized = LegacyMinimizeUcq(redundant);
    benchmark::DoNotOptimize(minimized);
  }
  ExportStats(state, redundant, minimized, panel);
}
BENCHMARK(BM_MinimizeRedundantUcqLegacy)->Arg(2)->Arg(4)->Arg(8);

void BM_MinimizeRedundantUcqOptimized(benchmark::State& state) {
  const int base = static_cast<int>(state.range(0));
  const UnionOfCq redundant = RedundantUnion(base, 424242);
  const std::vector<Structure> panel = AnswerPanel(171717);
  UnionOfCq minimized({}, 0);
  OptimizerStats stats;
  for (auto _ : state) {
    stats = OptimizerStats();
    minimized = OptimizeUcq(redundant, {}, &stats);
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["fingerprint_dedups"] =
      static_cast<double>(stats.fingerprint_dedups);
  state.counters["prefilter_skips"] =
      static_cast<double>(stats.prefilter_skips);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["containment_tests"] =
      static_cast<double>(stats.containment_tests);
  // The optimized union answers exactly as the legacy one (checked as a
  // counter, not an assertion, so a regression shows up in the JSON).
  const UnionOfCq legacy = LegacyMinimizeUcq(redundant);
  state.counters["agree"] =
      (UcqEquivalent(minimized, legacy) &&
       CountSatisfied(minimized, panel) == CountSatisfied(legacy, panel))
          ? 1.0
          : 0.0;
  ExportStats(state, redundant, minimized, panel);
  LabelWithOptimizerPlan(state, minimized);
}
BENCHMARK(BM_MinimizeRedundantUcqOptimized)->Arg(2)->Arg(4)->Arg(8);

// --- Real Theorem 3.1 outputs. ---

FormulaPtr Parse(const std::string& text) {
  auto f = ParseFormula(text);
  return *f;
}

// The raw (unoptimized) Theorem 3.1 unions of six preserved sentences,
// each run on three structure classes, concatenated: minimal-model
// canonical queries are frequently hom-comparable across (and even
// within) runs — the loop model subsumes under every other disjunct,
// the single-edge model recurs in every class — so this is the
// redundancy profile the preservation pipeline and hompresd's
// cross-request unions hand the optimizer in production.
UnionOfCq Theorem31RawUnion() {
  const char* kSentences[] = {
      "exists x exists y E(x,y) | exists x E(x,x)",
      "exists x exists y (E(x,y) & E(y,x)) | exists x E(x,x)",
      "exists x exists y exists z (E(x,y) & E(y,z)) | "
      "exists x exists y (E(x,y) & E(y,x))",
      "exists w exists x exists y exists z (E(w,x) & E(x,y) & E(y,z))",
      "exists x exists y exists z (E(x,y) & E(x,z) & E(y,z)) | "
      "exists x exists y exists z (E(x,y) & E(y,z) & E(z,x))",
      "exists x exists y exists z (E(x,y) & E(y,z)) | "
      "exists x exists y exists z (E(y,x) & E(y,z)) | "
      "exists x exists y exists z (E(x,y) & E(z,y))",
  };
  const std::vector<StructureClass> classes = {
      AllStructuresClass(), BoundedDegreeClass(2), BoundedTreewidthClass(2)};
  std::vector<ConjunctiveQuery> disjuncts;
  for (const char* sentence : kSentences) {
    // The walk-of-length-3 sentence gets the deeper model search: its
    // 4-element minimal models (directed paths and their foldings) are
    // the expensive-to-minimize disjuncts of the profile.
    const bool deep = std::string(sentence).find("E(w,x)") != std::string::npos;
    for (const StructureClass& c : classes) {
      const PreservationResult result = PreservationPipeline(
          Parse(sentence), GraphVocabulary(), c,
          /*search_universe=*/deep ? 4 : 3, /*verify_universe=*/2);
      const UnionOfCq raw = UcqFromMinimalModels(result.minimal_models);
      for (const auto& d : raw.Disjuncts()) disjuncts.push_back(d);
    }
  }
  return UnionOfCq(std::move(disjuncts), 0);
}

void BM_MinimizeTheorem31UcqLegacy(benchmark::State& state) {
  const UnionOfCq raw = Theorem31RawUnion();
  const std::vector<Structure> panel = AnswerPanel(171717);
  UnionOfCq minimized({}, 0);
  for (auto _ : state) {
    minimized = LegacyMinimizeUcq(raw);
    benchmark::DoNotOptimize(minimized);
  }
  ExportStats(state, raw, minimized, panel);
}
BENCHMARK(BM_MinimizeTheorem31UcqLegacy);

void BM_MinimizeTheorem31UcqOptimized(benchmark::State& state) {
  const UnionOfCq raw = Theorem31RawUnion();
  const std::vector<Structure> panel = AnswerPanel(171717);
  UnionOfCq minimized({}, 0);
  OptimizerStats stats;
  for (auto _ : state) {
    stats = OptimizerStats();
    minimized = OptimizeUcq(raw, {}, &stats);
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["fingerprint_dedups"] =
      static_cast<double>(stats.fingerprint_dedups);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["containment_tests"] =
      static_cast<double>(stats.containment_tests);
  const UnionOfCq legacy = LegacyMinimizeUcq(raw);
  state.counters["agree"] =
      (UcqEquivalent(minimized, legacy) &&
       CountSatisfied(minimized, panel) == CountSatisfied(legacy, panel))
          ? 1.0
          : 0.0;
  ExportStats(state, raw, minimized, panel);
  LabelWithOptimizerPlan(state, minimized);
}
BENCHMARK(BM_MinimizeTheorem31UcqOptimized);

// --- Component costs: fingerprinting and cached containment. ---

void BM_CqFingerprint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(99);
  const Structure s = RandomStructure(GraphVocabulary(), n, 2 * n, rng);
  const ConjunctiveQuery q = ConjunctiveQuery::BooleanQueryOf(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqFingerprint(q));
  }
}
BENCHMARK(BM_CqFingerprint)->Arg(4)->Arg(8)->Arg(16);

void BM_CqContainedCachedWarm(benchmark::State& state) {
  // Steady-state probe cost once the verdict is memoized: the loop hits
  // the sharded cache on every iteration after the first.
  Rng rng(7);
  const ConjunctiveQuery q1 = ConjunctiveQuery::BooleanQueryOf(
      RandomStructure(GraphVocabulary(), 4, 6, rng));
  const ConjunctiveQuery q2 = ConjunctiveQuery::BooleanQueryOf(
      RandomStructure(GraphVocabulary(), 5, 8, rng));
  bool contained = false;
  for (auto _ : state) {
    contained = CqContainedCached(q1, q2);
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] = contained ? 1.0 : 0.0;
  const ContainmentCacheStats ccache = ContainmentCache::Global().Stats();
  state.counters["ccache_hit_rate"] =
      static_cast<double>(ccache.HitRatePercent());
}
BENCHMARK(BM_CqContainedCachedWarm);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
