// E9 — Section 6.2 core structure: cores of bicycles are K4 (bounded
// degree) while the pointed expansions are their own cores (unbounded
// degree) — the paper's evidence that Theorems 6.5/6.7 do not extend to
// non-Boolean queries via plebian companions. Also benchmarks core
// computation across stock families.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "core/plebian.h"
#include "graph/builders.h"
#include "hom/core.h"
#include "structure/gaifman.h"
#include "structure/generators.h"

namespace hompres {
namespace {

void BM_CoreOfBicycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Structure b = UndirectedGraphStructure(BicycleGraph(n));
  int core_size = 0;
  int core_degree = 0;
  for (auto _ : state) {
    Structure core = ComputeCore(b);
    core_size = core.UniverseSize();
    core_degree = StructureDegree(core);
    benchmark::DoNotOptimize(core);
  }
  state.counters["core_size"] = static_cast<double>(core_size);      // 4
  state.counters["core_degree"] = static_cast<double>(core_degree);  // 3
  state.counters["structure_degree"] =
      static_cast<double>(StructureDegree(b));  // n (unbounded)
}

BENCHMARK(BM_CoreOfBicycle)->Arg(5)->Arg(7)->Arg(9);

void BM_CoreOfBipartite(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Structure g = UndirectedGraphStructure(GridGraph(3, side));
  int core_size = 0;
  for (auto _ : state) {
    Structure core = ComputeCore(g);
    core_size = core.UniverseSize();
    benchmark::DoNotOptimize(core);
  }
  state.counters["core_size"] = static_cast<double>(core_size);  // 2 (K2)
}

BENCHMARK(BM_CoreOfBipartite)->Arg(3)->Arg(4)->Arg(5);

void BM_OddWheelIsCore(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Structure w = UndirectedGraphStructure(WheelGraph(n));
  bool is_core = false;
  for (auto _ : state) {
    is_core = IsCore(w);
    benchmark::DoNotOptimize(is_core);
  }
  // Odd wheels (odd rim length) are cores; even wheels collapse to K3...
  // n odd => W_n is a core.
  state.counters["is_core"] = is_core ? 1.0 : 0.0;
  state.counters["rim_odd"] = (n % 2 == 1) ? 1.0 : 0.0;
}

BENCHMARK(BM_OddWheelIsCore)->Arg(5)->Arg(6)->Arg(7)->Arg(8);

void BM_PointedBicycleCoreDegree(benchmark::State& state) {
  // The Section 6.2 counterexample through the plebian lens: expanding a
  // bicycle with its hub as a constant produces a companion whose core
  // retains the high-degree rim.
  const int n = static_cast<int>(state.range(0));
  Structure b = UndirectedGraphStructure(BicycleGraph(n));
  PointedStructure pointed{b, {0}};  // hub
  int companion_core_degree = 0;
  for (auto _ : state) {
    Structure companion = PlebianCompanion(pointed);
    Structure core = ComputeCore(companion);
    companion_core_degree = StructureDegree(core);
    benchmark::DoNotOptimize(core);
  }
  // Unpointed core degree is 3 (K4); the pointed companion's core keeps
  // the wheel's rim structure, so its degree grows with n.
  state.counters["companion_core_degree"] =
      static_cast<double>(companion_core_degree);
  state.counters["unpointed_core_degree"] = 3.0;
}

BENCHMARK(BM_PointedBicycleCoreDegree)->Arg(5)->Arg(7)->Arg(9);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
