// E10 + E12 — Theorem 7.1 and the Ajtai-Gurevich Theorem (7.5): Datalog
// stage unfolding into CQ^k disjunctions, naive vs semi-naive evaluation,
// and boundedness detection (bounded programs stabilize their stage
// formulas; transitive closure never does).

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/stages.h"
#include "structure/generators.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

void BM_TransitiveClosureNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  Structure p = DirectedPathStructure(n);
  DatalogResult result;
  for (auto _ : state) {
    result = EvaluateNaive(tc, p);
    benchmark::DoNotOptimize(result);
  }
  state.counters["stages"] = static_cast<double>(result.stages);
  state.counters["derivations"] =
      static_cast<double>(result.derivations);
}

BENCHMARK(BM_TransitiveClosureNaive)->Arg(8)->Arg(16)->Arg(32);

void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  Structure p = DirectedPathStructure(n);
  DatalogResult result;
  for (auto _ : state) {
    result = EvaluateSemiNaive(tc, p);
    benchmark::DoNotOptimize(result);
  }
  state.counters["stages"] = static_cast<double>(result.stages);
  state.counters["derivations"] =
      static_cast<double>(result.derivations);
}

BENCHMARK(BM_TransitiveClosureSemiNaive)->Arg(8)->Arg(16)->Arg(32);

// Indexed (compiled rules + bound-prefix lookups) vs pure-scan semi-naive
// evaluation on transitive closure over random sparse digraphs. Rows with
// equal n give the index speedup; both engines reach the identical
// fixpoint (the `facts` counter), the scan just enumerates the full
// E x T cross product per round where the indexed join binds z.
void RunTransitiveClosureEngines(benchmark::State& state, bool use_index) {
  const int n = static_cast<int>(state.range(0));
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  Rng rng(7);
  Structure g = RandomStructure(GraphVocabulary(), n, 3 * n, rng);
  DatalogEvalOptions options;
  options.use_index = use_index;
  DatalogResult result;
  for (auto _ : state) {
    result = EvaluateSemiNaive(tc, g, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["facts"] = static_cast<double>(result.idb[0].size());
  state.counters["derivations"] = static_cast<double>(result.derivations);
}

void BM_TransitiveClosureIndexed(benchmark::State& state) {
  RunTransitiveClosureEngines(state, /*use_index=*/true);
}

BENCHMARK(BM_TransitiveClosureIndexed)->Arg(32)->Arg(64)->Arg(128);

void BM_TransitiveClosureScan(benchmark::State& state) {
  RunTransitiveClosureEngines(state, /*use_index=*/false);
}

BENCHMARK(BM_TransitiveClosureScan)->Arg(32)->Arg(64)->Arg(128);

void BM_StageUnfolding(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  size_t disjuncts = 0;
  for (auto _ : state) {
    UnionOfCq theta = StageUcq(tc, 0, m);
    disjuncts = theta.Disjuncts().size();
    benchmark::DoNotOptimize(theta);
  }
  // Theorem 7.1: stage m of TC is the union of the m path queries.
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}

BENCHMARK(BM_StageUnfolding)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_StageFormulaMatchesOperator(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  Rng rng(3);
  long long checked = 0;
  long long agreements = 0;
  UnionOfCq theta = StageUcq(tc, 0, m);
  for (auto _ : state) {
    Structure edb = RandomStructure(GraphVocabulary(), 4, 6, rng);
    const auto stage = Stage(tc, edb, m)[0];
    const auto answers = theta.Evaluate(edb);
    ++checked;
    if (std::set<Tuple>(answers.begin(), answers.end()) == stage) {
      ++agreements;
    }
  }
  state.counters["agreement"] =
      static_cast<double>(agreements) / static_cast<double>(checked);
}

BENCHMARK(BM_StageFormulaMatchesOperator)->Arg(1)->Arg(2)->Arg(3);

void BM_BoundednessWitnessSearch(benchmark::State& state) {
  // Ajtai-Gurevich probe on three programs: unbounded TC (no witness),
  // non-recursive 2-step reachability (witness at 1), and a vacuously
  // recursive bounded program (witness at 1).
  const int which = static_cast<int>(state.range(0));
  DatalogProgram program =
      which == 0 ? DatalogProgram::TransitiveClosure()
                 : (which == 1
                        ? DatalogProgram::TwoStepReachability()
                        : DatalogProgram(
                              GraphVocabulary(),
                              {DatalogRule{{"S", {"x"}}, {{"E", {"x", "x"}}}},
                               DatalogRule{{"S", {"x"}},
                                           {{"E", {"x", "x"}},
                                            {"S", {"x"}}}}}));
  std::optional<int> witness;
  for (auto _ : state) {
    witness = FindBoundednessWitness(program, 0, 4);
    benchmark::DoNotOptimize(witness);
  }
  state.counters["bounded"] = witness.has_value() ? 1.0 : 0.0;
  state.counters["witness_stage"] =
      witness.has_value() ? static_cast<double>(*witness) : -1.0;
}

BENCHMARK(BM_BoundednessWitnessSearch)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
