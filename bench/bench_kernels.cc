// Kernel-level microbenchmarks for the dispatched bitset64 word kernels
// (base/simd.h): GB/s and ns/op per ISA per width, so a kernel
// regression (a lost vector path, a tail loop gone quadratic) is caught
// here independently of the end-to-end solver noise.
//
// Benchmarks are registered dynamically, one family per SIMD level the
// host actually supports (a CI runner without AVX-512 simply has no
// avx512 rows — check_regression.py treats one-sided rows as
// informational). Each family covers lane-aligned widths and ragged
// tails (widths one word past a lane boundary), because the tail words
// run the scalar epilogue inside the SIMD kernels. Names look like
//
//   BM_Kernel/intersect/avx2/65536
//
// and every row carries a gib_per_s counter (bytes the kernel touched,
// not bytes of useful output).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "json_main.h"

#include "base/bitset64.h"
#include "base/rng.h"
#include "base/row_pool.h"
#include "base/simd.h"

namespace hompres {
namespace {

using simd::SimdKernels;
using simd::SimdLevel;

// Widths in bits: one sub-lane width, lane-aligned widths across the
// cache hierarchy (L1-resident to L2/L3), and ragged widths straddling a
// 512-bit lane boundary by one word (the tail the scalar epilogue eats).
constexpr int kWidths[] = {256, 4096, 4159, 65536, 65599, 1048576};

std::vector<uint64_t> RandomWords(int bits, uint64_t seed) {
  Rng rng(seed);
  const int words = bitset64::WordsFor(bits);
  std::vector<uint64_t> out(static_cast<size_t>(words), 0);
  for (int w = 0; w < words; ++w) {
    out[static_cast<size_t>(w)] =
        rng.Next() & rng.Next();  // ~1/4 density, like narrowed domains
  }
  if (bits & 63) {
    out[static_cast<size_t>(words - 1)] &=
        (uint64_t{1} << (bits & 63)) - 1;  // tail-zero invariant
  }
  return out;
}

// Copies `src` into a 64-byte-aligned pool, the layout the solver row
// pools guarantee.
void FillAligned(AlignedWordPool& pool, const std::vector<uint64_t>& src) {
  pool.Resize(src.size());
  for (size_t i = 0; i < src.size(); ++i) pool.data()[i] = src[i];
}

void BM_KernelPopcount(benchmark::State& state, SimdLevel level, int bits) {
  const SimdKernels& k = simd::KernelsFor(level);
  const int words = bitset64::WordsFor(bits);
  AlignedWordPool a;
  FillAligned(a, RandomWords(bits, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.popcount(a.data(), words));
  }
  state.counters["gib_per_s"] = benchmark::Counter(
      static_cast<double>(words) * sizeof(uint64_t),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void BM_KernelIntersect(benchmark::State& state, SimdLevel level, int bits) {
  const SimdKernels& k = simd::KernelsFor(level);
  const int words = bitset64::WordsFor(bits);
  AlignedWordPool dst;
  AlignedWordPool src;
  FillAligned(dst, RandomWords(bits, 2));
  FillAligned(src, RandomWords(bits, 3));
  // After the first iteration dst is a fixed point of &= src, so the
  // steady state measures the no-change revision — the solver's common
  // case in the AC-3 fixpoint loop.
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.intersect_in_place(dst.data(), src.data(),
                                                  words));
  }
  state.counters["gib_per_s"] = benchmark::Counter(
      2.0 * static_cast<double>(words) * sizeof(uint64_t),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void BM_KernelUnion(benchmark::State& state, SimdLevel level, int bits) {
  const SimdKernels& k = simd::KernelsFor(level);
  const int words = bitset64::WordsFor(bits);
  AlignedWordPool dst;
  AlignedWordPool src;
  FillAligned(dst, RandomWords(bits, 4));
  FillAligned(src, RandomWords(bits, 5));
  for (auto _ : state) {
    k.union_in_place(dst.data(), src.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  state.counters["gib_per_s"] = benchmark::Counter(
      2.0 * static_cast<double>(words) * sizeof(uint64_t),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void BM_KernelAnySet(benchmark::State& state, SimdLevel level, int bits) {
  const SimdKernels& k = simd::KernelsFor(level);
  const int words = bitset64::WordsFor(bits);
  // All-zero row: the worst case, a full scan (any set bit would
  // short-circuit and measure nothing).
  AlignedWordPool a;
  a.Resize(static_cast<size_t>(words));
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.any_set(a.data(), words));
  }
  state.counters["gib_per_s"] = benchmark::Counter(
      static_cast<double>(words) * sizeof(uint64_t),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void BM_KernelEqual(benchmark::State& state, SimdLevel level, int bits) {
  const SimdKernels& k = simd::KernelsFor(level);
  const int words = bitset64::WordsFor(bits);
  const std::vector<uint64_t> init = RandomWords(bits, 6);
  AlignedWordPool a;
  AlignedWordPool b;
  FillAligned(a, init);
  FillAligned(b, init);  // equal rows: full-scan worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.equal(a.data(), b.data(), words));
  }
  state.counters["gib_per_s"] = benchmark::Counter(
      2.0 * static_cast<double>(words) * sizeof(uint64_t),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void BM_KernelFindAll(benchmark::State& state, SimdLevel level, int bits) {
  const SimdKernels& k = simd::KernelsFor(level);
  const int words = bitset64::WordsFor(bits);
  // Sparse row (~1/256 density): the find loop spends its time skipping
  // zero words, which is where the wide any-nonzero probes pay off.
  Rng rng(7);
  AlignedWordPool a;
  a.Resize(static_cast<size_t>(words));
  for (int i = 0; i < bits / 256 + 1; ++i) {
    bitset64::Set(a.data(), static_cast<int>(rng.Next() %
                                             static_cast<uint64_t>(bits)));
  }
  int64_t visited = 0;
  for (auto _ : state) {
    for (int bit = k.find_first(a.data(), words); bit >= 0;
         bit = k.find_next(a.data(), words, bit)) {
      ++visited;
    }
  }
  benchmark::DoNotOptimize(visited);
  state.counters["gib_per_s"] = benchmark::Counter(
      static_cast<double>(words) * sizeof(uint64_t),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

struct KernelBench {
  const char* name;
  void (*fn)(benchmark::State&, SimdLevel, int);
};

constexpr KernelBench kKernelBenches[] = {
    {"popcount", &BM_KernelPopcount}, {"intersect", &BM_KernelIntersect},
    {"union", &BM_KernelUnion},       {"anyset", &BM_KernelAnySet},
    {"equal", &BM_KernelEqual},       {"findall", &BM_KernelFindAll},
};

// Registered at static-init time (Google Benchmark keeps its registry in
// a function-local static, so ordering is safe): one benchmark per
// (kernel, supported level, width).
int RegisterKernelBenchmarks() {
  const int max_level = static_cast<int>(simd::DetectedSimdLevel());
  for (const KernelBench& kb : kKernelBenches) {
    for (int level = 0; level <= max_level; ++level) {
      const SimdLevel l = static_cast<SimdLevel>(level);
      for (int bits : kWidths) {
        const std::string name = std::string("BM_Kernel/") + kb.name + "/" +
                                 simd::SimdLevelName(l) + "/" +
                                 std::to_string(bits);
        benchmark::RegisterBenchmark(name.c_str(), kb.fn, l, bits);
      }
    }
  }
  return 0;
}

const int kRegistered = RegisterKernelBenchmarks();

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
