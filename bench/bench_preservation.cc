// E8 — Theorems 3.5 / 4.4 / 5.4 end-to-end: a first-order sentence
// preserved under homomorphisms on a restricted class is converted to an
// equivalent union of conjunctive queries via minimal-model enumeration,
// then verified exhaustively on the class up to a size cap.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "core/classes.h"
#include "core/preservation.h"
#include "fo/parser.h"
#include "structure/vocabulary.h"

namespace hompres {
namespace {

FormulaPtr Parse(const std::string& text) {
  auto f = ParseFormula(text);
  return *f;
}

void RunPipeline(benchmark::State& state, const std::string& sentence,
                 const StructureClass& c) {
  const FormulaPtr f = Parse(sentence);
  PreservationResult result{.equivalent_ucq = UnionOfCq({}, 0)};
  for (auto _ : state) {
    result = PreservationPipeline(f, GraphVocabulary(), c,
                                  /*search_universe=*/3,
                                  /*verify_universe=*/3);
    benchmark::DoNotOptimize(result);
  }
  state.counters["minimal_models"] =
      static_cast<double>(result.minimal_models.size());
  state.counters["ucq_disjuncts"] =
      static_cast<double>(result.equivalent_ucq.Disjuncts().size());
  state.counters["verified"] = result.verified ? 1.0 : 0.0;
}

void BM_PreserveEdgeOnBoundedDegree(benchmark::State& state) {
  RunPipeline(state, "exists x exists y E(x,y)", BoundedDegreeClass(2));
}
BENCHMARK(BM_PreserveEdgeOnBoundedDegree);

void BM_PreservePath2OnBoundedTreewidth(benchmark::State& state) {
  RunPipeline(state, "exists x exists y exists z (E(x,y) & E(y,z))",
              BoundedTreewidthClass(2));
}
BENCHMARK(BM_PreservePath2OnBoundedTreewidth);

void BM_PreserveLoopOrEdgePairOnExcludedMinor(benchmark::State& state) {
  RunPipeline(state,
              "exists x E(x,x) | exists x exists y (E(x,y) & E(y,x))",
              ExcludesMinorClass(4));
}
BENCHMARK(BM_PreserveLoopOrEdgePairOnExcludedMinor);

void BM_PreserveOnAllStructures(benchmark::State& state) {
  // Rossman's theorem territory: same pipeline on the unrestricted class.
  RunPipeline(state, "exists x exists y E(x,y)", AllStructuresClass());
}
BENCHMARK(BM_PreserveOnAllStructures);

void BM_PreserveOnCoresBoundedTreewidth(benchmark::State& state) {
  // Theorem 6.6: Boolean preservation on H(T(2)) — the class whose CORES
  // have treewidth < 2 (contains all bipartite structures, unbounded
  // treewidth).
  RunPipeline(state, "exists x exists y (E(x,y) & E(y,x))",
              CoresBoundedTreewidthClass(2));
}
BENCHMARK(BM_PreserveOnCoresBoundedTreewidth);

void BM_NonPreservedSentenceFailsVerification(benchmark::State& state) {
  // Negative control: a sentence not preserved under homomorphisms can
  // never verify (counter must be 0).
  RunPipeline(state, "forall x forall y !E(x,y)", BoundedDegreeClass(2));
}
BENCHMARK(BM_NonPreservedSentenceFailsVerification);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
