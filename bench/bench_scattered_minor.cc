// E7 — Theorem 5.3: large K_k-minor-free graphs contain d-scattered sets
// of size m after removing < k-1 vertices. Runs the staged construction
// (independent neighborhoods -> bipartite contact graph -> Lemma 5.2) on
// planar families and reports the witness shape; the paper bound c^d(m)
// saturates.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "core/lemmas.h"
#include "graph/builders.h"

namespace hompres {
namespace {

void Report(benchmark::State& state,
            const std::optional<ScatteredWitness>& witness) {
  state.counters["witness_found"] = witness.has_value() ? 1.0 : 0.0;
  state.counters["removed"] =
      witness.has_value() ? static_cast<double>(witness->removed.size())
                          : -1.0;
  state.counters["scattered"] =
      witness.has_value()
          ? static_cast<double>(witness->scattered.size())
          : -1.0;
}

void BM_Theorem53OnGrids(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Graph grid = GridGraph(side, side);
  std::optional<ScatteredWitness> witness;
  for (auto _ : state) {
    witness = Theorem53Witness(grid, /*k=*/5, /*d=*/1, /*m=*/3);
    benchmark::DoNotOptimize(witness);
  }
  Report(state, witness);
}

BENCHMARK(BM_Theorem53OnGrids)->Arg(4)->Arg(5)->Arg(6)->Iterations(3);

void BM_Theorem53OnOuterplanar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Graph g = RandomOuterplanarGraph(n, rng);
  std::optional<ScatteredWitness> witness;
  for (auto _ : state) {
    witness = Theorem53Witness(g, /*k=*/4, /*d=*/1, /*m=*/3);
    benchmark::DoNotOptimize(witness);
  }
  Report(state, witness);
}

BENCHMARK(BM_Theorem53OnOuterplanar)->Arg(16)->Arg(32)->Iterations(3);

void BM_Theorem53DeeperScattering(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Graph g = GridGraph(3, 15);
  std::optional<ScatteredWitness> witness;
  for (auto _ : state) {
    witness = Theorem53Witness(g, 5, d, 3);
    benchmark::DoNotOptimize(witness);
  }
  Report(state, witness);
}

BENCHMARK(BM_Theorem53DeeperScattering)->Arg(1)->Arg(2)->Iterations(3);

void BM_Theorem53OnTrees(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  Graph g = RandomTree(n, rng);
  std::optional<ScatteredWitness> witness;
  for (auto _ : state) {
    witness = Theorem53Witness(g, 3, 2, 3);
    benchmark::DoNotOptimize(witness);
  }
  Report(state, witness);
}

BENCHMARK(BM_Theorem53OnTrees)->Arg(30)->Arg(60)->Iterations(3);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
