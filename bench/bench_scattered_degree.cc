// E3 — Lemma 3.4: graphs of degree <= k with enough vertices contain a
// d-scattered set of size m with NO removals. The bench runs the greedy
// ball-packing and reports three numbers per (k, d, m):
//   * success at the paper's literal bound m * k^d — measurably < 1 for
//     small parameters (the Petersen graph is a concrete counterexample
//     at (3,1,3): 10 > 9 vertices, 3-regular, no 1-scattered pair), since
//     the proof's "|N_d| <= k^d" estimate undercounts small balls;
//   * success at the safe ball-packing bound m * (k+1)^{2d} — always 1;
//   * the measured threshold (smallest n where 20/20 random graphs
//     succeed), far below the safe bound.

#include <benchmark/benchmark.h>

#include "json_main.h"

#include "base/rng.h"
#include "core/lemmas.h"
#include "graph/builders.h"
#include "graph/scattered.h"

namespace hompres {
namespace {

double SuccessRate(int n, int k, int d, int m, int trials, uint64_t seed) {
  Rng rng(seed);
  int successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Graph g = RandomBoundedDegreeGraph(n, k, n / 4, rng);
    if (Lemma34ScatteredSet(g, d, m).has_value()) ++successes;
  }
  return static_cast<double>(successes) / static_cast<double>(trials);
}

void BM_Lemma34AtLiteralPaperBound(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int m = static_cast<int>(state.range(2));
  const int n = static_cast<int>(Lemma34Bound(k, d, m)) + 1;
  Rng rng(11);
  long long trials = 0;
  long long successes = 0;
  for (auto _ : state) {
    Graph g = RandomBoundedDegreeGraph(n, k, n / 4, rng);
    ++trials;
    if (Lemma34ScatteredSet(g, d, m).has_value()) ++successes;
  }
  state.counters["literal_bound_N"] =
      static_cast<double>(Lemma34Bound(k, d, m));
  state.counters["success_at_literal_bound"] =
      static_cast<double>(successes) / static_cast<double>(trials);
}

BENCHMARK(BM_Lemma34AtLiteralPaperBound)
    ->Args({3, 1, 3})
    ->Args({3, 2, 3})
    ->Args({4, 1, 4})
    ->Args({3, 2, 5});

void BM_Lemma34AtBallPackingBound(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int m = static_cast<int>(state.range(2));
  const int n = static_cast<int>(Lemma34BallPackingBound(k, d, m)) + 1;
  Rng rng(11);
  long long trials = 0;
  long long successes = 0;
  for (auto _ : state) {
    Graph g = RandomBoundedDegreeGraph(n, k, n / 4, rng);
    ++trials;
    if (Lemma34ScatteredSet(g, d, m).has_value()) ++successes;
  }
  state.counters["safe_bound_N"] =
      static_cast<double>(Lemma34BallPackingBound(k, d, m));
  state.counters["success_at_safe_bound"] =
      static_cast<double>(successes) / static_cast<double>(trials);
}

BENCHMARK(BM_Lemma34AtBallPackingBound)
    ->Args({3, 1, 3})
    ->Args({4, 1, 4})
    ->Args({3, 2, 3});

// Petersen: the concrete counterexample to the literal bound at (3,1,3).
void BM_Lemma34PetersenCounterexample(benchmark::State& state) {
  Graph petersen(10);
  // Outer C5, inner pentagram, spokes.
  for (int i = 0; i < 5; ++i) {
    petersen.AddEdge(i, (i + 1) % 5);
    petersen.AddEdge(5 + i, 5 + (i + 2) % 5);
    petersen.AddEdge(i, 5 + i);
  }
  int max_scattered = 0;
  for (auto _ : state) {
    max_scattered = MaxScatteredSetSize(petersen, 1);
    benchmark::DoNotOptimize(max_scattered);
  }
  state.counters["vertices"] = 10.0;
  state.counters["literal_bound_N"] =
      static_cast<double>(Lemma34Bound(3, 1, 3));  // 9 < 10, yet:
  state.counters["max_1_scattered"] =
      static_cast<double>(max_scattered);  // 1
}

BENCHMARK(BM_Lemma34PetersenCounterexample);

// Measured threshold: smallest n (linear scan) where 20/20 random
// degree-<=k graphs of size n contain the set.
void BM_Lemma34MeasuredThreshold(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int m = static_cast<int>(state.range(2));
  int measured = -1;
  for (auto _ : state) {
    const int cap = static_cast<int>(Lemma34BallPackingBound(k, d, m)) + 1;
    for (int n = m; n <= cap; ++n) {
      if (SuccessRate(n, k, d, m, 20, 99) == 1.0) {
        measured = n;
        break;
      }
    }
  }
  state.counters["measured_threshold_N"] = static_cast<double>(measured);
  state.counters["literal_bound_N"] =
      static_cast<double>(Lemma34Bound(k, d, m));
  state.counters["safe_bound_N"] =
      static_cast<double>(Lemma34BallPackingBound(k, d, m));
}

BENCHMARK(BM_Lemma34MeasuredThreshold)
    ->Args({3, 1, 3})
    ->Args({3, 2, 3})
    ->Args({4, 1, 4})
    ->Iterations(1);

// Exact maximum scattered set vs the greedy lower bound on grids (degree
// 4, the classic bounded-degree family).
void BM_ScatteredOnGrids(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Graph grid = GridGraph(side, side);
  int greedy = 0;
  for (auto _ : state) {
    greedy = static_cast<int>(GreedyScatteredSet(grid, 1).size());
    benchmark::DoNotOptimize(greedy);
  }
  state.counters["greedy_size"] = static_cast<double>(greedy);
  state.counters["vertices"] = static_cast<double>(grid.NumVertices());
}

BENCHMARK(BM_ScatteredOnGrids)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
