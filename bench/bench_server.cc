// E16 — hompresd serving overhead: roundtrip latency and throughput of
// the daemon under a closed-loop load generator. The server is hosted
// in-process on a private socket (or an external daemon via
// HOMPRESD_SOCKET); every client thread is one connection issuing
// hom_has/cq_evaluate requests against a registry-named target, so the
// fingerprint batcher and the shared HomCache both engage. Counters
// carry the server-side p50/p99 and batching shape into
// BENCH_results.json for bench/check_regression.py.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

#include "json_main.h"

#include "base/check.h"
#include "graph/builders.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "structure/generators.h"

namespace hompres {
namespace {

// The benchmark's serving endpoint: an external daemon when
// HOMPRESD_SOCKET is set, otherwise a lazily started in-process server
// shared by every benchmark (and every load-generating thread).
class BenchEndpoint {
 public:
  static BenchEndpoint& Get() {
    static BenchEndpoint* endpoint = new BenchEndpoint();
    return *endpoint;
  }

  const std::string& SocketPath() const { return socket_path_; }

  ServerMetricsSnapshot Metrics() {
    if (server_ != nullptr) return server_->Metrics();
    // External daemon: pull the counters over the wire.
    Client client;
    ServerMetricsSnapshot out;
    if (!client.Connect(socket_path_)) return out;
    JsonValue request = JsonValue::Object();
    request.Set("id", JsonValue::Int(1));
    request.Set("op", JsonValue::String("stats"));
    auto response = client.Roundtrip(request);
    if (!response.has_value()) return out;
    const JsonValue* stats = response->Find("stats");
    if (stats == nullptr) return out;
    auto u64 = [stats](const char* key) -> uint64_t {
      const JsonValue* v = stats->Find(key);
      return v == nullptr ? 0 : v->AsUint64().value_or(0);
    };
    out.batches_executed = u64("batches_executed");
    out.batched_requests = u64("batched_requests");
    out.cache_consults = u64("cache_consults");
    out.cache_hits = u64("cache_hits");
    const JsonValue* latency = stats->Find("latency");
    if (latency != nullptr) {
      auto l64 = [latency](const char* key) -> uint64_t {
        const JsonValue* v = latency->Find(key);
        return v == nullptr ? 0 : v->AsUint64().value_or(0);
      };
      out.latency.p50_us = l64("p50_us");
      out.latency.p99_us = l64("p99_us");
    }
    return out;
  }

 private:
  BenchEndpoint() {
    const char* external = std::getenv("HOMPRESD_SOCKET");
    if (external != nullptr && *external != '\0') {
      socket_path_ = external;
    } else {
      socket_path_ =
          "/tmp/hompresd-bench-" + std::to_string(::getpid()) + ".sock";
      ServerOptions options;
      options.socket_path = socket_path_;
      options.num_workers = 2;
      server_ = std::make_unique<Server>(options);
      std::string error;
      HOMPRES_CHECK(server_->Start(&error));
    }
    // The shared target every load thread queries by name: a modest
    // grid, large enough that serving cost is not pure syscall noise.
    Client client;
    HOMPRES_CHECK(client.Connect(socket_path_));
    JsonValue define = JsonValue::Object();
    define.Set("id", JsonValue::Int(1));
    define.Set("op", JsonValue::String("define"));
    define.Set("name", JsonValue::String("bench_grid"));
    define.Set("structure",
               JsonValue::String(
                   StructureText(UndirectedGraphStructure(GridGraph(8, 8)))));
    auto response = client.Roundtrip(define);
    HOMPRES_CHECK(response.has_value() &&
                  response->Find("ok")->AsBool());
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
};

JsonValue HomHasRequest(int64_t id, const std::string& source_text) {
  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Int(id));
  request.Set("op", JsonValue::String("hom_has"));
  request.Set("source", JsonValue::String(source_text));
  request.Set("target", JsonValue::String("@bench_grid"));
  return request;
}

void BM_ServerPing(benchmark::State& state) {
  BenchEndpoint& endpoint = BenchEndpoint::Get();
  Client client;
  HOMPRES_CHECK(client.Connect(endpoint.SocketPath()));
  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Int(1));
  request.Set("op", JsonValue::String("ping"));
  for (auto _ : state) {
    auto response = client.Roundtrip(request);
    HOMPRES_CHECK(response.has_value());
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}

// Closed-loop hom_has load: every benchmark thread is one client
// connection, all against the same named target, so concurrent requests
// land in one fingerprint batch and has-answers hit the shared cache.
void BM_ServerHomHas(benchmark::State& state) {
  BenchEndpoint& endpoint = BenchEndpoint::Get();
  Client client;
  HOMPRES_CHECK(client.Connect(endpoint.SocketPath()));
  // A handful of distinct sources so the cache sees both hits and
  // misses; rotated per iteration.
  const std::string sources[] = {
      StructureText(DirectedPathStructure(3)),
      StructureText(DirectedPathStructure(5)),
      StructureText(DirectedCycleStructure(4)),
      StructureText(DirectedCycleStructure(6)),
  };
  const ServerMetricsSnapshot before = endpoint.Metrics();
  int64_t id = 0;
  for (auto _ : state) {
    auto response = client.Roundtrip(HomHasRequest(++id, sources[id % 4]));
    HOMPRES_CHECK(response.has_value() &&
                  response->Find("ok")->AsBool());
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const ServerMetricsSnapshot after = endpoint.Metrics();
    state.counters["p50_us"] = static_cast<double>(after.latency.p50_us);
    state.counters["p99_us"] = static_cast<double>(after.latency.p99_us);
    const uint64_t batches = after.batches_executed - before.batches_executed;
    const uint64_t batched = after.batched_requests - before.batched_requests;
    state.counters["avg_batch"] =
        batches == 0 ? 0.0
                     : static_cast<double>(batched) /
                           static_cast<double>(batches);
    const uint64_t consults = after.cache_consults - before.cache_consults;
    const uint64_t hits = after.cache_hits - before.cache_hits;
    state.counters["cache_hit_rate"] =
        consults == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(consults);
  }
}

// One CQ evaluation per roundtrip: triangle pattern with one free
// variable over the named grid (answer set is empty — grids are
// triangle-free — so the cost is the search, not serialization).
void BM_ServerCqEvaluate(benchmark::State& state) {
  BenchEndpoint& endpoint = BenchEndpoint::Get();
  Client client;
  HOMPRES_CHECK(client.Connect(endpoint.SocketPath()));
  JsonValue query = JsonValue::Object();
  query.Set("structure", JsonValue::String(
                             "|A|=3; E={(0 1),(1 2),(2 0)}"));
  JsonValue free = JsonValue::Array();
  free.Append(JsonValue::Int(0));
  query.Set("free", std::move(free));
  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Int(1));
  request.Set("op", JsonValue::String("cq_evaluate"));
  request.Set("target", JsonValue::String("@bench_grid"));
  request.Set("query", std::move(query));
  for (auto _ : state) {
    auto response = client.Roundtrip(request);
    HOMPRES_CHECK(response.has_value() &&
                  response->Find("ok")->AsBool());
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ServerPing);
BENCHMARK(BM_ServerHomHas)->Threads(1)->Threads(4);
BENCHMARK(BM_ServerCqEvaluate);

}  // namespace
}  // namespace hompres

HOMPRES_BENCHMARK_MAIN()
