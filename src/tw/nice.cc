#include "tw/nice.h"

#include <algorithm>

#include "base/check.h"

namespace hompres {

int NiceTreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

namespace {

class NiceBuilder {
 public:
  NiceBuilder(const Graph& g, const TreeDecomposition& td)
      : g_(g), td_(td) {}

  NiceTreeDecomposition Build() {
    HOMPRES_CHECK_GE(td_.tree.NumVertices(), 1);
    const int top = BuildSubtree(0, -1);
    // Forget everything down to an empty root bag.
    int current = top;
    std::vector<int> bag = nice_.bags[static_cast<size_t>(top)];
    while (!bag.empty()) {
      const int v = bag.back();
      bag.pop_back();
      current = NewNode(bag, NiceNodeKind::kForget, {current});
      (void)v;
    }
    nice_.root = current;
    HOMPRES_CHECK(IsValidNiceDecomposition(g_, nice_));
    return std::move(nice_);
  }

 private:
  int NewNode(std::vector<int> bag, NiceNodeKind kind,
              std::vector<int> children) {
    std::sort(bag.begin(), bag.end());
    nice_.bags.push_back(std::move(bag));
    nice_.kinds.push_back(kind);
    nice_.children.push_back(std::move(children));
    return nice_.NumNodes() - 1;
  }

  // A leaf-to-bag introduce chain; returns the top node (bag == `bag`).
  int IntroduceChain(const std::vector<int>& bag) {
    int current = NewNode({}, NiceNodeKind::kLeaf, {});
    std::vector<int> partial;
    for (int v : bag) {
      partial.push_back(v);
      current = NewNode(partial, NiceNodeKind::kIntroduce, {current});
    }
    return current;
  }

  // Morphs a node whose bag is `from` into a node whose bag is `to` via
  // forgets then introduces.
  int Morph(int node, std::vector<int> from, const std::vector<int>& to) {
    int current = node;
    for (int v : nice_.bags[static_cast<size_t>(node)]) {
      if (!std::binary_search(to.begin(), to.end(), v)) {
        from.erase(std::find(from.begin(), from.end(), v));
        current = NewNode(from, NiceNodeKind::kForget, {current});
      }
    }
    for (int v : to) {
      if (!std::binary_search(
              nice_.bags[static_cast<size_t>(node)].begin(),
              nice_.bags[static_cast<size_t>(node)].end(), v)) {
        from.push_back(v);
        current = NewNode(from, NiceNodeKind::kIntroduce, {current});
      }
    }
    return current;
  }

  // Builds the nice subtree for td node `node`, returning a nice node
  // whose bag equals td_.bags[node].
  int BuildSubtree(int node, int parent) {
    const std::vector<int>& bag = td_.bags[static_cast<size_t>(node)];
    std::vector<int> tops;
    for (int child : td_.tree.Neighbors(node)) {
      if (child == parent) continue;
      const int child_top = BuildSubtree(child, node);
      tops.push_back(Morph(child_top,
                           nice_.bags[static_cast<size_t>(child_top)], bag));
    }
    if (tops.empty()) return IntroduceChain(bag);
    // Combine with binary joins (all bags already equal `bag`).
    int current = tops[0];
    for (size_t i = 1; i < tops.size(); ++i) {
      current = NewNode(bag, NiceNodeKind::kJoin, {current, tops[i]});
    }
    return current;
  }

  const Graph& g_;
  const TreeDecomposition& td_;
  NiceTreeDecomposition nice_;
};

}  // namespace

NiceTreeDecomposition MakeNiceDecomposition(const Graph& g,
                                            const TreeDecomposition& td) {
  HOMPRES_CHECK(IsValidTreeDecomposition(g, td));
  return NiceBuilder(g, td).Build();
}

bool IsValidNiceDecomposition(const Graph& g,
                              const NiceTreeDecomposition& nice) {
  const int n = nice.NumNodes();
  if (n == 0 || nice.root < 0 || nice.root >= n) return false;
  if (!nice.bags[static_cast<size_t>(nice.root)].empty()) return false;
  // Structural kinds.
  for (int node = 0; node < n; ++node) {
    const auto& bag = nice.bags[static_cast<size_t>(node)];
    const auto& children = nice.children[static_cast<size_t>(node)];
    switch (nice.kinds[static_cast<size_t>(node)]) {
      case NiceNodeKind::kLeaf:
        if (!children.empty() || !bag.empty()) return false;
        break;
      case NiceNodeKind::kIntroduce: {
        if (children.size() != 1) return false;
        const auto& child_bag =
            nice.bags[static_cast<size_t>(children[0])];
        if (bag.size() != child_bag.size() + 1) return false;
        if (!std::includes(bag.begin(), bag.end(), child_bag.begin(),
                           child_bag.end())) {
          return false;
        }
        break;
      }
      case NiceNodeKind::kForget: {
        if (children.size() != 1) return false;
        const auto& child_bag =
            nice.bags[static_cast<size_t>(children[0])];
        if (bag.size() + 1 != child_bag.size()) return false;
        if (!std::includes(child_bag.begin(), child_bag.end(), bag.begin(),
                           bag.end())) {
          return false;
        }
        break;
      }
      case NiceNodeKind::kJoin: {
        if (children.size() != 2) return false;
        if (nice.bags[static_cast<size_t>(children[0])] != bag ||
            nice.bags[static_cast<size_t>(children[1])] != bag) {
          return false;
        }
        break;
      }
    }
  }
  // Semantic validity via the unrooted view.
  TreeDecomposition flat;
  flat.tree = Graph(n);
  for (int node = 0; node < n; ++node) {
    for (int child : nice.children[static_cast<size_t>(node)]) {
      flat.tree.AddEdge(node, child);
    }
  }
  flat.bags = nice.bags;
  return IsValidTreeDecomposition(g, flat);
}

int TreewidthLowerBoundDegeneracy(const Graph& g) {
  std::vector<bool> removed(static_cast<size_t>(g.NumVertices()), false);
  int degeneracy = 0;
  for (int step = 0; step < g.NumVertices(); ++step) {
    int best = -1;
    int best_degree = -1;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (removed[static_cast<size_t>(v)]) continue;
      int degree = 0;
      for (int w : g.Neighbors(v)) {
        if (!removed[static_cast<size_t>(w)]) ++degree;
      }
      if (best == -1 || degree < best_degree) {
        best = v;
        best_degree = degree;
      }
    }
    degeneracy = std::max(degeneracy, best_degree);
    removed[static_cast<size_t>(best)] = true;
  }
  return degeneracy;
}

}  // namespace hompres
