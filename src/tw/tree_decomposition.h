// Tree decompositions and treewidth (Section 2.1).
//
// A tree decomposition of G is a tree whose nodes are labeled with bags of
// vertices such that (1) every vertex appears in a bag, (2) every edge is
// inside some bag, and (3) the occurrences of each vertex form a subtree.
// Width = max bag size - 1. The treewidth machinery here provides
// validation, construction from elimination orders, min-degree/min-fill
// heuristics, exact treewidth for small graphs (memoized dynamic
// programming over eliminated sets), and the bag-antichain normalization
// the Lemma 4.2 proof assumes.

#ifndef HOMPRES_TW_TREE_DECOMPOSITION_H_
#define HOMPRES_TW_TREE_DECOMPOSITION_H_

#include <vector>

#include "graph/graph.h"

namespace hompres {

struct TreeDecomposition {
  // The decomposition tree; node i has bag bags[i]. Bags are sorted.
  Graph tree;
  std::vector<std::vector<int>> bags;

  // Max bag size - 1; -1 for an empty decomposition.
  int Width() const;
};

// Full validity check against g (tree-ness, vertex cover, edge cover,
// connected occurrences). The decomposition of an empty graph may have a
// single empty bag.
bool IsValidTreeDecomposition(const Graph& g, const TreeDecomposition& td);

// Builds a tree decomposition from an elimination order (a permutation of
// the vertices): bag(v) = {v} + the later neighbors of v in the fill-in
// graph; v's bag hangs off the bag of its earliest later fill-neighbor.
// The result is always valid; its width is the order's induced width.
TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& g, const std::vector<int>& order);

// Width induced by an elimination order (max elimination degree), without
// building the decomposition.
int EliminationOrderWidth(const Graph& g, const std::vector<int>& order);

// Greedy heuristic orders.
std::vector<int> MinDegreeOrder(const Graph& g);
std::vector<int> MinFillOrder(const Graph& g);

// Heuristic upper bound: min of the min-degree and min-fill widths.
int TreewidthUpperBound(const Graph& g);

// Exact treewidth via memoized DP over eliminated subsets
// (f(S) = min_v max(deg after eliminating S, f(S + v))). Requires
// g.NumVertices() <= 22 (the DP is 2^n).
int ExactTreewidth(const Graph& g);

// Exact treewidth together with a witnessing (validated) decomposition.
TreeDecomposition ExactTreeDecomposition(const Graph& g);

// Valid decomposition from the better of the min-degree / min-fill
// orders; width may exceed the treewidth. Works at any size.
TreeDecomposition HeuristicTreeDecomposition(const Graph& g);

// The "standard manipulation" used in Lemma 4.2: contracts tree edges
// whose bags are comparable until, for every pair of distinct nodes u, v,
// both S_u - S_v and S_v - S_u are nonempty. Preserves validity and never
// increases width. The result has at least one node.
TreeDecomposition MakeBagsIncomparable(const TreeDecomposition& td);

// Treewidth of the structure's Gaifman graph, exact (small structures).
// Declared here to keep treewidth concerns in one header; defined in
// tree_decomposition.cc to avoid a dependency cycle with src/structure.
class Structure;
int StructureTreewidth(const Structure& a);

}  // namespace hompres

#endif  // HOMPRES_TW_TREE_DECOMPOSITION_H_
