#include "tw/tree_decomposition.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "base/check.h"
#include "graph/algorithms.h"
#include "structure/gaifman.h"
#include "structure/structure.h"

namespace hompres {

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

bool IsValidTreeDecomposition(const Graph& g, const TreeDecomposition& td) {
  const int nodes = td.tree.NumVertices();
  if (static_cast<int>(td.bags.size()) != nodes) return false;
  if (nodes == 0) return g.NumVertices() == 0;
  if (!IsTree(td.tree)) return false;
  // (1) Every vertex occurs in a bag; (3) occurrences form a subtree.
  for (int v = 0; v < g.NumVertices(); ++v) {
    std::vector<int> occurrences;
    for (int node = 0; node < nodes; ++node) {
      const auto& bag = td.bags[static_cast<size_t>(node)];
      if (std::find(bag.begin(), bag.end(), v) != bag.end()) {
        occurrences.push_back(node);
      }
    }
    if (occurrences.empty()) return false;
    if (!IsConnectedSubset(td.tree, occurrences) && occurrences.size() > 1) {
      return false;
    }
  }
  // (2) Every edge is inside some bag.
  for (const auto& [u, v] : g.Edges()) {
    bool covered = false;
    for (const auto& bag : td.bags) {
      if (std::find(bag.begin(), bag.end(), u) != bag.end() &&
          std::find(bag.begin(), bag.end(), v) != bag.end()) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

namespace {

// Adjacency as sets, for fill-in simulation.
std::vector<std::vector<bool>> AdjacencyMatrix(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<std::vector<bool>> adj(
      static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n), false));
  for (const auto& [u, v] : g.Edges()) {
    adj[static_cast<size_t>(u)][static_cast<size_t>(v)] = true;
    adj[static_cast<size_t>(v)][static_cast<size_t>(u)] = true;
  }
  return adj;
}

void CheckIsPermutation(const Graph& g, const std::vector<int>& order) {
  HOMPRES_CHECK_EQ(static_cast<int>(order.size()), g.NumVertices());
  std::vector<bool> seen(order.size(), false);
  for (int v : order) {
    HOMPRES_CHECK_GE(v, 0);
    HOMPRES_CHECK_LT(v, g.NumVertices());
    HOMPRES_CHECK(!seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

}  // namespace

TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& g, const std::vector<int>& order) {
  CheckIsPermutation(g, order);
  const int n = g.NumVertices();
  TreeDecomposition td;
  if (n == 0) {
    td.tree = Graph(1);
    td.bags = {{}};
    return td;
  }
  std::vector<std::vector<bool>> adj = AdjacencyMatrix(g);
  std::vector<int> position(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    position[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
  }
  // Simulate elimination, recording each vertex's bag (itself + later
  // fill-neighbors).
  std::vector<std::vector<int>> bags(static_cast<size_t>(n));
  std::vector<bool> eliminated(static_cast<size_t>(n), false);
  for (int step = 0; step < n; ++step) {
    const int v = order[static_cast<size_t>(step)];
    std::vector<int> later;
    for (int w = 0; w < n; ++w) {
      if (!eliminated[static_cast<size_t>(w)] && w != v &&
          adj[static_cast<size_t>(v)][static_cast<size_t>(w)]) {
        later.push_back(w);
      }
    }
    bags[static_cast<size_t>(step)] = later;
    bags[static_cast<size_t>(step)].push_back(v);
    std::sort(bags[static_cast<size_t>(step)].begin(),
              bags[static_cast<size_t>(step)].end());
    // Fill in: later neighbors become a clique.
    for (size_t i = 0; i < later.size(); ++i) {
      for (size_t j = i + 1; j < later.size(); ++j) {
        adj[static_cast<size_t>(later[i])][static_cast<size_t>(later[j])] =
            true;
        adj[static_cast<size_t>(later[j])][static_cast<size_t>(later[i])] =
            true;
      }
    }
    eliminated[static_cast<size_t>(v)] = true;
  }
  // Tree: node `step` (bag of order[step]) attaches to the step of its
  // earliest-eliminated later fill-neighbor; if none (last vertex of a
  // component), attach to the next step to keep the tree connected.
  td.tree = Graph(n);
  td.bags = std::move(bags);
  for (int step = 0; step < n; ++step) {
    const int v = order[static_cast<size_t>(step)];
    int parent_step = -1;
    for (int w : td.bags[static_cast<size_t>(step)]) {
      if (w == v) continue;
      const int pw = position[static_cast<size_t>(w)];
      if (parent_step == -1 || pw < parent_step) parent_step = pw;
    }
    if (parent_step == -1 && step + 1 < n) parent_step = step + 1;
    if (parent_step != -1) td.tree.AddEdge(step, parent_step);
  }
  HOMPRES_CHECK(IsValidTreeDecomposition(g, td));
  return td;
}

int EliminationOrderWidth(const Graph& g, const std::vector<int>& order) {
  CheckIsPermutation(g, order);
  const int n = g.NumVertices();
  std::vector<std::vector<bool>> adj = AdjacencyMatrix(g);
  std::vector<bool> eliminated(static_cast<size_t>(n), false);
  int width = n == 0 ? -1 : 0;
  for (int step = 0; step < n; ++step) {
    const int v = order[static_cast<size_t>(step)];
    std::vector<int> later;
    for (int w = 0; w < n; ++w) {
      if (!eliminated[static_cast<size_t>(w)] && w != v &&
          adj[static_cast<size_t>(v)][static_cast<size_t>(w)]) {
        later.push_back(w);
      }
    }
    width = std::max(width, static_cast<int>(later.size()));
    for (size_t i = 0; i < later.size(); ++i) {
      for (size_t j = i + 1; j < later.size(); ++j) {
        adj[static_cast<size_t>(later[i])][static_cast<size_t>(later[j])] =
            true;
        adj[static_cast<size_t>(later[j])][static_cast<size_t>(later[i])] =
            true;
      }
    }
    eliminated[static_cast<size_t>(v)] = true;
  }
  return width;
}

namespace {

// Shared skeleton for the greedy orders: `score` rates a candidate vertex
// in the current fill graph (lower is better).
template <typename ScoreFn>
std::vector<int> GreedyOrder(const Graph& g, ScoreFn&& score) {
  const int n = g.NumVertices();
  std::vector<std::vector<bool>> adj = AdjacencyMatrix(g);
  std::vector<bool> eliminated(static_cast<size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    long long best_score = 0;
    for (int v = 0; v < n; ++v) {
      if (eliminated[static_cast<size_t>(v)]) continue;
      const long long s = score(adj, eliminated, v);
      if (best == -1 || s < best_score) {
        best = v;
        best_score = s;
      }
    }
    // Eliminate `best`.
    std::vector<int> later;
    for (int w = 0; w < n; ++w) {
      if (!eliminated[static_cast<size_t>(w)] && w != best &&
          adj[static_cast<size_t>(best)][static_cast<size_t>(w)]) {
        later.push_back(w);
      }
    }
    for (size_t i = 0; i < later.size(); ++i) {
      for (size_t j = i + 1; j < later.size(); ++j) {
        adj[static_cast<size_t>(later[i])][static_cast<size_t>(later[j])] =
            true;
        adj[static_cast<size_t>(later[j])][static_cast<size_t>(later[i])] =
            true;
      }
    }
    eliminated[static_cast<size_t>(best)] = true;
    order.push_back(best);
  }
  return order;
}

long long LiveDegree(const std::vector<std::vector<bool>>& adj,
                     const std::vector<bool>& eliminated, int v) {
  long long degree = 0;
  for (size_t w = 0; w < adj.size(); ++w) {
    if (!eliminated[w] && static_cast<int>(w) != v &&
        adj[static_cast<size_t>(v)][w]) {
      ++degree;
    }
  }
  return degree;
}

long long FillCount(const std::vector<std::vector<bool>>& adj,
                    const std::vector<bool>& eliminated, int v) {
  std::vector<int> neighbors;
  for (size_t w = 0; w < adj.size(); ++w) {
    if (!eliminated[w] && static_cast<int>(w) != v &&
        adj[static_cast<size_t>(v)][w]) {
      neighbors.push_back(static_cast<int>(w));
    }
  }
  long long fill = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      if (!adj[static_cast<size_t>(neighbors[i])]
              [static_cast<size_t>(neighbors[j])]) {
        ++fill;
      }
    }
  }
  return fill;
}

}  // namespace

std::vector<int> MinDegreeOrder(const Graph& g) {
  return GreedyOrder(g, LiveDegree);
}

std::vector<int> MinFillOrder(const Graph& g) {
  return GreedyOrder(g, FillCount);
}

int TreewidthUpperBound(const Graph& g) {
  return std::min(EliminationOrderWidth(g, MinDegreeOrder(g)),
                  EliminationOrderWidth(g, MinFillOrder(g)));
}

namespace {

// Memoized DP over eliminated sets. Adjacency is carried as bitmasks and
// updated by one elimination per recursion level.
class ExactTreewidthSolver {
 public:
  explicit ExactTreewidthSolver(const Graph& g) : n_(g.NumVertices()) {
    HOMPRES_CHECK_LE(n_, 22);
    adj_.assign(static_cast<size_t>(n_), 0);
    for (const auto& [u, v] : g.Edges()) {
      adj_[static_cast<size_t>(u)] |= (1u << v);
      adj_[static_cast<size_t>(v)] |= (1u << u);
    }
  }

  // Minimal achievable max-elimination-degree over the remaining vertices.
  int Solve(uint32_t eliminated, const std::vector<uint32_t>& adj) {
    if (eliminated == (n_ == 32 ? ~0u : (1u << n_) - 1u)) return 0;
    auto it = memo_.find(eliminated);
    if (it != memo_.end()) return it->second;
    int best = n_;  // upper bound: degree can't exceed n-1
    for (int v = 0; v < n_; ++v) {
      if (eliminated & (1u << v)) continue;
      const uint32_t live_neighbors =
          adj[static_cast<size_t>(v)] & ~eliminated & ~(1u << v);
      const int degree = __builtin_popcount(live_neighbors);
      if (degree >= best) continue;  // cannot improve
      // Eliminate v: clique its live neighborhood.
      std::vector<uint32_t> next = adj;
      uint32_t rest = live_neighbors;
      while (rest != 0) {
        const int w = __builtin_ctz(rest);
        rest &= rest - 1;
        next[static_cast<size_t>(w)] |= live_neighbors & ~(1u << w);
      }
      const int sub = Solve(eliminated | (1u << v), next);
      best = std::min(best, std::max(degree, sub));
    }
    memo_[eliminated] = best;
    return best;
  }

  // Reconstructs an optimal elimination order after Solve() has populated
  // the memo table.
  std::vector<int> OptimalOrder() {
    std::vector<int> order;
    uint32_t eliminated = 0;
    std::vector<uint32_t> adj = adj_;
    const int target = Solve(0, adj_);
    int remaining_target = target;
    while (static_cast<int>(order.size()) < n_) {
      bool advanced = false;
      for (int v = 0; v < n_ && !advanced; ++v) {
        if (eliminated & (1u << v)) continue;
        const uint32_t live =
            adj[static_cast<size_t>(v)] & ~eliminated & ~(1u << v);
        const int degree = __builtin_popcount(live);
        if (degree > remaining_target) continue;
        std::vector<uint32_t> next = adj;
        uint32_t rest = live;
        while (rest != 0) {
          const int w = __builtin_ctz(rest);
          rest &= rest - 1;
          next[static_cast<size_t>(w)] |= live & ~(1u << w);
        }
        if (std::max(degree, Solve(eliminated | (1u << v), next)) <=
            remaining_target) {
          order.push_back(v);
          eliminated |= (1u << v);
          adj = std::move(next);
          advanced = true;
        }
      }
      HOMPRES_CHECK(advanced);
    }
    return order;
  }

  const std::vector<uint32_t>& InitialAdjacency() const { return adj_; }

 private:
  int n_;
  std::vector<uint32_t> adj_;
  std::unordered_map<uint32_t, int> memo_;
};

}  // namespace

int ExactTreewidth(const Graph& g) {
  if (g.NumVertices() == 0) return -1;
  ExactTreewidthSolver solver(g);
  return solver.Solve(0, solver.InitialAdjacency());
}

TreeDecomposition ExactTreeDecomposition(const Graph& g) {
  if (g.NumVertices() == 0) {
    TreeDecomposition td;
    td.tree = Graph(1);
    td.bags = {{}};
    return td;
  }
  ExactTreewidthSolver solver(g);
  const std::vector<int> order = solver.OptimalOrder();
  TreeDecomposition td = DecompositionFromEliminationOrder(g, order);
  HOMPRES_CHECK_EQ(td.Width(), ExactTreewidth(g));
  return td;
}

TreeDecomposition HeuristicTreeDecomposition(const Graph& g) {
  const std::vector<int> degree_order = MinDegreeOrder(g);
  const std::vector<int> fill_order = MinFillOrder(g);
  const std::vector<int>& better =
      EliminationOrderWidth(g, degree_order) <=
              EliminationOrderWidth(g, fill_order)
          ? degree_order
          : fill_order;
  return DecompositionFromEliminationOrder(g, better);
}

TreeDecomposition MakeBagsIncomparable(const TreeDecomposition& td) {
  TreeDecomposition current = td;
  for (;;) {
    bool contracted = false;
    for (const auto& [u, v] : current.tree.Edges()) {
      const auto& bag_u = current.bags[static_cast<size_t>(u)];
      const auto& bag_v = current.bags[static_cast<size_t>(v)];
      const bool u_in_v =
          std::includes(bag_v.begin(), bag_v.end(), bag_u.begin(), bag_u.end());
      const bool v_in_u =
          std::includes(bag_u.begin(), bag_u.end(), bag_v.begin(), bag_v.end());
      if (!u_in_v && !v_in_u) continue;
      // Contract the smaller-bag node into the other (ties: v into u).
      const int keep = u_in_v ? v : u;
      const int drop = u_in_v ? u : v;
      Graph tree = current.tree.ContractEdge(keep, drop);
      std::vector<std::vector<int>> bags;
      bags.reserve(current.bags.size() - 1);
      for (int node = 0; node < current.tree.NumVertices(); ++node) {
        if (node != drop) bags.push_back(current.bags[static_cast<size_t>(node)]);
      }
      current.tree = std::move(tree);
      current.bags = std::move(bags);
      contracted = true;
      break;
    }
    if (!contracted) break;
  }
  // Verify the antichain property over all pairs (see Lemma 4.2's
  // "standard manipulation"): adjacent containments are gone, and by the
  // connectivity property that removes all containments.
  if (current.bags.size() > 1) {
    for (size_t i = 0; i < current.bags.size(); ++i) {
      for (size_t j = i + 1; j < current.bags.size(); ++j) {
        const auto& a = current.bags[i];
        const auto& b = current.bags[j];
        HOMPRES_CHECK(!std::includes(a.begin(), a.end(), b.begin(), b.end()));
        HOMPRES_CHECK(!std::includes(b.begin(), b.end(), a.begin(), a.end()));
      }
    }
  }
  return current;
}

int StructureTreewidth(const Structure& a) {
  return ExactTreewidth(GaifmanGraph(a));
}

}  // namespace hompres
