// Nice tree decompositions: the normalized rooted form used by dynamic
// programming over decompositions (leaf / introduce / forget / join
// nodes). Not needed by the paper's proofs directly, but the natural
// companion API for the treewidth substrate and a good stress test of the
// decomposition invariants.

#ifndef HOMPRES_TW_NICE_H_
#define HOMPRES_TW_NICE_H_

#include <vector>

#include "tw/tree_decomposition.h"

namespace hompres {

enum class NiceNodeKind {
  kLeaf,       // no children, empty bag
  kIntroduce,  // one child, bag = child's bag + one vertex
  kForget,     // one child, bag = child's bag - one vertex
  kJoin,       // two children, both bags equal to this bag
};

struct NiceTreeDecomposition {
  std::vector<std::vector<int>> bags;       // sorted
  std::vector<NiceNodeKind> kinds;
  std::vector<std::vector<int>> children;   // child node ids
  int root = -1;                            // bag of the root is empty

  int NumNodes() const { return static_cast<int>(bags.size()); }
  int Width() const;
};

// Converts a valid decomposition of g into a nice one of the same width
// (bags only shrink). The result is validated.
NiceTreeDecomposition MakeNiceDecomposition(const Graph& g,
                                            const TreeDecomposition& td);

// Structural + semantic validity: node kinds are consistent, the root
// bag is empty, and the underlying (unrooted) decomposition is valid
// for g.
bool IsValidNiceDecomposition(const Graph& g,
                              const NiceTreeDecomposition& nice);

// Degeneracy of g (repeatedly remove a minimum-degree vertex; the
// maximum degree seen). A lower bound for treewidth.
int TreewidthLowerBoundDegeneracy(const Graph& g);

}  // namespace hompres

#endif  // HOMPRES_TW_NICE_H_
