// The existential k-pebble game (Section 7.2).
//
// The Duplicator wins the existential k-pebble game on (A, B) iff there is
// a nonempty family H of partial homomorphisms from A to B, each with
// domain of size <= k, that is closed under subfunctions and has the
// forth/extension property: every member with domain < k extends to any
// further element of A. By Theorem 7.6, this holds iff every
// ∃L^k,+-sentence (equivalently every CQ^k sentence) true in A is true in
// B. The solver computes the greatest such family by iterated removal.

#ifndef HOMPRES_PEBBLE_PEBBLE_GAME_H_
#define HOMPRES_PEBBLE_PEBBLE_GAME_H_

#include "base/budget.h"
#include "base/outcome.h"
#include "structure/structure.h"

namespace hompres {

// True iff the Duplicator wins the existential k-pebble game on (a, b).
// Cost is roughly (|A| choose <=k) * |B|^k; intended for small |A| and k.
bool DuplicatorWinsExistentialKPebbleGame(const Structure& a,
                                          const Structure& b, int k);

// Budgeted solver: one step per candidate partial map enumerated and per
// family member re-examined during the fixpoint; the strategy family is
// also charged against the budget's memory limit (if any). Done(win) is
// exact; Exhausted/Cancelled mean the greatest fixpoint was not reached.
Outcome<bool> DuplicatorWinsExistentialKPebbleGameBudgeted(const Structure& a,
                                                           const Structure& b,
                                                           int k,
                                                           Budget& budget);

// The query q(A, k) of Section 7.2 applied to b.
inline bool PebbleGameQuery(const Structure& a, int k, const Structure& b) {
  return DuplicatorWinsExistentialKPebbleGame(a, b, k);
}

}  // namespace hompres

#endif  // HOMPRES_PEBBLE_PEBBLE_GAME_H_
