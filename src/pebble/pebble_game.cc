#include "pebble/pebble_game.h"

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/bitset64.h"
#include "base/check.h"
#include "base/hash.h"
#include "base/row_pool.h"
#include "base/subsets.h"
#include "engine/engine.h"

namespace hompres {

namespace {

// A partial map is encoded as a vector<int> of size |A| with -1 for
// "unset".
using PartialMap = std::vector<int>;

struct PartialMapHash {
  size_t operator()(const PartialMap& p) const {
    uint64_t h = Mix64(p.size());
    for (int v : p) {
      h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

Outcome<bool> DuplicatorWinsExistentialKPebbleGameBudgeted(const Structure& a,
                                                           const Structure& b,
                                                           int k,
                                                           Budget& budget) {
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  HOMPRES_CHECK_GE(k, 1);
  const int n = a.UniverseSize();
  const int m = b.UniverseSize();
  if (n == 0) return Outcome<bool>::Finish(budget, true);  // nothing to pebble
  if (m == 0) {
    // Spoiler pebbles anything, no reply.
    return Outcome<bool>::Finish(budget, false);
  }

  // Enumerate all partial homomorphisms with domain size <= k. A partial
  // map with domain D is exactly a total homomorphism from the induced
  // substructure A|D (InducedSubstructure keeps the tuples lying fully
  // inside D, renumbering D's i-th element to i), so the family is built
  // by one engine enumeration query per domain — the kernel's
  // propagation prunes the m^|D| candidate grid the old setup loop
  // checked one map at a time. Budget steps are search nodes; the family
  // itself is charged as memory, as before.
  std::map<PartialMap, bool> alive;  // value: still in the family
  const int max_domain = std::min(k, n);
  bool stopped = false;
  for (int size = 0; size <= max_domain && !stopped; ++size) {
    ForEachCombination(n, size, [&](const std::vector<int>& domain) {
      const Structure sub = a.InducedSubstructure(domain);
      auto ran = Engine::Enumerate(
          sub, b, budget,
          [&](const std::vector<int>& h) {
            PartialMap p(static_cast<size_t>(n), -1);
            for (size_t i = 0; i < domain.size(); ++i) {
              p[static_cast<size_t>(domain[i])] = h[i];
            }
            if (!budget.ChargeMemory(sizeof(int) * p.size())) {
              stopped = true;
              return false;
            }
            alive.emplace(std::move(p), true);
            return true;
          });
      if (!ran.IsDone()) stopped = true;  // budget stopped mid-enumeration
      return !stopped;
    });
  }
  if (stopped) return Outcome<bool>::StoppedShort(budget.Report());

  // Greatest-fixpoint pruning, as a worklist over packed extension rows.
  //
  // For every map p with |dom(p)| < k and every free element e, row(p, e)
  // is the packed value set {v : p[e:=v] is still in the family}. The
  // forth property for (p, e) is exactly "row(p, e) is nonempty", and
  // subfunction closure says a map dies with any of its one-point
  // restrictions. A removal therefore touches only the rows of the map's
  // restrictions (clear one bit each, possibly emptying a row) and the
  // extensions recorded in its own rows — no repeated full sweeps of the
  // family. The greatest fixpoint is unique, so the worklist order does
  // not change the surviving set: the winner is identical to the old
  // iterate-until-no-change sweeps.
  // Padded stride + 64-byte-aligned flat pool: every extension row is a
  // whole number of SIMD lanes, so the AnySet/FindFirst sweeps below run
  // full-width with no ragged tail (padding words stay zero).
  const int stride = bitset64::PaddedWordsFor(m);
  std::vector<PartialMap> maps;
  std::unordered_map<PartialMap, int, PartialMapHash> ids;
  maps.reserve(alive.size());
  ids.reserve(alive.size());
  for (const auto& entry : alive) {
    ids.emplace(entry.first, static_cast<int>(maps.size()));
    maps.push_back(entry.first);
  }
  const int num_maps = static_cast<int>(maps.size());
  std::vector<int> domain_size(static_cast<size_t>(num_maps), 0);
  for (int idx = 0; idx < num_maps; ++idx) {
    for (int v : maps[static_cast<size_t>(idx)]) {
      if (v != -1) ++domain_size[static_cast<size_t>(idx)];
    }
  }
  const size_t row_stride = static_cast<size_t>(n) * static_cast<size_t>(stride);
  if (!budget.ChargeMemory(static_cast<size_t>(num_maps) * row_stride *
                           sizeof(uint64_t))) {
    return Outcome<bool>::StoppedShort(budget.Report());
  }
  AlignedWordPool rows;
  rows.Resize(static_cast<size_t>(num_maps) * row_stride);  // zeroed
  const auto row = [&](int idx, int e) {
    return rows.data() + static_cast<size_t>(idx) * row_stride +
           static_cast<size_t>(e) * static_cast<size_t>(stride);
  };
  // Build every extension row in one pass by scattering each map into the
  // rows of its one-point restrictions: q = p[e:=v] is in the family iff
  // bit v belongs in row(p, e), so walking the assigned positions of
  // every map sets exactly the same bits as probing all m candidate
  // values per free position — with |dom(q)| hash lookups per map instead
  // of (n - |dom|) * m.
  PartialMap probe;
  for (int idx = 0; idx < num_maps; ++idx) {
    if (!budget.Checkpoint()) {
      return Outcome<bool>::StoppedShort(budget.Report());
    }
    const PartialMap& p = maps[static_cast<size_t>(idx)];
    probe = p;
    for (int e = 0; e < n; ++e) {
      const int val = p[static_cast<size_t>(e)];
      if (val == -1) continue;
      probe[static_cast<size_t>(e)] = -1;
      const auto it = ids.find(probe);
      HOMPRES_CHECK(it != ids.end());  // restrictions stay in the family
      probe[static_cast<size_t>(e)] = val;
      bitset64::Set(row(it->second, e), val);
    }
  }

  std::vector<char> live(static_cast<size_t>(num_maps), 1);
  std::vector<int> worklist;
  const auto kill = [&](int idx) {
    if (!live[static_cast<size_t>(idx)]) return;
    live[static_cast<size_t>(idx)] = 0;
    worklist.push_back(idx);
  };
  // Initial forth violations (closure holds initially: every restriction
  // of a partial homomorphism is a partial homomorphism). The scan walks
  // each map's row block front to back — one contiguous cache-resident
  // streak of `n * stride` words per map — touching the pool exactly once.
  for (int idx = 0; idx < num_maps; ++idx) {
    if (domain_size[static_cast<size_t>(idx)] >= max_domain) continue;
    const PartialMap& p = maps[static_cast<size_t>(idx)];
    const uint64_t* block = row(idx, 0);
    for (int e = 0; e < n; ++e) {
      if (p[static_cast<size_t>(e)] != -1) continue;
      if (!bitset64::AnySet(block + static_cast<size_t>(e) *
                                        static_cast<size_t>(stride),
                            stride)) {
        kill(idx);
        break;
      }
    }
  }
  while (!worklist.empty()) {
    if (!budget.Checkpoint()) {
      return Outcome<bool>::StoppedShort(budget.Report());
    }
    const int idx = worklist.back();
    worklist.pop_back();
    const PartialMap& p = maps[static_cast<size_t>(idx)];
    // Forth propagation into the one-point restrictions: clear our value
    // bit; an emptied row kills the restriction.
    probe = p;
    for (int e = 0; e < n; ++e) {
      const int val = p[static_cast<size_t>(e)];
      if (val == -1) continue;
      probe[static_cast<size_t>(e)] = -1;
      const auto it = ids.find(probe);
      HOMPRES_CHECK(it != ids.end());
      probe[static_cast<size_t>(e)] = val;
      const int parent = it->second;
      if (!live[static_cast<size_t>(parent)]) continue;
      uint64_t* r = row(parent, e);
      bitset64::Reset(r, val);
      if (!bitset64::AnySet(r, stride)) kill(parent);
    }
    // Closure propagation into the extensions: every map extending a dead
    // map loses a live restriction and dies with it.
    if (domain_size[static_cast<size_t>(idx)] < max_domain) {
      probe = p;
      for (int e = 0; e < n; ++e) {
        if (p[static_cast<size_t>(e)] != -1) continue;
        const uint64_t* r = row(idx, e);
        for (int v = bitset64::FindFirst(r, stride); v >= 0;
             v = bitset64::FindNext(r, stride, v)) {
          probe[static_cast<size_t>(e)] = v;
          const auto it = ids.find(probe);
          HOMPRES_CHECK(it != ids.end());
          kill(it->second);
        }
        probe[static_cast<size_t>(e)] = -1;
      }
    }
  }

  const PartialMap empty(static_cast<size_t>(n), -1);
  const auto it = ids.find(empty);
  const bool wins = it != ids.end() && live[static_cast<size_t>(it->second)];
  return Outcome<bool>::Done(wins, budget.Report());
}

bool DuplicatorWinsExistentialKPebbleGame(const Structure& a,
                                          const Structure& b, int k) {
  Budget unlimited = Budget::Unlimited();
  return DuplicatorWinsExistentialKPebbleGameBudgeted(a, b, k, unlimited)
      .Value();
}

}  // namespace hompres
