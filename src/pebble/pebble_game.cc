#include "pebble/pebble_game.h"

#include <map>
#include <vector>

#include "base/check.h"
#include "base/subsets.h"

namespace hompres {

namespace {

// A partial map is encoded as a vector<int> of size |A| with -1 for
// "unset".
using PartialMap = std::vector<int>;

// Is p (restricted to its domain) a partial homomorphism? A tuple of A is
// checked only when all its entries are in the domain.
bool IsPartialHomomorphism(const Structure& a, const Structure& b,
                           const PartialMap& p) {
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : a.Tuples(rel)) {
      Tuple image;
      image.reserve(t.size());
      bool full = true;
      for (int e : t) {
        const int v = p[static_cast<size_t>(e)];
        if (v == -1) {
          full = false;
          break;
        }
        image.push_back(v);
      }
      if (full && !b.HasTuple(rel, image)) return false;
    }
  }
  return true;
}

}  // namespace

Outcome<bool> DuplicatorWinsExistentialKPebbleGameBudgeted(const Structure& a,
                                                           const Structure& b,
                                                           int k,
                                                           Budget& budget) {
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  HOMPRES_CHECK_GE(k, 1);
  const int n = a.UniverseSize();
  const int m = b.UniverseSize();
  if (n == 0) return Outcome<bool>::Finish(budget, true);  // nothing to pebble
  if (m == 0) {
    // Spoiler pebbles anything, no reply.
    return Outcome<bool>::Finish(budget, false);
  }

  // Enumerate all partial homomorphisms with domain size <= k. One budget
  // step per candidate map; the family itself is charged as memory.
  std::map<PartialMap, bool> alive;  // value: still in the family
  const int max_domain = std::min(k, n);
  bool stopped = false;
  for (int size = 0; size <= max_domain && !stopped; ++size) {
    ForEachCombination(n, size, [&](const std::vector<int>& domain) {
      return ForEachTuple(m, size, [&](const std::vector<int>& values) {
        if (!budget.Checkpoint()) {
          stopped = true;
          return false;
        }
        PartialMap p(static_cast<size_t>(n), -1);
        for (int i = 0; i < size; ++i) {
          p[static_cast<size_t>(domain[static_cast<size_t>(i)])] =
              values[static_cast<size_t>(i)];
        }
        if (IsPartialHomomorphism(a, b, p)) {
          if (!budget.ChargeMemory(sizeof(int) * p.size())) {
            stopped = true;
            return false;
          }
          alive.emplace(std::move(p), true);
        }
        return true;
      });
    });
  }
  if (stopped) return Outcome<bool>::StoppedShort(budget.Report());

  // Iterated removal to the greatest fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [p, live] : alive) {
      if (!live) continue;
      if (!budget.Checkpoint()) {
        return Outcome<bool>::StoppedShort(budget.Report());
      }
      int domain_size = 0;
      for (int v : p) {
        if (v != -1) ++domain_size;
      }
      bool remove = false;
      // Forth property: if the domain is not full, every element of A
      // must be coverable.
      if (domain_size < max_domain) {
        for (int e = 0; e < n && !remove; ++e) {
          if (p[static_cast<size_t>(e)] != -1) continue;
          bool extendable = false;
          PartialMap q = p;
          for (int v = 0; v < m; ++v) {
            q[static_cast<size_t>(e)] = v;
            auto it = alive.find(q);
            if (it != alive.end() && it->second) {
              extendable = true;
              break;
            }
          }
          if (!extendable) remove = true;
        }
      }
      // Subfunction closure: all one-point restrictions must be alive.
      if (!remove) {
        PartialMap q = p;
        for (int e = 0; e < n && !remove; ++e) {
          if (p[static_cast<size_t>(e)] == -1) continue;
          q[static_cast<size_t>(e)] = -1;
          auto it = alive.find(q);
          if (it == alive.end() || !it->second) remove = true;
          q[static_cast<size_t>(e)] = p[static_cast<size_t>(e)];
        }
      }
      if (remove) {
        live = false;
        changed = true;
      }
    }
  }

  const PartialMap empty(static_cast<size_t>(n), -1);
  auto it = alive.find(empty);
  const bool wins = it != alive.end() && it->second;
  return Outcome<bool>::Done(wins, budget.Report());
}

bool DuplicatorWinsExistentialKPebbleGame(const Structure& a,
                                          const Structure& b, int k) {
  Budget unlimited = Budget::Unlimited();
  return DuplicatorWinsExistentialKPebbleGameBudgeted(a, b, k, unlimited)
      .Value();
}

}  // namespace hompres
