#include "engine/engine.h"

#include <string>
#include <utility>

#include "base/check.h"
#include "base/failpoint.h"
#include "base/saturating.h"
#include "hom/hom_cache.h"
#include "hom/homomorphism.h"
#include "hom/kernel.h"
#include "hom/parallel.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

KernelOptions ToKernelOptions(const EngineConfig& config) {
  KernelOptions options;
  options.surjective = config.surjective;
  options.forced = config.forced;
  options.use_arc_consistency = config.use_arc_consistency;
  options.use_index = config.use_index;
  return options;
}

// The parallel subtree driver keeps its legacy HomOptions surface (it is
// an execution backend, not a planner); this converter is the only place
// an EngineConfig turns back into one.
HomOptions ToHomOptions(const EngineConfig& config) {
  HomOptions options;
  options.surjective = config.surjective;
  options.forced = config.forced;
  options.use_arc_consistency = config.use_arc_consistency;
  options.use_index = config.use_index;
  options.num_threads = config.num_threads;
  options.deterministic_witness = config.deterministic_witness;
  options.factorize = config.factorize;
  options.use_cache = config.use_cache;
  return options;
}

// Re-plans the cache-miss path: same problem, cache disabled. The config
// was already normalized by the original planning call, so strict
// re-planning cannot fail.
HomPlan ReplanUncached(const HomPlan& plan) {
  EngineConfig uncached = plan.config;
  uncached.use_cache = false;
  PlanResult replanned =
      PlanHomQuery(plan.problem, uncached, PlanMode::kStrict);
  HOMPRES_CHECK(replanned.plan.has_value());
  return *std::move(replanned.plan);
}

// Plans a sub-query (component / miss path) whose config is known valid.
HomPlan PlanSubQuery(const HomProblem& problem, const EngineConfig& config) {
  PlanResult planned = PlanHomQuery(problem, config, PlanMode::kStrict);
  HOMPRES_CHECK(planned.plan.has_value());
  return *std::move(planned.plan);
}

Outcome<std::optional<std::vector<int>>> FindDispatch(const HomPlan& plan,
                                                      Budget& budget);
Outcome<uint64_t> CountDispatch(const HomPlan& plan, Budget& budget);

// ---------------------------------------------------------------------
// Degradation ladder (DESIGN.md §4.6). When a facility the plan relies
// on fails — for real, or through an armed failpoint — execution falls
// back one rung instead of failing the query, and the fallback is
// recorded on the root plan (surfaced by Explain/Summary and mirrored
// into the trace). Every rung preserves the answer.
// ---------------------------------------------------------------------

void RecordDegradation(const HomPlan& root, ExecutionTrace* trace,
                       DegradationKind kind, const char* site,
                       std::string detail) {
  DegradationEvent event{kind, site, std::move(detail)};
  if (trace != nullptr) trace->degradations.push_back(event);
  root.degradations.push_back(std::move(event));
}

// Applies the ladder to a dispatch-ready plan (the plan itself for
// uncached queries, the re-planned miss path for cached ones) and
// returns the plan actually dispatched. Probes happen once per
// top-level Execute, before dispatch, so a fired fault always leaves a
// DegradationEvent on `root`; sub-query plans (per-component, spawned by
// the factorized drivers) inherit the degraded config and are not
// re-probed. Ladder order: index -> scan, parallel -> serial,
// factorized -> monolithic, AC bitset -> naive backtracking. (The cache
// rungs — unreadable shard treated as an evicted miss, failed insert
// skipped — live with the cache consult in ExecuteHas/ExecuteCount.)
HomPlan DegradeForDispatch(HomPlan plan, const HomPlan& root,
                           ExecutionTrace* trace) {
  // Index -> scan: a target whose index cannot be built (allocation
  // failure or "relation_index/build") is scanned directly. TryIndex
  // returns the cached index without consulting the failpoint, so a
  // successful probe here is never re-failed inside the kernels.
  if (plan.use_index && plan.problem.target->TryIndex() == nullptr) {
    plan.use_index = false;
    plan.config.use_index = false;
    RecordDegradation(root, trace, DegradationKind::kIndexToScan,
                      "relation_index/build",
                      "target index unavailable; kernels scan tuple lists");
  }
  // Parallel -> serial: a canary probe of the pool's spawn failpoint
  // stands in for "no worker threads available"; the query runs as one
  // serial search. (A partial spawn failure below this canary degrades
  // inside ThreadPool itself: fewer workers, same answers.)
  if (plan.config.num_threads > 0 && HOMPRES_FAILPOINT("thread_pool/spawn")) {
    plan.config.num_threads = 0;
    plan.strategy = plan.components.size() >= 2 ? ExecStrategy::kFactorized
                                                : ExecStrategy::kSerial;
    plan.split_elements.clear();
    plan.split_tasks = 1;
    RecordDegradation(root, trace, DegradationKind::kParallelToSerial,
                      "thread_pool/spawn",
                      "worker threads unavailable; serial search");
  }
  // Factorized -> monolithic: abandon the Gaifman-component split and
  // search the whole source at once.
  if (plan.components.size() >= 2 && HOMPRES_FAILPOINT("engine/factorize")) {
    plan.components.clear();
    plan.config.factorize = false;
    if (plan.strategy == ExecStrategy::kFactorized) {
      plan.strategy = plan.config.num_threads > 0
                          ? ExecStrategy::kParallelSplit
                          : ExecStrategy::kSerial;
    }
    RecordDegradation(root, trace, DegradationKind::kFactorizedToMonolithic,
                      "engine/factorize",
                      "component split abandoned; monolithic search");
  }
  // AC bitset -> naive backtracking: the packed-domain workspace cannot
  // be grown, so the plan falls back to the naive kernel (which also
  // never scans an index).
  if (plan.config.use_arc_consistency &&
      HOMPRES_FAILPOINT("hom/workspace_alloc")) {
    plan.config.use_arc_consistency = false;
    plan.config.use_index = false;
    plan.use_index = false;
    plan.kernel = SerialKernel::kNaiveBacktracking;
    RecordDegradation(root, trace, DegradationKind::kAcToNaive,
                      "hom/workspace_alloc",
                      "AC workspace unavailable; naive backtracking");
  }
  return plan;
}

// Factorization rewrites hom(A, B) through the connected components of
// A's Gaifman graph: a homomorphism is exactly an independent choice of
// homomorphism per component, so existence is a conjunction and the
// count is a product. Planning only selects it when nothing couples the
// components (no surjectivity, no forced pairs).
Outcome<std::optional<std::vector<int>>> FindFactorized(
    const HomPlan& plan, Budget& budget) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  const Structure& a = *plan.problem.source;
  const Structure& b = *plan.problem.target;
  EngineConfig sub_config = plan.config;
  sub_config.factorize = false;  // components are connected: don't re-split
  std::vector<int> h(static_cast<size_t>(a.UniverseSize()), -1);
  for (const std::vector<int>& elements : plan.components) {
    const Structure sub = a.InducedSubstructure(elements);
    HomProblem sub_problem;
    sub_problem.source = &sub;
    sub_problem.target = &b;
    sub_problem.mode = HomQueryMode::kFind;
    auto found =
        FindDispatch(PlanSubQuery(sub_problem, sub_config), budget);
    if (!found.IsDone()) return Result::StoppedShort(found.Report());
    if (!found.Value().has_value()) {
      // One component with no homomorphism is a certain global "no".
      return Result::Done(std::nullopt, budget.Report());
    }
    const std::vector<int>& sub_h = *found.Value();
    for (size_t i = 0; i < elements.size(); ++i) {
      h[static_cast<size_t>(elements[i])] = sub_h[i];
    }
  }
  HOMPRES_CHECK(VerifyHomomorphism(a, b, h));
  return Result::Done(std::move(h), budget.Report());
}

Outcome<uint64_t> CountFactorized(const HomPlan& plan, Budget& budget) {
  const Structure& a = *plan.problem.source;
  const Structure& b = *plan.problem.target;
  const uint64_t limit = plan.problem.limit;
  EngineConfig sub_config = plan.config;
  sub_config.factorize = false;
  uint64_t product = 1;
  bool saturated = false;  // the running product has reached `limit`
  for (const std::vector<int>& elements : plan.components) {
    const Structure sub = a.InducedSubstructure(elements);
    // Once the product has reached the limit, later components only
    // matter through "zero or not": count them with limit 1. Clamping
    // the per-component counts at `limit` keeps each sub-enumeration
    // bounded without changing min(total, limit): if some component
    // count was clamped, the true total is already >= limit.
    HomProblem sub_problem;
    sub_problem.source = &sub;
    sub_problem.target = &b;
    sub_problem.mode = HomQueryMode::kCount;
    sub_problem.limit = saturated ? 1 : limit;
    auto counted =
        CountDispatch(PlanSubQuery(sub_problem, sub_config), budget);
    if (!counted.IsDone()) {
      return Outcome<uint64_t>::StoppedShort(counted.Report());
    }
    if (counted.Value() == 0) {
      return Outcome<uint64_t>::Done(0, budget.Report());
    }
    if (!saturated) {
      product = SatMul(product, counted.Value());
      if (limit != 0 && product >= limit) {
        product = limit;
        saturated = true;
      }
    }
  }
  return Outcome<uint64_t>::Done(product, budget.Report());
}

// Find/has dispatch below the cache: factorized -> parallel -> serial.
// Dispatch keys on the normalized config (not the strategy label) so
// execution matches the legacy engine bit for bit: the parallel driver
// owns its own serial fallback for splits that turn out trivial.
Outcome<std::optional<std::vector<int>>> FindDispatch(const HomPlan& plan,
                                                      Budget& budget) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  const Structure& a = *plan.problem.source;
  const Structure& b = *plan.problem.target;
  if (plan.components.size() >= 2) return FindFactorized(plan, budget);
  if (plan.config.num_threads > 0) {
    return ParallelFindHomomorphismBudgeted(a, b, budget,
                                            ToHomOptions(plan.config));
  }
  std::optional<std::vector<int>> result;
  RunSerialHomKernel(a, b, ToKernelOptions(plan.config), budget,
                     [&](const std::vector<int>& h) {
                       result = h;
                       return false;  // stop at the first witness
                     });
  if (result.has_value()) {
    HOMPRES_CHECK(VerifyHomomorphism(a, b, *result));
    // A witness is a witness even if the budget ran out as it was found.
    return Result::Done(std::move(result), budget.Report());
  }
  return Result::Finish(budget, std::nullopt);
}

Outcome<uint64_t> CountDispatch(const HomPlan& plan, Budget& budget) {
  const Structure& a = *plan.problem.source;
  const Structure& b = *plan.problem.target;
  const uint64_t limit = plan.problem.limit;
  if (plan.components.size() >= 2) return CountFactorized(plan, budget);
  if (plan.config.num_threads > 0) {
    return ParallelCountHomomorphismsBudgeted(a, b, budget, limit,
                                              ToHomOptions(plan.config));
  }
  uint64_t count = 0;
  RunSerialHomKernel(a, b, ToKernelOptions(plan.config), budget,
                     [&](const std::vector<int>&) {
                       ++count;
                       return limit == 0 || count < limit;
                     });
  // Reaching the limit completes the query; only a budget stop without
  // the limit leaves the count uncertain.
  if (limit != 0 && count >= limit) {
    return Outcome<uint64_t>::Done(count, budget.Report());
  }
  return Outcome<uint64_t>::Finish(budget, count);
}

// Cached -> uncached rung, shared by ExecuteHas/ExecuteCount: a failed
// lookup means the shard cannot be trusted; evict it wholesale and
// proceed as a miss (the insert below repopulates the now-empty shard).
void DegradeFailedLookup(const HomPlan& plan, ExecutionTrace* trace) {
  HomCache::Global().EvictShardFor(plan.source_fingerprint,
                                   plan.target_fingerprint);
  RecordDegradation(plan, trace, DegradationKind::kCacheLookupToMiss,
                    "hom_cache/lookup",
                    "shard unreadable; evicted and treated as a miss");
}

Outcome<HomResult> ExecuteHas(const HomPlan& plan, Budget& budget,
                              ExecutionTrace* trace) {
  if (plan.consult_cache) {
    if (trace != nullptr) trace->cache_consulted = true;
    bool lookup_failed = false;
    if (auto hit = HomCache::Global().Lookup(
            plan.source_fingerprint, plan.target_fingerprint,
            plan.options_digest, HomCache::Kind::kHas, &lookup_failed)) {
      if (trace != nullptr) trace->cache_hit = true;
      HomResult result;
      result.has = (*hit != 0);
      return Outcome<HomResult>::Done(std::move(result), budget.Report());
    }
    if (lookup_failed) DegradeFailedLookup(plan, trace);
    auto found = FindDispatch(
        DegradeForDispatch(ReplanUncached(plan), plan, trace), budget);
    if (!found.IsDone()) {
      return Outcome<HomResult>::StoppedShort(found.Report());
    }
    const bool has = found.Value().has_value();
    // Only completed answers are cached; an exhausted search proves
    // nothing about the pair.
    const bool stored = HomCache::Global().Insert(
        plan.source_fingerprint, plan.target_fingerprint, plan.options_digest,
        HomCache::Kind::kHas, has ? 1 : 0);
    if (stored) {
      if (trace != nullptr) trace->cache_stored = true;
    } else {
      RecordDegradation(plan, trace, DegradationKind::kCacheInsertSkipped,
                        "hom_cache/shard_insert",
                        "completed answer not memoized");
    }
    HomResult result;
    result.has = has;
    return Outcome<HomResult>::Done(std::move(result), found.Report());
  }
  auto found = FindDispatch(DegradeForDispatch(plan, plan, trace), budget);
  if (!found.IsDone()) return Outcome<HomResult>::StoppedShort(found.Report());
  HomResult result;
  result.has = found.Value().has_value();
  return Outcome<HomResult>::Done(std::move(result), found.Report());
}

Outcome<HomResult> ExecuteFind(const HomPlan& plan, Budget& budget,
                               ExecutionTrace* trace) {
  auto found = FindDispatch(DegradeForDispatch(plan, plan, trace), budget);
  if (!found.IsDone()) return Outcome<HomResult>::StoppedShort(found.Report());
  const BudgetReport report = found.Report();
  HomResult result;
  result.witness = std::move(found).TakeValue();
  result.has = result.witness.has_value();
  return Outcome<HomResult>::Done(std::move(result), report);
}

Outcome<HomResult> ExecuteCount(const HomPlan& plan, Budget& budget,
                                ExecutionTrace* trace) {
  if (plan.consult_cache) {
    if (trace != nullptr) trace->cache_consulted = true;
    bool lookup_failed = false;
    if (auto hit = HomCache::Global().Lookup(
            plan.source_fingerprint, plan.target_fingerprint,
            plan.options_digest, HomCache::Kind::kCount, &lookup_failed)) {
      if (trace != nullptr) trace->cache_hit = true;
      HomResult result;
      result.count = *hit;
      return Outcome<HomResult>::Done(std::move(result), budget.Report());
    }
    if (lookup_failed) DegradeFailedLookup(plan, trace);
    auto counted = CountDispatch(
        DegradeForDispatch(ReplanUncached(plan), plan, trace), budget);
    if (!counted.IsDone()) {
      return Outcome<HomResult>::StoppedShort(counted.Report());
    }
    const bool stored = HomCache::Global().Insert(
        plan.source_fingerprint, plan.target_fingerprint, plan.options_digest,
        HomCache::Kind::kCount, counted.Value());
    if (stored) {
      if (trace != nullptr) trace->cache_stored = true;
    } else {
      RecordDegradation(plan, trace, DegradationKind::kCacheInsertSkipped,
                        "hom_cache/shard_insert",
                        "completed answer not memoized");
    }
    HomResult result;
    result.count = counted.Value();
    return Outcome<HomResult>::Done(std::move(result), counted.Report());
  }
  auto counted = CountDispatch(DegradeForDispatch(plan, plan, trace), budget);
  if (!counted.IsDone()) {
    return Outcome<HomResult>::StoppedShort(counted.Report());
  }
  HomResult result;
  result.count = counted.Value();
  return Outcome<HomResult>::Done(std::move(result), counted.Report());
}

Outcome<HomResult> ExecuteEnumerate(const HomPlan& root, Budget& budget,
                                    ExecutionTrace* trace) {
  const HomPlan plan = DegradeForDispatch(root, root, trace);
  const Structure& a = *plan.problem.source;
  const Structure& b = *plan.problem.target;
  bool callback_stopped = false;
  RunSerialHomKernel(a, b, ToKernelOptions(plan.config), budget,
                     [&](const std::vector<int>& h) {
                       if (!plan.problem.callback(h)) {
                         callback_stopped = true;
                         return false;
                       }
                       return true;
                     });
  if (callback_stopped) {
    HomResult result;
    result.enumeration_completed = false;
    return Outcome<HomResult>::Done(std::move(result), budget.Report());
  }
  if (budget.Stopped()) {
    return Outcome<HomResult>::StoppedShort(budget.Report());
  }
  HomResult result;
  result.enumeration_completed = true;
  return Outcome<HomResult>::Done(std::move(result), budget.Report());
}

}  // namespace

std::string ExecutionTrace::ToString() const {
  std::string s = "trace: cache=";
  if (!cache_consulted) {
    s += "off";
  } else if (cache_hit) {
    s += "hit";
  } else if (cache_stored) {
    s += "miss+stored";
  } else {
    s += "miss";
  }
  s += " steps=" + std::to_string(steps_charged);
  if (!degradations.empty()) {
    s += " degraded=";
    for (size_t i = 0; i < degradations.size(); ++i) {
      if (i > 0) s += "+";
      s += DegradationKindName(degradations[i].kind);
    }
  }
  return s;
}

Outcome<HomResult> Engine::Execute(const HomPlan& plan, Budget& budget,
                                   ExecutionTrace* trace) {
  const uint64_t steps_before = budget.Report().steps_used;
  // The plan's degradation log describes one execution; start fresh.
  plan.degradations.clear();
  Outcome<HomResult> out = [&] {
    switch (plan.problem.mode) {
      case HomQueryMode::kHas:
        return ExecuteHas(plan, budget, trace);
      case HomQueryMode::kFind:
        return ExecuteFind(plan, budget, trace);
      case HomQueryMode::kCount:
        return ExecuteCount(plan, budget, trace);
      case HomQueryMode::kEnumerate:
        return ExecuteEnumerate(plan, budget, trace);
    }
    HOMPRES_CHECK(false);
    return Outcome<HomResult>::StoppedShort(BudgetReport{});
  }();
  if (trace != nullptr) {
    trace->steps_charged = budget.Report().steps_used - steps_before;
  }
  return out;
}

Outcome<bool> Engine::Has(const Structure& a, const Structure& b,
                          Budget& budget, const EngineConfig& config) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kHas;
  auto out = Execute(PlanSubQuery(problem, config), budget);
  if (!out.IsDone()) return Outcome<bool>::StoppedShort(out.Report());
  return Outcome<bool>::Done(out.Value().has, out.Report());
}

Outcome<std::optional<std::vector<int>>> Engine::Find(
    const Structure& a, const Structure& b, Budget& budget,
    const EngineConfig& config) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kFind;
  auto out = Execute(PlanSubQuery(problem, config), budget);
  if (!out.IsDone()) return Result::StoppedShort(out.Report());
  const BudgetReport report = out.Report();
  return Result::Done(std::move(out).TakeValue().witness, report);
}

Outcome<uint64_t> Engine::Count(const Structure& a, const Structure& b,
                                Budget& budget, uint64_t limit,
                                const EngineConfig& config) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kCount;
  problem.limit = limit;
  auto out = Execute(PlanSubQuery(problem, config), budget);
  if (!out.IsDone()) return Outcome<uint64_t>::StoppedShort(out.Report());
  return Outcome<uint64_t>::Done(out.Value().count, out.Report());
}

Outcome<bool> Engine::Enumerate(
    const Structure& a, const Structure& b, Budget& budget,
    const std::function<bool(const std::vector<int>&)>& callback,
    const EngineConfig& config) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kEnumerate;
  problem.callback = callback;
  auto out = Execute(PlanSubQuery(problem, config), budget);
  if (!out.IsDone()) return Outcome<bool>::StoppedShort(out.Report());
  return Outcome<bool>::Done(out.Value().enumeration_completed, out.Report());
}

}  // namespace hompres
