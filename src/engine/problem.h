// A homomorphism-shaped query, before planning.
//
// Every front end of the library — CQ/UCQ satisfaction and evaluation,
// core retract probes, pointed-structure maps, the pebble game's
// partial-hom family, Datalog-adjacent tooling — bottoms out in one of
// four questions about a pair of structures: does a homomorphism exist
// (kHas), produce one (kFind), how many are there (kCount), or visit
// them all (kEnumerate). HomProblem is that question as a value; pair it
// with an EngineConfig and pass both to PlanHomQuery (engine/plan.h) to
// obtain an executable HomPlan.
//
// The structures are referenced, not owned: a HomProblem (and any plan
// built from it) is valid only while the source and target outlive it
// and are not mutated.

#ifndef HOMPRES_ENGINE_PROBLEM_H_
#define HOMPRES_ENGINE_PROBLEM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "structure/structure.h"

namespace hompres {

enum class HomQueryMode {
  kHas,        // does a homomorphism source -> target exist?
  kFind,       // produce a witness (or a certain "none")
  kCount,      // exact count, optionally stopping at `limit`
  kEnumerate,  // visit every homomorphism through `callback`
};

// Stable lowercase name ("has", "find", "count", "enumerate").
const char* HomQueryModeName(HomQueryMode mode);

struct HomProblem {
  const Structure* source = nullptr;
  const Structure* target = nullptr;
  HomQueryMode mode = HomQueryMode::kFind;

  // kCount: stop once this many homomorphisms have been seen (0 = count
  // all). Meaningless for the other modes (strict planning rejects it).
  uint64_t limit = 0;

  // kEnumerate: invoked for every homomorphism found; return false to
  // stop the enumeration. Required for kEnumerate, ignored otherwise.
  std::function<bool(const std::vector<int>&)> callback;
};

}  // namespace hompres

#endif  // HOMPRES_ENGINE_PROBLEM_H_
