// Maintenance planning: choose how a materialized Datalog view follows a
// StructureDelta (DESIGN.md §4.10).
//
// The chooser is a fixed decision ladder over cheap, precomputed traits
// of the (program, delta) pair — it never looks at tuple values:
//
//   1. forced baseline            -> from-scratch (differential testing)
//   2. empty net tuple delta      -> no-op (element appends cannot create
//                                   IDB facts: every head variable is
//                                   bound through a body atom)
//   3. certified bounded program  -> re-evaluate the optimized stage-UCQ
//                                   unfoldings (PR9 optimizer output);
//                                   cost is delta-independent, so this
//                                   wins once deltas are large or mixed
//   4. non-recursive program      -> counting (signed derivation counts,
//                                   exact under insertion AND deletion)
//   5. insertion-only delta       -> semi-naive delta rules
//   6. otherwise                  -> DRed (overdelete / rederive), with
//                                   delta-insert for the inserted half
//
// Every strategy computes the same IDB as a from-scratch refixpoint;
// only cost differs. Execution-time faults ("view/maintain",
// "delta/apply") demote the chosen strategy to from-scratch and are
// recorded as DegradationEvents on the plan, exactly like the
// homomorphism engine's ladder (engine/plan.h).
//
// The plan is deliberately engine-agnostic: src/datalog/incremental.h
// executes it, src/server reports it, and Explain()/Summary() render it
// in the same stable, diffable shapes as HomPlan.

#ifndef HOMPRES_ENGINE_MAINTAIN_H_
#define HOMPRES_ENGINE_MAINTAIN_H_

#include <string>
#include <vector>

#include "engine/plan.h"

namespace hompres {

enum class MaintainStrategy {
  kNoOp,         // empty net tuple delta: apply appends, keep the IDB
  kBoundedUcq,   // bounded program: evaluate the cached stage UCQs
  kCounting,     // non-recursive: signed derivation-count maintenance
  kDeltaInsert,  // insertion-only: semi-naive delta rounds
  kDRed,         // deletions in a recursive program: overdelete/rederive
  kFromScratch,  // full refixpoint (always sound; the fault fallback)
};

// Stable kebab-case name ("bounded-ucq", "delta-insert", ...) for
// Explain/Summary, server stats, and the bench-JSON plan field.
const char* MaintainStrategyName(MaintainStrategy strategy);

// The inputs the chooser looks at. Program-shape traits come from the
// view (computed once at construction); delta-shape traits are the net
// effect of the incoming edit script.
struct MaintenanceTraits {
  // Program shape.
  bool recursive = false;         // IDB dependency graph has a cycle
  bool has_inequalities = false;  // rules carry x != y guards
  bool bounded = false;           // every IDB holds an Ajtai-Gurevich
                                  // boundedness certificate
  int bounded_stage = 0;          // max witness stage when bounded

  // Net delta shape (after cancelling insert/remove pairs).
  int inserted = 0;
  int removed = 0;
  int appended_elements = 0;

  // Differential-testing baseline: always refixpoint from scratch.
  bool force_from_scratch = false;
};

struct MaintenancePlan {
  MaintainStrategy strategy = MaintainStrategy::kFromScratch;
  MaintenanceTraits traits;

  // Fallbacks taken while executing this plan (same contract as
  // HomPlan::degradations: logically an audit of the run, so mutable;
  // one plan must not be executed from two threads at once).
  mutable std::vector<DegradationEvent> degradations;

  // Multi-line, deterministic trace mirroring HomPlan::Explain(); after
  // a degraded execution ends with a "degradations:" section.
  std::string Explain() const;

  // One-line summary ("maintain=dred recursive=1 bounded=0 ins=2 rem=1
  // appends=0"), gaining a trailing "degraded=kind+kind" token after a
  // degraded run (bench/check_regression.py flags it).
  std::string Summary() const;
};

// The decision ladder above. Deterministic: same traits, same plan.
MaintenancePlan PlanMaintenance(const MaintenanceTraits& traits);

}  // namespace hompres

#endif  // HOMPRES_ENGINE_MAINTAIN_H_
