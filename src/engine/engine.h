// The unified execution engine for homomorphism-shaped queries.
//
// Engine::Execute is the single runner behind every mode: it consults
// the result cache, factors through Gaifman components, dispatches to
// the parallel subtree driver or the serial kernel, charges the budget,
// and synthesizes the stop reason — logic that previously lived
// duplicated across the per-mode entry points. Callers build a
// HomProblem, plan it (engine/plan.h), and execute the plan; the
// Has/Find/Count/Enumerate statics wrap that sequence for the common
// case (strict planning, default-constructed or caller-valid config —
// an invalid config is a programming error there and fails hard).
//
// The legacy hom/homomorphism.h entry points are now thin shims over
// this engine, planning in compatibility mode.

#ifndef HOMPRES_ENGINE_ENGINE_H_
#define HOMPRES_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "engine/config.h"
#include "engine/plan.h"
#include "engine/problem.h"

namespace hompres {

// The mode-polymorphic result of Execute. Which fields are meaningful
// depends on the plan's query mode:
//   kHas        -> has
//   kFind       -> witness (nullopt = certain "no"); has mirrors it
//   kCount      -> count
//   kEnumerate  -> enumeration_completed (false = the callback stopped)
struct HomResult {
  std::optional<std::vector<int>> witness;
  bool has = false;
  uint64_t count = 0;
  bool enumeration_completed = false;
};

// What actually happened during one Execute call, for --explain and the
// engine tests. Distinct from the plan: the plan is the decision, the
// trace is the event log.
struct ExecutionTrace {
  bool cache_consulted = false;
  bool cache_hit = false;
  bool cache_stored = false;
  uint64_t steps_charged = 0;  // budget steps used by this call
  // Fallbacks taken during this call (mirrors plan.degradations; see
  // the degradation ladder in engine.cc and DESIGN.md §4.6).
  std::vector<DegradationEvent> degradations;
  std::string ToString() const;
};

class Engine {
 public:
  // Runs the plan against `budget`. StoppedShort when the budget ran out
  // before the answer was certain (a witness found as the budget expired
  // still completes, matching the budget contract of the kernels).
  static Outcome<HomResult> Execute(const HomPlan& plan, Budget& budget,
                                    ExecutionTrace* trace = nullptr);

  // Convenience wrappers: build the problem, plan strictly (an invalid
  // config fails hard — migrated call sites pass valid configs), and
  // execute. The unbudgeted pattern is `Budget unlimited =
  // Budget::Unlimited()` plus `.Value()`.
  static Outcome<bool> Has(const Structure& a, const Structure& b,
                           Budget& budget, const EngineConfig& config = {});
  static Outcome<std::optional<std::vector<int>>> Find(
      const Structure& a, const Structure& b, Budget& budget,
      const EngineConfig& config = {});
  static Outcome<uint64_t> Count(const Structure& a, const Structure& b,
                                 Budget& budget, uint64_t limit,
                                 const EngineConfig& config = {});
  static Outcome<bool> Enumerate(
      const Structure& a, const Structure& b, Budget& budget,
      const std::function<bool(const std::vector<int>&)>& callback,
      const EngineConfig& config = {});
};

}  // namespace hompres

#endif  // HOMPRES_ENGINE_ENGINE_H_
