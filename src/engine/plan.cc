#include "engine/plan.h"

#include <string>

#include "base/check.h"
#include "base/hash.h"
#include "base/simd.h"
#include "engine/ordering.h"
#include "graph/algorithms.h"
#include "opt/containment_cache.h"
#include "structure/gaifman.h"
#include "structure/relation_index.h"

namespace hompres {

const char* HomQueryModeName(HomQueryMode mode) {
  switch (mode) {
    case HomQueryMode::kHas:
      return "has";
    case HomQueryMode::kFind:
      return "find";
    case HomQueryMode::kCount:
      return "count";
    case HomQueryMode::kEnumerate:
      return "enumerate";
  }
  return "?";
}

const char* PlanErrorCodeName(PlanErrorCode code) {
  switch (code) {
    case PlanErrorCode::kVocabularyMismatch:
      return "vocabulary-mismatch";
    case PlanErrorCode::kMissingCallback:
      return "missing-callback";
    case PlanErrorCode::kLimitOutsideCount:
      return "limit-outside-count";
    case PlanErrorCode::kCacheWithFind:
      return "cache-with-find";
    case PlanErrorCode::kCacheWithEnumerate:
      return "cache-with-enumerate";
    case PlanErrorCode::kFactorizeWithSurjective:
      return "factorize-with-surjective";
    case PlanErrorCode::kFactorizeWithForced:
      return "factorize-with-forced";
    case PlanErrorCode::kIndexWithoutArcConsistency:
      return "index-without-arc-consistency";
  }
  return "?";
}

const char* SerialKernelName(SerialKernel kernel) {
  switch (kernel) {
    case SerialKernel::kArcConsistencyBitset:
      return "ac-bitset";
    case SerialKernel::kNaiveBacktracking:
      return "naive";
  }
  return "?";
}

const char* DegradationKindName(DegradationKind kind) {
  switch (kind) {
    case DegradationKind::kCacheLookupToMiss:
      return "cache-lookup-to-miss";
    case DegradationKind::kCacheInsertSkipped:
      return "cache-insert-skipped";
    case DegradationKind::kIndexToScan:
      return "index-to-scan";
    case DegradationKind::kParallelToSerial:
      return "parallel-to-serial";
    case DegradationKind::kFactorizedToMonolithic:
      return "factorized-to-monolithic";
    case DegradationKind::kAcToNaive:
      return "ac-to-naive";
    case DegradationKind::kMinimizeToUnminimized:
      return "minimize-to-unminimized";
    case DegradationKind::kMaintainToFromScratch:
      return "maintain-to-scratch";
    case DegradationKind::kIndexDeltaToRebuild:
      return "index-delta-to-rebuild";
  }
  return "?";
}

const char* ExecStrategyName(ExecStrategy strategy) {
  switch (strategy) {
    case ExecStrategy::kSerial:
      return "serial";
    case ExecStrategy::kFactorized:
      return "factorized";
    case ExecStrategy::kParallelSplit:
      return "parallel-split";
  }
  return "?";
}

uint64_t CacheOptionsDigest(const EngineConfig& config, uint64_t limit) {
  // The sentinels and mixing order are shared with the pre-engine digest
  // so entries written by either layer key identically.
  uint64_t h = Mix64(config.surjective ? 0x53555246ULL : 0x544F54ULL);
  for (const auto& [var, val] : config.forced) {
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(var)));
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(val)));
  }
  h = Mix64(h ^ limit);
  return h;
}

namespace {

// One row of the audited option-compatibility table. Rows are applied in
// order; each either is a structured error under strict planning
// (error_in_strict) or a normalization recorded as an adjustment in both
// modes (mode-driven rows: enumeration is always serial and monolithic,
// deterministic_witness needs a thread pool to matter).
struct ValidationRule {
  bool error_in_strict;
  PlanErrorCode code;  // meaningful only when error_in_strict
  // Human-readable description, used both as the strict error message
  // and as the recorded adjustment text.
  const char* message;
  bool (*applies)(HomQueryMode mode, const EngineConfig& config);
  void (*fix)(EngineConfig& config);
};

const ValidationRule kValidationTable[] = {
    // Mode-driven normalizations first: they are not caller errors (the
    // default config must stay usable in every mode), they are facts
    // about the mode.
    {false, PlanErrorCode::kCacheWithEnumerate,
     "enumeration is always serial: num_threads -> 0",
     [](HomQueryMode mode, const EngineConfig& config) {
       return mode == HomQueryMode::kEnumerate && config.num_threads > 0;
     },
     [](EngineConfig& config) { config.num_threads = 0; }},
    {false, PlanErrorCode::kCacheWithEnumerate,
     "enumeration is always monolithic: factorize -> off",
     [](HomQueryMode mode, const EngineConfig& config) {
       return mode == HomQueryMode::kEnumerate && config.factorize;
     },
     [](EngineConfig& config) { config.factorize = false; }},
    {false, PlanErrorCode::kCacheWithEnumerate,
     "deterministic_witness needs num_threads > 0: -> off",
     [](HomQueryMode mode, const EngineConfig& config) {
       (void)mode;
       return config.deterministic_witness && config.num_threads <= 0;
     },
     [](EngineConfig& config) { config.deterministic_witness = false; }},
    // Incompatible combinations: strict errors, compat normalizations.
    {true, PlanErrorCode::kCacheWithFind,
     "the cache stores has/count answers, never witnesses: use_cache is "
     "incompatible with a find query",
     [](HomQueryMode mode, const EngineConfig& config) {
       return mode == HomQueryMode::kFind && config.use_cache;
     },
     [](EngineConfig& config) { config.use_cache = false; }},
    {true, PlanErrorCode::kCacheWithEnumerate,
     "the cache stores has/count answers, never streams: use_cache is "
     "incompatible with an enumerate query",
     [](HomQueryMode mode, const EngineConfig& config) {
       return mode == HomQueryMode::kEnumerate && config.use_cache;
     },
     [](EngineConfig& config) { config.use_cache = false; }},
    {true, PlanErrorCode::kFactorizeWithSurjective,
     "surjectivity constrains the union of the component images: "
     "factorize is incompatible with surjective",
     [](HomQueryMode mode, const EngineConfig& config) {
       (void)mode;
       return config.factorize && config.surjective;
     },
     [](EngineConfig& config) { config.factorize = false; }},
    {true, PlanErrorCode::kFactorizeWithForced,
     "forced pairs name elements of the unsplit universe: factorize is "
     "incompatible with forced pairs",
     [](HomQueryMode mode, const EngineConfig& config) {
       (void)mode;
       return config.factorize && !config.forced.empty();
     },
     [](EngineConfig& config) { config.factorize = false; }},
    {true, PlanErrorCode::kIndexWithoutArcConsistency,
     "the naive kernel probes single tuples and never scans: use_index "
     "requires use_arc_consistency",
     [](HomQueryMode mode, const EngineConfig& config) {
       (void)mode;
       return config.use_index && !config.use_arc_consistency;
     },
     [](EngineConfig& config) { config.use_index = false; }},
};

PlanResult MakeError(PlanErrorCode code, const std::string& detail) {
  PlanResult result;
  result.error = PlanError{
      code, std::string(PlanErrorCodeName(code)) + ": " + detail};
  return result;
}

// Element lists of the Gaifman components of `a`, or empty when there
// are fewer than two (factorization is then the identity).
std::vector<std::vector<int>> SourceComponents(const Structure& a) {
  if (a.UniverseSize() < 2) return {};
  int num_components = 0;
  const std::vector<int> comp =
      ConnectedComponents(GaifmanGraph(a), &num_components);
  if (num_components < 2) return {};
  std::vector<std::vector<int>> elements(static_cast<size_t>(num_components));
  for (int v = 0; v < a.UniverseSize(); ++v) {
    elements[static_cast<size_t>(comp[static_cast<size_t>(v)])].push_back(v);
  }
  return elements;
}

}  // namespace

PlanResult PlanHomQuery(const HomProblem& problem, const EngineConfig& config,
                        PlanMode mode) {
  HOMPRES_CHECK(problem.source != nullptr);
  HOMPRES_CHECK(problem.target != nullptr);
  const Structure& a = *problem.source;
  const Structure& b = *problem.target;

  // Caller bugs: structured errors under strict planning, hard failures
  // under compat (the legacy entry points CHECKed these).
  if (!(a.GetVocabulary() == b.GetVocabulary())) {
    if (mode == PlanMode::kStrict) {
      return MakeError(PlanErrorCode::kVocabularyMismatch,
                       "source and target must share a vocabulary");
    }
    HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  }
  if (problem.mode == HomQueryMode::kEnumerate && !problem.callback) {
    if (mode == PlanMode::kStrict) {
      return MakeError(PlanErrorCode::kMissingCallback,
                       "an enumerate query needs a callback");
    }
    HOMPRES_CHECK(problem.callback != nullptr);
  }

  PlanResult result;
  result.plan.emplace();
  HomPlan& plan = *result.plan;
  plan.problem = problem;
  plan.config = config;

  if (problem.limit != 0 && problem.mode != HomQueryMode::kCount) {
    if (mode == PlanMode::kStrict) {
      return MakeError(PlanErrorCode::kLimitOutsideCount,
                       "limit is meaningful only for a count query");
    }
    plan.problem.limit = 0;
    plan.adjustments.push_back("limit is meaningful only for count: -> 0");
  }

  // Pass 1: the audited compatibility table.
  for (const ValidationRule& rule : kValidationTable) {
    if (!rule.applies(plan.problem.mode, plan.config)) continue;
    if (rule.error_in_strict && mode == PlanMode::kStrict) {
      return MakeError(rule.code, rule.message);
    }
    rule.fix(plan.config);
    plan.adjustments.push_back(rule.message);
  }

  // Pass 2: forced-pair range. An out-of-range pair is an unsatisfiable
  // constraint; the kernel answers the certain "no" without searching.
  for (const auto& [var, val] : plan.config.forced) {
    if (var < 0 || var >= a.UniverseSize() || val < 0 ||
        val >= b.UniverseSize()) {
      plan.forced_in_range = false;
      break;
    }
  }

  // Kernel selection (valid regardless of strategy; factorized and
  // parallel execution bottom out in this serial kernel per subproblem).
  plan.kernel = plan.config.use_arc_consistency
                    ? SerialKernel::kArcConsistencyBitset
                    : SerialKernel::kNaiveBacktracking;
  plan.use_index = plan.config.use_index && plan.config.use_arc_consistency;

  // Pass 3: cache consult. Dispatch planning is deferred: a hit answers
  // from the fingerprint key alone, and the miss path re-plans without
  // the cache, so neither pays for component or split analysis here.
  plan.consult_cache = plan.config.use_cache &&
                       (plan.problem.mode == HomQueryMode::kHas ||
                        plan.problem.mode == HomQueryMode::kCount);
  if (plan.consult_cache) {
    plan.options_digest = CacheOptionsDigest(plan.config, plan.problem.limit);
    plan.source_fingerprint = a.Fingerprint();
    plan.target_fingerprint = b.Fingerprint();
    return result;
  }

  // Pass 4: Gaifman-component factorization. The table has already
  // cleared factorize for enumeration, surjectivity, and forced pairs
  // (or errored), so applicability is just the component count.
  if (plan.config.factorize) {
    plan.components = SourceComponents(a);
    if (plan.components.size() >= 2) {
      plan.strategy = ExecStrategy::kFactorized;
      return result;
    }
    plan.components.clear();
  }

  // Pass 5: parallel subtree split, driven by the source's occurrence
  // statistics. Enumeration was serialized by the table; an out-of-range
  // forced pair keeps the query serial (the kernel answers it directly).
  if (plan.config.num_threads > 0 && plan.forced_in_range &&
      plan.problem.mode != HomQueryMode::kEnumerate) {
    const SplitChoice split =
        ChooseSplitElements(a, b, plan.config.forced, plan.config.num_threads);
    if (split.num_tasks >= 2) {
      plan.strategy = ExecStrategy::kParallelSplit;
      plan.split_elements = split.elements;
      plan.split_tasks = split.num_tasks;
    }
  }
  return result;
}

std::string HomPlan::Summary() const {
  std::string s;
  s += "mode=";
  s += HomQueryModeName(problem.mode);
  s += " strategy=";
  s += ExecStrategyName(strategy);
  s += " kernel=";
  s += SerialKernelName(kernel);
  s += " simd=";
  s += simd::SimdLevelName(simd::ActiveSimdLevel());
  s += " components=";
  s += std::to_string(components.empty() ? 1 : components.size());
  s += " tasks=";
  s += std::to_string(split_tasks);
  s += " cache=";
  s += consult_cache ? "1" : "0";
  if (config.optimizer) {
    // Optimizer-issued plans carry the containment cache's point-in-time
    // hit rate: the bench JSON `plan` field then records how much of the
    // run's containment work was memoized. Only stamped when the
    // attribution flag is set, so pre-optimizer plan strings (and the
    // golden Explain tests) are byte-identical.
    s += " optimizer=1 ccache-hit-rate=";
    s += std::to_string(ContainmentCache::Global().Stats().HitRatePercent());
  }
  if (!degradations.empty()) {
    s += " degraded=";
    for (size_t i = 0; i < degradations.size(); ++i) {
      if (i > 0) s += "+";
      s += DegradationKindName(degradations[i].kind);
    }
  }
  return s;
}

std::string HomPlan::Explain() const {
  std::string s = "HomPlan\n";
  s += "  mode: ";
  s += HomQueryModeName(problem.mode);
  if (problem.mode == HomQueryMode::kCount) {
    s += " (limit=" + std::to_string(problem.limit) + ")";
  }
  s += "\n  strategy: ";
  s += ExecStrategyName(strategy);
  if (consult_cache) s += " (deferred: re-planned on cache miss)";
  s += "\n  kernel: ";
  s += SerialKernelName(kernel);
  s += use_index ? " (index narrowing on)" : " (index narrowing off)";
  s += "\n  simd: ";
  s += simd::SimdLevelName(simd::ActiveSimdLevel());
  s += " (detected ";
  s += simd::SimdLevelName(simd::DetectedSimdLevel());
  s += ")";
  s += "\n  cache: ";
  s += consult_cache ? "consult" : "off";
  s += "\n  components: ";
  if (components.empty()) {
    s += "1 (monolithic)";
  } else {
    s += std::to_string(components.size()) + " [";
    for (size_t i = 0; i < components.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(components[i].size());
    }
    s += "]";
  }
  s += "\n  split: ";
  if (strategy == ExecStrategy::kParallelSplit) {
    s += "elements=[";
    for (size_t i = 0; i < split_elements.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(split_elements[i]);
    }
    s += "] tasks=" + std::to_string(split_tasks) + " threads=" +
         std::to_string(config.num_threads);
  } else {
    s += "none";
  }
  s += "\n  forced: ";
  s += std::to_string(config.forced.size()) + " pair" +
       (config.forced.size() == 1 ? "" : "s");
  if (!config.forced.empty()) {
    s += forced_in_range ? " (in range)" : " (out of range: certain no)";
  }
  if (config.optimizer) {
    const ContainmentCacheStats ccache = ContainmentCache::Global().Stats();
    s += "\n  optimizer: on (containment cache: ";
    s += std::to_string(ccache.hits) + " hits / ";
    s += std::to_string(ccache.Lookups()) + " lookups, ";
    s += std::to_string(ccache.HitRatePercent()) + "% hit rate)";
  }
  s += "\n  adjustments:";
  if (adjustments.empty()) {
    s += " none";
  } else {
    for (const std::string& adjustment : adjustments) {
      s += "\n    - " + adjustment;
    }
  }
  if (!degradations.empty()) {
    s += "\n  degradations:";
    for (const DegradationEvent& event : degradations) {
      s += "\n    - ";
      s += DegradationKindName(event.kind);
      s += " (" + event.site + "): " + event.detail;
    }
  }
  s += "\n";
  return s;
}

}  // namespace hompres
