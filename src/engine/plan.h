// Planning: turn a (HomProblem, EngineConfig) pair into an executable,
// inspectable HomPlan.
//
// Planning is a fixed sequence of deterministic passes:
//
//   1. Validation / normalization against one audited table
//      (kValidationTable in plan.cc). Each incompatible combination —
//      cache with a witness or enumeration query, factorization with
//      surjectivity or forced pairs, index narrowing without arc
//      consistency — is either a structured PlanError (strict mode) or
//      normalized away with a recorded adjustment (compatibility mode,
//      used by the legacy HomOptions entry points to preserve their
//      historical silent behavior). Mode-driven normalizations
//      (enumeration is always serial and monolithic) are adjustments in
//      both modes.
//   2. Forced-pair range check: a pair naming an element outside either
//      universe makes the query a certain "no"; the plan records it and
//      the kernel answers without searching.
//   3. Cache pass: has/count queries with use_cache consult the global
//      HomCache keyed by Structure::Fingerprint(); the plan carries the
//      fingerprints and options digest. Dispatch planning below is
//      deferred for such plans — the miss path re-plans without the
//      cache — so a cache hit costs no planning work.
//   4. Gaifman-component factorization: when sound (no surjectivity, no
//      forced pairs, not enumeration) and the source splits into two or
//      more components, the plan solves them independently.
//   5. Index-statistics-driven ordering + kernel selection: with
//      num_threads > 0 the split elements are chosen from the source's
//      occurrence order (engine/ordering.h) and the parallel
//      subtree-split driver runs them; otherwise the serial kernel
//      (AC-3 bitset, or naive backtracking when arc consistency is off)
//      runs with its dynamic smallest-domain-first variable order.
//
// The same inputs always produce the same plan, and HomPlan::Explain()
// renders it as a stable, diffable trace.

#ifndef HOMPRES_ENGINE_PLAN_H_
#define HOMPRES_ENGINE_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/config.h"
#include "engine/problem.h"

namespace hompres {

enum class PlanErrorCode {
  kVocabularyMismatch,         // source and target vocabularies differ
  kMissingCallback,            // kEnumerate without a callback
  kLimitOutsideCount,          // limit != 0 on a non-count query
  kCacheWithFind,              // cache stores scalar answers, not witnesses
  kCacheWithEnumerate,         // cache stores scalar answers, not streams
  kFactorizeWithSurjective,    // surjectivity couples the components
  kFactorizeWithForced,        // forced pairs name the unsplit universe
  kIndexWithoutArcConsistency, // the naive kernel never scans
};

// Stable kebab-case name (e.g. "cache-with-enumerate") for messages.
const char* PlanErrorCodeName(PlanErrorCode code);

struct PlanError {
  PlanErrorCode code;
  std::string message;
};

enum class SerialKernel {
  kArcConsistencyBitset,  // AC-3 over packed bitset domains (default)
  kNaiveBacktracking,     // plain backtracking baseline
};

enum class ExecStrategy {
  kSerial,         // one serial kernel run
  kFactorized,     // independent per-Gaifman-component sub-queries
  kParallelSplit,  // subtree-split over a work-stealing pool
};

const char* SerialKernelName(SerialKernel kernel);
const char* ExecStrategyName(ExecStrategy strategy);

// One rung of the execution-time degradation ladder (DESIGN.md §4.6):
// which fallback a failed (or fault-injected) facility forced. The
// ladder is ordered — cache first, then index, then parallelism, then
// factorization, then the AC kernel — and every fallback preserves the
// answer; only cost and (for parallel → serial with a nondeterministic
// witness policy) witness choice can change.
enum class DegradationKind {
  kCacheLookupToMiss,        // unreadable shard: treat as miss, evict shard
  kCacheInsertSkipped,       // result computed but not memoized
  kIndexToScan,              // index build failed: unindexed scans
  kParallelToSerial,         // workers unavailable: one serial search
  kFactorizedToMonolithic,   // component split abandoned: whole-source search
  kAcToNaive,                // AC workspace unavailable: naive backtracking
  kMinimizeToUnminimized,    // UCQ optimizer budget/probe failure: keep the
                             // redundant (but equivalent) input disjuncts
  kMaintainToFromScratch,    // view maintenance fault: full refixpoint
  kIndexDeltaToRebuild,      // structure cache fault under a delta:
                             // blanket invalidation, lazy rebuild
};

// Stable kebab-case name (e.g. "index-to-scan") for Explain/Summary and
// the bench-JSON plan field.
const char* DegradationKindName(DegradationKind kind);

// A structured record of one fallback taken during execution: the rung,
// the failpoint-style site name that tripped ("relation_index/build"),
// and a human-readable detail.
struct DegradationEvent {
  DegradationKind kind;
  std::string site;
  std::string detail;
};

struct HomPlan {
  HomProblem problem;
  EngineConfig config;  // normalized by the validation pass

  ExecStrategy strategy = ExecStrategy::kSerial;
  SerialKernel kernel = SerialKernel::kArcConsistencyBitset;
  bool use_index = false;  // effective index narrowing in the kernel

  // Cache pass. When consult_cache is set, strategy describes nothing:
  // dispatch is deferred to the cache-miss path (which re-plans without
  // the cache), so a cache hit costs no planning work.
  bool consult_cache = false;
  uint64_t source_fingerprint = 0;
  uint64_t target_fingerprint = 0;
  uint64_t options_digest = 0;

  // Factorization pass: element lists of the source's Gaifman
  // components; empty unless strategy == kFactorized.
  std::vector<std::vector<int>> components;

  // Parallel pass: split elements (occurrence order) and the task count
  // their value ranges cross into; meaningful for kParallelSplit.
  std::vector<int> split_elements;
  size_t split_tasks = 1;

  // False iff some forced pair names an element outside either
  // universe — the query is then a certain "no" without searching.
  bool forced_in_range = true;

  // Compatibility-mode (and mode-driven) normalizations applied by the
  // validation pass, in table order. Empty = the config was taken as is.
  std::vector<std::string> adjustments;

  // Degradations recorded by the most recent Engine::Execute of this
  // plan (cleared at the start of each execution). Mutable because a
  // plan is logically immutable — executing it does not change what was
  // planned — but the audit of *how* it actually ran belongs with the
  // plan the caller holds. Consequently a single HomPlan object must not
  // be executed from two threads at once.
  mutable std::vector<DegradationEvent> degradations;

  // Multi-line, deterministic plan trace (CLI --explain). After an
  // execution that degraded, ends with a "degradations:" section listing
  // each event as "kind (site): detail".
  std::string Explain() const;

  // One-line summary ("mode=has strategy=serial kernel=ac-bitset
  // simd=avx2 components=1 tasks=1 cache=0") stamped into bench JSON
  // rows so plan changes are diffable in CI; the simd token is the
  // dispatched bitset64 kernel level (base/simd.h). Plans carrying
  // EngineConfig::optimizer additionally stamp "optimizer=1
  // ccache-hit-rate=NN" (the containment cache's point-in-time hit
  // percentage, opt/containment_cache.h). After a degraded execution,
  // gains a trailing "degraded=kind+kind" token
  // (bench/check_regression.py flags it).
  std::string Summary() const;
};

enum class PlanMode {
  kStrict,  // incompatible combinations are PlanErrors
  kCompat,  // incompatible combinations are normalized and recorded
};

// Exactly one of `plan` and `error` is set. Compatibility-mode planning
// never returns an error for the audited combinations, but still fails
// hard (HOMPRES_CHECK) on caller bugs: vocabulary mismatch, enumeration
// without a callback.
struct PlanResult {
  std::optional<HomPlan> plan;
  std::optional<PlanError> error;
};

PlanResult PlanHomQuery(const HomProblem& problem, const EngineConfig& config,
                        PlanMode mode = PlanMode::kStrict);

// Digest of the config fields that change a has/count answer (engine
// selection is excluded: every engine returns the same answer by
// contract, so they share cache entries). Exposed for the cache tests.
uint64_t CacheOptionsDigest(const EngineConfig& config, uint64_t limit);

}  // namespace hompres

#endif  // HOMPRES_ENGINE_PLAN_H_
