#include "engine/maintain.h"

namespace hompres {

const char* MaintainStrategyName(MaintainStrategy strategy) {
  switch (strategy) {
    case MaintainStrategy::kNoOp:
      return "noop";
    case MaintainStrategy::kBoundedUcq:
      return "bounded-ucq";
    case MaintainStrategy::kCounting:
      return "counting";
    case MaintainStrategy::kDeltaInsert:
      return "delta-insert";
    case MaintainStrategy::kDRed:
      return "dred";
    case MaintainStrategy::kFromScratch:
      return "from-scratch";
  }
  return "?";
}

MaintenancePlan PlanMaintenance(const MaintenanceTraits& traits) {
  MaintenancePlan plan;
  plan.traits = traits;
  if (traits.force_from_scratch) {
    plan.strategy = MaintainStrategy::kFromScratch;
  } else if (traits.inserted == 0 && traits.removed == 0) {
    plan.strategy = MaintainStrategy::kNoOp;
  } else if (traits.bounded && !traits.has_inequalities) {
    plan.strategy = MaintainStrategy::kBoundedUcq;
  } else if (!traits.recursive) {
    plan.strategy = MaintainStrategy::kCounting;
  } else if (traits.removed == 0) {
    plan.strategy = MaintainStrategy::kDeltaInsert;
  } else {
    plan.strategy = MaintainStrategy::kDRed;
  }
  return plan;
}

std::string MaintenancePlan::Summary() const {
  std::string s = "maintain=";
  s += MaintainStrategyName(strategy);
  s += " recursive=";
  s += traits.recursive ? "1" : "0";
  s += " bounded=";
  s += traits.bounded ? "1" : "0";
  if (traits.bounded) {
    s += " stage=" + std::to_string(traits.bounded_stage);
  }
  s += " ins=" + std::to_string(traits.inserted);
  s += " rem=" + std::to_string(traits.removed);
  s += " appends=" + std::to_string(traits.appended_elements);
  if (!degradations.empty()) {
    s += " degraded=";
    for (size_t i = 0; i < degradations.size(); ++i) {
      if (i > 0) s += "+";
      s += DegradationKindName(degradations[i].kind);
    }
  }
  return s;
}

std::string MaintenancePlan::Explain() const {
  std::string s = "MaintenancePlan\n";
  s += "  strategy: ";
  s += MaintainStrategyName(strategy);
  s += "\n  program: ";
  s += traits.recursive ? "recursive" : "non-recursive";
  if (traits.has_inequalities) s += ", inequalities";
  if (traits.bounded) {
    s += ", bounded (stage " + std::to_string(traits.bounded_stage) + ")";
  }
  s += "\n  delta: +";
  s += std::to_string(traits.inserted);
  s += " -";
  s += std::to_string(traits.removed);
  s += " tuples, +";
  s += std::to_string(traits.appended_elements);
  s += " elements";
  if (traits.force_from_scratch) s += "\n  baseline: forced from-scratch";
  if (!degradations.empty()) {
    s += "\n  degradations:";
    for (const DegradationEvent& event : degradations) {
      s += "\n    - ";
      s += DegradationKindName(event.kind);
      s += " (" + event.site + "): " + event.detail;
    }
  }
  s += "\n";
  return s;
}

}  // namespace hompres
