// Index-statistics-driven ordering passes shared by the engine's
// planners.
//
// Two orderings live here because they are the same idea applied to two
// join problems:
//
//  - OccurrenceOrderedCandidates / ChooseSplitElements order the source
//    elements of a homomorphism search by how many tuples they occur in
//    (from the source's RelationIndex): the most-constrained decisions
//    first. The parallel subtree-split driver branches on the top of
//    this order; the serial kernel keeps its dynamic smallest-domain
//    heuristic (a static order would change which witness is found).
//
//  - GreedyBoundFirstAtomOrder orders the body atoms of a Datalog rule
//    so that each join step touches the atom with the most
//    already-bound variable slots (ties keep the original body order).
//    Extracted from the compiled-rule engine so the policy is stated,
//    and tested, once.

#ifndef HOMPRES_ENGINE_ORDERING_H_
#define HOMPRES_ENGINE_ORDERING_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "structure/structure.h"

namespace hompres {

// Source elements usable as search-split decisions, most tuple
// occurrences first (stable on ties, so the order is deterministic).
// Excludes isolated elements (no constraint to split on) and elements
// already pinned by a forced pair.
std::vector<int> OccurrenceOrderedCandidates(
    const Structure& a, const std::vector<std::pair<int, int>>& forced);

// The split decision of the parallel subtree driver: which source
// elements to branch on, and how many tasks the cross product of their
// value ranges yields. `elements` is empty when splitting is pointless
// (trivial instance, target universe < 2, or no usable candidate).
struct SplitChoice {
  std::vector<int> elements;
  size_t num_tasks = 1;
};

// Picks at most three of the highest-occurrence candidates until the
// task count reaches 2 * num_threads, capped so the cross product never
// exceeds the driver's task ceiling. Deterministic in its inputs.
SplitChoice ChooseSplitElements(const Structure& a, const Structure& b,
                                const std::vector<std::pair<int, int>>& forced,
                                int num_threads);

// Greedy bound-first join order for a rule body. atom_slots[i] lists the
// variable slots of body atom i; the result is a permutation of the atom
// indices: at each step the unused atom with the most already-bound
// slots (ties resolved to the lowest original index) joins next.
std::vector<int> GreedyBoundFirstAtomOrder(
    const std::vector<std::vector<int>>& atom_slots, int num_slots);

}  // namespace hompres

#endif  // HOMPRES_ENGINE_ORDERING_H_
