#include "engine/ordering.h"

#include <algorithm>

#include "structure/relation_index.h"

namespace hompres {

namespace {

// Maximum number of subtree tasks a split may produce: enough to load a
// work-stealing pool several times over (stealing evens out subtree-size
// skew) without drowning in per-task setup.
constexpr size_t kMaxSplitTasks = 512;

}  // namespace

std::vector<int> OccurrenceOrderedCandidates(
    const Structure& a, const std::vector<std::pair<int, int>>& forced) {
  const int n = a.UniverseSize();
  // Occurrence counts come from the cached index (one hoisted pass
  // instead of a rescan per planning call).
  const std::vector<int>& occurrences = a.Index().ElementOccurrences();
  std::vector<bool> already_forced(static_cast<size_t>(n), false);
  for (const auto& [var, val] : forced) {
    (void)val;
    if (var >= 0 && var < n) already_forced[static_cast<size_t>(var)] = true;
  }
  std::vector<int> candidates;
  for (int v = 0; v < n; ++v) {
    if (!already_forced[static_cast<size_t>(v)] &&
        occurrences[static_cast<size_t>(v)] > 0) {
      candidates.push_back(v);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(), [&](int x, int y) {
    return occurrences[static_cast<size_t>(x)] >
           occurrences[static_cast<size_t>(y)];
  });
  return candidates;
}

SplitChoice ChooseSplitElements(const Structure& a, const Structure& b,
                                const std::vector<std::pair<int, int>>& forced,
                                int num_threads) {
  SplitChoice choice;
  const int n = a.UniverseSize();
  const int m = b.UniverseSize();
  if (n == 0 || m < 2 || a.NumTuples() == 0) return choice;
  const std::vector<int> candidates = OccurrenceOrderedCandidates(a, forced);
  const size_t target = 2 * static_cast<size_t>(num_threads);
  for (int v : candidates) {
    if (choice.num_tasks >= target || choice.elements.size() >= 3) break;
    if (choice.num_tasks * static_cast<size_t>(m) > kMaxSplitTasks) break;
    choice.elements.push_back(v);
    choice.num_tasks *= static_cast<size_t>(m);
  }
  if (choice.elements.empty()) choice.num_tasks = 1;
  return choice;
}

std::vector<int> GreedyBoundFirstAtomOrder(
    const std::vector<std::vector<int>>& atom_slots, int num_slots) {
  const size_t n = atom_slots.size();
  std::vector<int> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<bool> bound(static_cast<size_t>(num_slots), false);
  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    int best_bound = -1;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      int count = 0;
      for (int s : atom_slots[i]) {
        if (bound[static_cast<size_t>(s)]) ++count;
      }
      // Strict improvement only: ties keep the lowest original index.
      if (count > best_bound) {
        best_bound = count;
        best = static_cast<int>(i);
      }
    }
    used[static_cast<size_t>(best)] = true;
    order.push_back(best);
    for (int s : atom_slots[static_cast<size_t>(best)]) {
      bound[static_cast<size_t>(s)] = true;
    }
  }
  return order;
}

}  // namespace hompres
