// Engine configuration: every tunable of the homomorphism engine in one
// value type (src/engine is the planning/execution layer behind all
// homomorphism-shaped queries; see engine/plan.h for how a config is
// validated and turned into an executable HomPlan).
//
// EngineConfig is the successor of the legacy HomOptions struct
// (hom/homomorphism.h), which survives as a thin compatibility shim that
// constructs an EngineConfig. The fields are intentionally identical so
// the migration is mechanical; the difference is in validation: direct
// EngineConfig users get strict planning (incompatible combinations are
// structured errors, see engine/plan.h), while the HomOptions entry
// points plan in compatibility mode (incompatible combinations are
// normalized away and recorded, preserving the legacy silent behavior).

#ifndef HOMPRES_ENGINE_CONFIG_H_
#define HOMPRES_ENGINE_CONFIG_H_

#include <utility>
#include <vector>

namespace hompres {

struct EngineConfig {
  // Require the witness to be surjective onto the target's universe
  // (Lemma 7.3: minimal models are surjective images). A global property:
  // incompatible with component factorization.
  bool surjective = false;

  // Pre-assigned pairs (a, b): h(a) must equal b. A pair referencing an
  // element outside either universe is an unsatisfiable constraint: the
  // query answers "no homomorphism" rather than aborting. Forced pairs
  // name elements of the unsplit universe: incompatible with component
  // factorization.
  std::vector<std::pair<int, int>> forced;

  // Disable arc consistency (naive backtracking baseline kernel).
  bool use_arc_consistency = true;

  // Use the target's RelationIndex to narrow the propagation scans.
  // Bit-identical results with fewer tuples visited. Only meaningful with
  // use_arc_consistency (the naive kernel probes single tuples and never
  // scans).
  bool use_index = true;

  // Worker threads for the parallel subtree-split driver. 0 = serial,
  // bit-identical to the single-threaded engine. Enumeration is always
  // serial (the callback makes no thread-safety promise).
  int num_threads = 0;

  // With num_threads > 0: return the witness of the lexicographically
  // first completed subtree (a deterministic function of the inputs)
  // instead of the first finisher's.
  bool deterministic_witness = false;

  // Factor the search through the connected components of the source's
  // Gaifman graph (existence = conjunction, count = saturating product).
  bool factorize = true;

  // Consult and fill the global homomorphism-result cache
  // (hom/hom_cache.h) for has/count queries, keyed by structure
  // fingerprints. Witness and enumeration queries are not cacheable (the
  // cache stores scalar answers only).
  bool use_cache = false;

  // Attribution: the query was issued by the containment-driven UCQ
  // optimizer (src/opt). No dispatch effect and excluded from the cache
  // digest; HomPlan::Summary()/Explain() stamp an `optimizer` section
  // (with the containment cache's hit rate) on plans carrying it, so
  // bench rows and --explain traces show which layer asked.
  bool optimizer = false;
};

}  // namespace hompres

#endif  // HOMPRES_ENGINE_CONFIG_H_
