// The Sunflower Lemma of Erdos and Rado (Theorem 4.1).
//
// A sunflower with p petals in a family of sets is a subfamily of p sets
// whose pairwise intersections all equal one common core. The lemma: any
// family of more than k!(p-1)^k distinct k-element sets contains one. The
// finder below implements the constructive proof (maximal disjoint
// subfamily, else recurse on a popular element) and is guaranteed to
// succeed above the bound; Lemma 4.2 runs it on the bags of a long path in
// a tree decomposition.

#ifndef HOMPRES_COMBINATORICS_SUNFLOWER_H_
#define HOMPRES_COMBINATORICS_SUNFLOWER_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace hompres {

struct Sunflower {
  // Indices into the input family, strictly increasing.
  std::vector<int> petals;
  // The common pairwise intersection, sorted.
  std::vector<int> core;
};

// Searches `family` (sets of ints; each set sorted, duplicate-free, and
// the sets pairwise distinct) for a sunflower with `p` petals. Implements
// the Erdos-Rado recursion, so it is guaranteed to find one whenever
// |family| > k!(p-1)^k where k is the maximum set size; below the bound it
// may or may not. Requires p >= 1.
std::optional<Sunflower> FindSunflower(
    const std::vector<std::vector<int>>& family, int p);

// True iff `s` is a sunflower with >= p petals in `family`: all petal
// indices valid and distinct, and every pair of petal sets intersects in
// exactly s.core.
bool VerifySunflower(const std::vector<std::vector<int>>& family,
                     const Sunflower& s, int p);

// The paper's threshold k!(p-1)^k (saturating).
uint64_t SunflowerBound(int k, int p);

}  // namespace hompres

#endif  // HOMPRES_COMBINATORICS_SUNFLOWER_H_
