#include "combinatorics/ramsey.h"

#include "base/check.h"
#include "base/saturating.h"
#include "base/subsets.h"

namespace hompres {

std::optional<std::vector<int>> FindMonochromaticSubset(
    int n, int k, const SubsetColoring& coloring, int size) {
  HOMPRES_CHECK_GE(k, 1);
  HOMPRES_CHECK_GE(size, k);
  std::optional<std::vector<int>> found;
  ForEachCombination(n, size, [&](const std::vector<int>& candidate) {
    int color = -1;
    bool monochromatic = true;
    ForEachCombination(size, k, [&](const std::vector<int>& positions) {
      std::vector<int> subset;
      subset.reserve(positions.size());
      for (int pos : positions) {
        subset.push_back(candidate[static_cast<size_t>(pos)]);
      }
      const int c = coloring(subset);
      if (color == -1) {
        color = c;
        return true;
      }
      if (c != color) {
        monochromatic = false;
        return false;
      }
      return true;
    });
    if (monochromatic) {
      found = candidate;
      return false;
    }
    return true;
  });
  return found;
}

std::optional<std::vector<int>> FindCliqueOrIndependentSet(const Graph& g,
                                                           int size,
                                                           bool* clique_out) {
  const SubsetColoring edge_coloring = [&g](const std::vector<int>& pair) {
    return g.HasEdge(pair[0], pair[1]) ? 1 : 0;
  };
  auto found =
      FindMonochromaticSubset(g.NumVertices(), 2, edge_coloring, size);
  if (found.has_value() && clique_out != nullptr) {
    *clique_out = size >= 2 && g.HasEdge((*found)[0], (*found)[1]);
  }
  return found;
}

uint64_t RamseyBound(uint64_t l, uint64_t k, uint64_t m) {
  HOMPRES_CHECK_GE(l, 1u);
  HOMPRES_CHECK_GE(k, 1u);
  if (k == 1) {
    // Pigeonhole: with more than l*m elements, some color class exceeds m.
    return SatMul(l, m);
  }
  // Erdos-Rado stepping up: r(l, k, m) <= l^{ C(r(l, k-1, m), k-1) } + k.
  // This is a valid (loose) upper bound; it saturates for any nontrivial
  // arguments, which is fine: callers only use it to report the shape of
  // the paper's effective bounds.
  const uint64_t previous = RamseyBound(l, k - 1, m);
  if (previous == kSaturated) return kSaturated;
  uint64_t choose = 1;
  for (uint64_t i = 0; i < k - 1; ++i) {
    choose = SatMul(choose, previous);  // previous^{k-1} >= C(previous, k-1)
  }
  return SatAdd(SatPow(l, choose), k);
}

uint64_t Lemma52BoundStep(int k, uint64_t n) {
  HOMPRES_CHECK_GE(k, 3);
  // b(n) = r(k+1, k, (k-2)n + k - 2).
  const uint64_t m = SatAdd(SatMul(static_cast<uint64_t>(k - 2), n),
                            static_cast<uint64_t>(k - 2));
  return RamseyBound(static_cast<uint64_t>(k + 1), static_cast<uint64_t>(k),
                     m);
}

uint64_t Lemma52Bound(int k, uint64_t m) {
  HOMPRES_CHECK_GE(k, 3);
  // N = b^{k-2}(m).
  uint64_t value = m;
  for (int i = 0; i < k - 2; ++i) {
    value = Lemma52BoundStep(k, value);
    if (value == kSaturated) return kSaturated;
  }
  return value;
}

uint64_t Theorem53BoundStep(int k, uint64_t n) {
  // c(n) = r(2, 2, b^{k-2}(n)).
  const uint64_t inner = Lemma52Bound(k, n);
  if (inner == kSaturated) return kSaturated;
  return RamseyBound(2, 2, inner);
}

uint64_t Theorem53Bound(int k, int d, uint64_t m) {
  HOMPRES_CHECK_GE(d, 0);
  // N = c^d(m).
  uint64_t value = m;
  for (int i = 0; i < d; ++i) {
    value = Theorem53BoundStep(k, value);
    if (value == kSaturated) return kSaturated;
  }
  return value;
}

}  // namespace hompres
