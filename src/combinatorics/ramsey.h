// Ramsey machinery (Theorem 5.1).
//
// The paper uses r(l, k, m): a bound N such that any l-coloring of the
// k-element subsets of a set with more than N elements admits a set I with
// |I| > m on which the coloring is constant. The finder below is exact
// (exhaustive over candidate subsets) and intended for the tiny instances
// the benches explore; the bound calculators implement the paper's bound
// *functions* b(n) and c(n) of Lemma 5.2 / Theorem 5.3 with saturating
// arithmetic (these towers overflow immediately, which the benches report
// as "astronomical" — they are upper bounds only).

#ifndef HOMPRES_COMBINATORICS_RAMSEY_H_
#define HOMPRES_COMBINATORICS_RAMSEY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace hompres {

// A coloring of the k-element subsets of {0..n-1}: receives a sorted
// k-subset, returns its color in [0, l).
using SubsetColoring = std::function<int(const std::vector<int>&)>;

// Exact: a subset I of {0..n-1} with |I| == size whose k-subsets all get
// the same color, or nullopt. Exhaustive (n choose size); keep n small.
std::optional<std::vector<int>> FindMonochromaticSubset(
    int n, int k, const SubsetColoring& coloring, int size);

// Graph specialization (k = 2, l = 2): a clique or independent set of the
// given size; `clique_out` reports which one was found.
std::optional<std::vector<int>> FindCliqueOrIndependentSet(const Graph& g,
                                                           int size,
                                                           bool* clique_out);

// An upper-bound surrogate for the Ramsey number r(l, k, m) in the
// paper's notation (any l-coloring of k-subsets of a set of size > r
// has a monochromatic set of size > m). Exact for k = 1 (pigeonhole:
// l * m); for k >= 2 uses the Erdos-Rado stepping-up recursion, which
// saturates almost immediately. Requires l >= 1, k >= 1, m >= 0.
uint64_t RamseyBound(uint64_t l, uint64_t k, uint64_t m);

// Lemma 5.2's bound function b(n) = r(k+1, k, (k-2)n + k - 2) and its
// iterate b^i, plus the overall N = b^{k-2}(m).
uint64_t Lemma52BoundStep(int k, uint64_t n);
uint64_t Lemma52Bound(int k, uint64_t m);

// Theorem 5.3's c(n) = r(2, 2, b^{k-2}(n)) and N = c^d(m).
uint64_t Theorem53BoundStep(int k, uint64_t n);
uint64_t Theorem53Bound(int k, int d, uint64_t m);

}  // namespace hompres

#endif  // HOMPRES_COMBINATORICS_RAMSEY_H_
