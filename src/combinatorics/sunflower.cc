#include "combinatorics/sunflower.h"

#include <algorithm>
#include <map>

#include "base/check.h"
#include "base/saturating.h"

namespace hompres {

namespace {

bool Disjoint(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

// Recursive Erdos-Rado search. `sets` are the current (possibly reduced)
// sets; `original` maps each to its index in the caller's family; `core`
// accumulates removed popular elements.
std::optional<Sunflower> Search(std::vector<std::vector<int>> sets,
                                std::vector<int> original,
                                std::vector<int> core, int p) {
  if (static_cast<int>(sets.size()) < p) return std::nullopt;
  // Greedy maximal pairwise-disjoint subfamily.
  std::vector<int> disjoint;  // indices into `sets`
  for (size_t i = 0; i < sets.size(); ++i) {
    bool ok = true;
    for (int j : disjoint) {
      if (!Disjoint(sets[i], sets[static_cast<size_t>(j)])) {
        ok = false;
        break;
      }
    }
    if (ok) disjoint.push_back(static_cast<int>(i));
  }
  if (static_cast<int>(disjoint.size()) >= p) {
    Sunflower result;
    result.core = std::move(core);
    for (int i = 0; i < p; ++i) {
      result.petals.push_back(original[static_cast<size_t>(
          disjoint[static_cast<size_t>(i)])]);
    }
    std::sort(result.petals.begin(), result.petals.end());
    return result;
  }
  // Some empty set with a non-maximal disjoint family can only happen if
  // an empty set exists, in which case every other set is disjoint from
  // it; if we get here with an empty set then p > |sets| was ruled out
  // above, so all sets are nonempty... unless duplicates-after-reduction
  // exist, which the caller contract excludes.
  // Find the most popular element among the union of the disjoint sets
  // (which hits every set, by maximality).
  std::map<int, int> frequency;
  for (int j : disjoint) {
    for (int x : sets[static_cast<size_t>(j)]) frequency[x] = 0;
  }
  if (frequency.empty()) return std::nullopt;  // all sets empty
  for (const auto& set : sets) {
    for (int x : set) {
      auto it = frequency.find(x);
      if (it != frequency.end()) ++it->second;
    }
  }
  int best = -1;
  int best_count = -1;
  for (const auto& [x, count] : frequency) {
    if (count > best_count) {
      best = x;
      best_count = count;
    }
  }
  // Recurse on the sets containing `best`, with `best` removed.
  std::vector<std::vector<int>> next_sets;
  std::vector<int> next_original;
  for (size_t i = 0; i < sets.size(); ++i) {
    auto it = std::lower_bound(sets[i].begin(), sets[i].end(), best);
    if (it != sets[i].end() && *it == best) {
      std::vector<int> reduced = sets[i];
      reduced.erase(std::lower_bound(reduced.begin(), reduced.end(), best));
      next_sets.push_back(std::move(reduced));
      next_original.push_back(original[i]);
    }
  }
  core.push_back(best);
  return Search(std::move(next_sets), std::move(next_original),
                std::move(core), p);
}

}  // namespace

std::optional<Sunflower> FindSunflower(
    const std::vector<std::vector<int>>& family, int p) {
  HOMPRES_CHECK_GE(p, 1);
  std::vector<std::vector<int>> sets = family;
  std::vector<int> original(family.size());
  for (size_t i = 0; i < family.size(); ++i) {
    HOMPRES_CHECK(std::is_sorted(sets[i].begin(), sets[i].end()));
    HOMPRES_CHECK(std::adjacent_find(sets[i].begin(), sets[i].end()) ==
                  sets[i].end());
    original[i] = static_cast<int>(i);
  }
  auto result = Search(std::move(sets), std::move(original), {}, p);
  if (result.has_value()) {
    std::sort(result->core.begin(), result->core.end());
    HOMPRES_CHECK(VerifySunflower(family, *result, p));
  }
  return result;
}

bool VerifySunflower(const std::vector<std::vector<int>>& family,
                     const Sunflower& s, int p) {
  if (static_cast<int>(s.petals.size()) < p) return false;
  for (size_t i = 0; i < s.petals.size(); ++i) {
    const int idx = s.petals[i];
    if (idx < 0 || idx >= static_cast<int>(family.size())) return false;
    if (i > 0 && s.petals[i] <= s.petals[i - 1]) return false;
  }
  for (size_t i = 0; i < s.petals.size(); ++i) {
    for (size_t j = i + 1; j < s.petals.size(); ++j) {
      const auto& a = family[static_cast<size_t>(s.petals[i])];
      const auto& b = family[static_cast<size_t>(s.petals[j])];
      std::vector<int> intersection;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(intersection));
      if (intersection != s.core) return false;
    }
  }
  return true;
}

uint64_t SunflowerBound(int k, int p) {
  HOMPRES_CHECK_GE(k, 0);
  HOMPRES_CHECK_GE(p, 1);
  return SatMul(SatFactorial(static_cast<uint64_t>(k)),
                SatPow(static_cast<uint64_t>(p - 1),
                       static_cast<uint64_t>(k)));
}

}  // namespace hompres
