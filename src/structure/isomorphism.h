// Isomorphism testing for small structures.
//
// Minimal-model enumeration (src/core) deduplicates models up to
// isomorphism; the models involved are tiny, so a pruned backtracking
// search is entirely adequate.

#ifndef HOMPRES_STRUCTURE_ISOMORPHISM_H_
#define HOMPRES_STRUCTURE_ISOMORPHISM_H_

#include <optional>
#include <vector>

#include "structure/structure.h"

namespace hompres {

// Returns an isomorphism a -> b (as an element map), or nullopt if the
// structures are not isomorphic. Exponential worst case; intended for
// small structures.
std::optional<std::vector<int>> FindIsomorphism(const Structure& a,
                                                const Structure& b);

bool AreIsomorphic(const Structure& a, const Structure& b);

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_ISOMORPHISM_H_
