#include "structure/generators.h"

#include "base/check.h"
#include "structure/vocabulary.h"

namespace hompres {

Structure UndirectedGraphStructure(const Graph& g) {
  Structure a(GraphVocabulary(), g.NumVertices());
  for (const auto& [u, v] : g.Edges()) {
    a.AddTuple(0, {u, v});
    a.AddTuple(0, {v, u});
  }
  return a;
}

Structure DirectedPathStructure(int n) {
  HOMPRES_CHECK_GE(n, 1);
  Structure a(GraphVocabulary(), n);
  for (int i = 0; i + 1 < n; ++i) a.AddTuple(0, {i, i + 1});
  return a;
}

Structure DirectedCycleStructure(int n) {
  HOMPRES_CHECK_GE(n, 1);
  Structure a(GraphVocabulary(), n);
  for (int i = 0; i < n; ++i) a.AddTuple(0, {i, (i + 1) % n});
  return a;
}

Structure RandomStructure(const Vocabulary& vocabulary, int n,
                          int tuples_per_relation, Rng& rng) {
  HOMPRES_CHECK_GE(n, 1);
  Structure a(vocabulary, n);
  for (int rel = 0; rel < vocabulary.NumRelations(); ++rel) {
    const int arity = vocabulary.Arity(rel);
    int added = 0;
    for (int attempt = 0;
         attempt < 10 * tuples_per_relation && added < tuples_per_relation;
         ++attempt) {
      Tuple t(static_cast<size_t>(arity));
      for (int& e : t) {
        e = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      }
      if (a.AddTuple(rel, t)) ++added;
    }
  }
  return a;
}

}  // namespace hompres
