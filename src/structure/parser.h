// Text parser for structures, matching the DebugString-style format:
//
//   |A|=3; E={(0 1),(1 2)}; T={(0 1 2)}
//
// Universe size first, then each relation's tuple list (relations may be
// omitted; unknown relations and out-of-range elements are errors).

#ifndef HOMPRES_STRUCTURE_PARSER_H_
#define HOMPRES_STRUCTURE_PARSER_H_

#include <optional>
#include <string>

#include "structure/structure.h"

namespace hompres {

std::optional<Structure> ParseStructure(const std::string& text,
                                        const Vocabulary& vocabulary,
                                        std::string* error = nullptr);

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_PARSER_H_
