// Text parser for structures, matching the DebugString-style format:
//
//   |A|=3; E={(0 1),(1 2)}; T={(0 1 2)}
//
// Universe size first, then each relation's tuple list (relations may be
// omitted; unknown relations and out-of-range elements are errors).
//
// The parser never aborts on malformed input: every syntactic or semantic
// problem — including numeric overflow and oversized universes — is
// reported through the error out-parameter with a line/column position.

#ifndef HOMPRES_STRUCTURE_PARSER_H_
#define HOMPRES_STRUCTURE_PARSER_H_

#include <optional>
#include <string>

#include "base/parse_error.h"
#include "structure/structure.h"

namespace hompres {

// Largest universe size the parser accepts; bigger inputs are malformed,
// not a request to allocate.
inline constexpr int kMaxParsedUniverse = 1'000'000;

// Structured-error form: on failure, *error (if non-null) holds the
// 1-based line/column and message of the first problem.
std::optional<Structure> ParseStructure(const std::string& text,
                                        const Vocabulary& vocabulary,
                                        ParseError* error);

// String-error convenience wrapper (error formatted via
// ParseError::ToString).
std::optional<Structure> ParseStructure(const std::string& text,
                                        const Vocabulary& vocabulary,
                                        std::string* error = nullptr);

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_PARSER_H_
