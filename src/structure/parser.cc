#include "structure/parser.h"

#include <cctype>
#include <sstream>

namespace hompres {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const Vocabulary& vocabulary)
      : text_(text), vocabulary_(vocabulary) {}

  std::optional<Structure> Run(std::string* error) {
    auto result = Parse();
    if (!result.has_value() && error != nullptr) *error = error_;
    return result;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const std::string& literal) {
    SkipWhitespace();
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<int> ConsumeNumber() {
    SkipWhitespace();
    size_t end = pos_;
    while (end < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    if (end == pos_) return std::nullopt;
    const int value = std::stoi(text_.substr(pos_, end - pos_));
    pos_ = end;
    return value;
  }

  std::optional<std::string> ConsumeName() {
    SkipWhitespace();
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '_' || text_[end] == '@')) {
      ++end;
    }
    if (end == pos_) return std::nullopt;
    std::string name = text_.substr(pos_, end - pos_);
    pos_ = end;
    return name;
  }

  void Fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream out;
      out << message << " at position " << pos_;
      error_ = out.str();
    }
  }

  std::optional<Structure> Parse() {
    if (!ConsumeLiteral("|A|=")) {
      Fail("expected '|A|='");
      return std::nullopt;
    }
    auto n = ConsumeNumber();
    if (!n.has_value()) {
      Fail("expected universe size");
      return std::nullopt;
    }
    Structure result(vocabulary_, *n);
    while (ConsumeLiteral(";")) {
      SkipWhitespace();
      if (pos_ >= text_.size()) break;  // trailing separator
      auto name = ConsumeName();
      if (!name.has_value()) {
        Fail("expected relation name");
        return std::nullopt;
      }
      const auto rel = vocabulary_.IndexOf(*name);
      if (!rel.has_value()) {
        Fail("unknown relation '" + *name + "'");
        return std::nullopt;
      }
      if (!ConsumeLiteral("=") || !ConsumeLiteral("{")) {
        Fail("expected '={' after relation name");
        return std::nullopt;
      }
      bool first = true;
      while (!ConsumeLiteral("}")) {
        if (!first && !ConsumeLiteral(",")) {
          Fail("expected ',' or '}'");
          return std::nullopt;
        }
        first = false;
        if (!ConsumeLiteral("(")) {
          Fail("expected '('");
          return std::nullopt;
        }
        Tuple t;
        for (int i = 0; i < vocabulary_.Arity(*rel); ++i) {
          auto e = ConsumeNumber();
          if (!e.has_value()) {
            Fail("expected element");
            return std::nullopt;
          }
          if (*e < 0 || *e >= *n) {
            Fail("element out of range");
            return std::nullopt;
          }
          t.push_back(*e);
        }
        if (!ConsumeLiteral(")")) {
          Fail("expected ')'");
          return std::nullopt;
        }
        result.AddTuple(*rel, t);
      }
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("unexpected trailing input");
      return std::nullopt;
    }
    return result;
  }

  const std::string& text_;
  const Vocabulary& vocabulary_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Structure> ParseStructure(const std::string& text,
                                        const Vocabulary& vocabulary,
                                        std::string* error) {
  return Parser(text, vocabulary).Run(error);
}

}  // namespace hompres
