#include "structure/parser.h"

#include <cctype>
#include <limits>

#include "base/failpoint.h"

namespace hompres {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const Vocabulary& vocabulary)
      : text_(text), vocabulary_(vocabulary) {}

  std::optional<Structure> Run(ParseError* error) {
    auto result = Parse();
    if (!result.has_value() && error != nullptr) *error = error_;
    return result;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const std::string& literal) {
    SkipWhitespace();
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  // Overflow-checked decimal number (std::stoi would throw, which the
  // no-exceptions policy forbids).
  std::optional<int> ConsumeNumber() {
    SkipWhitespace();
    size_t end = pos_;
    long long value = 0;
    bool overflow = false;
    while (end < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[end]))) {
      if (!overflow) {
        value = value * 10 + (text_[end] - '0');
        if (value > std::numeric_limits<int>::max()) overflow = true;
      }
      ++end;
    }
    if (end == pos_) return std::nullopt;
    if (overflow) {
      Fail("number too large");
      return std::nullopt;
    }
    pos_ = end;
    return static_cast<int>(value);
  }

  std::optional<std::string> ConsumeName() {
    SkipWhitespace();
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '_' || text_[end] == '@')) {
      ++end;
    }
    if (end == pos_) return std::nullopt;
    std::string name = text_.substr(pos_, end - pos_);
    pos_ = end;
    return name;
  }

  void Fail(const std::string& message) {
    if (error_.message.empty()) error_ = ParseErrorAt(text_, pos_, message);
  }

  std::optional<Structure> Parse() {
    if (!ConsumeLiteral("|A|=")) {
      Fail("expected '|A|='");
      return std::nullopt;
    }
    auto n = ConsumeNumber();
    if (!n.has_value()) {
      Fail("expected universe size");
      return std::nullopt;
    }
    if (*n > kMaxParsedUniverse) {
      Fail("universe size exceeds limit");
      return std::nullopt;
    }
    Structure result(vocabulary_, *n);
    while (ConsumeLiteral(";")) {
      SkipWhitespace();
      if (pos_ >= text_.size()) break;  // trailing separator
      auto name = ConsumeName();
      if (!name.has_value()) {
        Fail("expected relation name");
        return std::nullopt;
      }
      const auto rel = vocabulary_.IndexOf(*name);
      if (!rel.has_value()) {
        Fail("unknown relation '" + *name + "'");
        return std::nullopt;
      }
      if (!ConsumeLiteral("=") || !ConsumeLiteral("{")) {
        Fail("expected '={' after relation name");
        return std::nullopt;
      }
      bool first = true;
      while (!ConsumeLiteral("}")) {
        if (pos_ >= text_.size()) {
          Fail("unterminated tuple list");
          return std::nullopt;
        }
        if (!first && !ConsumeLiteral(",")) {
          Fail("expected ',' or '}'");
          return std::nullopt;
        }
        first = false;
        if (!ConsumeLiteral("(")) {
          Fail("expected '('");
          return std::nullopt;
        }
        Tuple t;
        for (int i = 0; i < vocabulary_.Arity(*rel); ++i) {
          auto e = ConsumeNumber();
          if (!e.has_value()) {
            Fail("expected element");
            return std::nullopt;
          }
          if (*e < 0 || *e >= *n) {
            Fail("element out of range");
            return std::nullopt;
          }
          t.push_back(*e);
        }
        if (!ConsumeLiteral(")")) {
          Fail("expected ')'");
          return std::nullopt;
        }
        result.AddTuple(*rel, t);
      }
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("unexpected trailing input");
      return std::nullopt;
    }
    return result;
  }

  const std::string& text_;
  const Vocabulary& vocabulary_;
  size_t pos_ = 0;
  ParseError error_;
};

}  // namespace

std::optional<Structure> ParseStructure(const std::string& text,
                                        const Vocabulary& vocabulary,
                                        ParseError* error) {
  // Simulated front-end I/O failure (truncated read, unreadable file):
  // surfaces as an ordinary structured ParseError, never a crash.
  if (HOMPRES_FAILPOINT("parser/structure_io")) {
    if (error != nullptr) {
      *error = ParseError{0, 0, "injected I/O fault (parser/structure_io)"};
    }
    return std::nullopt;
  }
  return Parser(text, vocabulary).Run(error);
}

std::optional<Structure> ParseStructure(const std::string& text,
                                        const Vocabulary& vocabulary,
                                        std::string* error) {
  ParseError parse_error;
  auto result = ParseStructure(text, vocabulary, &parse_error);
  if (!result.has_value() && error != nullptr) {
    *error = parse_error.ToString();
  }
  return result;
}

}  // namespace hompres
