// Generators turning graphs into structures and producing random
// structures for tests and benches.

#ifndef HOMPRES_STRUCTURE_GENERATORS_H_
#define HOMPRES_STRUCTURE_GENERATORS_H_

#include "base/rng.h"
#include "graph/graph.h"
#include "structure/structure.h"

namespace hompres {

// The {E/2}-structure of an undirected graph: E holds both (u,v) and
// (v,u) for every edge. Homomorphisms between such structures are exactly
// graph homomorphisms.
Structure UndirectedGraphStructure(const Graph& g);

// Directed path 0 -> 1 -> ... -> n-1 over {E/2}. Requires n >= 1.
Structure DirectedPathStructure(int n);

// Directed cycle 0 -> 1 -> ... -> n-1 -> 0 over {E/2} (the paper's C_3 for
// n = 3). Requires n >= 1.
Structure DirectedCycleStructure(int n);

// Random structure: universe of size n, `tuples_per_relation` random
// tuples in each relation (duplicates retried a bounded number of times).
Structure RandomStructure(const Vocabulary& vocabulary, int n,
                          int tuples_per_relation, Rng& rng);

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_GENERATORS_H_
