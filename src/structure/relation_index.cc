#include "structure/relation_index.h"

#include <algorithm>

#include "base/check.h"
#include "structure/structure.h"

namespace hompres {

RelationIndex::RelationIndex(const Structure& s)
    : universe_size_(s.UniverseSize()) {
  const int num_relations = s.GetVocabulary().NumRelations();
  rels_.resize(static_cast<size_t>(num_relations));
  occurrences_.assign(static_cast<size_t>(universe_size_), 0);
  for (int rel = 0; rel < num_relations; ++rel) {
    RelIndex& r = rels_[static_cast<size_t>(rel)];
    r.tuples = &s.Tuples(rel);
    r.arity = s.GetVocabulary().Arity(rel);
    const auto& tuples = *r.tuples;
    r.lists.assign(static_cast<size_t>(r.arity), {});
    for (auto& per_value : r.lists) {
      per_value.resize(static_cast<size_t>(universe_size_));
    }
    // One pass in tuple-id order, so every inverted list comes out
    // ascending.
    for (size_t id = 0; id < tuples.size(); ++id) {
      const Tuple& t = tuples[id];
      for (size_t p = 0; p < t.size(); ++p) {
        r.lists[p][static_cast<size_t>(t[p])].push_back(
            static_cast<int>(id));
        ++occurrences_[static_cast<size_t>(t[p])];
      }
    }
  }
}

const RelationIndex::RelIndex& RelationIndex::Rel(int rel) const {
  HOMPRES_CHECK_GE(rel, 0);
  HOMPRES_CHECK_LT(rel, static_cast<int>(rels_.size()));
  return rels_[static_cast<size_t>(rel)];
}

RelationIndex::RelIndex& RelationIndex::MutableRel(int rel) {
  HOMPRES_CHECK_GE(rel, 0);
  HOMPRES_CHECK_LT(rel, static_cast<int>(rels_.size()));
  return rels_[static_cast<size_t>(rel)];
}

std::span<const int> RelationIndex::TuplesAt(int rel, int pos,
                                             int value) const {
  const RelIndex& r = Rel(rel);
  HOMPRES_CHECK_GE(pos, 0);
  HOMPRES_CHECK_LT(pos, r.arity);
  HOMPRES_CHECK_GE(value, 0);
  HOMPRES_CHECK_LT(value, universe_size_);
  const std::vector<int>& ids =
      r.lists[static_cast<size_t>(pos)][static_cast<size_t>(value)];
  return {ids.data(), ids.size()};
}

std::pair<int, int> RelationIndex::PrefixRange(int rel,
                                               const Tuple& prefix) const {
  const RelIndex& r = Rel(rel);
  const auto& tuples = *r.tuples;
  HOMPRES_CHECK_LE(prefix.size(), static_cast<size_t>(r.arity));
  if (prefix.empty()) return {0, static_cast<int>(tuples.size())};
  // A strict prefix compares less than any tuple extending it, so the
  // plain lexicographic lower_bound is the range start; the range end is
  // the first tuple whose leading prefix.size() entries exceed `prefix`.
  const auto lo = std::lower_bound(tuples.begin(), tuples.end(), prefix);
  const size_t k = prefix.size();
  const auto hi = std::upper_bound(
      lo, tuples.end(), prefix, [k](const Tuple& p, const Tuple& t) {
        return std::lexicographical_compare(p.begin(), p.end(), t.begin(),
                                            t.begin() + static_cast<long>(k));
      });
  return {static_cast<int>(lo - tuples.begin()),
          static_cast<int>(hi - tuples.begin())};
}

std::vector<int> RelationIndex::TuplesMentioning(int rel, int e) const {
  const RelIndex& r = Rel(rel);
  std::vector<int> ids;
  for (int p = 0; p < r.arity; ++p) {
    const auto list = TuplesAt(rel, p, e);
    ids.insert(ids.end(), list.begin(), list.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

int RelationIndex::NumTuples(int rel) const {
  return static_cast<int>(Rel(rel).tuples->size());
}

void RelationIndex::ApplyInsert(int rel, int id, const Tuple& tuple) {
  RelIndex& r = MutableRel(rel);
  HOMPRES_CHECK_EQ(static_cast<int>(tuple.size()), r.arity);
  const int new_size = static_cast<int>(r.tuples->size());
  HOMPRES_CHECK_GE(id, 0);
  HOMPRES_CHECK_LT(id, new_size);
  // A mid-list insert shifts the ids of every later tuple of this
  // relation up by one; the tail append (the common streaming case)
  // skips the whole pass. Walking the shifted tuples themselves (rather
  // than every slot list) keeps the cost O(arity * shifted), independent
  // of the universe size. Descending order keeps each list ascending
  // while its entries are bumped in place: by the time old id j-1
  // becomes j, every old id >= j in the same list has already moved up.
  const auto& tuples = *r.tuples;
  for (int j = new_size - 1; j > id; --j) {
    const Tuple& moved = tuples[static_cast<size_t>(j)];
    for (size_t p = 0; p < moved.size(); ++p) {
      std::vector<int>& ids =
          r.lists[p][static_cast<size_t>(moved[p])];
      const auto it = std::lower_bound(ids.begin(), ids.end(), j - 1);
      HOMPRES_CHECK(it != ids.end() && *it == j - 1);
      *it = j;
    }
    debt_ += moved.size();
  }
  for (size_t p = 0; p < tuple.size(); ++p) {
    std::vector<int>& ids =
        r.lists[p][static_cast<size_t>(tuple[p])];
    ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
    ++occurrences_[static_cast<size_t>(tuple[p])];
  }
  debt_ += tuple.size();
}

void RelationIndex::ApplyRemove(int rel, int id, const Tuple& tuple) {
  RelIndex& r = MutableRel(rel);
  HOMPRES_CHECK_EQ(static_cast<int>(tuple.size()), r.arity);
  HOMPRES_CHECK_GE(id, 0);
  for (size_t p = 0; p < tuple.size(); ++p) {
    std::vector<int>& ids =
        r.lists[p][static_cast<size_t>(tuple[p])];
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    HOMPRES_CHECK(it != ids.end() && *it == id);
    ids.erase(it);
    --occurrences_[static_cast<size_t>(tuple[p])];
  }
  // Ids above the removed tuple shift down by one; removing the tail
  // (id == new size) has nothing to shift. Ascending order keeps each
  // list sorted while entries move down: old id exactly j was already
  // decremented when its (earlier) tuple was processed.
  const auto& tuples = *r.tuples;
  for (int j = id; j < static_cast<int>(tuples.size()); ++j) {
    const Tuple& moved = tuples[static_cast<size_t>(j)];
    for (size_t p = 0; p < moved.size(); ++p) {
      std::vector<int>& ids =
          r.lists[p][static_cast<size_t>(moved[p])];
      const auto it = std::lower_bound(ids.begin(), ids.end(), j + 1);
      HOMPRES_CHECK(it != ids.end() && *it == j + 1);
      *it = j;
    }
    debt_ += moved.size();
  }
  debt_ += tuple.size();
}

void RelationIndex::ApplyAppendElement() {
  ++universe_size_;
  occurrences_.push_back(0);
  for (RelIndex& r : rels_) {
    for (auto& per_value : r.lists) per_value.emplace_back();
    debt_ += static_cast<size_t>(r.arity);
  }
}

size_t RelationIndex::RebuildCost() const {
  size_t slots = 0;
  for (const RelIndex& r : rels_) {
    slots += static_cast<size_t>(r.arity) * r.tuples->size();
  }
  return slots;
}

}  // namespace hompres
