#include "structure/relation_index.h"

#include <algorithm>

#include "base/check.h"
#include "structure/structure.h"

namespace hompres {

RelationIndex::RelationIndex(const Structure& s)
    : universe_size_(s.UniverseSize()) {
  const int num_relations = s.GetVocabulary().NumRelations();
  rels_.resize(static_cast<size_t>(num_relations));
  occurrences_.assign(static_cast<size_t>(universe_size_), 0);
  for (int rel = 0; rel < num_relations; ++rel) {
    RelIndex& r = rels_[static_cast<size_t>(rel)];
    r.tuples = &s.Tuples(rel);
    r.arity = s.GetVocabulary().Arity(rel);
    const auto& tuples = *r.tuples;
    const size_t slots =
        static_cast<size_t>(r.arity) * static_cast<size_t>(universe_size_);
    // Counting sort per position: counts -> offsets -> fill in tuple-id
    // order, so every inverted list comes out ascending.
    r.starts.assign(slots + 1, 0);
    for (const Tuple& t : tuples) {
      for (size_t p = 0; p < t.size(); ++p) {
        const size_t slot = p * static_cast<size_t>(universe_size_) +
                            static_cast<size_t>(t[p]);
        ++r.starts[slot + 1];
        ++occurrences_[static_cast<size_t>(t[p])];
      }
    }
    for (size_t i = 1; i <= slots; ++i) r.starts[i] += r.starts[i - 1];
    r.ids.resize(static_cast<size_t>(r.arity) * tuples.size());
    std::vector<int> cursor(r.starts.begin(), r.starts.end() - 1);
    for (size_t id = 0; id < tuples.size(); ++id) {
      const Tuple& t = tuples[id];
      for (size_t p = 0; p < t.size(); ++p) {
        const size_t slot = p * static_cast<size_t>(universe_size_) +
                            static_cast<size_t>(t[p]);
        r.ids[static_cast<size_t>(cursor[slot]++)] = static_cast<int>(id);
      }
    }
  }
}

const RelationIndex::RelIndex& RelationIndex::Rel(int rel) const {
  HOMPRES_CHECK_GE(rel, 0);
  HOMPRES_CHECK_LT(rel, static_cast<int>(rels_.size()));
  return rels_[static_cast<size_t>(rel)];
}

std::span<const int> RelationIndex::TuplesAt(int rel, int pos,
                                             int value) const {
  const RelIndex& r = Rel(rel);
  HOMPRES_CHECK_GE(pos, 0);
  HOMPRES_CHECK_LT(pos, r.arity);
  HOMPRES_CHECK_GE(value, 0);
  HOMPRES_CHECK_LT(value, universe_size_);
  const size_t slot = static_cast<size_t>(pos) *
                          static_cast<size_t>(universe_size_) +
                      static_cast<size_t>(value);
  const int lo = r.starts[slot];
  const int hi = r.starts[slot + 1];
  return {r.ids.data() + lo, static_cast<size_t>(hi - lo)};
}

std::pair<int, int> RelationIndex::PrefixRange(int rel,
                                               const Tuple& prefix) const {
  const RelIndex& r = Rel(rel);
  const auto& tuples = *r.tuples;
  HOMPRES_CHECK_LE(prefix.size(), static_cast<size_t>(r.arity));
  if (prefix.empty()) return {0, static_cast<int>(tuples.size())};
  // A strict prefix compares less than any tuple extending it, so the
  // plain lexicographic lower_bound is the range start; the range end is
  // the first tuple whose leading prefix.size() entries exceed `prefix`.
  const auto lo = std::lower_bound(tuples.begin(), tuples.end(), prefix);
  const size_t k = prefix.size();
  const auto hi = std::upper_bound(
      lo, tuples.end(), prefix, [k](const Tuple& p, const Tuple& t) {
        return std::lexicographical_compare(p.begin(), p.end(), t.begin(),
                                            t.begin() + static_cast<long>(k));
      });
  return {static_cast<int>(lo - tuples.begin()),
          static_cast<int>(hi - tuples.begin())};
}

std::vector<int> RelationIndex::TuplesMentioning(int rel, int e) const {
  const RelIndex& r = Rel(rel);
  std::vector<int> ids;
  for (int p = 0; p < r.arity; ++p) {
    const auto list = TuplesAt(rel, p, e);
    ids.insert(ids.end(), list.begin(), list.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

int RelationIndex::NumTuples(int rel) const {
  return static_cast<int>(Rel(rel).tuples->size());
}

}  // namespace hompres
