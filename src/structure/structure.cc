#include "structure/structure.h"

#include <algorithm>
#include <mutex>
#include <new>
#include <sstream>

#include "base/failpoint.h"
#include "base/hash.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// Guards the lazy index build across threads. Consumers fetch Index()
// once per search/evaluation (not per node), so a single global lock is
// contention-free in practice; mutators bypass it entirely (mutation is
// single-threaded by contract).
std::mutex& IndexBuildMutex() {
  static std::mutex mu;
  return mu;
}

// Fixed slack under the compaction threshold so tiny structures (whose
// rebuild cost rounds to a handful of slots) still amortize a few
// in-place edits before compacting.
constexpr size_t kCompactionSlack = 64;

}  // namespace

Structure::Structure(Vocabulary vocabulary, int universe_size)
    : vocabulary_(std::move(vocabulary)), universe_size_(universe_size) {
  HOMPRES_CHECK_GE(universe_size, 0);
  relations_.resize(static_cast<size_t>(vocabulary_.NumRelations()));
}

Structure::Structure(const Structure& other)
    : vocabulary_(other.vocabulary_),
      universe_size_(other.universe_size_),
      relations_(other.relations_) {}

Structure& Structure::operator=(const Structure& other) {
  if (this != &other) {
    vocabulary_ = other.vocabulary_;
    universe_size_ = other.universe_size_;
    relations_ = other.relations_;
    version_ = 0;
    InvalidateIndex();
  }
  return *this;
}

const RelationIndex& Structure::Index() const {
  std::lock_guard<std::mutex> lock(IndexBuildMutex());
  if (index_ == nullptr) {
    index_ = std::make_shared<RelationIndex>(*this);
  }
  return *index_;
}

const RelationIndex* Structure::TryIndex() const {
  std::lock_guard<std::mutex> lock(IndexBuildMutex());
  if (index_ != nullptr) return index_.get();
  if (HOMPRES_FAILPOINT("relation_index/build")) return nullptr;
  try {
    index_ = std::make_shared<RelationIndex>(*this);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
  return index_.get();
}

uint64_t Structure::TupleHash(int rel, const Tuple& tuple) const {
  // Order-sensitive within the tuple (position matters), seeded with a
  // relation boundary so moving a tuple between same-arity relations
  // changes the hash. The per-tuple hashes combine by wrapping addition
  // in tuple_acc_ — commutative, so insertions add and removals subtract
  // without re-reading the tuple store.
  uint64_t h = Mix64(0xABCDULL + static_cast<uint64_t>(rel));
  for (int e : tuple) h = Mix64(h ^ static_cast<uint64_t>(e));
  return h;
}

uint64_t Structure::FinalizeFingerprint() const {
  uint64_t h = Mix64(0x486F6D507265ULL);  // "HomPre"
  h = Mix64(h ^ static_cast<uint64_t>(vocabulary_.NumRelations()));
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    h = Mix64(h ^ static_cast<uint64_t>(vocabulary_.Arity(rel)));
  }
  h = Mix64(h ^ static_cast<uint64_t>(universe_size_));
  h = Mix64(h ^ tuple_acc_);
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  return h;
}

uint64_t Structure::Fingerprint() const {
  std::lock_guard<std::mutex> lock(IndexBuildMutex());
  if (fingerprint_ != 0) return fingerprint_;
  uint64_t acc = 0;
  for (size_t rel = 0; rel < relations_.size(); ++rel) {
    for (const Tuple& t : relations_[rel]) {
      acc += TupleHash(static_cast<int>(rel), t);
    }
  }
  tuple_acc_ = acc;
  fingerprint_ = FinalizeFingerprint();
  return fingerprint_;
}

void Structure::CheckRelation(int rel) const {
  HOMPRES_CHECK_GE(rel, 0);
  HOMPRES_CHECK_LT(rel, vocabulary_.NumRelations());
}

void Structure::CheckElement(int a) const {
  HOMPRES_CHECK_GE(a, 0);
  HOMPRES_CHECK_LT(a, universe_size_);
}

bool Structure::BeginCacheMaintenance() {
  if (index_ == nullptr && fingerprint_ == 0) return false;
  if (HOMPRES_FAILPOINT("delta/apply")) {
    InvalidateIndex();
    cache_fault_ = true;
    return false;
  }
  return true;
}

bool Structure::CompactIndexIfIndebted() {
  if (index_ == nullptr) return false;
  if (index_->MaintenanceDebt() <=
      index_->RebuildCost() + kCompactionSlack) {
    return false;
  }
  // Compaction: drop the indebted index and let the next Index() call
  // rebuild it densely. The fingerprint is value-tracking, not
  // id-tracking, so it survives.
  index_.reset();
  return true;
}

int Structure::AddElement() {
  ++version_;
  const bool maintain = BeginCacheMaintenance();
  const int id = universe_size_++;
  if (maintain) {
    if (index_ != nullptr) index_->ApplyAppendElement();
    // tuple_acc_ is untouched: the universe size enters at finalization.
    if (fingerprint_ != 0) fingerprint_ = FinalizeFingerprint();
    CompactIndexIfIndebted();
  }
  return id;
}

bool Structure::AddTuple(int rel, const Tuple& tuple) {
  CheckRelation(rel);
  HOMPRES_CHECK_EQ(static_cast<int>(tuple.size()), vocabulary_.Arity(rel));
  for (int a : tuple) CheckElement(a);
  auto& tuples = relations_[static_cast<size_t>(rel)];
  auto it = std::lower_bound(tuples.begin(), tuples.end(), tuple);
  if (it != tuples.end() && *it == tuple) return false;
  ++version_;
  const bool maintain = BeginCacheMaintenance();
  const int id = static_cast<int>(it - tuples.begin());
  tuples.insert(it, tuple);
  if (maintain) {
    if (index_ != nullptr) index_->ApplyInsert(rel, id, tuple);
    if (fingerprint_ != 0) {
      tuple_acc_ += TupleHash(rel, tuple);
      fingerprint_ = FinalizeFingerprint();
    }
    CompactIndexIfIndebted();
  }
  return true;
}

bool Structure::RemoveTupleByValue(int rel, const Tuple& tuple) {
  CheckRelation(rel);
  HOMPRES_CHECK_EQ(static_cast<int>(tuple.size()), vocabulary_.Arity(rel));
  auto& tuples = relations_[static_cast<size_t>(rel)];
  auto it = std::lower_bound(tuples.begin(), tuples.end(), tuple);
  if (it == tuples.end() || *it != tuple) return false;
  ++version_;
  const bool maintain = BeginCacheMaintenance();
  const int id = static_cast<int>(it - tuples.begin());
  tuples.erase(it);
  if (maintain) {
    if (index_ != nullptr) index_->ApplyRemove(rel, id, tuple);
    if (fingerprint_ != 0) {
      tuple_acc_ -= TupleHash(rel, tuple);
      fingerprint_ = FinalizeFingerprint();
    }
    CompactIndexIfIndebted();
  }
  return true;
}

DeltaApplyResult Structure::Apply(const StructureDelta& delta) {
  DeltaApplyResult result;
  const bool had_index = index_ != nullptr;
  cache_fault_ = false;
  for (const DeltaOp& op : delta.Ops()) {
    switch (op.kind) {
      case DeltaOp::Kind::kAppendElements:
        for (int i = 0; i < op.count; ++i) AddElement();
        result.elements_appended += op.count;
        break;
      case DeltaOp::Kind::kInsertTuple:
        if (AddTuple(op.rel, op.tuple)) {
          ++result.tuples_inserted;
        } else {
          ++result.noop_ops;
        }
        break;
      case DeltaOp::Kind::kRemoveTuple:
        if (RemoveTupleByValue(op.rel, op.tuple)) {
          ++result.tuples_removed;
        } else {
          ++result.noop_ops;
        }
        break;
    }
  }
  result.version = version_;
  result.index_maintained = had_index && index_ != nullptr;
  if (had_index && index_ == nullptr) {
    // Either the "delta/apply" failpoint degraded an edit to blanket
    // invalidation, or the compaction threshold retired an indebted
    // index (the fingerprint survives compaction).
    result.index_degraded = cache_fault_;
    result.index_compacted = !cache_fault_;
  }
  return result;
}

bool Structure::HasTuple(int rel, const Tuple& tuple) const {
  CheckRelation(rel);
  const auto& tuples = relations_[static_cast<size_t>(rel)];
  return std::binary_search(tuples.begin(), tuples.end(), tuple);
}

const std::vector<Tuple>& Structure::Tuples(int rel) const {
  CheckRelation(rel);
  return relations_[static_cast<size_t>(rel)];
}

int Structure::NumTuples() const {
  int total = 0;
  for (const auto& tuples : relations_) {
    total += static_cast<int>(tuples.size());
  }
  return total;
}

bool Structure::IsSubstructureOf(const Structure& other) const {
  if (!(vocabulary_ == other.vocabulary_)) return false;
  if (universe_size_ > other.universe_size_) return false;
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) {
      if (!other.HasTuple(rel, t)) return false;
    }
  }
  return true;
}

Structure Structure::RemoveTuple(int rel, int index) const {
  CheckRelation(rel);
  HOMPRES_CHECK_GE(index, 0);
  HOMPRES_CHECK_LT(index,
                   static_cast<int>(relations_[static_cast<size_t>(rel)].size()));
  Structure result = *this;
  auto& tuples = result.relations_[static_cast<size_t>(rel)];
  tuples.erase(tuples.begin() + index);
  return result;
}

Structure Structure::RemoveElement(int a,
                                   std::vector<int>* old_to_new) const {
  CheckElement(a);
  std::vector<int> keep;
  keep.reserve(static_cast<size_t>(universe_size_ - 1));
  for (int e = 0; e < universe_size_; ++e) {
    if (e != a) keep.push_back(e);
  }
  return InducedSubstructure(keep, old_to_new);
}

Structure Structure::InducedSubstructure(const std::vector<int>& elements,
                                         std::vector<int>* old_to_new) const {
  std::vector<int> map(static_cast<size_t>(universe_size_), -1);
  for (size_t i = 0; i < elements.size(); ++i) {
    CheckElement(elements[i]);
    HOMPRES_CHECK_EQ(map[static_cast<size_t>(elements[i])], -1);
    map[static_cast<size_t>(elements[i])] = static_cast<int>(i);
  }
  Structure result(vocabulary_, static_cast<int>(elements.size()));
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) {
      Tuple mapped;
      mapped.reserve(t.size());
      bool keep = true;
      for (int e : t) {
        const int m = map[static_cast<size_t>(e)];
        if (m == -1) {
          keep = false;
          break;
        }
        mapped.push_back(m);
      }
      if (keep) result.AddTuple(rel, mapped);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return result;
}

std::vector<int> Structure::IsolatedElements() const {
  // The index's occurrence counts are the single pass over the tuple
  // store this needs; repeated calls on the same structure (the
  // minimal-model search does many) reuse the cached index.
  const std::vector<int>& occurrences = Index().ElementOccurrences();
  std::vector<int> isolated;
  for (int e = 0; e < universe_size_; ++e) {
    if (occurrences[static_cast<size_t>(e)] == 0) isolated.push_back(e);
  }
  return isolated;
}

Structure Structure::DisjointUnion(const Structure& other) const {
  HOMPRES_CHECK(vocabulary_ == other.vocabulary_);
  Structure result(vocabulary_, universe_size_ + other.universe_size_);
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) result.AddTuple(rel, t);
    for (const Tuple& t : other.Tuples(rel)) {
      Tuple shifted = t;
      for (int& e : shifted) e += universe_size_;
      result.AddTuple(rel, shifted);
    }
  }
  return result;
}

Structure Structure::Image(const std::vector<int>& h, int image_size) const {
  HOMPRES_CHECK_EQ(static_cast<int>(h.size()), universe_size_);
  Structure result(vocabulary_, image_size);
  for (int e = 0; e < universe_size_; ++e) {
    HOMPRES_CHECK_GE(h[static_cast<size_t>(e)], 0);
    HOMPRES_CHECK_LT(h[static_cast<size_t>(e)], image_size);
  }
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) {
      Tuple mapped;
      mapped.reserve(t.size());
      for (int e : t) mapped.push_back(h[static_cast<size_t>(e)]);
      result.AddTuple(rel, mapped);
    }
  }
  return result;
}

bool operator==(const Structure& a, const Structure& b) {
  return a.vocabulary_ == b.vocabulary_ &&
         a.universe_size_ == b.universe_size_ && a.relations_ == b.relations_;
}

std::string Structure::DebugString() const {
  std::ostringstream out;
  out << "Structure(|A|=" << universe_size_;
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    out << "; " << vocabulary_.Name(rel) << "={";
    bool first = true;
    for (const Tuple& t : Tuples(rel)) {
      if (!first) out << ',';
      first = false;
      out << '(';
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ' ';
        out << t[i];
      }
      out << ')';
    }
    out << '}';
  }
  out << ')';
  return out.str();
}

}  // namespace hompres
