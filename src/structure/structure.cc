#include "structure/structure.h"

#include <algorithm>
#include <mutex>
#include <new>
#include <sstream>

#include "base/failpoint.h"
#include "base/hash.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// Guards the lazy index build across threads. Consumers fetch Index()
// once per search/evaluation (not per node), so a single global lock is
// contention-free in practice; mutators bypass it entirely.
std::mutex& IndexBuildMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

Structure::Structure(Vocabulary vocabulary, int universe_size)
    : vocabulary_(std::move(vocabulary)), universe_size_(universe_size) {
  HOMPRES_CHECK_GE(universe_size, 0);
  relations_.resize(static_cast<size_t>(vocabulary_.NumRelations()));
}

Structure::Structure(const Structure& other)
    : vocabulary_(other.vocabulary_),
      universe_size_(other.universe_size_),
      relations_(other.relations_) {}

Structure& Structure::operator=(const Structure& other) {
  if (this != &other) {
    vocabulary_ = other.vocabulary_;
    universe_size_ = other.universe_size_;
    relations_ = other.relations_;
    InvalidateIndex();
  }
  return *this;
}

const RelationIndex& Structure::Index() const {
  std::lock_guard<std::mutex> lock(IndexBuildMutex());
  if (index_ == nullptr) {
    index_ = std::make_shared<const RelationIndex>(*this);
  }
  return *index_;
}

const RelationIndex* Structure::TryIndex() const {
  std::lock_guard<std::mutex> lock(IndexBuildMutex());
  if (index_ != nullptr) return index_.get();
  if (HOMPRES_FAILPOINT("relation_index/build")) return nullptr;
  try {
    index_ = std::make_shared<const RelationIndex>(*this);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
  return index_.get();
}

uint64_t Structure::Fingerprint() const {
  std::lock_guard<std::mutex> lock(IndexBuildMutex());
  if (fingerprint_ != 0) return fingerprint_;
  // Order-sensitive chain over (arities, universe size, tuple entries).
  // Relation lists are kept sorted, so equal values hash equal no matter
  // the insertion history; a relation boundary is mixed in explicitly so
  // moving a tuple between same-arity relations changes the hash.
  uint64_t h = Mix64(0x486F6D507265ULL);  // "HomPre"
  h = Mix64(h ^ static_cast<uint64_t>(vocabulary_.NumRelations()));
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    h = Mix64(h ^ static_cast<uint64_t>(vocabulary_.Arity(rel)));
  }
  h = Mix64(h ^ static_cast<uint64_t>(universe_size_));
  for (size_t rel = 0; rel < relations_.size(); ++rel) {
    h = Mix64(h ^ (0xABCDULL + rel));  // relation boundary
    for (const Tuple& t : relations_[rel]) {
      for (int e : t) h = Mix64(h ^ static_cast<uint64_t>(e));
    }
  }
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  fingerprint_ = h;
  return h;
}

void Structure::CheckRelation(int rel) const {
  HOMPRES_CHECK_GE(rel, 0);
  HOMPRES_CHECK_LT(rel, vocabulary_.NumRelations());
}

void Structure::CheckElement(int a) const {
  HOMPRES_CHECK_GE(a, 0);
  HOMPRES_CHECK_LT(a, universe_size_);
}

int Structure::AddElement() {
  InvalidateIndex();
  return universe_size_++;
}

bool Structure::AddTuple(int rel, const Tuple& tuple) {
  CheckRelation(rel);
  HOMPRES_CHECK_EQ(static_cast<int>(tuple.size()), vocabulary_.Arity(rel));
  for (int a : tuple) CheckElement(a);
  auto& tuples = relations_[static_cast<size_t>(rel)];
  auto it = std::lower_bound(tuples.begin(), tuples.end(), tuple);
  if (it != tuples.end() && *it == tuple) return false;
  InvalidateIndex();
  tuples.insert(it, tuple);
  return true;
}

bool Structure::HasTuple(int rel, const Tuple& tuple) const {
  CheckRelation(rel);
  const auto& tuples = relations_[static_cast<size_t>(rel)];
  return std::binary_search(tuples.begin(), tuples.end(), tuple);
}

const std::vector<Tuple>& Structure::Tuples(int rel) const {
  CheckRelation(rel);
  return relations_[static_cast<size_t>(rel)];
}

int Structure::NumTuples() const {
  int total = 0;
  for (const auto& tuples : relations_) {
    total += static_cast<int>(tuples.size());
  }
  return total;
}

bool Structure::IsSubstructureOf(const Structure& other) const {
  if (!(vocabulary_ == other.vocabulary_)) return false;
  if (universe_size_ > other.universe_size_) return false;
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) {
      if (!other.HasTuple(rel, t)) return false;
    }
  }
  return true;
}

Structure Structure::RemoveTuple(int rel, int index) const {
  CheckRelation(rel);
  HOMPRES_CHECK_GE(index, 0);
  HOMPRES_CHECK_LT(index,
                   static_cast<int>(relations_[static_cast<size_t>(rel)].size()));
  Structure result = *this;
  auto& tuples = result.relations_[static_cast<size_t>(rel)];
  tuples.erase(tuples.begin() + index);
  return result;
}

Structure Structure::RemoveElement(int a,
                                   std::vector<int>* old_to_new) const {
  CheckElement(a);
  std::vector<int> keep;
  keep.reserve(static_cast<size_t>(universe_size_ - 1));
  for (int e = 0; e < universe_size_; ++e) {
    if (e != a) keep.push_back(e);
  }
  return InducedSubstructure(keep, old_to_new);
}

Structure Structure::InducedSubstructure(const std::vector<int>& elements,
                                         std::vector<int>* old_to_new) const {
  std::vector<int> map(static_cast<size_t>(universe_size_), -1);
  for (size_t i = 0; i < elements.size(); ++i) {
    CheckElement(elements[i]);
    HOMPRES_CHECK_EQ(map[static_cast<size_t>(elements[i])], -1);
    map[static_cast<size_t>(elements[i])] = static_cast<int>(i);
  }
  Structure result(vocabulary_, static_cast<int>(elements.size()));
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) {
      Tuple mapped;
      mapped.reserve(t.size());
      bool keep = true;
      for (int e : t) {
        const int m = map[static_cast<size_t>(e)];
        if (m == -1) {
          keep = false;
          break;
        }
        mapped.push_back(m);
      }
      if (keep) result.AddTuple(rel, mapped);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return result;
}

std::vector<int> Structure::IsolatedElements() const {
  // The index's occurrence counts are the single pass over the tuple
  // store this needs; repeated calls on the same structure (the
  // minimal-model search does many) reuse the cached index.
  const std::vector<int>& occurrences = Index().ElementOccurrences();
  std::vector<int> isolated;
  for (int e = 0; e < universe_size_; ++e) {
    if (occurrences[static_cast<size_t>(e)] == 0) isolated.push_back(e);
  }
  return isolated;
}

Structure Structure::DisjointUnion(const Structure& other) const {
  HOMPRES_CHECK(vocabulary_ == other.vocabulary_);
  Structure result(vocabulary_, universe_size_ + other.universe_size_);
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) result.AddTuple(rel, t);
    for (const Tuple& t : other.Tuples(rel)) {
      Tuple shifted = t;
      for (int& e : shifted) e += universe_size_;
      result.AddTuple(rel, shifted);
    }
  }
  return result;
}

Structure Structure::Image(const std::vector<int>& h, int image_size) const {
  HOMPRES_CHECK_EQ(static_cast<int>(h.size()), universe_size_);
  Structure result(vocabulary_, image_size);
  for (int e = 0; e < universe_size_; ++e) {
    HOMPRES_CHECK_GE(h[static_cast<size_t>(e)], 0);
    HOMPRES_CHECK_LT(h[static_cast<size_t>(e)], image_size);
  }
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    for (const Tuple& t : Tuples(rel)) {
      Tuple mapped;
      mapped.reserve(t.size());
      for (int e : t) mapped.push_back(h[static_cast<size_t>(e)]);
      result.AddTuple(rel, mapped);
    }
  }
  return result;
}

bool operator==(const Structure& a, const Structure& b) {
  return a.vocabulary_ == b.vocabulary_ &&
         a.universe_size_ == b.universe_size_ && a.relations_ == b.relations_;
}

std::string Structure::DebugString() const {
  std::ostringstream out;
  out << "Structure(|A|=" << universe_size_;
  for (int rel = 0; rel < vocabulary_.NumRelations(); ++rel) {
    out << "; " << vocabulary_.Name(rel) << "={";
    bool first = true;
    for (const Tuple& t : Tuples(rel)) {
      if (!first) out << ',';
      first = false;
      out << '(';
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ' ';
        out << t[i];
      }
      out << ')';
    }
    out << '}';
  }
  out << ')';
  return out.str();
}

}  // namespace hompres
