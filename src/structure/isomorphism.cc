#include "structure/isomorphism.h"

#include <algorithm>

#include "base/check.h"
#include "structure/gaifman.h"

namespace hompres {

namespace {

// Per-element invariant used to prune the search: (Gaifman degree,
// occurrence count per relation-and-position).
std::vector<std::vector<int>> ElementSignatures(const Structure& a) {
  const Graph gaifman = GaifmanGraph(a);
  const int num_relations = a.GetVocabulary().NumRelations();
  std::vector<std::vector<int>> signatures(
      static_cast<size_t>(a.UniverseSize()));
  for (int e = 0; e < a.UniverseSize(); ++e) {
    signatures[static_cast<size_t>(e)].assign(
        static_cast<size_t>(1 + num_relations), 0);
    signatures[static_cast<size_t>(e)][0] = gaifman.Degree(e);
  }
  for (int rel = 0; rel < num_relations; ++rel) {
    for (const Tuple& t : a.Tuples(rel)) {
      for (int e : t) {
        ++signatures[static_cast<size_t>(e)][static_cast<size_t>(1 + rel)];
      }
    }
  }
  return signatures;
}

struct IsoSearch {
  const Structure& a;
  const Structure& b;
  const std::vector<std::vector<int>>& sig_a;
  const std::vector<std::vector<int>>& sig_b;
  std::vector<int> map;       // a element -> b element or -1
  std::vector<bool> used_b;

  // Checks all tuples of `a` whose elements are fully mapped.
  bool PartialConsistent() const {
    for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
      for (const Tuple& t : a.Tuples(rel)) {
        Tuple mapped;
        mapped.reserve(t.size());
        bool full = true;
        for (int e : t) {
          const int m = map[static_cast<size_t>(e)];
          if (m == -1) {
            full = false;
            break;
          }
          mapped.push_back(m);
        }
        if (full && !b.HasTuple(rel, mapped)) return false;
      }
    }
    return true;
  }

  bool Solve(int next) {
    if (next == a.UniverseSize()) return PartialConsistent();
    for (int candidate = 0; candidate < b.UniverseSize(); ++candidate) {
      if (used_b[static_cast<size_t>(candidate)]) continue;
      if (sig_a[static_cast<size_t>(next)] !=
          sig_b[static_cast<size_t>(candidate)]) {
        continue;
      }
      map[static_cast<size_t>(next)] = candidate;
      used_b[static_cast<size_t>(candidate)] = true;
      if (PartialConsistent() && Solve(next + 1)) return true;
      map[static_cast<size_t>(next)] = -1;
      used_b[static_cast<size_t>(candidate)] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<int>> FindIsomorphism(const Structure& a,
                                                const Structure& b) {
  if (!(a.GetVocabulary() == b.GetVocabulary())) return std::nullopt;
  if (a.UniverseSize() != b.UniverseSize()) return std::nullopt;
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    if (a.Tuples(rel).size() != b.Tuples(rel).size()) return std::nullopt;
  }
  const auto sig_a = ElementSignatures(a);
  const auto sig_b = ElementSignatures(b);
  // Quick reject: multisets of signatures must agree.
  {
    auto sorted_a = sig_a;
    auto sorted_b = sig_b;
    std::sort(sorted_a.begin(), sorted_a.end());
    std::sort(sorted_b.begin(), sorted_b.end());
    if (sorted_a != sorted_b) return std::nullopt;
  }
  IsoSearch search{
      .a = a,
      .b = b,
      .sig_a = sig_a,
      .sig_b = sig_b,
      .map = std::vector<int>(static_cast<size_t>(a.UniverseSize()), -1),
      .used_b = std::vector<bool>(static_cast<size_t>(b.UniverseSize()),
                                  false),
  };
  if (!search.Solve(0)) return std::nullopt;
  // A bijection mapping tuples into b, with equal tuple counts, is an
  // isomorphism.
  return search.map;
}

bool AreIsomorphic(const Structure& a, const Structure& b) {
  return FindIsomorphism(a, b).has_value();
}

}  // namespace hompres
