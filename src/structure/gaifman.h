// Gaifman graphs (Section 2.1): the undirected graph on the universe of a
// structure with an edge between two distinct elements whenever they occur
// together in some tuple. Degree and treewidth of a structure are defined
// through its Gaifman graph.

#ifndef HOMPRES_STRUCTURE_GAIFMAN_H_
#define HOMPRES_STRUCTURE_GAIFMAN_H_

#include "graph/graph.h"
#include "structure/structure.h"

namespace hompres {

// The Gaifman graph G(A).
Graph GaifmanGraph(const Structure& a);

// Degree of a structure = max degree of its Gaifman graph.
int StructureDegree(const Structure& a);

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_GAIFMAN_H_
