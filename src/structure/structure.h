// Finite relational structures over a vocabulary (Section 2.1).
//
// The universe is {0, ..., UniverseSize()-1}; each relation is a sorted,
// duplicate-free list of tuples. Substructure semantics follow the paper:
// a substructure may drop both elements and tuples (it is NOT necessarily
// induced), and the maximal proper substructures of A are exactly
// "A minus one tuple" and "A minus one isolated element" — the fact the
// minimal-model machinery in src/core relies on.
//
// Mutation is versioned and cache-maintaining (DESIGN.md §4.10): every
// successful in-place mutation bumps Version(), and an already-built
// RelationIndex / fingerprint follows the edit incrementally instead of
// being invalidated wholesale. Structured edit scripts arrive as
// StructureDelta values through Apply().

#ifndef HOMPRES_STRUCTURE_STRUCTURE_H_
#define HOMPRES_STRUCTURE_STRUCTURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "structure/delta.h"
#include "structure/vocabulary.h"

namespace hompres {

class RelationIndex;

// A tuple of universe elements.
using Tuple = std::vector<int>;

class Structure {
 public:
  // Empty structure with the given universe size. Requires n >= 0.
  Structure(Vocabulary vocabulary, int universe_size);

  // Copies do not inherit the cached relation index (it borrows the
  // source's tuple storage); moves carry it along (the storage moves
  // with the structure). Copies restart version counting; moves keep it.
  Structure(const Structure& other);
  Structure& operator=(const Structure& other);
  Structure(Structure&&) noexcept = default;
  Structure& operator=(Structure&&) noexcept = default;

  const Vocabulary& GetVocabulary() const { return vocabulary_; }
  int UniverseSize() const { return universe_size_; }

  // Monotone mutation counter of this structure instance: bumped by
  // every successful AddElement/AddTuple/RemoveTupleByValue (and so by
  // every effective Apply op). Versions order the states of ONE
  // instance; they carry no meaning across copies.
  uint64_t Version() const { return version_; }

  // Appends an element to the universe and returns its id.
  int AddElement();

  // Adds `tuple` to relation `rel`. Requires matching arity and in-range
  // elements. Returns false (no change) if the tuple is already present.
  bool AddTuple(int rel, const Tuple& tuple);

  // Removes `tuple` from relation `rel` in place. Returns false (no
  // change) if the tuple is not present. The value-keyed counterpart of
  // the copying RemoveTuple() below.
  bool RemoveTupleByValue(int rel, const Tuple& tuple);

  // Applies `delta`'s ops in order (see structure/delta.h): element
  // appends, tuple insertions, tuple deletions. No-op ops (duplicate
  // insert, missing remove) are counted, not errors. The cached index
  // and fingerprint are maintained incrementally across the whole
  // script; the result records what changed and how the index fared.
  DeltaApplyResult Apply(const StructureDelta& delta);

  bool HasTuple(int rel, const Tuple& tuple) const;

  // Tuples of relation `rel` in lexicographic order.
  const std::vector<Tuple>& Tuples(int rel) const;

  // Total number of tuples across all relations.
  int NumTuples() const;

  // The per-position relation index over the current tuples (see
  // structure/relation_index.h), built lazily on first use and cached.
  // An already-built index is *maintained in place* by AddTuple /
  // RemoveTupleByValue / AddElement (amortized O(arity) for tail edits,
  // O(arity * |R_rel|) worst case for mid-list edits), so the reference
  // stays valid across mutations and always reflects the current value;
  // once maintenance debt exceeds a rebuild (or the "delta/apply"
  // failpoint fires) the cache is dropped and lazily rebuilt instead.
  // The copy/mutation constructors (RemoveTuple, RemoveElement,
  // InducedSubstructure, DisjointUnion, Image, plain copies) produce
  // structures without a cache. Concurrent Index() calls on a const
  // structure are safe; mutating while other threads read is not (as for
  // every other accessor).
  const RelationIndex& Index() const;

  // Failure-tolerant variant for the degraded paths: returns the cached
  // index if one is already built; otherwise attempts the build and
  // returns nullptr if it fails (std::bad_alloc, or the
  // "relation_index/build" failpoint) instead of propagating. Callers
  // fall back to unindexed scans — same answers, more tuples visited.
  // The already-built case never consults the failpoint, so a site that
  // probed successfully is not re-failed downstream.
  const RelationIndex* TryIndex() const;

  // A 64-bit fingerprint of the structure's value (vocabulary arities,
  // universe size, and the set of tuples per relation; each tuple is
  // hashed order-sensitively and the per-tuple hashes combine
  // commutatively, so the cached value follows insertions and deletions
  // incrementally). Equal structures always fingerprint equal; distinct
  // structures collide with probability ~2^-64. Computed lazily, cached
  // next to the relation index, and maintained by the same mutations
  // (copies recompute, moves carry it). Keys the homomorphism-result
  // cache (hom/hom_cache.h). Never zero. Concurrent Fingerprint() calls
  // on a const structure are safe.
  uint64_t Fingerprint() const;

  // --- Substructure operations -------------------------------------------

  // True iff every tuple of *this (viewed with identical element ids) is a
  // tuple of `other` and the universes/vocabularies are compatible
  // (UniverseSize() <= other.UniverseSize()). This is "substructure with
  // the identity embedding".
  bool IsSubstructureOf(const Structure& other) const;

  // The structure with the same universe and all tuples except tuple
  // `index` of relation `rel`.
  Structure RemoveTuple(int rel, int index) const;

  // Removes element `a`, dropping all tuples that mention it; ids above a
  // shift down by one. If old_to_new is non-null it receives the id map
  // (old id -> new id, -1 for a).
  Structure RemoveElement(int a, std::vector<int>* old_to_new = nullptr) const;

  // The substructure induced by `elements` (keeps exactly the tuples whose
  // entries all lie in `elements`). Element i of the result corresponds to
  // elements[i].
  Structure InducedSubstructure(const std::vector<int>& elements,
                                std::vector<int>* old_to_new = nullptr) const;

  // Elements that occur in no tuple.
  std::vector<int> IsolatedElements() const;

  // --- Constructions ------------------------------------------------------

  // Disjoint union A + B (Section 3's closure operation); elements of
  // `other` are shifted by UniverseSize(). Vocabularies must agree.
  Structure DisjointUnion(const Structure& other) const;

  // The homomorphic image h(A): universe {0..image_size-1}, tuples
  // h(t) for every tuple t. `h` must map every element into range.
  Structure Image(const std::vector<int>& h, int image_size) const;

  // Structural equality: same vocabulary, universe size, and tuple sets.
  friend bool operator==(const Structure& a, const Structure& b);

  std::string DebugString() const;

 private:
  void CheckRelation(int rel) const;
  void CheckElement(int a) const;
  void InvalidateIndex() {
    index_.reset();
    fingerprint_ = 0;
  }
  // Decides, per mutation, whether the cached index/fingerprint are
  // maintained in place. Fires the "delta/apply" failpoint: a fault
  // degrades the edit to blanket invalidation (lazy rebuild — answers
  // unchanged, cost re-paid). No cache, nothing to maintain.
  bool BeginCacheMaintenance();
  // Drops the index (keeping the fingerprint) once incremental
  // maintenance debt exceeds a from-scratch rebuild: the compaction
  // threshold of DESIGN.md §4.10. Returns true if it compacted.
  bool CompactIndexIfIndebted();
  uint64_t TupleHash(int rel, const Tuple& tuple) const;
  uint64_t FinalizeFingerprint() const;

  Vocabulary vocabulary_;
  int universe_size_ = 0;
  std::vector<std::vector<Tuple>> relations_;  // sorted tuple lists
  uint64_t version_ = 0;
  // Lazily built index cache; null until Index() is first called,
  // maintained in place (or dropped for lazy rebuild) by mutations.
  // Shared-ptr so moves transfer it for free; never shared outside.
  mutable std::shared_ptr<RelationIndex> index_;
  // Lazily computed Fingerprint(); 0 = not yet computed (the hash is
  // remapped away from 0). tuple_acc_ is the commutative sum of
  // per-tuple hashes backing it, valid exactly when fingerprint_ != 0.
  mutable uint64_t fingerprint_ = 0;
  mutable uint64_t tuple_acc_ = 0;
  // Set by a "delta/apply" fault inside the current Apply() (reset at
  // its start) so the apply result can distinguish a degraded drop from
  // a compaction.
  bool cache_fault_ = false;
};

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_STRUCTURE_H_
