// Finite relational structures over a vocabulary (Section 2.1).
//
// The universe is {0, ..., UniverseSize()-1}; each relation is a sorted,
// duplicate-free list of tuples. Substructure semantics follow the paper:
// a substructure may drop both elements and tuples (it is NOT necessarily
// induced), and the maximal proper substructures of A are exactly
// "A minus one tuple" and "A minus one isolated element" — the fact the
// minimal-model machinery in src/core relies on.

#ifndef HOMPRES_STRUCTURE_STRUCTURE_H_
#define HOMPRES_STRUCTURE_STRUCTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "structure/vocabulary.h"

namespace hompres {

class RelationIndex;

// A tuple of universe elements.
using Tuple = std::vector<int>;

class Structure {
 public:
  // Empty structure with the given universe size. Requires n >= 0.
  Structure(Vocabulary vocabulary, int universe_size);

  // Copies do not inherit the cached relation index (it borrows the
  // source's tuple storage); moves carry it along (the storage moves
  // with the structure).
  Structure(const Structure& other);
  Structure& operator=(const Structure& other);
  Structure(Structure&&) noexcept = default;
  Structure& operator=(Structure&&) noexcept = default;

  const Vocabulary& GetVocabulary() const { return vocabulary_; }
  int UniverseSize() const { return universe_size_; }

  // Appends an element to the universe and returns its id.
  int AddElement();

  // Adds `tuple` to relation `rel`. Requires matching arity and in-range
  // elements. Returns false (no change) if the tuple is already present.
  bool AddTuple(int rel, const Tuple& tuple);

  bool HasTuple(int rel, const Tuple& tuple) const;

  // Tuples of relation `rel` in lexicographic order.
  const std::vector<Tuple>& Tuples(int rel) const;

  // Total number of tuples across all relations.
  int NumTuples() const;

  // The per-position relation index over the current tuples (see
  // structure/relation_index.h), built lazily on first use and cached.
  // AddTuple/AddElement invalidate the cache; the copy/mutation
  // constructors (RemoveTuple, RemoveElement, InducedSubstructure,
  // DisjointUnion, Image, plain copies) produce structures without a
  // cache. The reference stays valid until the next mutation of *this.
  // Concurrent Index() calls on a const structure are safe; mutating
  // while other threads read is not (as for every other accessor).
  const RelationIndex& Index() const;

  // Failure-tolerant variant for the degraded paths: returns the cached
  // index if one is already built; otherwise attempts the build and
  // returns nullptr if it fails (std::bad_alloc, or the
  // "relation_index/build" failpoint) instead of propagating. Callers
  // fall back to unindexed scans — same answers, more tuples visited.
  // The already-built case never consults the failpoint, so a site that
  // probed successfully is not re-failed downstream.
  const RelationIndex* TryIndex() const;

  // A 64-bit order-sensitive fingerprint of the structure's value
  // (vocabulary arities, universe size, and every tuple entry in sorted
  // relation order). Equal structures always fingerprint equal; distinct
  // structures collide with probability ~2^-64. Computed lazily, cached
  // next to the relation index, and invalidated by exactly the same
  // mutations (AddTuple/AddElement; copies recompute, moves carry it).
  // Keys the homomorphism-result cache (hom/hom_cache.h). Never zero.
  // Concurrent Fingerprint() calls on a const structure are safe.
  uint64_t Fingerprint() const;

  // --- Substructure operations -------------------------------------------

  // True iff every tuple of *this (viewed with identical element ids) is a
  // tuple of `other` and the universes/vocabularies are compatible
  // (UniverseSize() <= other.UniverseSize()). This is "substructure with
  // the identity embedding".
  bool IsSubstructureOf(const Structure& other) const;

  // The structure with the same universe and all tuples except tuple
  // `index` of relation `rel`.
  Structure RemoveTuple(int rel, int index) const;

  // Removes element `a`, dropping all tuples that mention it; ids above a
  // shift down by one. If old_to_new is non-null it receives the id map
  // (old id -> new id, -1 for a).
  Structure RemoveElement(int a, std::vector<int>* old_to_new = nullptr) const;

  // The substructure induced by `elements` (keeps exactly the tuples whose
  // entries all lie in `elements`). Element i of the result corresponds to
  // elements[i].
  Structure InducedSubstructure(const std::vector<int>& elements,
                                std::vector<int>* old_to_new = nullptr) const;

  // Elements that occur in no tuple.
  std::vector<int> IsolatedElements() const;

  // --- Constructions ------------------------------------------------------

  // Disjoint union A + B (Section 3's closure operation); elements of
  // `other` are shifted by UniverseSize(). Vocabularies must agree.
  Structure DisjointUnion(const Structure& other) const;

  // The homomorphic image h(A): universe {0..image_size-1}, tuples
  // h(t) for every tuple t. `h` must map every element into range.
  Structure Image(const std::vector<int>& h, int image_size) const;

  // Structural equality: same vocabulary, universe size, and tuple sets.
  friend bool operator==(const Structure& a, const Structure& b);

  std::string DebugString() const;

 private:
  void CheckRelation(int rel) const;
  void CheckElement(int a) const;
  void InvalidateIndex() {
    index_.reset();
    fingerprint_ = 0;
  }

  Vocabulary vocabulary_;
  int universe_size_ = 0;
  std::vector<std::vector<Tuple>> relations_;  // sorted tuple lists
  // Lazily built index cache; null until Index() is first called and
  // reset by any mutation. Shared-ptr so moves transfer it for free.
  mutable std::shared_ptr<const RelationIndex> index_;
  // Lazily computed Fingerprint(); 0 = not yet computed (the hash is
  // remapped away from 0). Same invalidation discipline as index_.
  mutable uint64_t fingerprint_ = 0;
};

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_STRUCTURE_H_
