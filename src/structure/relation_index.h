// Per-relation tuple indexes (the data layer behind every solver).
//
// Each solver in the library ultimately asks "which tuples of relation R
// match this partially bound atom?". The sorted tuple lists of Structure
// answer that in O(|R|) per probe; RelationIndex makes the common probes
// sub-linear:
//
//   * per-position inverted lists   element -> ids of tuples holding it
//                                   at a given position (CSR layout),
//   * bound-prefix range lookup     lower_bound/upper_bound over the
//                                   sorted tuple vector for atoms whose
//                                   leading positions are bound,
//   * element occurrence counts     one pass, shared by IsolatedElements,
//                                   split planning, and degree probes.
//
// An index is a pure function of the structure's value: consumers that
// iterate a narrowed candidate set see exactly the tuples a full scan
// would have accepted, in the same relative (lexicographic) order, so
// search results stay bit-identical.
//
// Lifetime: RelationIndex borrows the tuple storage of the Structure it
// was built from (ids plus raw pointers to the sorted vectors). It is
// obtained via Structure::Index(), which caches it until the next
// mutation; see the invalidation rules documented there.

#ifndef HOMPRES_STRUCTURE_RELATION_INDEX_H_
#define HOMPRES_STRUCTURE_RELATION_INDEX_H_

#include <span>
#include <utility>
#include <vector>

namespace hompres {

class Structure;
using Tuple = std::vector<int>;

class RelationIndex {
 public:
  // Builds the index in one pass over the tuples: O(total tuple slots).
  explicit RelationIndex(const Structure& s);

  // Ids of the tuples of `rel` whose entry at position `pos` equals
  // `value`, ascending (= lexicographic tuple order). Ids index into
  // Structure::Tuples(rel).
  std::span<const int> TuplesAt(int rel, int pos, int value) const;

  // Half-open id range [lo, hi) of the tuples of `rel` whose first
  // prefix.size() entries equal `prefix`. Requires
  // prefix.size() <= arity. An empty prefix yields the full range.
  std::pair<int, int> PrefixRange(int rel, const Tuple& prefix) const;

  // Sorted distinct ids of tuples of `rel` mentioning element `e` at any
  // position (union of the per-position lists).
  std::vector<int> TuplesMentioning(int rel, int e) const;

  // occurrences[e] = number of (tuple, position) slots across all
  // relations holding element e (counting multiplicity, exactly as a
  // full scan incrementing per slot would).
  const std::vector<int>& ElementOccurrences() const { return occurrences_; }

  // Number of tuples of `rel` at build time.
  int NumTuples(int rel) const;

 private:
  struct RelIndex {
    const std::vector<Tuple>* tuples;  // borrowed from the owning Structure
    int arity = 0;
    // CSR inverted lists: ids of tuples with value v at position p live in
    // ids[starts[p * universe + v] .. starts[p * universe + v + 1]).
    std::vector<int> starts;
    std::vector<int> ids;
  };

  const RelIndex& Rel(int rel) const;

  int universe_size_ = 0;
  std::vector<RelIndex> rels_;
  std::vector<int> occurrences_;
};

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_RELATION_INDEX_H_
