// Per-relation tuple indexes (the data layer behind every solver).
//
// Each solver in the library ultimately asks "which tuples of relation R
// match this partially bound atom?". The sorted tuple lists of Structure
// answer that in O(|R|) per probe; RelationIndex makes the common probes
// sub-linear:
//
//   * per-position inverted lists   element -> ids of tuples holding it
//                                   at a given position (one ascending
//                                   id list per (position, value) slot),
//   * bound-prefix range lookup     lower_bound/upper_bound over the
//                                   sorted tuple vector for atoms whose
//                                   leading positions are bound,
//   * element occurrence counts     one pass, shared by IsolatedElements,
//                                   split planning, and degree probes.
//
// An index is a pure function of the structure's value: consumers that
// iterate a narrowed candidate set see exactly the tuples a full scan
// would have accepted, in the same relative (lexicographic) order, so
// search results stay bit-identical.
//
// Incremental maintenance: the index can follow a mutating structure
// without a rebuild. A tail insertion or removal (the lexicographically
// last tuple of its relation) costs O(arity); a mid-list edit also
// shifts the ids of that relation's later tuples, O(arity * |R|). The
// Apply* methods accumulate that shift work as *maintenance debt*;
// Structure compares the debt against the cost of rebuilding from
// scratch and drops the index (lazy rebuild = compaction) once in-place
// maintenance stops paying for itself. See DESIGN.md §4.10.
//
// Lifetime: RelationIndex borrows the tuple storage of the Structure it
// was built from (ids plus raw pointers to the sorted vectors). It is
// obtained via Structure::Index(), which maintains or rebuilds it across
// mutations; see the rules documented there.

#ifndef HOMPRES_STRUCTURE_RELATION_INDEX_H_
#define HOMPRES_STRUCTURE_RELATION_INDEX_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace hompres {

class Structure;
using Tuple = std::vector<int>;

class RelationIndex {
 public:
  // Builds the index in one pass over the tuples: O(total tuple slots).
  explicit RelationIndex(const Structure& s);

  // Ids of the tuples of `rel` whose entry at position `pos` equals
  // `value`, ascending (= lexicographic tuple order). Ids index into
  // Structure::Tuples(rel).
  std::span<const int> TuplesAt(int rel, int pos, int value) const;

  // Half-open id range [lo, hi) of the tuples of `rel` whose first
  // prefix.size() entries equal `prefix`. Requires
  // prefix.size() <= arity. An empty prefix yields the full range.
  std::pair<int, int> PrefixRange(int rel, const Tuple& prefix) const;

  // Sorted distinct ids of tuples of `rel` mentioning element `e` at any
  // position (union of the per-position lists).
  std::vector<int> TuplesMentioning(int rel, int e) const;

  // occurrences[e] = number of (tuple, position) slots across all
  // relations holding element e (counting multiplicity, exactly as a
  // full scan incrementing per slot would).
  const std::vector<int>& ElementOccurrences() const { return occurrences_; }

  // Number of tuples of `rel` as of the last build/maintenance step.
  int NumTuples(int rel) const;

  // --- Incremental maintenance (Structure's mutators only) --------------
  //
  // Callers must have already edited the owning structure's sorted tuple
  // vector: `id` is the position `tuple` now occupies (ApplyInsert) or
  // occupied until just now (ApplyRemove). Concurrent readers are not
  // allowed during maintenance, exactly as for structure mutation.

  void ApplyInsert(int rel, int id, const Tuple& tuple);
  void ApplyRemove(int rel, int id, const Tuple& tuple);

  // One fresh (isolated) universe element appended: grows every
  // position's slot table and the occurrence counts.
  void ApplyAppendElement();

  // Slot-edit work done by the Apply* calls since the build, versus the
  // slot count a from-scratch rebuild would touch now. Structure drops
  // the index for lazy rebuild once debt exceeds rebuild cost.
  size_t MaintenanceDebt() const { return debt_; }
  size_t RebuildCost() const;

 private:
  struct RelIndex {
    const std::vector<Tuple>* tuples;  // borrowed from the owning Structure
    int arity = 0;
    // lists[p][v] = ascending ids of tuples with value v at position p.
    std::vector<std::vector<std::vector<int>>> lists;
  };

  const RelIndex& Rel(int rel) const;
  RelIndex& MutableRel(int rel);

  int universe_size_ = 0;
  std::vector<RelIndex> rels_;
  std::vector<int> occurrences_;
  size_t debt_ = 0;
};

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_RELATION_INDEX_H_
