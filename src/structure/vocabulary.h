// Relational vocabularies (database schemas): finite lists of relation
// symbols with fixed arities (Section 2.1).

#ifndef HOMPRES_STRUCTURE_VOCABULARY_H_
#define HOMPRES_STRUCTURE_VOCABULARY_H_

#include <optional>
#include <string>
#include <vector>

#include "base/check.h"

namespace hompres {

// A vocabulary is a small value type; structures store their vocabulary by
// copy and operations CHECK that the vocabularies involved agree.
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = default;
  Vocabulary& operator=(const Vocabulary&) = default;

  // Adds a relation symbol and returns its index. Names must be distinct
  // and non-empty; arity must be >= 1 (0-ary relations, used by plebian
  // companions in Section 6, are modeled with arity 0 allowed there, so we
  // accept arity >= 0).
  int AddRelation(const std::string& name, int arity) {
    HOMPRES_CHECK(!name.empty());
    HOMPRES_CHECK_GE(arity, 0);
    HOMPRES_CHECK(!IndexOf(name).has_value());
    names_.push_back(name);
    arities_.push_back(arity);
    return static_cast<int>(names_.size()) - 1;
  }

  int NumRelations() const { return static_cast<int>(names_.size()); }

  const std::string& Name(int rel) const {
    CheckRelation(rel);
    return names_[static_cast<size_t>(rel)];
  }

  int Arity(int rel) const {
    CheckRelation(rel);
    return arities_[static_cast<size_t>(rel)];
  }

  std::optional<int> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return std::nullopt;
  }

  friend bool operator==(const Vocabulary& a, const Vocabulary& b) {
    return a.names_ == b.names_ && a.arities_ == b.arities_;
  }

 private:
  void CheckRelation(int rel) const {
    HOMPRES_CHECK_GE(rel, 0);
    HOMPRES_CHECK_LT(rel, NumRelations());
  }

  std::vector<std::string> names_;
  std::vector<int> arities_;
};

// Stock vocabularies used throughout the tests and benches.

// {E/2}: one binary relation (directed edges; symmetric closure encodes
// undirected graphs).
inline Vocabulary GraphVocabulary() {
  Vocabulary voc;
  voc.AddRelation("E", 2);
  return voc;
}

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_VOCABULARY_H_
