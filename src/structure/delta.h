// Structure deltas: first-class, ordered edit scripts against a
// Structure (ROADMAP item 3).
//
// A StructureDelta records tuple insertions, tuple deletions, and
// universe-element appends in the order they should apply. It is the
// unit of mutation for everything that keeps derived state warm:
// Structure::Apply() replays the ops while *incrementally* maintaining
// the cached RelationIndex and fingerprint (structure/structure.h), and
// datalog/incremental.h's MaterializedView consumes the same delta to
// maintain a Datalog fixpoint without refixpointing from scratch.
//
// Deltas are value types: build one with the fluent mutators, hand it to
// as many structures/views as you like. Ops that turn out to be no-ops
// against a particular structure (inserting a present tuple, removing an
// absent one) are skipped and counted, not errors — the same delta can
// be broadcast to replicas that are not bit-identical.

#ifndef HOMPRES_STRUCTURE_DELTA_H_
#define HOMPRES_STRUCTURE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "structure/vocabulary.h"

namespace hompres {

using Tuple = std::vector<int>;

// One edit: insert/remove `tuple` in relation `rel`, or append `count`
// fresh universe elements.
struct DeltaOp {
  enum class Kind { kInsertTuple, kRemoveTuple, kAppendElements };
  Kind kind = Kind::kInsertTuple;
  int rel = -1;       // tuple ops
  Tuple tuple;        // tuple ops
  int count = 0;      // kAppendElements
};

class StructureDelta {
 public:
  StructureDelta() = default;

  StructureDelta& InsertTuple(int rel, Tuple tuple);
  StructureDelta& RemoveTuple(int rel, Tuple tuple);
  StructureDelta& AppendElements(int count);

  const std::vector<DeltaOp>& Ops() const { return ops_; }
  bool Empty() const { return ops_.empty(); }

  // Totals over the ops (not net effect): how many insert/remove ops and
  // how many elements the append ops request.
  int InsertOps() const { return insert_ops_; }
  int RemoveOps() const { return remove_ops_; }
  int ElementAppends() const { return element_appends_; }

  std::string DebugString(const Vocabulary& vocabulary) const;

 private:
  std::vector<DeltaOp> ops_;
  int insert_ops_ = 0;
  int remove_ops_ = 0;
  int element_appends_ = 0;
};

// What one Structure::Apply actually did. `tuples_inserted` /
// `tuples_removed` count the ops that changed the structure (duplicates
// and misses land in `noop_ops`). The index flags record how the cached
// RelationIndex fared: maintained in place, dropped by the "delta/apply"
// failpoint (degraded; it lazily rebuilds on next use), or dropped by
// the compaction threshold once incremental maintenance debt exceeded a
// rebuild.
struct DeltaApplyResult {
  int tuples_inserted = 0;
  int tuples_removed = 0;
  int elements_appended = 0;
  int noop_ops = 0;
  bool index_maintained = false;
  bool index_degraded = false;
  bool index_compacted = false;
  uint64_t version = 0;  // Structure::Version() after the apply
};

}  // namespace hompres

#endif  // HOMPRES_STRUCTURE_DELTA_H_
