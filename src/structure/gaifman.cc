#include "structure/gaifman.h"

#include <algorithm>

#include "structure/relation_index.h"

namespace hompres {

namespace {

// Per-element co-occurrence lists, one pass over the tuple store. The
// occurrence counts of the cached index size the buffers so the pass
// never reallocates; the sort+unique at the end replaces the per-pair
// HasEdge probes of the naive construction.
std::vector<std::vector<int>> CoOccurrenceLists(const Structure& a) {
  const std::vector<int>& occurrences = a.Index().ElementOccurrences();
  std::vector<std::vector<int>> nbrs(
      static_cast<size_t>(a.UniverseSize()));
  for (int e = 0; e < a.UniverseSize(); ++e) {
    nbrs[static_cast<size_t>(e)].reserve(
        static_cast<size_t>(occurrences[static_cast<size_t>(e)]));
  }
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : a.Tuples(rel)) {
      for (size_t i = 0; i < t.size(); ++i) {
        for (size_t j = i + 1; j < t.size(); ++j) {
          if (t[i] == t[j]) continue;
          nbrs[static_cast<size_t>(t[i])].push_back(t[j]);
          nbrs[static_cast<size_t>(t[j])].push_back(t[i]);
        }
      }
    }
  }
  for (auto& list : nbrs) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return nbrs;
}

}  // namespace

Graph GaifmanGraph(const Structure& a) {
  const auto nbrs = CoOccurrenceLists(a);
  Graph g(a.UniverseSize());
  for (int u = 0; u < a.UniverseSize(); ++u) {
    for (int v : nbrs[static_cast<size_t>(u)]) {
      if (u < v) g.AddEdge(u, v);
    }
  }
  return g;
}

int StructureDegree(const Structure& a) {
  const auto nbrs = CoOccurrenceLists(a);
  size_t max_degree = 0;
  for (const auto& list : nbrs) {
    max_degree = std::max(max_degree, list.size());
  }
  return static_cast<int>(max_degree);
}

}  // namespace hompres
