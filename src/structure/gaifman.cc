#include "structure/gaifman.h"

namespace hompres {

Graph GaifmanGraph(const Structure& a) {
  Graph g(a.UniverseSize());
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : a.Tuples(rel)) {
      for (size_t i = 0; i < t.size(); ++i) {
        for (size_t j = i + 1; j < t.size(); ++j) {
          if (t[i] != t[j] && !g.HasEdge(t[i], t[j])) g.AddEdge(t[i], t[j]);
        }
      }
    }
  }
  return g;
}

int StructureDegree(const Structure& a) {
  return GaifmanGraph(a).MaxDegree();
}

}  // namespace hompres
