#include "structure/delta.h"

#include <sstream>
#include <utility>

#include "base/check.h"

namespace hompres {

StructureDelta& StructureDelta::InsertTuple(int rel, Tuple tuple) {
  HOMPRES_CHECK_GE(rel, 0);
  DeltaOp op;
  op.kind = DeltaOp::Kind::kInsertTuple;
  op.rel = rel;
  op.tuple = std::move(tuple);
  ops_.push_back(std::move(op));
  ++insert_ops_;
  return *this;
}

StructureDelta& StructureDelta::RemoveTuple(int rel, Tuple tuple) {
  HOMPRES_CHECK_GE(rel, 0);
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRemoveTuple;
  op.rel = rel;
  op.tuple = std::move(tuple);
  ops_.push_back(std::move(op));
  ++remove_ops_;
  return *this;
}

StructureDelta& StructureDelta::AppendElements(int count) {
  HOMPRES_CHECK_GE(count, 0);
  if (count == 0) return *this;
  DeltaOp op;
  op.kind = DeltaOp::Kind::kAppendElements;
  op.count = count;
  ops_.push_back(std::move(op));
  element_appends_ += count;
  return *this;
}

std::string StructureDelta::DebugString(const Vocabulary& vocabulary) const {
  std::ostringstream out;
  out << "Delta[";
  bool first = true;
  for (const DeltaOp& op : ops_) {
    if (!first) out << "; ";
    first = false;
    switch (op.kind) {
      case DeltaOp::Kind::kAppendElements:
        out << "+|A|*" << op.count;
        continue;
      case DeltaOp::Kind::kInsertTuple:
        out << '+';
        break;
      case DeltaOp::Kind::kRemoveTuple:
        out << '-';
        break;
    }
    out << vocabulary.Name(op.rel) << '(';
    for (size_t i = 0; i < op.tuple.size(); ++i) {
      if (i > 0) out << ' ';
      out << op.tuple[i];
    }
    out << ')';
  }
  out << ']';
  return out.str();
}

}  // namespace hompres
