#include "graph/io.h"

#include <algorithm>
#include <sstream>

namespace hompres {

std::string GraphToDot(const Graph& g, const std::vector<int>& highlight) {
  std::ostringstream out;
  out << "graph G {\n";
  for (int v = 0; v < g.NumVertices(); ++v) {
    out << "  " << v;
    if (std::find(highlight.begin(), highlight.end(), v) !=
        highlight.end()) {
      out << " [style=filled, fillcolor=lightblue]";
    }
    out << ";\n";
  }
  for (const auto& [u, v] : g.Edges()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string TreeDecompositionToDot(const TreeDecomposition& td) {
  std::ostringstream out;
  out << "graph TD {\n  node [shape=box];\n";
  for (int node = 0; node < td.tree.NumVertices(); ++node) {
    out << "  " << node << " [label=\"{";
    const auto& bag = td.bags[static_cast<size_t>(node)];
    for (size_t i = 0; i < bag.size(); ++i) {
      if (i > 0) out << ',';
      out << bag[i];
    }
    out << "}\"];\n";
  }
  for (const auto& [u, v] : td.tree.Edges()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace hompres
