#include "graph/scattered.h"

#include <algorithm>

#include "base/check.h"
#include "base/subsets.h"
#include "graph/algorithms.h"

namespace hompres {

bool IsDScattered(const Graph& g, const std::vector<int>& s, int d) {
  HOMPRES_CHECK_GE(d, 0);
  for (size_t i = 0; i < s.size(); ++i) {
    const std::vector<int> dist = BfsDistances(g, s[i]);
    for (size_t j = i + 1; j < s.size(); ++j) {
      const int dij = dist[static_cast<size_t>(s[j])];
      HOMPRES_CHECK_NE(s[i], s[j]);
      if (dij != kUnreachable && dij <= 2 * d) return false;
    }
  }
  return true;
}

Graph ScatterConflictGraph(const Graph& g, int d) {
  HOMPRES_CHECK_GE(d, 0);
  Graph conflict(g.NumVertices());
  for (int u = 0; u < g.NumVertices(); ++u) {
    const std::vector<int> dist = BfsDistances(g, u);
    for (int v = u + 1; v < g.NumVertices(); ++v) {
      const int duv = dist[static_cast<size_t>(v)];
      if (duv != kUnreachable && duv <= 2 * d) conflict.AddEdge(u, v);
    }
  }
  return conflict;
}

std::vector<int> GreedyScatteredSet(const Graph& g, int d) {
  const Graph conflict = ScatterConflictGraph(g, d);
  std::vector<bool> excluded(static_cast<size_t>(g.NumVertices()), false);
  std::vector<int> result;
  for (;;) {
    // Pick the available vertex with fewest available conflict-neighbors.
    int best = -1;
    int best_conflicts = -1;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (excluded[static_cast<size_t>(v)]) continue;
      int conflicts = 0;
      for (int w : conflict.Neighbors(v)) {
        if (!excluded[static_cast<size_t>(w)]) ++conflicts;
      }
      if (best == -1 || conflicts < best_conflicts) {
        best = v;
        best_conflicts = conflicts;
      }
    }
    if (best == -1) break;
    result.push_back(best);
    excluded[static_cast<size_t>(best)] = true;
    for (int w : conflict.Neighbors(best)) {
      excluded[static_cast<size_t>(w)] = true;
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

namespace {

// Branch-and-bound search for an independent set of size m in `conflict`,
// restricted to `candidates`. `chosen` accumulates the result. One budget
// step per node; after a false return, budget.Stopped() distinguishes a
// refuted subtree from a truncated one.
bool IndependentSetSearch(const Graph& conflict, std::vector<int>& candidates,
                          int m, std::vector<int>& chosen, Budget& budget) {
  if (static_cast<int>(chosen.size()) >= m) return true;
  if (static_cast<int>(chosen.size() + candidates.size()) < m) return false;
  if (!budget.Checkpoint()) return false;
  // Branch on the candidate with the most conflicts among candidates
  // (fail-first).
  std::vector<bool> is_candidate(
      static_cast<size_t>(conflict.NumVertices()), false);
  for (int v : candidates) is_candidate[static_cast<size_t>(v)] = true;
  int pick = candidates.front();
  int pick_conflicts = -1;
  for (int v : candidates) {
    int conflicts = 0;
    for (int w : conflict.Neighbors(v)) {
      if (is_candidate[static_cast<size_t>(w)]) ++conflicts;
    }
    if (conflicts > pick_conflicts) {
      pick = v;
      pick_conflicts = conflicts;
    }
  }
  // Include `pick`.
  {
    std::vector<int> next;
    for (int v : candidates) {
      if (v != pick && !conflict.HasEdge(pick, v)) next.push_back(v);
    }
    chosen.push_back(pick);
    if (IndependentSetSearch(conflict, next, m, chosen, budget)) return true;
    chosen.pop_back();
  }
  // Exclude `pick`.
  {
    std::vector<int> next;
    for (int v : candidates) {
      if (v != pick) next.push_back(v);
    }
    if (IndependentSetSearch(conflict, next, m, chosen, budget)) return true;
  }
  return false;
}

}  // namespace

Outcome<std::optional<std::vector<int>>> FindScatteredSetOfSizeBudgeted(
    const Graph& g, int d, int m, Budget& budget) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  HOMPRES_CHECK_GE(m, 0);
  if (m == 0) return Result::Finish(budget, std::vector<int>{});
  if (m > g.NumVertices()) return Result::Finish(budget, std::nullopt);
  const Graph conflict = ScatterConflictGraph(g, d);
  std::vector<int> candidates(static_cast<size_t>(g.NumVertices()));
  for (int v = 0; v < g.NumVertices(); ++v) {
    candidates[static_cast<size_t>(v)] = v;
  }
  std::vector<int> chosen;
  if (!IndependentSetSearch(conflict, candidates, m, chosen, budget)) {
    return Result::Finish(budget, std::nullopt);
  }
  std::sort(chosen.begin(), chosen.end());
  HOMPRES_CHECK(IsDScattered(g, chosen, d));
  return Result::Done(std::move(chosen), budget.Report());
}

std::optional<std::vector<int>> FindScatteredSetOfSize(const Graph& g, int d,
                                                       int m) {
  Budget unlimited = Budget::Unlimited();
  return FindScatteredSetOfSizeBudgeted(g, d, m, unlimited).Value();
}

Outcome<std::optional<std::vector<int>>> FindIndependentSetOfSizeBudgeted(
    const Graph& g, int m, Budget& budget) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  HOMPRES_CHECK_GE(m, 0);
  if (m == 0) return Result::Finish(budget, std::vector<int>{});
  if (m > g.NumVertices()) return Result::Finish(budget, std::nullopt);
  std::vector<int> candidates(static_cast<size_t>(g.NumVertices()));
  for (int v = 0; v < g.NumVertices(); ++v) {
    candidates[static_cast<size_t>(v)] = v;
  }
  std::vector<int> chosen;
  if (!IndependentSetSearch(g, candidates, m, chosen, budget)) {
    return Result::Finish(budget, std::nullopt);
  }
  std::sort(chosen.begin(), chosen.end());
  return Result::Done(std::move(chosen), budget.Report());
}

std::optional<std::vector<int>> FindIndependentSetOfSize(const Graph& g,
                                                         int m) {
  Budget unlimited = Budget::Unlimited();
  return FindIndependentSetOfSizeBudgeted(g, m, unlimited).Value();
}

int MaxIndependentSetSize(const Graph& g) {
  int size = 0;
  while (size < g.NumVertices() &&
         FindIndependentSetOfSize(g, size + 1).has_value()) {
    ++size;
  }
  return size;
}

std::vector<int> LargeIndependentSet(const Graph& g,
                                     uint64_t improve_budget) {
  // Greedy: repeatedly take the minimum-degree available vertex.
  std::vector<bool> excluded(static_cast<size_t>(g.NumVertices()), false);
  std::vector<int> chosen;
  for (;;) {
    int best = -1;
    int best_degree = -1;
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (excluded[static_cast<size_t>(v)]) continue;
      int degree = 0;
      for (int w : g.Neighbors(v)) {
        if (!excluded[static_cast<size_t>(w)]) ++degree;
      }
      if (best == -1 || degree < best_degree) {
        best = v;
        best_degree = degree;
      }
    }
    if (best == -1) break;
    chosen.push_back(best);
    excluded[static_cast<size_t>(best)] = true;
    for (int w : g.Neighbors(best)) excluded[static_cast<size_t>(w)] = true;
  }
  // Budgeted exact improvement: a truncated attempt ("Exhausted") ends
  // the improvement loop just like a certain "no larger set" does.
  while (static_cast<int>(chosen.size()) < g.NumVertices()) {
    Budget attempt =
        improve_budget == 0 ? Budget::Unlimited()
                            : Budget::MaxSteps(improve_budget);
    auto better = FindIndependentSetOfSizeBudgeted(
        g, static_cast<int>(chosen.size()) + 1, attempt);
    if (!better.IsDone() || !better.Value().has_value()) break;
    chosen = std::move(*better.Value());
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

int MaxScatteredSetSize(const Graph& g, int d) {
  // Start from the greedy size and grow until no larger set exists.
  int size = static_cast<int>(GreedyScatteredSet(g, d).size());
  while (size < g.NumVertices() &&
         FindScatteredSetOfSize(g, d, size + 1).has_value()) {
    ++size;
  }
  return size;
}

Outcome<std::optional<ScatteredWitness>> FindScatteredAfterRemovalBudgeted(
    const Graph& g, int s, int d, int m, Budget& budget) {
  using Result = Outcome<std::optional<ScatteredWitness>>;
  HOMPRES_CHECK_GE(s, 0);
  const int n = g.NumVertices();
  for (int size = 0; size <= std::min(s, n); ++size) {
    std::optional<ScatteredWitness> found;
    ForEachCombination(n, size, [&](const std::vector<int>& b) {
      if (!budget.Checkpoint()) return false;
      std::vector<int> old_to_new;
      const Graph reduced = g.RemoveVertices(b, &old_to_new);
      auto scattered_outcome =
          FindScatteredSetOfSizeBudgeted(reduced, d, m, budget);
      if (!scattered_outcome.IsDone()) return false;
      auto& scattered = scattered_outcome.Value();
      if (!scattered.has_value()) return true;  // keep searching
      // Translate back to original ids.
      std::vector<int> new_to_old(static_cast<size_t>(reduced.NumVertices()));
      for (int old = 0; old < n; ++old) {
        const int now = old_to_new[static_cast<size_t>(old)];
        if (now >= 0) new_to_old[static_cast<size_t>(now)] = old;
      }
      ScatteredWitness witness;
      witness.removed = b;
      for (int v : *scattered) {
        witness.scattered.push_back(new_to_old[static_cast<size_t>(v)]);
      }
      found = std::move(witness);
      return false;  // stop
    });
    if (budget.Stopped()) return Result::StoppedShort(budget.Report());
    if (found.has_value()) {
      return Result::Done(std::move(found), budget.Report());
    }
  }
  return Result::Finish(budget, std::nullopt);
}

std::optional<ScatteredWitness> FindScatteredAfterRemoval(const Graph& g,
                                                          int s, int d,
                                                          int m) {
  Budget unlimited = Budget::Unlimited();
  return FindScatteredAfterRemovalBudgeted(g, s, d, m, unlimited).Value();
}

bool VerifyScatteredWitness(const Graph& g, const ScatteredWitness& witness,
                            int s, int d, int m) {
  if (static_cast<int>(witness.removed.size()) > s) return false;
  if (static_cast<int>(witness.scattered.size()) < m) return false;
  for (int v : witness.scattered) {
    if (std::find(witness.removed.begin(), witness.removed.end(), v) !=
        witness.removed.end()) {
      return false;
    }
  }
  std::vector<int> old_to_new;
  const Graph reduced = g.RemoveVertices(witness.removed, &old_to_new);
  std::vector<int> mapped;
  for (int v : witness.scattered) {
    const int now = old_to_new[static_cast<size_t>(v)];
    if (now < 0) return false;
    mapped.push_back(now);
  }
  return IsDScattered(reduced, mapped, d);
}

}  // namespace hompres
