#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace hompres {

Graph::Graph(int n) {
  HOMPRES_CHECK_GE(n, 0);
  adjacency_.resize(static_cast<size_t>(n));
}

void Graph::CheckVertex(int v) const {
  HOMPRES_CHECK_GE(v, 0);
  HOMPRES_CHECK_LT(v, NumVertices());
}

bool Graph::AddEdge(int u, int v) {
  CheckVertex(u);
  CheckVertex(v);
  HOMPRES_CHECK_NE(u, v);
  if (HasEdge(u, v)) return false;
  auto& nu = adjacency_[static_cast<size_t>(u)];
  auto& nv = adjacency_[static_cast<size_t>(v)];
  nu.insert(std::lower_bound(nu.begin(), nu.end(), v), v);
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(int u, int v) {
  CheckVertex(u);
  CheckVertex(v);
  if (!HasEdge(u, v)) return false;
  auto& nu = adjacency_[static_cast<size_t>(u)];
  auto& nv = adjacency_[static_cast<size_t>(v)];
  nu.erase(std::lower_bound(nu.begin(), nu.end(), v));
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --num_edges_;
  return true;
}

bool Graph::HasEdge(int u, int v) const {
  CheckVertex(u);
  CheckVertex(v);
  const auto& nu = adjacency_[static_cast<size_t>(u)];
  return std::binary_search(nu.begin(), nu.end(), v);
}

const std::vector<int>& Graph::Neighbors(int u) const {
  CheckVertex(u);
  return adjacency_[static_cast<size_t>(u)];
}

int Graph::Degree(int u) const {
  CheckVertex(u);
  return static_cast<int>(adjacency_[static_cast<size_t>(u)].size());
}

int Graph::MaxDegree() const {
  int max_degree = 0;
  for (const auto& neighbors : adjacency_) {
    max_degree = std::max(max_degree, static_cast<int>(neighbors.size()));
  }
  return max_degree;
}

int Graph::AddVertex() {
  adjacency_.emplace_back();
  return NumVertices() - 1;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (int u = 0; u < NumVertices(); ++u) {
    for (int v : adjacency_[static_cast<size_t>(u)]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices,
                             std::vector<int>* old_to_new) const {
  std::vector<int> map(static_cast<size_t>(NumVertices()), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    CheckVertex(vertices[i]);
    HOMPRES_CHECK_EQ(map[static_cast<size_t>(vertices[i])], -1);
    map[static_cast<size_t>(vertices[i])] = static_cast<int>(i);
  }
  Graph result(static_cast<int>(vertices.size()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (int w : Neighbors(vertices[i])) {
      const int mapped = map[static_cast<size_t>(w)];
      if (mapped > static_cast<int>(i)) {
        result.AddEdge(static_cast<int>(i), mapped);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return result;
}

Graph Graph::RemoveVertices(const std::vector<int>& removed,
                            std::vector<int>* old_to_new) const {
  std::vector<bool> gone(static_cast<size_t>(NumVertices()), false);
  for (int v : removed) {
    CheckVertex(v);
    gone[static_cast<size_t>(v)] = true;
  }
  std::vector<int> keep;
  keep.reserve(static_cast<size_t>(NumVertices()));
  for (int v = 0; v < NumVertices(); ++v) {
    if (!gone[static_cast<size_t>(v)]) keep.push_back(v);
  }
  return InducedSubgraph(keep, old_to_new);
}

Graph Graph::DisjointUnion(const Graph& other) const {
  Graph result(NumVertices() + other.NumVertices());
  for (const auto& [u, v] : Edges()) result.AddEdge(u, v);
  const int offset = NumVertices();
  for (const auto& [u, v] : other.Edges()) {
    result.AddEdge(u + offset, v + offset);
  }
  return result;
}

Graph Graph::ContractEdge(int u, int v) const {
  HOMPRES_CHECK(HasEdge(u, v));
  // Map old ids to new ids: v is deleted, ids above v shift down, v's
  // incidences are redirected to u.
  const int n = NumVertices();
  auto remap = [u, v](int w) {
    if (w == v) return (u < v) ? u : u - 1;
    return (w < v) ? w : w - 1;
  };
  Graph result(n - 1);
  for (const auto& [a, b] : Edges()) {
    const int ra = remap(a);
    const int rb = remap(b);
    if (ra != rb && !result.HasEdge(ra, rb)) result.AddEdge(ra, rb);
  }
  return result;
}

std::string Graph::DebugString() const {
  std::ostringstream out;
  out << "Graph(n=" << NumVertices() << ", m=" << NumEdges() << ";";
  for (const auto& [u, v] : Edges()) out << ' ' << u << '-' << v;
  out << ')';
  return out.str();
}

}  // namespace hompres
