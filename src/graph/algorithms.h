// Basic graph algorithms: BFS distances, d-neighborhoods, connectivity,
// components, and acyclicity. These are the primitives behind Gaifman
// locality (d-neighborhoods, Section 2.1) and the scattered-set machinery.

#ifndef HOMPRES_GRAPH_ALGORITHMS_H_
#define HOMPRES_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/graph.h"

namespace hompres {

// Value used in distance vectors for unreachable vertices.
inline constexpr int kUnreachable = -1;

// BFS distances from `source`; result[v] == kUnreachable if v is not
// reachable.
std::vector<int> BfsDistances(const Graph& g, int source);

// Distance between u and v, or kUnreachable.
int Distance(const Graph& g, int u, int v);

// The d-neighborhood N_d(u) of Section 2.1: all vertices at distance <= d
// from u, in increasing order. N_0(u) = {u}.
std::vector<int> NeighborhoodBall(const Graph& g, int u, int d);

// Component id (0-based, by first-seen order) for every vertex.
std::vector<int> ConnectedComponents(const Graph& g, int* num_components);

bool IsConnected(const Graph& g);

// True iff g has no cycle (forest).
bool IsAcyclic(const Graph& g);

// True iff g is a tree: connected and acyclic.
bool IsTree(const Graph& g);

// True iff the vertex set `s` induces a connected subgraph (a "connected
// patch" in the paper's minor terminology). Empty sets are not connected.
bool IsConnectedSubset(const Graph& g, const std::vector<int>& s);

// Largest finite distance between any two vertices in the same component;
// 0 for graphs with < 2 vertices.
int Diameter(const Graph& g);

// True iff g is bipartite (2-colorable).
bool IsBipartite(const Graph& g);

}  // namespace hompres

#endif  // HOMPRES_GRAPH_ALGORITHMS_H_
