// Graph minors (Section 2.1).
//
// G is a minor of H iff H contains pairwise-disjoint connected "patches",
// one per vertex of G, such that every edge of G is witnessed by an edge
// between the corresponding patches. This header provides an exact
// branch-set search (exponential in the worst case, fine at bench sizes),
// a verifier for minor models, the Wagner planarity test (no K5 / K3,3
// minor), and the Hadwiger number. The former ad-hoc `node_budget`
// parameter is subsumed by the budgeted entry points (one budget step per
// search node).

#ifndef HOMPRES_GRAPH_MINOR_H_
#define HOMPRES_GRAPH_MINOR_H_

#include <optional>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "graph/graph.h"

namespace hompres {

// A minor model: branch_sets[i] is the connected patch of host vertices
// realizing vertex i of the pattern.
struct MinorModel {
  std::vector<std::vector<int>> branch_sets;
};

// True iff `model` witnesses `pattern` as a minor of `host`: patches are
// nonempty, pairwise disjoint, connected in host, and every pattern edge
// has a host edge between its patches.
bool VerifyMinorModel(const Graph& host, const Graph& pattern,
                      const MinorModel& model);

// Exact search for `pattern` as a minor of `host`. Returns a verified
// model, or nullopt if none exists.
std::optional<MinorModel> FindMinor(const Graph& host, const Graph& pattern);

// Budgeted search: Done(model) / Done(nullopt = certainly no minor) /
// Exhausted / Cancelled.
Outcome<std::optional<MinorModel>> FindMinorBudgeted(const Graph& host,
                                                     const Graph& pattern,
                                                     Budget& budget);

// Convenience: does host contain K_h as a minor? Exact.
bool HasCompleteMinor(const Graph& host, int h);

Outcome<bool> HasCompleteMinorBudgeted(const Graph& host, int h,
                                       Budget& budget);

// Largest h such that K_h is a minor of host (the Hadwiger number).
// Exact; exponential worst case.
int HadwigerNumber(const Graph& host);

// Wagner's theorem: planar iff no K5 minor and no K3,3 minor. Exact but
// exponential; intended for the modest graphs the benches use.
bool IsPlanarByMinors(const Graph& g);

}  // namespace hompres

#endif  // HOMPRES_GRAPH_MINOR_H_
