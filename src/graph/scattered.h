// d-scattered sets (Section 3).
//
// A set S of vertices is d-scattered if the d-neighborhoods of its members
// are pairwise disjoint; equivalently, any two distinct members are at
// distance > 2d. The paper's density condition (Theorem 3.2 / Corollary
// 3.3) asks for a small removal set B such that G - B has a d-scattered set
// of size m; this header provides verifiers, greedy and exact extractors,
// and the removal-set search.

#ifndef HOMPRES_GRAPH_SCATTERED_H_
#define HOMPRES_GRAPH_SCATTERED_H_

#include <optional>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "graph/graph.h"

namespace hompres {

// True iff `s` is d-scattered in g (pairwise disjoint d-neighborhoods).
// Requires d >= 0; vertices of `s` must be distinct and in range.
bool IsDScattered(const Graph& g, const std::vector<int>& s, int d);

// The conflict graph for parameter d: same vertices as g, with an edge
// between u != v iff dist(u, v) <= 2d (i.e. their d-neighborhoods
// intersect). d-scattered sets of g are exactly the independent sets of
// the conflict graph.
Graph ScatterConflictGraph(const Graph& g, int d);

// Greedy maximal d-scattered set (not necessarily maximum): repeatedly
// pick the vertex whose ball excludes the fewest remaining candidates.
std::vector<int> GreedyScatteredSet(const Graph& g, int d);

// Exact: a d-scattered set of size exactly m, if one exists. Branch and
// bound over the conflict graph; exponential in the worst case, intended
// for the modest sizes the benches use.
std::optional<std::vector<int>> FindScatteredSetOfSize(const Graph& g, int d,
                                                       int m);

// Budgeted variant (one step per branch-and-bound node): Done(set) /
// Done(nullopt = certainly none) / Exhausted / Cancelled.
Outcome<std::optional<std::vector<int>>> FindScatteredSetOfSizeBudgeted(
    const Graph& g, int d, int m, Budget& budget);

// Size of a maximum d-scattered set (exact; exponential worst case).
int MaxScatteredSetSize(const Graph& g, int d);

// Independent set of size exactly m in g, if one exists (the d-scattered
// machinery in terms of an explicit conflict graph; also used by the
// Lemma 5.2 / Theorem 5.3 constructions). Branch and bound.
std::optional<std::vector<int>> FindIndependentSetOfSize(const Graph& g,
                                                         int m);

Outcome<std::optional<std::vector<int>>> FindIndependentSetOfSizeBudgeted(
    const Graph& g, int m, Budget& budget);

// Size of a maximum independent set (exact; exponential worst case).
int MaxIndependentSetSize(const Graph& g);

// Greedy maximal independent set (minimum-degree-first), then budgeted
// exact improvement: keeps searching for one-larger sets until the
// per-attempt step budget fails. Deterministic, never empty for
// nonempty g.
std::vector<int> LargeIndependentSet(const Graph& g,
                                     uint64_t improve_budget = 20000);

// Witness for the Theorem 3.2 density condition: a removal set B with
// |B| <= s and a d-scattered set of size m in G - B. `scattered` holds
// original vertex ids of g.
struct ScatteredWitness {
  std::vector<int> removed;
  std::vector<int> scattered;
};

// Searches all removal sets B with |B| <= s (smallest first) for one whose
// removal leaves a d-scattered set of size m. Exhaustive; intended for
// small s and modest graphs. Returns nullopt if no witness exists.
std::optional<ScatteredWitness> FindScatteredAfterRemoval(const Graph& g,
                                                          int s, int d,
                                                          int m);

Outcome<std::optional<ScatteredWitness>> FindScatteredAfterRemovalBudgeted(
    const Graph& g, int s, int d, int m, Budget& budget);

// Verifies a witness: removed has size <= s, scattered has size >= m and
// avoids `removed`, and scattered is d-scattered in G - removed.
bool VerifyScatteredWitness(const Graph& g, const ScatteredWitness& witness,
                            int s, int d, int m);

}  // namespace hompres

#endif  // HOMPRES_GRAPH_SCATTERED_H_
