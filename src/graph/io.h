// Graphviz (DOT) export for graphs, structures, and tree decompositions —
// debugging and documentation aids for the examples.

#ifndef HOMPRES_GRAPH_IO_H_
#define HOMPRES_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "tw/tree_decomposition.h"

namespace hompres {

// `highlight` vertices are drawn filled (e.g. a scattered set); pass {}
// for none.
std::string GraphToDot(const Graph& g,
                       const std::vector<int>& highlight = {});

// Bags become node labels.
std::string TreeDecompositionToDot(const TreeDecomposition& td);

}  // namespace hompres

#endif  // HOMPRES_GRAPH_IO_H_
