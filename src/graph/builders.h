// Constructors for the graph families used throughout the paper and its
// benchmarks: paths, cycles, cliques, complete bipartite graphs, grids,
// trees, stars, wheels, random graphs, random bounded-degree graphs, random
// k-trees (the canonical treewidth-k family), and the degree-3 gadget from
// Section 5 that has a K_k minor despite bounded degree.

#ifndef HOMPRES_GRAPH_BUILDERS_H_
#define HOMPRES_GRAPH_BUILDERS_H_

#include "base/rng.h"
#include "graph/graph.h"

namespace hompres {

// Path with n vertices (n-1 edges). Requires n >= 0.
Graph PathGraph(int n);

// Cycle with n vertices. Requires n >= 3.
Graph CycleGraph(int n);

// Complete graph K_n. Requires n >= 0.
Graph CompleteGraph(int n);

// Complete bipartite graph K_{a,b}; side A is vertices 0..a-1.
// Requires a, b >= 0.
Graph CompleteBipartiteGraph(int a, int b);

// rows x cols grid. Requires rows, cols >= 1. Grids are planar and
// bipartite with unbounded treewidth (min(rows, cols)), which makes them
// the paper's stock example separating T(k) from H(T(k)) (Section 6.2).
Graph GridGraph(int rows, int cols);

// Star S_n: one hub (vertex 0) with n leaves — the Section 4 example of an
// arbitrarily large graph with no 2-scattered set until the hub is removed.
// Requires n >= 0.
Graph StarGraph(int n);

// Wheel W_n of Section 6.2: hub (vertex 0) joined to an n-cycle
// (vertices 1..n). Requires n >= 3. W_n is a core iff n is odd.
Graph WheelGraph(int n);

// Bicycle B_n = W_n + K_4 of Section 6.2 (disjoint union). The core of
// B_n is K_4, so the class of bicycles has cores of bounded degree even
// though the B_n themselves have unbounded degree. Requires n >= 3.
Graph BicycleGraph(int n);

// Complete `arity`-ary tree of the given depth (depth 0 = single vertex).
// Requires arity >= 1, depth >= 0.
Graph BalancedTree(int arity, int depth);

// Caterpillar: a path with `spine` vertices, each with `legs` pendant
// leaves. Treewidth 1. Requires spine >= 1, legs >= 0.
Graph CaterpillarGraph(int spine, int legs);

// Erdos-Renyi G(n, p).
Graph RandomGraph(int n, double p, Rng& rng);

// Random connected graph with maximum degree <= max_degree: a random
// spanning tree grown under the degree budget plus random extra edges that
// respect it. Requires n >= 1, max_degree >= 2 for n >= 2.
Graph RandomBoundedDegreeGraph(int n, int max_degree, int extra_edges,
                               Rng& rng);

// Random k-tree on n vertices: start from K_{k+1}, then repeatedly attach
// a new vertex to a random existing k-clique. Treewidth exactly k (for
// n >= k+1). Requires n >= k + 1, k >= 1.
Graph RandomKTree(int n, int k, Rng& rng);

// Random tree on n vertices (uniform attachment). Requires n >= 1.
Graph RandomTree(int n, Rng& rng);

// Random maximal outerplanar graph (fan-style triangulation of a cycle):
// treewidth 2, planar. Requires n >= 3.
Graph RandomOuterplanarGraph(int n, Rng& rng);

// The Mycielski construction: given G on n vertices, returns the graph on
// 2n+1 vertices (original, shadow copies, apex) with chromatic number
// chi(G)+1 and the same clique number. Iterating from K_2 yields
// triangle-free graphs of arbitrarily high chromatic number — the stock
// source of hard graph-coloring (homomorphism) instances.
Graph MycielskiGraph(const Graph& g);

// The Section 5 gadget: replace every vertex of K_k by a binary tree with
// k-1 leaves and connect different pairs of trees through disjoint pairs of
// leaves. The result has maximum degree 3 but contains K_k as a minor —
// the paper's witness that bounded degree does not imply an excluded
// minor. Requires k >= 2.
Graph BoundedDegreeCliqueMinorGadget(int k);

}  // namespace hompres

#endif  // HOMPRES_GRAPH_BUILDERS_H_
