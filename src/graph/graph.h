// Undirected simple graphs.
//
// Graphs in the paper (Section 2.1) are undirected, loopless, and without
// parallel edges. Vertices are dense integers 0..n-1 so that graphs map
// directly onto the universes of relational structures (src/structure) and
// onto Gaifman graphs.

#ifndef HOMPRES_GRAPH_GRAPH_H_
#define HOMPRES_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hompres {

// An undirected simple graph on vertices {0, ..., NumVertices()-1}.
// Copyable; copies are independent.
class Graph {
 public:
  // Empty graph on n vertices. Requires n >= 0.
  explicit Graph(int n = 0);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  int NumVertices() const { return static_cast<int>(adjacency_.size()); }
  int NumEdges() const { return num_edges_; }

  // Adds the undirected edge {u, v}. Requires u != v (no loops) and both
  // endpoints in range. Returns false (and changes nothing) if the edge
  // already exists.
  bool AddEdge(int u, int v);

  // Removes the undirected edge {u, v} if present. Returns whether an edge
  // was removed.
  bool RemoveEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  // Neighbors of u in increasing order.
  const std::vector<int>& Neighbors(int u) const;

  int Degree(int u) const;

  // Maximum degree over all vertices; 0 for the empty graph.
  int MaxDegree() const;

  // Appends an isolated vertex and returns its id.
  int AddVertex();

  // All edges as (u, v) pairs with u < v, lexicographically ordered.
  std::vector<std::pair<int, int>> Edges() const;

  // The subgraph induced by `vertices` (need not be sorted; duplicates are
  // a caller bug). Vertex i of the result corresponds to vertices[i]. If
  // `old_to_new` is non-null it receives a NumVertices()-sized map from old
  // ids to new ids, with -1 for dropped vertices.
  Graph InducedSubgraph(const std::vector<int>& vertices,
                        std::vector<int>* old_to_new = nullptr) const;

  // The graph G - B of the paper: removes all vertices in `removed` and
  // their incident edges, compacting ids. See InducedSubgraph for
  // `old_to_new`.
  Graph RemoveVertices(const std::vector<int>& removed,
                       std::vector<int>* old_to_new = nullptr) const;

  // Disjoint union; vertices of `other` are shifted by NumVertices().
  Graph DisjointUnion(const Graph& other) const;

  // Contracts edge {u, v}: v's neighbors move to u, v becomes the last
  // vertex and is removed (ids above v shift down by one). Loops and
  // parallel edges created by the contraction are suppressed. Requires the
  // edge to exist. Returns the resulting graph.
  Graph ContractEdge(int u, int v) const;

  // Structural equality (same vertex count and edge set).
  friend bool operator==(const Graph& a, const Graph& b) {
    return a.adjacency_ == b.adjacency_;
  }

  // Human-readable description, e.g. "Graph(n=4, m=3; 0-1 1-2 2-3)".
  std::string DebugString() const;

 private:
  void CheckVertex(int v) const;

  std::vector<std::vector<int>> adjacency_;  // sorted neighbor lists
  int num_edges_ = 0;
};

}  // namespace hompres

#endif  // HOMPRES_GRAPH_GRAPH_H_
