#include "graph/minor.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>

#include "base/check.h"
#include "base/subsets.h"
#include "graph/algorithms.h"
#include "graph/builders.h"

namespace hompres {

bool VerifyMinorModel(const Graph& host, const Graph& pattern,
                      const MinorModel& model) {
  const int h = pattern.NumVertices();
  if (static_cast<int>(model.branch_sets.size()) != h) return false;
  std::vector<int> owner(static_cast<size_t>(host.NumVertices()), -1);
  for (int i = 0; i < h; ++i) {
    const auto& patch = model.branch_sets[static_cast<size_t>(i)];
    if (patch.empty()) return false;
    for (int v : patch) {
      if (v < 0 || v >= host.NumVertices()) return false;
      if (owner[static_cast<size_t>(v)] != -1) return false;  // overlap
      owner[static_cast<size_t>(v)] = i;
    }
    if (!IsConnectedSubset(host, patch)) return false;
  }
  for (const auto& [a, b] : pattern.Edges()) {
    bool linked = false;
    for (int u : model.branch_sets[static_cast<size_t>(a)]) {
      for (int v : model.branch_sets[static_cast<size_t>(b)]) {
        if (host.HasEdge(u, v)) {
          linked = true;
          break;
        }
      }
      if (linked) break;
    }
    if (!linked) return false;
  }
  return true;
}

namespace {

constexpr size_t kMemoCap = 1u << 22;  // ~4M states

// Backtracking state for the branch-set search.
struct MinorSearch {
  const Graph& host;
  const Graph& pattern;
  Budget& budget;                // one step per search node
  std::vector<int> orbit;        // pattern vertex -> interchangeability class
  std::vector<std::vector<int>> patches;
  std::vector<int> owner;        // host vertex -> patch id or -1
  std::unordered_set<uint64_t> memo;

  bool Linked(int i, int j) const {
    for (int u : patches[static_cast<size_t>(i)]) {
      for (int v : host.Neighbors(u)) {
        if (owner[static_cast<size_t>(v)] == j) return true;
      }
    }
    return false;
  }

  uint64_t StateHash() const {
    uint64_t hash = 1469598103934665603ULL;
    for (int o : owner) {
      hash ^= static_cast<uint64_t>(o + 2);
      hash *= 1099511628211ULL;
    }
    return hash;
  }

  // Dead-end check: for every unlinked pattern edge (i, j), patch j must be
  // reachable from patch i through unused vertices. BFS over
  // patch_i ∪ unused, succeeding on first contact with patch j.
  bool LinkagePossible() const {
    for (const auto& [i, j] : pattern.Edges()) {
      if (patches[static_cast<size_t>(i)].empty() ||
          patches[static_cast<size_t>(j)].empty()) {
        continue;  // seeding handles empties
      }
      if (Linked(i, j)) continue;
      std::vector<bool> visited(static_cast<size_t>(host.NumVertices()),
                                false);
      std::deque<int> queue;
      for (int u : patches[static_cast<size_t>(i)]) {
        visited[static_cast<size_t>(u)] = true;
        queue.push_back(u);
      }
      bool reachable = false;
      while (!queue.empty() && !reachable) {
        const int u = queue.front();
        queue.pop_front();
        for (int v : host.Neighbors(u)) {
          const int o = owner[static_cast<size_t>(v)];
          if (o == j) {
            reachable = true;
            break;
          }
          if (o == -1 && !visited[static_cast<size_t>(v)]) {
            visited[static_cast<size_t>(v)] = true;
            queue.push_back(v);
          }
        }
      }
      if (!reachable) return false;
    }
    return true;
  }

  int UnusedCount() const {
    int count = 0;
    for (int o : owner) {
      if (o == -1) ++count;
    }
    return count;
  }

  bool Solve() {
    if (!budget.Checkpoint()) return false;

    const int h = pattern.NumVertices();
    int empty_patch = -1;
    int empties = 0;
    for (int i = 0; i < h; ++i) {
      if (patches[static_cast<size_t>(i)].empty()) {
        if (empty_patch == -1) empty_patch = i;
        ++empties;
      }
    }
    if (UnusedCount() < empties) return false;
    if (!LinkagePossible()) return false;
    if (memo.size() < kMemoCap && !memo.insert(StateHash()).second) {
      return false;  // state already explored
    }

    // Prefer working on an unlinked pattern edge whose patches are both
    // seeded: linking is far more constrained than seeding, so handling it
    // first lets failures surface before the remaining patches multiply
    // the seed choices.
    int need_i = -1;
    int need_j = -1;
    for (const auto& [a, b] : pattern.Edges()) {
      if (!patches[static_cast<size_t>(a)].empty() &&
          !patches[static_cast<size_t>(b)].empty() && !Linked(a, b)) {
        need_i = a;
        need_j = b;
        break;
      }
    }

    if (need_i == -1 && empty_patch != -1) {
      // Seed the first empty patch with every unused vertex. Patches in
      // the same orbit are interchangeable: force their seeds to be
      // increasing.
      int min_seed = 0;
      for (int i = 0; i < empty_patch; ++i) {
        if (orbit[static_cast<size_t>(i)] ==
                orbit[static_cast<size_t>(empty_patch)] &&
            !patches[static_cast<size_t>(i)].empty()) {
          min_seed = std::max(min_seed,
                              patches[static_cast<size_t>(i)].front() + 1);
        }
      }
      for (int v = min_seed; v < host.NumVertices(); ++v) {
        if (owner[static_cast<size_t>(v)] != -1) continue;
        patches[static_cast<size_t>(empty_patch)].push_back(v);
        owner[static_cast<size_t>(v)] = empty_patch;
        if (Solve()) return true;
        owner[static_cast<size_t>(v)] = -1;
        patches[static_cast<size_t>(empty_patch)].clear();
      }
      return false;
    }

    // All seeded pairs linked and every patch seeded: done.
    if (need_i == -1) return true;

    // Grow patch need_i or need_j by an unused neighbor. This move set is
    // complete: in any model extending the current state, either the link
    // edge already exists (contradiction with unlinkedness) or one of the
    // two patches is a proper subset of its model patch which, being
    // connected, contains an unused neighbor of the current patch.
    for (int side : {need_i, need_j}) {
      std::vector<bool> seen(static_cast<size_t>(host.NumVertices()), false);
      std::vector<int> frontier;
      for (int u : patches[static_cast<size_t>(side)]) {
        for (int w : host.Neighbors(u)) {
          if (owner[static_cast<size_t>(w)] == -1 &&
              !seen[static_cast<size_t>(w)]) {
            seen[static_cast<size_t>(w)] = true;
            frontier.push_back(w);
          }
        }
      }
      for (int w : frontier) {
        patches[static_cast<size_t>(side)].push_back(w);
        owner[static_cast<size_t>(w)] = side;
        if (Solve()) return true;
        owner[static_cast<size_t>(w)] = -1;
        patches[static_cast<size_t>(side)].pop_back();
      }
    }
    return false;
  }
};

// Greedy contraction heuristic for K_h minors: repeatedly contract an
// edge incident to a minimum-degree class, and whenever few classes
// remain, look for h pairwise-adjacent classes in the quotient. Sound
// (every answer is verified) but incomplete; used as a fast path before
// the exact search.
std::optional<MinorModel> CompleteMinorHeuristic(const Graph& host, int h,
                                                 Budget& budget) {
  if (h <= 0 || h > host.NumVertices()) return std::nullopt;
  // Union-find over host vertices.
  std::vector<int> parent(static_cast<size_t>(host.NumVertices()));
  for (int v = 0; v < host.NumVertices(); ++v) {
    parent[static_cast<size_t>(v)] = v;
  }
  std::function<int(int)> find = [&](int v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  std::vector<bool> dropped(static_cast<size_t>(host.NumVertices()), false);

  auto quotient_state = [&]() {
    // Returns (list of live class roots, adjacency between them).
    std::vector<int> roots;
    std::vector<int> root_index(static_cast<size_t>(host.NumVertices()), -1);
    for (int v = 0; v < host.NumVertices(); ++v) {
      const int r = find(v);
      if (!dropped[static_cast<size_t>(r)] &&
          root_index[static_cast<size_t>(r)] == -1) {
        root_index[static_cast<size_t>(r)] = static_cast<int>(roots.size());
        roots.push_back(r);
      }
    }
    Graph quotient(static_cast<int>(roots.size()));
    for (const auto& [u, v] : host.Edges()) {
      const int ru = find(u);
      const int rv = find(v);
      if (ru == rv || dropped[static_cast<size_t>(ru)] ||
          dropped[static_cast<size_t>(rv)]) {
        continue;
      }
      const int iu = root_index[static_cast<size_t>(ru)];
      const int iv = root_index[static_cast<size_t>(rv)];
      if (!quotient.HasEdge(iu, iv)) quotient.AddEdge(iu, iv);
    }
    return std::make_pair(roots, quotient);
  };

  auto extract_model = [&](const std::vector<int>& roots,
                           const std::vector<int>& clique) {
    MinorModel model;
    model.branch_sets.resize(clique.size());
    for (size_t i = 0; i < clique.size(); ++i) {
      const int root = roots[static_cast<size_t>(clique[i])];
      for (int v = 0; v < host.NumVertices(); ++v) {
        if (find(v) == root) model.branch_sets[i].push_back(v);
      }
    }
    return model;
  };

  for (;;) {
    if (!budget.Checkpoint()) return std::nullopt;
    auto [roots, quotient] = quotient_state();
    const int c = quotient.NumVertices();
    if (c < h) return std::nullopt;
    // When the quotient is small, brute-force an h-clique.
    if (c <= h + 8) {
      std::optional<std::vector<int>> clique;
      ForEachCombination(c, h, [&](const std::vector<int>& pick) {
        for (size_t i = 0; i < pick.size(); ++i) {
          for (size_t j = i + 1; j < pick.size(); ++j) {
            if (!quotient.HasEdge(pick[i], pick[j])) return true;
          }
        }
        clique = pick;
        return false;
      });
      if (clique.has_value()) {
        MinorModel model = extract_model(roots, *clique);
        if (VerifyMinorModel(host, CompleteGraph(h), model)) return model;
        return std::nullopt;  // should not happen; stay sound
      }
      if (c == h) return std::nullopt;
    }
    // Contract: minimum-degree class merges into its minimum-degree
    // neighbor; isolated classes are dropped.
    int min_class = -1;
    for (int i = 0; i < c; ++i) {
      if (min_class == -1 ||
          quotient.Degree(i) < quotient.Degree(min_class)) {
        min_class = i;
      }
    }
    if (quotient.Degree(min_class) == 0) {
      dropped[static_cast<size_t>(roots[static_cast<size_t>(min_class)])] =
          true;
      continue;
    }
    int partner = -1;
    for (int w : quotient.Neighbors(min_class)) {
      if (partner == -1 || quotient.Degree(w) < quotient.Degree(partner)) {
        partner = w;
      }
    }
    const int ra = roots[static_cast<size_t>(min_class)];
    const int rb = roots[static_cast<size_t>(partner)];
    parent[static_cast<size_t>(ra)] = rb;
  }
}

// Interchangeability classes of pattern vertices: two vertices are in the
// same class if swapping them is an automorphism, which holds whenever
// they have the same closed/open neighborhood outside the pair. This is a
// sound (not complete) orbit refinement that covers K_h (one class) and
// K_{a,b} (two classes).
std::vector<int> PatternOrbits(const Graph& pattern) {
  const int h = pattern.NumVertices();
  std::vector<int> orbit(static_cast<size_t>(h), -1);
  int next = 0;
  for (int i = 0; i < h; ++i) {
    if (orbit[static_cast<size_t>(i)] != -1) continue;
    orbit[static_cast<size_t>(i)] = next;
    for (int j = i + 1; j < h; ++j) {
      if (orbit[static_cast<size_t>(j)] != -1) continue;
      bool swappable = true;
      for (int w = 0; w < h && swappable; ++w) {
        if (w == i || w == j) continue;
        if (pattern.HasEdge(i, w) != pattern.HasEdge(j, w)) swappable = false;
      }
      if (swappable) orbit[static_cast<size_t>(j)] = next;
    }
    ++next;
  }
  return orbit;
}

}  // namespace

Outcome<std::optional<MinorModel>> FindMinorBudgeted(const Graph& host,
                                                     const Graph& pattern,
                                                     Budget& budget) {
  using Result = Outcome<std::optional<MinorModel>>;
  const int h = pattern.NumVertices();
  if (h == 0) return Result::Finish(budget, MinorModel{});
  if (h > host.NumVertices()) return Result::Finish(budget, std::nullopt);
  if (pattern.NumEdges() > host.NumEdges()) {
    return Result::Finish(budget, std::nullopt);
  }
  // Fast path for complete patterns: greedy contraction often finds a
  // model immediately (and is always verified before being returned).
  if (pattern == CompleteGraph(h)) {
    if (auto model = CompleteMinorHeuristic(host, h, budget);
        model.has_value()) {
      return Result::Done(std::move(model), budget.Report());
    }
    if (budget.Stopped()) return Result::StoppedShort(budget.Report());
  }
  MinorSearch search{
      .host = host,
      .pattern = pattern,
      .budget = budget,
      .orbit = PatternOrbits(pattern),
      .patches = std::vector<std::vector<int>>(static_cast<size_t>(h)),
      .owner = std::vector<int>(static_cast<size_t>(host.NumVertices()), -1),
      .memo = {},
  };
  if (!search.Solve()) {
    // Distinguish a refuted search space from a truncated one.
    return Result::Finish(budget, std::nullopt);
  }
  MinorModel model{.branch_sets = std::move(search.patches)};
  HOMPRES_CHECK(VerifyMinorModel(host, pattern, model));
  return Result::Done(std::move(model), budget.Report());
}

std::optional<MinorModel> FindMinor(const Graph& host, const Graph& pattern) {
  Budget unlimited = Budget::Unlimited();
  return FindMinorBudgeted(host, pattern, unlimited).Value();
}

bool HasCompleteMinor(const Graph& host, int h) {
  HOMPRES_CHECK_GE(h, 0);
  return FindMinor(host, CompleteGraph(h)).has_value();
}

Outcome<bool> HasCompleteMinorBudgeted(const Graph& host, int h,
                                       Budget& budget) {
  HOMPRES_CHECK_GE(h, 0);
  auto found = FindMinorBudgeted(host, CompleteGraph(h), budget);
  if (!found.IsDone()) return Outcome<bool>::StoppedShort(found.Report());
  return Outcome<bool>::Done(found.Value().has_value(), found.Report());
}

int HadwigerNumber(const Graph& host) {
  int h = 0;
  while (h < host.NumVertices() && HasCompleteMinor(host, h + 1)) ++h;
  return h;
}

bool IsPlanarByMinors(const Graph& g) {
  return !HasCompleteMinor(g, 5) &&
         !FindMinor(g, CompleteBipartiteGraph(3, 3)).has_value();
}

}  // namespace hompres
