#include "graph/builders.h"

#include <vector>

#include "base/check.h"

namespace hompres {

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(int n) {
  HOMPRES_CHECK_GE(n, 3);
  Graph g = PathGraph(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph CompleteBipartiteGraph(int a, int b) {
  HOMPRES_CHECK_GE(a, 0);
  HOMPRES_CHECK_GE(b, 0);
  Graph g(a + b);
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) g.AddEdge(i, a + j);
  }
  return g;
}

Graph GridGraph(int rows, int cols) {
  HOMPRES_CHECK_GE(rows, 1);
  HOMPRES_CHECK_GE(cols, 1);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph StarGraph(int n) {
  HOMPRES_CHECK_GE(n, 0);
  Graph g(n + 1);
  for (int i = 1; i <= n; ++i) g.AddEdge(0, i);
  return g;
}

Graph WheelGraph(int n) {
  HOMPRES_CHECK_GE(n, 3);
  Graph g(n + 1);
  for (int i = 1; i <= n; ++i) {
    g.AddEdge(0, i);
    g.AddEdge(i, i == n ? 1 : i + 1);
  }
  return g;
}

Graph BicycleGraph(int n) {
  return WheelGraph(n).DisjointUnion(CompleteGraph(4));
}

Graph BalancedTree(int arity, int depth) {
  HOMPRES_CHECK_GE(arity, 1);
  HOMPRES_CHECK_GE(depth, 0);
  Graph g(1);
  std::vector<int> frontier = {0};
  for (int level = 0; level < depth; ++level) {
    std::vector<int> next;
    for (int parent : frontier) {
      for (int c = 0; c < arity; ++c) {
        const int child = g.AddVertex();
        g.AddEdge(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return g;
}

Graph CaterpillarGraph(int spine, int legs) {
  HOMPRES_CHECK_GE(spine, 1);
  HOMPRES_CHECK_GE(legs, 0);
  Graph g(spine);
  for (int i = 0; i + 1 < spine; ++i) g.AddEdge(i, i + 1);
  for (int i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) {
      const int leaf = g.AddVertex();
      g.AddEdge(i, leaf);
    }
  }
  return g;
}

Graph RandomGraph(int n, double p, Rng& rng) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

Graph RandomBoundedDegreeGraph(int n, int max_degree, int extra_edges,
                               Rng& rng) {
  HOMPRES_CHECK_GE(n, 1);
  if (n >= 2) HOMPRES_CHECK_GE(max_degree, 2);
  Graph g(n);
  // Random spanning tree grown under the degree budget. A vertex stays in
  // `open` while its degree is below max_degree - 1, reserving one slot for
  // the extra-edge phase (not required for correctness, just variety).
  std::vector<int> open = {0};
  for (int v = 1; v < n; ++v) {
    const size_t pick = static_cast<size_t>(rng.Uniform(open.size()));
    const int parent = open[pick];
    g.AddEdge(parent, v);
    if (g.Degree(parent) >= max_degree) {
      open[pick] = open.back();
      open.pop_back();
    }
    if (g.Degree(v) < max_degree) open.push_back(v);
    HOMPRES_CHECK(!open.empty() || v == n - 1);
  }
  // Random extra edges respecting the cap. Bounded attempts so sparse
  // budgets terminate.
  int added = 0;
  for (int attempt = 0; attempt < 20 * extra_edges && added < extra_edges;
       ++attempt) {
    const int u = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    if (u == v || g.HasEdge(u, v)) continue;
    if (g.Degree(u) >= max_degree || g.Degree(v) >= max_degree) continue;
    g.AddEdge(u, v);
    ++added;
  }
  return g;
}

Graph RandomKTree(int n, int k, Rng& rng) {
  HOMPRES_CHECK_GE(k, 1);
  HOMPRES_CHECK_GE(n, k + 1);
  Graph g = CompleteGraph(k + 1);
  // Track all k-cliques explicitly; their number grows linearly (k new
  // cliques per added vertex), so this stays cheap.
  std::vector<std::vector<int>> cliques;
  // All k-subsets of the initial K_{k+1}.
  for (int skip = 0; skip <= k; ++skip) {
    std::vector<int> clique;
    for (int v = 0; v <= k; ++v) {
      if (v != skip) clique.push_back(v);
    }
    cliques.push_back(std::move(clique));
  }
  while (g.NumVertices() < n) {
    const auto& base =
        cliques[static_cast<size_t>(rng.Uniform(cliques.size()))];
    const std::vector<int> chosen = base;  // copy: cliques reallocates below
    const int v = g.AddVertex();
    for (int u : chosen) g.AddEdge(u, v);
    for (size_t drop = 0; drop < chosen.size(); ++drop) {
      std::vector<int> next;
      for (size_t i = 0; i < chosen.size(); ++i) {
        if (i != drop) next.push_back(chosen[i]);
      }
      next.push_back(v);
      cliques.push_back(std::move(next));
    }
  }
  return g;
}

Graph RandomTree(int n, Rng& rng) {
  HOMPRES_CHECK_GE(n, 1);
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    const int parent = static_cast<int>(rng.Uniform(static_cast<uint64_t>(v)));
    g.AddEdge(parent, v);
  }
  return g;
}

namespace {

void TriangulatePolygon(Graph& g, int lo, int hi, Rng& rng) {
  if (hi - lo < 2) return;
  const int mid = lo + 1 + static_cast<int>(rng.Uniform(
                               static_cast<uint64_t>(hi - lo - 1)));
  if (!g.HasEdge(lo, mid)) g.AddEdge(lo, mid);
  if (!g.HasEdge(mid, hi)) g.AddEdge(mid, hi);
  TriangulatePolygon(g, lo, mid, rng);
  TriangulatePolygon(g, mid, hi, rng);
}

}  // namespace

Graph RandomOuterplanarGraph(int n, Rng& rng) {
  HOMPRES_CHECK_GE(n, 3);
  Graph g = CycleGraph(n);
  TriangulatePolygon(g, 0, n - 1, rng);
  return g;
}

Graph MycielskiGraph(const Graph& g) {
  const int n = g.NumVertices();
  Graph result(2 * n + 1);
  const int apex = 2 * n;
  for (const auto& [u, v] : g.Edges()) {
    result.AddEdge(u, v);
    result.AddEdge(u, n + v);  // shadow of v sees u's neighbors
    result.AddEdge(v, n + u);
  }
  for (int i = 0; i < n; ++i) result.AddEdge(n + i, apex);
  return result;
}

Graph BoundedDegreeCliqueMinorGadget(int k) {
  HOMPRES_CHECK_GE(k, 2);
  if (k == 2) return CompleteGraph(2);
  // Each of the k "super-nodes" is a caterpillar with k-1 spine vertices
  // and one pendant leaf per spine vertex (max degree 3, exactly k-1
  // pendant leaves). Leaf p of tree i handles the connection to the p-th
  // other tree.
  const int leaves = k - 1;
  Graph g(0);
  std::vector<std::vector<int>> leaf_ids(static_cast<size_t>(k));
  for (int t = 0; t < k; ++t) {
    std::vector<int> spine;
    for (int s = 0; s < leaves; ++s) {
      spine.push_back(g.AddVertex());
      if (s > 0) g.AddEdge(spine[static_cast<size_t>(s - 1)], spine.back());
    }
    for (int s = 0; s < leaves; ++s) {
      const int leaf = g.AddVertex();
      g.AddEdge(spine[static_cast<size_t>(s)], leaf);
      leaf_ids[static_cast<size_t>(t)].push_back(leaf);
    }
  }
  // Leaf index of tree i dedicated to tree j: position of j within
  // {0..k-1} \ {i}.
  auto slot = [](int i, int j) { return j < i ? j : j - 1; };
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      g.AddEdge(leaf_ids[static_cast<size_t>(i)][static_cast<size_t>(
                    slot(i, j))],
                leaf_ids[static_cast<size_t>(j)][static_cast<size_t>(
                    slot(j, i))]);
    }
  }
  HOMPRES_CHECK_LE(g.MaxDegree(), 3);
  return g;
}

}  // namespace hompres
