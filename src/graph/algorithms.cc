#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "base/check.h"

namespace hompres {

std::vector<int> BfsDistances(const Graph& g, int source) {
  HOMPRES_CHECK_GE(source, 0);
  HOMPRES_CHECK_LT(source, g.NumVertices());
  std::vector<int> dist(static_cast<size_t>(g.NumVertices()), kUnreachable);
  std::deque<int> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : g.Neighbors(u)) {
      if (dist[static_cast<size_t>(v)] == kUnreachable) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

int Distance(const Graph& g, int u, int v) {
  return BfsDistances(g, u)[static_cast<size_t>(v)];
}

std::vector<int> NeighborhoodBall(const Graph& g, int u, int d) {
  HOMPRES_CHECK_GE(d, 0);
  const std::vector<int> dist = BfsDistances(g, u);
  std::vector<int> ball;
  for (int v = 0; v < g.NumVertices(); ++v) {
    const int dv = dist[static_cast<size_t>(v)];
    if (dv != kUnreachable && dv <= d) ball.push_back(v);
  }
  return ball;
}

std::vector<int> ConnectedComponents(const Graph& g, int* num_components) {
  std::vector<int> component(static_cast<size_t>(g.NumVertices()), -1);
  int next_id = 0;
  for (int start = 0; start < g.NumVertices(); ++start) {
    if (component[static_cast<size_t>(start)] != -1) continue;
    component[static_cast<size_t>(start)] = next_id;
    std::deque<int> queue = {start};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : g.Neighbors(u)) {
        if (component[static_cast<size_t>(v)] == -1) {
          component[static_cast<size_t>(v)] = next_id;
          queue.push_back(v);
        }
      }
    }
    ++next_id;
  }
  if (num_components != nullptr) *num_components = next_id;
  return component;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() <= 1) return true;
  int n = 0;
  ConnectedComponents(g, &n);
  return n == 1;
}

bool IsAcyclic(const Graph& g) {
  int components = 0;
  ConnectedComponents(g, &components);
  // A forest has exactly n - c edges.
  return g.NumEdges() == g.NumVertices() - components;
}

bool IsTree(const Graph& g) {
  return g.NumVertices() >= 1 && IsConnected(g) && IsAcyclic(g);
}

bool IsConnectedSubset(const Graph& g, const std::vector<int>& s) {
  if (s.empty()) return false;
  return IsConnected(g.InducedSubgraph(s));
}

int Diameter(const Graph& g) {
  int diameter = 0;
  for (int u = 0; u < g.NumVertices(); ++u) {
    for (int d : BfsDistances(g, u)) diameter = std::max(diameter, d);
  }
  return diameter;
}

bool IsBipartite(const Graph& g) {
  std::vector<int> color(static_cast<size_t>(g.NumVertices()), -1);
  for (int start = 0; start < g.NumVertices(); ++start) {
    if (color[static_cast<size_t>(start)] != -1) continue;
    color[static_cast<size_t>(start)] = 0;
    std::deque<int> queue = {start};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : g.Neighbors(u)) {
        if (color[static_cast<size_t>(v)] == -1) {
          color[static_cast<size_t>(v)] = 1 - color[static_cast<size_t>(u)];
          queue.push_back(v);
        } else if (color[static_cast<size_t>(v)] ==
                   color[static_cast<size_t>(u)]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace hompres
