#include "fo/parser.h"

#include <cctype>

#include "base/failpoint.h"

namespace hompres {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<FormulaPtr> Run(ParseError* error) {
    auto result = ParseOr();
    if (result.has_value()) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        Fail("unexpected trailing input");
        result = std::nullopt;
      }
    }
    if (!result.has_value() && error != nullptr) *error = error_;
    return result;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> ConsumeIdentifier() {
    SkipWhitespace();
    size_t start = pos_;
    if (start >= text_.size()) return std::nullopt;
    const unsigned char first = static_cast<unsigned char>(text_[start]);
    if (!std::isalpha(first) && text_[start] != '_') return std::nullopt;
    size_t end = start + 1;
    while (end < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[end]);
      if (std::isalnum(c) || text_[end] == '_' || text_[end] == '\'') {
        ++end;
      } else {
        break;
      }
    }
    pos_ = end;
    return text_.substr(start, end - start);
  }

  void Fail(const std::string& message) {
    if (error_.message.empty()) error_ = ParseErrorAt(text_, pos_, message);
  }

  std::optional<FormulaPtr> ParseOr() {
    auto first = ParseAnd();
    if (!first.has_value()) return std::nullopt;
    std::vector<FormulaPtr> parts = {*first};
    while (ConsumeChar('|')) {
      auto next = ParseAnd();
      if (!next.has_value()) return std::nullopt;
      parts.push_back(*next);
    }
    if (parts.size() == 1) return parts[0];
    return Formula::Or(std::move(parts));
  }

  std::optional<FormulaPtr> ParseAnd() {
    auto first = ParseUnary();
    if (!first.has_value()) return std::nullopt;
    std::vector<FormulaPtr> parts = {*first};
    while (ConsumeChar('&')) {
      auto next = ParseUnary();
      if (!next.has_value()) return std::nullopt;
      parts.push_back(*next);
    }
    if (parts.size() == 1) return parts[0];
    return Formula::And(std::move(parts));
  }

  std::optional<FormulaPtr> ParseUnary() {
    SkipWhitespace();
    if (ConsumeChar('!')) {
      auto sub = ParseUnary();
      if (!sub.has_value()) return std::nullopt;
      return Formula::Not(*sub);
    }
    if (ConsumeChar('(')) {
      auto sub = ParseOr();
      if (!sub.has_value()) return std::nullopt;
      if (!ConsumeChar(')')) {
        Fail("expected ')'");
        return std::nullopt;
      }
      return sub;
    }
    auto ident = ConsumeIdentifier();
    if (!ident.has_value()) {
      Fail("expected formula");
      return std::nullopt;
    }
    if (*ident == "exists" || *ident == "forall") {
      auto variable = ConsumeIdentifier();
      if (!variable.has_value()) {
        Fail("expected variable after quantifier");
        return std::nullopt;
      }
      auto body = ParseUnary();
      if (!body.has_value()) return std::nullopt;
      return *ident == "exists" ? Formula::Exists(*variable, *body)
                                : Formula::Forall(*variable, *body);
    }
    if (ConsumeChar('(')) {
      // Relation atom.
      std::vector<std::string> arguments;
      auto arg = ConsumeIdentifier();
      if (!arg.has_value()) {
        Fail("expected argument");
        return std::nullopt;
      }
      arguments.push_back(*arg);
      while (ConsumeChar(',')) {
        arg = ConsumeIdentifier();
        if (!arg.has_value()) {
          Fail("expected argument");
          return std::nullopt;
        }
        arguments.push_back(*arg);
      }
      if (!ConsumeChar(')')) {
        Fail("expected ')' after atom arguments");
        return std::nullopt;
      }
      return Formula::Atom(*ident, std::move(arguments));
    }
    if (ConsumeChar('=')) {
      auto right = ConsumeIdentifier();
      if (!right.has_value()) {
        Fail("expected right-hand side of equality");
        return std::nullopt;
      }
      return Formula::Equal(*ident, *right);
    }
    Fail("expected '(' or '=' after identifier");
    return std::nullopt;
  }

  const std::string& text_;
  size_t pos_ = 0;
  ParseError error_;
};

}  // namespace

std::optional<FormulaPtr> ParseFormula(const std::string& text,
                                       ParseError* error) {
  if (HOMPRES_FAILPOINT("parser/formula_io")) {
    if (error != nullptr) {
      *error = ParseError{0, 0, "injected I/O fault (parser/formula_io)"};
    }
    return std::nullopt;
  }
  Parser parser(text);
  return parser.Run(error);
}

std::optional<FormulaPtr> ParseFormula(const std::string& text,
                                       std::string* error) {
  ParseError parse_error;
  auto result = ParseFormula(text, &parse_error);
  if (!result.has_value() && error != nullptr) {
    *error = parse_error.ToString();
  }
  return result;
}

}  // namespace hompres
