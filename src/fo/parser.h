// Text parser for first-order formulas.
//
// Grammar (precedence: ! binds tightest, then &, then |; quantifiers take
// the following unary formula):
//
//   formula  := or
//   or       := and ('|' and)*
//   and      := unary ('&' unary)*
//   unary    := '!' unary
//             | ('exists' | 'forall') IDENT unary
//             | '(' formula ')'
//             | IDENT '(' IDENT (',' IDENT)* ')'      -- relation atom
//             | IDENT '=' IDENT                       -- equality
//
// Identifiers are [A-Za-z_][A-Za-z0-9_']*. Whitespace is free.
//
// Example: "exists x exists y (E(x,y) & !(x = y))".

#ifndef HOMPRES_FO_PARSER_H_
#define HOMPRES_FO_PARSER_H_

#include <optional>
#include <string>

#include "base/parse_error.h"
#include "fo/formula.h"

namespace hompres {

// Parses `text`; on failure returns nullopt and, if `error` is non-null,
// fills it with the line/column and message of the first problem.
//
// Parsing is purely syntactic: the formula may mention relations or
// arities a vocabulary lacks. Evaluate only after
// ValidateFormulaForVocabulary (fo/eval.h) accepts the pair — evaluation
// itself CHECKs.
std::optional<FormulaPtr> ParseFormula(const std::string& text,
                                       ParseError* error);

// String-error convenience wrapper (error formatted via
// ParseError::ToString).
std::optional<FormulaPtr> ParseFormula(const std::string& text,
                                       std::string* error = nullptr);

}  // namespace hompres

#endif  // HOMPRES_FO_PARSER_H_
