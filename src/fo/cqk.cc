#include "fo/cqk.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "base/budget.h"
#include "base/check.h"
#include "core/minimal_models.h"
#include "engine/engine.h"
#include "cq/cq.h"
#include "cq/ucq.h"
#include "fo/eval.h"
#include "hom/homomorphism.h"
#include "structure/gaifman.h"

namespace hompres {

int DistinctVariableCount(const FormulaPtr& f) {
  return static_cast<int>(AllVariables(f).size());
}

namespace {

bool HasCqShape(const FormulaPtr& f) {
  switch (f->Kind()) {
    case FormulaKind::kAtom:
      return true;
    case FormulaKind::kAnd: {
      for (const auto& child : f->Children()) {
        if (!HasCqShape(child)) return false;
      }
      return true;
    }
    case FormulaKind::kExists:
      return HasCqShape(f->Children()[0]);
    default:
      return false;
  }
}

}  // namespace

bool IsCqkFormula(const FormulaPtr& f, int k) {
  return HasCqShape(f) && DistinctVariableCount(f) <= k;
}

namespace {

// Builds the renamed-apart parse tree while collecting atoms, bags, and
// tree edges.
class CqkBuilder {
 public:
  CqkBuilder(const Vocabulary& vocabulary) : vocabulary_(vocabulary) {}

  // Returns the node id of the subtree root, or -1 on vocabulary error.
  // `subst` maps original variable names to renamed ones. Fills
  // `free_vars_out` with the renamed free variables of this subformula.
  int Build(const FormulaPtr& f, std::map<std::string, std::string> subst,
            std::set<std::string>* free_vars_out) {
    switch (f->Kind()) {
      case FormulaKind::kAtom: {
        const auto rel = vocabulary_.IndexOf(f->Relation());
        if (!rel.has_value()) return -1;
        if (vocabulary_.Arity(*rel) !=
            static_cast<int>(f->Variables().size())) {
          return -1;
        }
        std::vector<std::string> arguments;
        for (const auto& v : f->Variables()) {
          auto it = subst.find(v);
          if (it == subst.end()) return -1;  // free variable: not a sentence
          arguments.push_back(it->second);
          free_vars_out->insert(it->second);
        }
        atoms_.emplace_back(*rel, std::move(arguments));
        return NewNode(*free_vars_out);
      }
      case FormulaKind::kAnd: {
        std::vector<int> child_nodes;
        for (const auto& child : f->Children()) {
          std::set<std::string> child_free;
          const int node = Build(child, subst, &child_free);
          if (node == -1) return -1;
          child_nodes.push_back(node);
          free_vars_out->insert(child_free.begin(), child_free.end());
        }
        const int node = NewNode(*free_vars_out);
        for (int child : child_nodes) edges_.emplace_back(node, child);
        return node;
      }
      case FormulaKind::kExists: {
        const std::string fresh = "@q" + std::to_string(counter_++);
        renamed_variables_.push_back(fresh);
        subst[f->Variables()[0]] = fresh;
        std::set<std::string> child_free;
        const int child = Build(f->Children()[0], subst, &child_free);
        if (child == -1) return -1;
        // Bag: free vars of the child plus the bound variable (covers the
        // unused-variable case); the node's own free vars drop it.
        child_free.insert(fresh);
        const int node = NewNode(child_free);
        edges_.emplace_back(node, child);
        child_free.erase(fresh);
        *free_vars_out = std::move(child_free);
        return node;
      }
      default:
        return -1;
    }
  }

  std::optional<CqkCanonicalResult> Finish(int root, int k) {
    if (root == -1) return std::nullopt;
    // Elements: every renamed variable.
    std::map<std::string, int> element_of;
    std::vector<std::string> element_names;
    for (const auto& name : renamed_variables_) {
      element_of[name] = static_cast<int>(element_names.size());
      element_names.push_back(name);
    }
    Structure structure(vocabulary_,
                        static_cast<int>(element_names.size()));
    for (const auto& [rel, arguments] : atoms_) {
      Tuple t;
      t.reserve(arguments.size());
      for (const auto& v : arguments) t.push_back(element_of.at(v));
      structure.AddTuple(rel, t);
    }
    TreeDecomposition td;
    td.tree = Graph(static_cast<int>(bags_.size()));
    for (const auto& [parent, child] : edges_) td.tree.AddEdge(parent, child);
    td.bags.reserve(bags_.size());
    for (const auto& bag_names : bags_) {
      std::vector<int> bag;
      for (const auto& v : bag_names) bag.push_back(element_of.at(v));
      std::sort(bag.begin(), bag.end());
      HOMPRES_CHECK_LE(static_cast<int>(bag.size()), k);
      td.bags.push_back(std::move(bag));
    }
    HOMPRES_CHECK(IsValidTreeDecomposition(GaifmanGraph(structure), td));
    HOMPRES_CHECK_LE(td.Width(), k - 1);
    return CqkCanonicalResult{std::move(structure),
                              std::move(element_names), std::move(td)};
  }

 private:
  int NewNode(const std::set<std::string>& bag) {
    bags_.push_back(bag);
    return static_cast<int>(bags_.size()) - 1;
  }

  const Vocabulary& vocabulary_;
  int counter_ = 0;
  std::vector<std::string> renamed_variables_;
  std::vector<std::pair<int, std::vector<std::string>>> atoms_;
  std::vector<std::set<std::string>> bags_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace

std::optional<CqkCanonicalResult> CqkCanonicalStructure(
    const FormulaPtr& f, const Vocabulary& vocabulary, int k) {
  if (!IsCqkFormula(f, k)) return std::nullopt;
  if (!IsSentence(f)) return std::nullopt;
  CqkBuilder builder(vocabulary);
  std::set<std::string> free_vars;
  const int root = builder.Build(f, {}, &free_vars);
  if (root == -1 || !free_vars.empty()) return std::nullopt;
  return builder.Finish(root, k);
}

namespace {

// Does `s` satisfy the disjunction of the sentences in phi?
bool SatisfiesSome(const std::vector<FormulaPtr>& phi, const Structure& s) {
  for (const FormulaPtr& f : phi) {
    if (EvaluateSentence(s, f)) return true;
  }
  return false;
}

}  // namespace

std::optional<Lemma73Result> Lemma73Witness(
    const std::vector<FormulaPtr>& phi, const Vocabulary& vocabulary, int k,
    const Structure& a) {
  // Find a disjunct satisfied by a.
  const FormulaPtr* satisfied = nullptr;
  for (const FormulaPtr& f : phi) {
    if (!IsCqkFormula(f, k) || !IsSentence(f)) return std::nullopt;
    if (satisfied == nullptr && EvaluateSentence(a, f)) satisfied = &f;
  }
  if (satisfied == nullptr) return std::nullopt;

  // Lemma 7.2: canonical structure D of treewidth < k, hom D -> A.
  auto canonical = CqkCanonicalStructure(*satisfied, vocabulary, k);
  HOMPRES_CHECK(canonical.has_value());
  Structure current = std::move(canonical->structure);
  Budget unlimited = Budget::Unlimited();
  std::vector<int> hom = *Engine::Find(current, a, unlimited).Value();

  // Descend to a minimal model of the disjunction inside D: greedily
  // remove one tuple or one element while the result still satisfies
  // some disjunct; track the homomorphism restriction along the way.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    for (int rel = 0;
         rel < current.GetVocabulary().NumRelations() && !reduced; ++rel) {
      const int count = static_cast<int>(current.Tuples(rel).size());
      for (int i = 0; i < count; ++i) {
        Structure candidate = current.RemoveTuple(rel, i);
        if (SatisfiesSome(phi, candidate)) {
          current = std::move(candidate);
          reduced = true;
          break;
        }
      }
    }
    if (reduced) continue;
    for (int e = 0; e < current.UniverseSize(); ++e) {
      std::vector<int> old_to_new;
      Structure candidate = current.RemoveElement(e, &old_to_new);
      if (SatisfiesSome(phi, candidate)) {
        std::vector<int> reduced_hom(
            static_cast<size_t>(candidate.UniverseSize()));
        for (int old = 0; old < current.UniverseSize(); ++old) {
          const int now = old_to_new[static_cast<size_t>(old)];
          if (now >= 0) {
            reduced_hom[static_cast<size_t>(now)] =
                hom[static_cast<size_t>(old)];
          }
        }
        current = std::move(candidate);
        hom = std::move(reduced_hom);
        reduced = true;
        break;
      }
    }
  }

  Lemma73Result result{
      .minimal_model = current,
      .decomposition = ExactTreeDecomposition(GaifmanGraph(current)),
      .hom_to_a = hom,
      .surjective = false,
  };
  HOMPRES_CHECK_LE(result.decomposition.Width(), k - 1);
  HOMPRES_CHECK(VerifyHomomorphism(current, a, hom));
  std::vector<bool> covered(static_cast<size_t>(a.UniverseSize()), false);
  for (int v : hom) covered[static_cast<size_t>(v)] = true;
  result.surjective = true;
  for (bool c : covered) result.surjective &= c;
  return result;
}

std::optional<std::vector<int>> Theorem74Subdisjunction(
    const std::vector<FormulaPtr>& phi, const Vocabulary& vocabulary,
    int k) {
  // Build the UCQ ∨Φ from the canonical structures of Lemma 7.2.
  std::vector<ConjunctiveQuery> disjuncts;
  for (const FormulaPtr& f : phi) {
    auto canonical = CqkCanonicalStructure(f, vocabulary, k);
    if (!canonical.has_value()) return std::nullopt;
    disjuncts.push_back(
        ConjunctiveQuery::BooleanQueryOf(std::move(canonical->structure)));
  }
  const UnionOfCq union_phi(disjuncts, 0);
  // Minimal models of ∨Φ over all finite structures; for each, the proof
  // picks a disjunct it satisfies (footnote 1: via Theorem 2.1 this
  // means phi_D logically implies that disjunct).
  const std::vector<Structure> models =
      MinimalModelsOfUcq(union_phi, AllStructuresClass());
  std::set<int> chosen;
  for (const Structure& model : models) {
    for (size_t i = 0; i < disjuncts.size(); ++i) {
      if (disjuncts[i].SatisfiedBy(model)) {
        chosen.insert(static_cast<int>(i));
        break;
      }
    }
  }
  std::vector<int> result(chosen.begin(), chosen.end());
  // Sanity: the subdisjunction is equivalent to the full disjunction.
  std::vector<ConjunctiveQuery> kept;
  for (int i : result) kept.push_back(disjuncts[static_cast<size_t>(i)]);
  HOMPRES_CHECK(UcqEquivalent(union_phi, UnionOfCq(kept, 0)));
  return result;
}

FormulaPtr RandomCqkSentence(const Vocabulary& vocabulary, int k,
                             int atom_budget, Rng& rng) {
  HOMPRES_CHECK_GE(k, 1);
  for (int rel = 0; rel < vocabulary.NumRelations(); ++rel) {
    HOMPRES_CHECK_LE(vocabulary.Arity(rel), k);
  }
  std::vector<std::string> pool;
  for (int i = 0; i < k; ++i) pool.push_back("v" + std::to_string(i));

  // Recursive random generator; consumes the atom budget.
  std::function<FormulaPtr(int&)> generate = [&](int& budget) -> FormulaPtr {
    const int kind = budget <= 1 ? 0 : static_cast<int>(rng.Uniform(3));
    if (kind == 0 || budget <= 1) {
      // Atom over random variables.
      budget -= 1;
      const int rel = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(vocabulary.NumRelations())));
      std::vector<std::string> arguments;
      for (int i = 0; i < vocabulary.Arity(rel); ++i) {
        arguments.push_back(
            pool[static_cast<size_t>(rng.Uniform(pool.size()))]);
      }
      return Formula::Atom(vocabulary.Name(rel), std::move(arguments));
    }
    if (kind == 1) {
      // Conjunction of 2.
      std::vector<FormulaPtr> parts;
      parts.push_back(generate(budget));
      if (budget > 0) parts.push_back(generate(budget));
      if (parts.size() == 1) return parts[0];
      return Formula::And(std::move(parts));
    }
    // Requantify a random pool variable.
    const std::string& v =
        pool[static_cast<size_t>(rng.Uniform(pool.size()))];
    return Formula::Exists(v, generate(budget));
  };

  int budget = std::max(1, atom_budget);
  FormulaPtr body = generate(budget);
  // Close the sentence: quantify every pool variable at the top.
  for (auto it = pool.rbegin(); it != pool.rend(); ++it) {
    body = Formula::Exists(*it, body);
  }
  HOMPRES_CHECK(IsSentence(body));
  HOMPRES_CHECK(IsCqkFormula(body, k));
  return body;
}

}  // namespace hompres
