#include "fo/formula.h"

#include <sstream>

#include "base/check.h"

namespace hompres {

Formula::Formula(FormulaKind kind, std::string relation,
                 std::vector<std::string> variables,
                 std::vector<FormulaPtr> children)
    : kind_(kind),
      relation_(std::move(relation)),
      variables_(std::move(variables)),
      children_(std::move(children)) {}

FormulaPtr Formula::Atom(std::string relation,
                         std::vector<std::string> variables) {
  HOMPRES_CHECK(!relation.empty());
  return FormulaPtr(new Formula(FormulaKind::kAtom, std::move(relation),
                                std::move(variables), {}));
}

FormulaPtr Formula::Equal(std::string left, std::string right) {
  return FormulaPtr(new Formula(FormulaKind::kEqual, "",
                                {std::move(left), std::move(right)}, {}));
}

FormulaPtr Formula::Not(FormulaPtr sub) {
  HOMPRES_CHECK(sub != nullptr);
  return FormulaPtr(
      new Formula(FormulaKind::kNot, "", {}, {std::move(sub)}));
}

FormulaPtr Formula::And(std::vector<FormulaPtr> subs) {
  HOMPRES_CHECK(!subs.empty());
  for (const auto& s : subs) HOMPRES_CHECK(s != nullptr);
  return FormulaPtr(new Formula(FormulaKind::kAnd, "", {}, std::move(subs)));
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> subs) {
  HOMPRES_CHECK(!subs.empty());
  for (const auto& s : subs) HOMPRES_CHECK(s != nullptr);
  return FormulaPtr(new Formula(FormulaKind::kOr, "", {}, std::move(subs)));
}

FormulaPtr Formula::Exists(std::string variable, FormulaPtr sub) {
  HOMPRES_CHECK(!variable.empty());
  HOMPRES_CHECK(sub != nullptr);
  return FormulaPtr(new Formula(FormulaKind::kExists, "",
                                {std::move(variable)}, {std::move(sub)}));
}

FormulaPtr Formula::Forall(std::string variable, FormulaPtr sub) {
  HOMPRES_CHECK(!variable.empty());
  HOMPRES_CHECK(sub != nullptr);
  return FormulaPtr(new Formula(FormulaKind::kForall, "",
                                {std::move(variable)}, {std::move(sub)}));
}

const std::string& Formula::Relation() const {
  HOMPRES_CHECK(kind_ == FormulaKind::kAtom);
  return relation_;
}

std::string Formula::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case FormulaKind::kAtom:
      out << relation_ << '(';
      for (size_t i = 0; i < variables_.size(); ++i) {
        if (i > 0) out << ',';
        out << variables_[i];
      }
      out << ')';
      break;
    case FormulaKind::kEqual:
      out << variables_[0] << '=' << variables_[1];
      break;
    case FormulaKind::kNot:
      out << '!' << children_[0]->ToString();
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      out << '(';
      const char* op = kind_ == FormulaKind::kAnd ? " & " : " | ";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << op;
        out << children_[i]->ToString();
      }
      out << ')';
      break;
    }
    case FormulaKind::kExists:
      out << "exists " << variables_[0] << ' ' << children_[0]->ToString();
      break;
    case FormulaKind::kForall:
      out << "forall " << variables_[0] << ' ' << children_[0]->ToString();
      break;
  }
  return out.str();
}

namespace {

void CollectVariables(const FormulaPtr& f, bool only_free,
                      std::set<std::string>& bound,
                      std::set<std::string>& out) {
  switch (f->Kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      for (const auto& v : f->Variables()) {
        if (!only_free || bound.find(v) == bound.end()) out.insert(v);
      }
      break;
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const auto& child : f->Children()) {
        CollectVariables(child, only_free, bound, out);
      }
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const std::string& v = f->Variables()[0];
      if (!only_free) out.insert(v);
      const bool was_bound = bound.count(v) > 0;
      bound.insert(v);
      CollectVariables(f->Children()[0], only_free, bound, out);
      if (!was_bound) bound.erase(v);
      break;
    }
  }
}

}  // namespace

std::set<std::string> FreeVariables(const FormulaPtr& f) {
  std::set<std::string> bound;
  std::set<std::string> out;
  CollectVariables(f, /*only_free=*/true, bound, out);
  return out;
}

std::set<std::string> AllVariables(const FormulaPtr& f) {
  std::set<std::string> bound;
  std::set<std::string> out;
  CollectVariables(f, /*only_free=*/false, bound, out);
  return out;
}

bool IsSentence(const FormulaPtr& f) { return FreeVariables(f).empty(); }

}  // namespace hompres
