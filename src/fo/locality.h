// Gaifman/Hanf locality machinery.
//
// The Ajtai-Gurevich density argument behind Theorem 3.2 rests on
// Gaifman's Locality Theorem: first-order sentences only see bounded-
// radius neighborhoods. This header provides the pieces that make the
// phenomenon observable: extraction of the d-ball around an element as a
// pointed structure, and Hanf equivalence (same census of pointed d-ball
// isomorphism types up to a counting threshold), which for bounded-degree
// structures implies agreement on sentences of bounded quantifier rank.

#ifndef HOMPRES_FO_LOCALITY_H_
#define HOMPRES_FO_LOCALITY_H_

#include <string>
#include <vector>

#include "structure/structure.h"

namespace hompres {

// The induced substructure on N_d(a) (the d-ball in the Gaifman graph),
// expanded with a fresh unary relation "@center" marking a, so that plain
// isomorphism on the result is center-preserving isomorphism. Element 0
// of the result is always the center.
Structure NeighborhoodSubstructure(const Structure& s, int a, int d);

// The Hanf census: for every element, its pointed d-ball; returns
// representatives and multiplicities (isomorphism classes, first-seen
// order).
struct HanfCensus {
  std::vector<Structure> types;
  std::vector<int> counts;
};
HanfCensus ComputeHanfCensus(const Structure& s, int d);

// Hanf equivalence with counting threshold t: the two structures have
// the same d-ball types, with multiplicities that agree or both reach t.
bool HanfEquivalent(const Structure& a, const Structure& b, int d,
                    int threshold);

}  // namespace hompres

#endif  // HOMPRES_FO_LOCALITY_H_
