// First-order formulas over a relational vocabulary (Section 2.2).
//
// Immutable AST shared via shared_ptr. Variables are named; quantifiers
// bind one variable each. Atomic formulas are relation atoms and
// equalities. The existential-positive fragment (no negation, no
// universal quantifier, no... only atoms, ∧, ∨, ∃) is recognized by
// IsExistentialPositive in ep.h.

#ifndef HOMPRES_FO_FORMULA_H_
#define HOMPRES_FO_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace hompres {

enum class FormulaKind {
  kAtom,    // R(x1, ..., xr)
  kEqual,   // x = y
  kNot,     // ¬φ
  kAnd,     // φ1 ∧ ... ∧ φn
  kOr,      // φ1 ∨ ... ∨ φn
  kExists,  // ∃x φ
  kForall,  // ∀x φ
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  // Factory functions (the only way to build formulas).
  static FormulaPtr Atom(std::string relation,
                         std::vector<std::string> variables);
  static FormulaPtr Equal(std::string left, std::string right);
  static FormulaPtr Not(FormulaPtr sub);
  static FormulaPtr And(std::vector<FormulaPtr> subs);   // requires >= 1
  static FormulaPtr Or(std::vector<FormulaPtr> subs);    // requires >= 1
  static FormulaPtr Exists(std::string variable, FormulaPtr sub);
  static FormulaPtr Forall(std::string variable, FormulaPtr sub);

  FormulaKind Kind() const { return kind_; }

  // kAtom accessors.
  const std::string& Relation() const;
  // kAtom: the argument list; kEqual: the two sides; kExists/kForall: the
  // single bound variable.
  const std::vector<std::string>& Variables() const { return variables_; }

  // kNot/kExists/kForall: one child; kAnd/kOr: all conjuncts/disjuncts.
  const std::vector<FormulaPtr>& Children() const { return children_; }

  std::string ToString() const;

 private:
  Formula(FormulaKind kind, std::string relation,
          std::vector<std::string> variables,
          std::vector<FormulaPtr> children);

  FormulaKind kind_;
  std::string relation_;
  std::vector<std::string> variables_;
  std::vector<FormulaPtr> children_;
};

// Free variables of the formula, sorted.
std::set<std::string> FreeVariables(const FormulaPtr& f);

// All distinct variable names occurring (free or bound) — the "number of
// variables" measure of CQ^k and k-Datalog (Section 7).
std::set<std::string> AllVariables(const FormulaPtr& f);

// True iff f has no free variables.
bool IsSentence(const FormulaPtr& f);

}  // namespace hompres

#endif  // HOMPRES_FO_FORMULA_H_
