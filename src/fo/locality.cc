#include "fo/locality.h"

#include <algorithm>

#include "base/check.h"
#include "graph/algorithms.h"
#include "structure/gaifman.h"
#include "structure/isomorphism.h"

namespace hompres {

Structure NeighborhoodSubstructure(const Structure& s, int a, int d) {
  HOMPRES_CHECK_GE(a, 0);
  HOMPRES_CHECK_LT(a, s.UniverseSize());
  const Graph gaifman = GaifmanGraph(s);
  std::vector<int> ball = NeighborhoodBall(gaifman, a, d);
  // Put the center first so it is element 0.
  auto it = std::find(ball.begin(), ball.end(), a);
  HOMPRES_CHECK(it != ball.end());
  std::iter_swap(ball.begin(), it);

  const Structure induced = s.InducedSubstructure(ball);
  // Expand with the "@center" marker.
  Vocabulary expanded = s.GetVocabulary();
  const int center_rel = expanded.AddRelation("@center", 1);
  Structure result(expanded, induced.UniverseSize());
  for (int rel = 0; rel < s.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : induced.Tuples(rel)) result.AddTuple(rel, t);
  }
  result.AddTuple(center_rel, {0});
  return result;
}

HanfCensus ComputeHanfCensus(const Structure& s, int d) {
  HanfCensus census;
  for (int a = 0; a < s.UniverseSize(); ++a) {
    Structure ball = NeighborhoodSubstructure(s, a, d);
    bool found = false;
    for (size_t i = 0; i < census.types.size(); ++i) {
      if (AreIsomorphic(census.types[i], ball)) {
        ++census.counts[i];
        found = true;
        break;
      }
    }
    if (!found) {
      census.types.push_back(std::move(ball));
      census.counts.push_back(1);
    }
  }
  return census;
}

bool HanfEquivalent(const Structure& a, const Structure& b, int d,
                    int threshold) {
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  HOMPRES_CHECK_GE(threshold, 1);
  const HanfCensus census_a = ComputeHanfCensus(a, d);
  const HanfCensus census_b = ComputeHanfCensus(b, d);
  auto capped = [threshold](int count) {
    return std::min(count, threshold);
  };
  // Every type of a must appear in b with a matching capped count, and
  // vice versa.
  std::vector<bool> matched_b(census_b.types.size(), false);
  for (size_t i = 0; i < census_a.types.size(); ++i) {
    bool found = false;
    for (size_t j = 0; j < census_b.types.size(); ++j) {
      if (matched_b[j]) continue;
      if (AreIsomorphic(census_a.types[i], census_b.types[j])) {
        if (capped(census_a.counts[i]) != capped(census_b.counts[j])) {
          return false;
        }
        matched_b[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (bool matched : matched_b) {
    if (!matched) return false;
  }
  return true;
}

}  // namespace hompres
