// Naive first-order evaluation on finite structures.

#ifndef HOMPRES_FO_EVAL_H_
#define HOMPRES_FO_EVAL_H_

#include <map>
#include <string>

#include "fo/formula.h"
#include "structure/structure.h"

namespace hompres {

// Environment: assignment of elements to (at least the free) variables.
using Environment = std::map<std::string, int>;

// Standard Tarskian semantics; quantifiers range over the universe.
// CHECK-fails if a free variable is missing from env or a relation is not
// in the vocabulary / used with the wrong arity.
bool Evaluate(const Structure& s, const FormulaPtr& f,
              const Environment& env);

// Evaluation of a sentence (CHECK: no free variables).
bool EvaluateSentence(const Structure& s, const FormulaPtr& f);

// Non-aborting pre-check for untrusted (e.g. parsed) formulas: true iff
// every atom names a relation of `vocabulary` with the right arity, so
// Evaluate cannot hit its vocabulary CHECKs. On failure, *error (if
// non-null) names the offending relation.
bool ValidateFormulaForVocabulary(const FormulaPtr& f,
                                  const Vocabulary& vocabulary,
                                  std::string* error = nullptr);

}  // namespace hompres

#endif  // HOMPRES_FO_EVAL_H_
