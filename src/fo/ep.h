// The existential-positive fragment and its normalization into unions of
// conjunctive queries (Section 2.2: by distributing conjunctions and
// existential quantifiers over disjunctions, every existential-positive
// formula is a union of conjunctive queries).

#ifndef HOMPRES_FO_EP_H_
#define HOMPRES_FO_EP_H_

#include <optional>
#include <string>
#include <vector>

#include "cq/ucq.h"
#include "fo/formula.h"
#include "structure/vocabulary.h"

namespace hompres {

// True iff f is built from atoms and equalities using only ∧, ∨, ∃.
bool IsExistentialPositive(const FormulaPtr& f);

// Converts an existential-positive formula to an equivalent union of
// conjunctive queries over `vocabulary`. `free_order` fixes the output
// order of the free variables (must contain every free variable of f;
// extra entries become unconstrained output variables). Returns nullopt
// if f is not existential positive or mentions unknown relations / wrong
// arities. The result is logically equivalent to f on all structures,
// including empty ones (unused quantified variables are kept as isolated
// canonical elements).
std::optional<UnionOfCq> ExistentialPositiveToUcq(
    const FormulaPtr& f, const Vocabulary& vocabulary,
    const std::vector<std::string>& free_order);

// Convenience for sentences (free_order empty).
std::optional<UnionOfCq> ExistentialPositiveSentenceToUcq(
    const FormulaPtr& f, const Vocabulary& vocabulary);

// The inverse direction: renders a union of conjunctive queries as an
// existential-positive formula (free variables named f0, f1, ...;
// canonical elements named x<i>).
FormulaPtr UcqToFormula(const UnionOfCq& q);

}  // namespace hompres

#endif  // HOMPRES_FO_EP_H_
