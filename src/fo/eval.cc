#include "fo/eval.h"

#include "base/check.h"

namespace hompres {

bool Evaluate(const Structure& s, const FormulaPtr& f,
              const Environment& env) {
  switch (f->Kind()) {
    case FormulaKind::kAtom: {
      const auto rel = s.GetVocabulary().IndexOf(f->Relation());
      HOMPRES_CHECK(rel.has_value());
      HOMPRES_CHECK_EQ(s.GetVocabulary().Arity(*rel),
                       static_cast<int>(f->Variables().size()));
      Tuple t;
      t.reserve(f->Variables().size());
      for (const auto& v : f->Variables()) {
        auto it = env.find(v);
        HOMPRES_CHECK(it != env.end());
        t.push_back(it->second);
      }
      return s.HasTuple(*rel, t);
    }
    case FormulaKind::kEqual: {
      auto left = env.find(f->Variables()[0]);
      auto right = env.find(f->Variables()[1]);
      HOMPRES_CHECK(left != env.end());
      HOMPRES_CHECK(right != env.end());
      return left->second == right->second;
    }
    case FormulaKind::kNot:
      return !Evaluate(s, f->Children()[0], env);
    case FormulaKind::kAnd:
      for (const auto& child : f->Children()) {
        if (!Evaluate(s, child, env)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const auto& child : f->Children()) {
        if (Evaluate(s, child, env)) return true;
      }
      return false;
    case FormulaKind::kExists: {
      Environment extended = env;
      for (int e = 0; e < s.UniverseSize(); ++e) {
        extended[f->Variables()[0]] = e;
        if (Evaluate(s, f->Children()[0], extended)) return true;
      }
      return false;
    }
    case FormulaKind::kForall: {
      Environment extended = env;
      for (int e = 0; e < s.UniverseSize(); ++e) {
        extended[f->Variables()[0]] = e;
        if (!Evaluate(s, f->Children()[0], extended)) return false;
      }
      return true;
    }
  }
  HOMPRES_CHECK(false);
  return false;
}

bool EvaluateSentence(const Structure& s, const FormulaPtr& f) {
  HOMPRES_CHECK(IsSentence(f));
  return Evaluate(s, f, {});
}

bool ValidateFormulaForVocabulary(const FormulaPtr& f,
                                  const Vocabulary& vocabulary,
                                  std::string* error) {
  switch (f->Kind()) {
    case FormulaKind::kAtom: {
      const auto rel = vocabulary.IndexOf(f->Relation());
      if (!rel.has_value()) {
        if (error != nullptr) {
          *error = "unknown relation '" + f->Relation() + "'";
        }
        return false;
      }
      if (vocabulary.Arity(*rel) !=
          static_cast<int>(f->Variables().size())) {
        if (error != nullptr) {
          *error = "wrong arity for relation '" + f->Relation() + "'";
        }
        return false;
      }
      return true;
    }
    case FormulaKind::kEqual:
      return true;
    default:
      for (const auto& child : f->Children()) {
        if (!ValidateFormulaForVocabulary(child, vocabulary, error)) {
          return false;
        }
      }
      return true;
  }
}

}  // namespace hompres
