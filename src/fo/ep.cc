#include "fo/ep.h"

#include <map>
#include <set>

#include "base/check.h"

namespace hompres {

bool IsExistentialPositive(const FormulaPtr& f) {
  switch (f->Kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      return true;
    case FormulaKind::kNot:
    case FormulaKind::kForall:
      return false;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      for (const auto& child : f->Children()) {
        if (!IsExistentialPositive(child)) return false;
      }
      return true;
    }
    case FormulaKind::kExists:
      return IsExistentialPositive(f->Children()[0]);
  }
  return false;
}

namespace {

// One disjunct of the DNF skeleton: atoms + equalities over variable
// names, plus the set of (renamed-apart) existential variables scoping
// over it. Keeping the scoped variables preserves semantics on the empty
// structure (∃x ⊤ is false there).
struct FlatCq {
  std::vector<std::pair<int, std::vector<std::string>>> atoms;
  std::vector<std::pair<std::string, std::string>> equalities;
  std::set<std::string> scoped_variables;
};

class Normalizer {
 public:
  explicit Normalizer(const Vocabulary& vocabulary)
      : vocabulary_(vocabulary) {}

  // Returns the DNF of f with bound variables renamed apart via `subst`,
  // or nullopt on vocabulary errors.
  std::optional<std::vector<FlatCq>> Normalize(
      const FormulaPtr& f, std::map<std::string, std::string> subst) {
    switch (f->Kind()) {
      case FormulaKind::kAtom: {
        const auto rel = vocabulary_.IndexOf(f->Relation());
        if (!rel.has_value()) return std::nullopt;
        if (vocabulary_.Arity(*rel) !=
            static_cast<int>(f->Variables().size())) {
          return std::nullopt;
        }
        FlatCq cq;
        std::vector<std::string> arguments;
        for (const auto& v : f->Variables()) {
          arguments.push_back(Resolve(subst, v));
        }
        cq.atoms.emplace_back(*rel, std::move(arguments));
        return std::vector<FlatCq>{std::move(cq)};
      }
      case FormulaKind::kEqual: {
        FlatCq cq;
        cq.equalities.emplace_back(Resolve(subst, f->Variables()[0]),
                                   Resolve(subst, f->Variables()[1]));
        return std::vector<FlatCq>{std::move(cq)};
      }
      case FormulaKind::kAnd: {
        std::vector<FlatCq> result = {FlatCq{}};
        for (const auto& child : f->Children()) {
          auto part = Normalize(child, subst);
          if (!part.has_value()) return std::nullopt;
          std::vector<FlatCq> merged;
          for (const FlatCq& left : result) {
            for (const FlatCq& right : *part) {
              FlatCq combined = left;
              combined.atoms.insert(combined.atoms.end(),
                                    right.atoms.begin(), right.atoms.end());
              combined.equalities.insert(combined.equalities.end(),
                                         right.equalities.begin(),
                                         right.equalities.end());
              combined.scoped_variables.insert(
                  right.scoped_variables.begin(),
                  right.scoped_variables.end());
              merged.push_back(std::move(combined));
              // Runaway guard: distributing ∧ over ∨ is worst-case
              // exponential in the conjunction width.
              HOMPRES_CHECK_LT(merged.size(), 1u << 20);
            }
          }
          result = std::move(merged);
        }
        return result;
      }
      case FormulaKind::kOr: {
        std::vector<FlatCq> result;
        for (const auto& child : f->Children()) {
          auto part = Normalize(child, subst);
          if (!part.has_value()) return std::nullopt;
          result.insert(result.end(), part->begin(), part->end());
        }
        return result;
      }
      case FormulaKind::kExists: {
        const std::string fresh = "@b" + std::to_string(counter_++);
        subst[f->Variables()[0]] = fresh;
        auto part = Normalize(f->Children()[0], subst);
        if (!part.has_value()) return std::nullopt;
        for (FlatCq& cq : *part) cq.scoped_variables.insert(fresh);
        return part;
      }
      case FormulaKind::kNot:
      case FormulaKind::kForall:
        return std::nullopt;
    }
    return std::nullopt;
  }

 private:
  static std::string Resolve(const std::map<std::string, std::string>& subst,
                             const std::string& v) {
    auto it = subst.find(v);
    return it == subst.end() ? v : it->second;
  }

  const Vocabulary& vocabulary_;
  int counter_ = 0;
};

// Union-find over variable names.
class NameUnion {
 public:
  void Add(const std::string& name) {
    parent_.emplace(name, name);
  }

  std::string Find(const std::string& name) {
    std::string current = name;
    while (parent_.at(current) != current) current = parent_.at(current);
    return current;
  }

  void Merge(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }

  const std::map<std::string, std::string>& Parents() const {
    return parent_;
  }

 private:
  std::map<std::string, std::string> parent_;
};

ConjunctiveQuery FlatToCq(const FlatCq& flat, const Vocabulary& vocabulary,
                          const std::vector<std::string>& free_order) {
  NameUnion classes;
  for (const auto& [rel, arguments] : flat.atoms) {
    (void)rel;
    for (const auto& v : arguments) classes.Add(v);
  }
  for (const auto& [left, right] : flat.equalities) {
    classes.Add(left);
    classes.Add(right);
  }
  for (const auto& v : flat.scoped_variables) classes.Add(v);
  for (const auto& v : free_order) classes.Add(v);
  for (const auto& [left, right] : flat.equalities) {
    classes.Merge(left, right);
  }
  // Assign element ids to classes.
  std::map<std::string, int> element_of;
  int next = 0;
  for (const auto& [name, unused] : classes.Parents()) {
    (void)unused;
    const std::string root = classes.Find(name);
    if (element_of.find(root) == element_of.end()) {
      element_of[root] = next++;
    }
  }
  Structure canonical(vocabulary, next);
  for (const auto& [rel, arguments] : flat.atoms) {
    Tuple t;
    t.reserve(arguments.size());
    for (const auto& v : arguments) {
      t.push_back(element_of.at(classes.Find(v)));
    }
    canonical.AddTuple(rel, t);
  }
  std::vector<int> free_elements;
  free_elements.reserve(free_order.size());
  for (const auto& v : free_order) {
    free_elements.push_back(element_of.at(classes.Find(v)));
  }
  return ConjunctiveQuery(std::move(canonical), std::move(free_elements));
}

}  // namespace

std::optional<UnionOfCq> ExistentialPositiveToUcq(
    const FormulaPtr& f, const Vocabulary& vocabulary,
    const std::vector<std::string>& free_order) {
  if (!IsExistentialPositive(f)) return std::nullopt;
  {
    // Every free variable must be covered by free_order.
    const std::set<std::string> free = FreeVariables(f);
    for (const auto& v : free) {
      bool covered = false;
      for (const auto& o : free_order) covered |= (o == v);
      if (!covered) return std::nullopt;
    }
  }
  Normalizer normalizer(vocabulary);
  auto flats = normalizer.Normalize(f, {});
  if (!flats.has_value()) return std::nullopt;
  std::vector<ConjunctiveQuery> disjuncts;
  disjuncts.reserve(flats->size());
  for (const FlatCq& flat : *flats) {
    disjuncts.push_back(FlatToCq(flat, vocabulary, free_order));
  }
  return UnionOfCq(std::move(disjuncts),
                   static_cast<int>(free_order.size()));
}

std::optional<UnionOfCq> ExistentialPositiveSentenceToUcq(
    const FormulaPtr& f, const Vocabulary& vocabulary) {
  return ExistentialPositiveToUcq(f, vocabulary, {});
}

FormulaPtr UcqToFormula(const UnionOfCq& q) {
  HOMPRES_CHECK(!q.Disjuncts().empty());  // `false` is not EP-expressible
  std::vector<FormulaPtr> disjuncts;
  for (const ConjunctiveQuery& cq : q.Disjuncts()) {
    const Structure& canonical = cq.Canonical();
    // Name elements: free positions get f<i> (first position wins when an
    // element repeats); the rest get x<e>.
    std::vector<std::string> name(
        static_cast<size_t>(canonical.UniverseSize()));
    std::vector<FormulaPtr> conjuncts;
    for (int i = 0; i < cq.Arity(); ++i) {
      const int e = cq.FreeElements()[static_cast<size_t>(i)];
      const std::string fi = "f" + std::to_string(i);
      if (name[static_cast<size_t>(e)].empty()) {
        name[static_cast<size_t>(e)] = fi;
      } else {
        conjuncts.push_back(
            Formula::Equal(fi, name[static_cast<size_t>(e)]));
      }
    }
    std::vector<std::string> quantified;
    for (int e = 0; e < canonical.UniverseSize(); ++e) {
      if (name[static_cast<size_t>(e)].empty()) {
        name[static_cast<size_t>(e)] = "x" + std::to_string(e);
        quantified.push_back(name[static_cast<size_t>(e)]);
      }
    }
    for (int rel = 0; rel < canonical.GetVocabulary().NumRelations();
         ++rel) {
      for (const Tuple& t : canonical.Tuples(rel)) {
        std::vector<std::string> arguments;
        arguments.reserve(t.size());
        for (int e : t) arguments.push_back(name[static_cast<size_t>(e)]);
        conjuncts.push_back(Formula::Atom(
            canonical.GetVocabulary().Name(rel), std::move(arguments)));
      }
    }
    FormulaPtr body;
    if (conjuncts.empty()) {
      // Empty canonical structure with no free repetitions: the query is
      // the constant true; ∀z (z = z) is true on every structure
      // including the empty one. (Positive but not existential; only this
      // degenerate disjunct needs it.)
      if (canonical.UniverseSize() == 0 && quantified.empty()) {
        body = Formula::Forall("z", Formula::Equal("z", "z"));
        disjuncts.push_back(body);
        continue;
      }
      // Isolated elements only: assert a self-equality so the body is
      // well-formed (pick a quantified element if any, else a free one).
      const std::string& witness =
          quantified.empty() ? name[0] : quantified.front();
      body = Formula::Equal(witness, witness);
    } else if (conjuncts.size() == 1) {
      body = conjuncts[0];
    } else {
      body = Formula::And(std::move(conjuncts));
    }
    for (auto it = quantified.rbegin(); it != quantified.rend(); ++it) {
      body = Formula::Exists(*it, body);
    }
    disjuncts.push_back(body);
  }
  if (disjuncts.size() == 1) return disjuncts[0];
  return Formula::Or(std::move(disjuncts));
}

}  // namespace hompres
