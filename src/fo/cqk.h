// CQ^k formulas and the Lemma 7.2 construction.
//
// CQ^k is the set of first-order formulas with at most k distinct
// variables built from relation atoms using conjunction and existential
// quantification only (variables may be requantified and reused — that is
// the entire point). Lemma 7.2: every CQ^k sentence is logically
// equivalent to the canonical conjunctive query of a structure of
// treewidth < k; the construction renames bound variables apart and reads
// a width-(k-1) tree decomposition off the parse tree.

#ifndef HOMPRES_FO_CQK_H_
#define HOMPRES_FO_CQK_H_

#include <optional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "fo/formula.h"
#include "structure/structure.h"
#include "tw/tree_decomposition.h"

namespace hompres {

// Number of distinct variable names occurring in f.
int DistinctVariableCount(const FormulaPtr& f);

// True iff f uses only atoms, ∧ and ∃ (the CQ^k shape; equalities are
// excluded — the paper eliminates them by substitution) and has at most k
// distinct variables.
bool IsCqkFormula(const FormulaPtr& f, int k);

struct CqkCanonicalResult {
  // The canonical structure D of Lemma 7.2 (elements = renamed-apart
  // variables).
  Structure structure;
  // The renamed variable that each element came from.
  std::vector<std::string> element_names;
  // A certified tree decomposition of D's Gaifman graph with width < k,
  // built from the parse tree.
  TreeDecomposition decomposition;
};

// Lemma 7.2 for sentences: returns nullopt if f is not a CQ^k sentence
// over `vocabulary` (wrong shape, too many variables, free variables,
// unknown relation, wrong arity). On success, the decomposition is
// validated and has width <= k - 1, and the canonical conjunctive query
// of `structure` is logically equivalent to f (testable via evaluation).
std::optional<CqkCanonicalResult> CqkCanonicalStructure(
    const FormulaPtr& f, const Vocabulary& vocabulary, int k);

// Lemma 7.3: every model A of a ∨CQ^k sentence ∨Φ admits a structure B
// that is (1) a minimal model of ∨Φ, (2) of treewidth < k, and (3) maps
// homomorphically into A — surjectively when A is itself minimal.
struct Lemma73Result {
  // The minimal model B (a substructure of some disjunct's canonical
  // structure).
  Structure minimal_model;
  // A certificate that B has treewidth < k.
  TreeDecomposition decomposition;
  // A homomorphism B -> A.
  std::vector<int> hom_to_a;
  // Whether hom_to_a is surjective onto A's universe.
  bool surjective = false;
};

// Runs the Lemma 7.3 construction for the finite family `phi` of CQ^k
// sentences against a model `a` of the disjunction. Returns nullopt if
// no disjunct is satisfied by `a` or some disjunct is not a CQ^k
// sentence over the vocabulary. B stays small (a substructure of one
// canonical structure), so the treewidth certificate uses the exact
// solver.
std::optional<Lemma73Result> Lemma73Witness(
    const std::vector<FormulaPtr>& phi, const Vocabulary& vocabulary, int k,
    const Structure& a);

// Theorem 7.4, constructive content: if the disjunction of the CQ^k
// sentences in `phi` is equivalent to a first-order sentence on finite
// structures, it is equivalent to a finite subdisjunction; the proof
// extracts one disjunct per minimal model. This function runs that
// extraction on a finite family (the stand-in for the paper's infinite
// Φ): it enumerates the minimal models of ∨Φ (over all finite
// structures), picks for each a disjunct it satisfies, and returns those
// indices (deduplicated, increasing). The result ∨Ψ is equivalent to
// ∨Φ; callers can verify with UcqEquivalent after converting. Returns
// nullopt if some element of phi is not a CQ^k sentence over the
// vocabulary.
std::optional<std::vector<int>> Theorem74Subdisjunction(
    const std::vector<FormulaPtr>& phi, const Vocabulary& vocabulary,
    int k);

// Random CQ^k sentence generator for the benches: builds a random
// ∃/∧/atom tree over the fixed variable pool {v0, ..., v<k-1>}, reusing
// and requantifying variables, then closes it with outer quantifiers.
// `atom_budget` bounds the number of atoms. Requires k >= 1 and a
// vocabulary whose arities are all <= k.
FormulaPtr RandomCqkSentence(const Vocabulary& vocabulary, int k,
                             int atom_budget, Rng& rng);

}  // namespace hompres

#endif  // HOMPRES_FO_CQK_H_
