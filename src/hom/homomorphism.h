// Homomorphisms between finite relational structures (Section 2.1).
//
// Deciding whether a homomorphism A -> B exists is the constraint
// satisfaction problem in the Feder-Vardi sense: elements of A are
// variables, elements of B are values, and every tuple of A is a table
// constraint requiring its image to be a tuple of B. The solver runs
// generalized arc consistency (AC-3 over tuple constraints) inside a
// smallest-domain-first backtracking search; a plain backtracking baseline
// is provided for the engine benchmarks (E14).
//
// Every search entry point has a budgeted form taking a Budget& and
// returning an Outcome (one step = one search node): Done carries the
// exact answer, Exhausted/Cancelled mean the search stopped short and the
// answer is unknown. The unbudgeted signatures are thin wrappers passing
// Budget::Unlimited().

#ifndef HOMPRES_HOM_HOMOMORPHISM_H_
#define HOMPRES_HOM_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "structure/structure.h"

namespace hompres {

// Options for the homomorphism search.
struct HomOptions {
  // Require the witness to be surjective onto the target's universe
  // (used by Lemma 7.3: minimal models are surjective images).
  bool surjective = false;

  // Pre-assigned pairs (a, b): h(a) must equal b. Used for pointed
  // structures / retraction searches.
  std::vector<std::pair<int, int>> forced;

  // Disable arc consistency (naive backtracking baseline).
  bool use_arc_consistency = true;
};

// Returns a homomorphism from a to b as an element map, or nullopt.
// Vocabularies must agree.
std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 const HomOptions& options = {});

// Budgeted search. Done(witness) / Done(nullopt = certainly none) /
// Exhausted / Cancelled. A witness found just as the budget runs out is
// still reported as Done.
Outcome<std::optional<std::vector<int>>> FindHomomorphismBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const HomOptions& options = {});

bool HasHomomorphism(const Structure& a, const Structure& b);

Outcome<bool> HasHomomorphismBudgeted(const Structure& a, const Structure& b,
                                      Budget& budget);

// True iff h maps every tuple of a to a tuple of b (and is total/in-range).
bool VerifyHomomorphism(const Structure& a, const Structure& b,
                        const std::vector<int>& h);

// Homomorphic equivalence: homs in both directions (Section 2.1).
bool AreHomEquivalent(const Structure& a, const Structure& b);

// Counts homomorphisms a -> b, stopping at `limit` (0 = count all).
uint64_t CountHomomorphisms(const Structure& a, const Structure& b,
                            uint64_t limit = 0);

// Budgeted count: Done(count) only when the enumeration completed (or hit
// `limit`); a partial count is never reported as an answer.
Outcome<uint64_t> CountHomomorphismsBudgeted(const Structure& a,
                                             const Structure& b,
                                             Budget& budget,
                                             uint64_t limit = 0);

// Enumerates homomorphisms a -> b; the callback returns false to stop.
void EnumerateHomomorphisms(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& callback);

// Budgeted enumeration. Done(true) = exhausted the solution space,
// Done(false) = the callback stopped it; Exhausted/Cancelled = the budget
// stopped it (some homomorphisms may not have been visited).
Outcome<bool> EnumerateHomomorphismsBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const std::function<bool(const std::vector<int>&)>& callback);

}  // namespace hompres

#endif  // HOMPRES_HOM_HOMOMORPHISM_H_
