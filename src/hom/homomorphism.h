// Homomorphisms between finite relational structures (Section 2.1).
//
// Deciding whether a homomorphism A -> B exists is the constraint
// satisfaction problem in the Feder-Vardi sense: elements of A are
// variables, elements of B are values, and every tuple of A is a table
// constraint requiring its image to be a tuple of B. The solver runs
// generalized arc consistency (AC-3 over tuple constraints) inside a
// smallest-domain-first backtracking search; a plain backtracking baseline
// is provided for the engine benchmarks (E14).
//
// Every search entry point has a budgeted form taking a Budget& and
// returning an Outcome (one step = one search node): Done carries the
// exact answer, Exhausted/Cancelled mean the search stopped short and the
// answer is unknown. The unbudgeted signatures are thin wrappers passing
// Budget::Unlimited().

#ifndef HOMPRES_HOM_HOMOMORPHISM_H_
#define HOMPRES_HOM_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "engine/config.h"
#include "structure/structure.h"

namespace hompres {

// Options for the homomorphism search.
//
// Compatibility shim: HomOptions predates the engine layer and survives
// as a field-for-field mirror of EngineConfig (engine/config.h). The
// entry points below plan in compatibility mode — incompatible
// combinations (see engine/plan.h) are silently normalized, preserving
// the historical behavior. New code should build an EngineConfig and
// call the engine (engine/engine.h) directly, getting strict validation.
struct HomOptions {
  // Require the witness to be surjective onto the target's universe
  // (used by Lemma 7.3: minimal models are surjective images).
  bool surjective = false;

  // Pre-assigned pairs (a, b): h(a) must equal b. Used for pointed
  // structures / retraction searches. A pair referencing an element
  // outside either universe is an unsatisfiable constraint: the search
  // reports "no homomorphism" rather than aborting.
  std::vector<std::pair<int, int>> forced;

  // Disable arc consistency (naive backtracking baseline).
  bool use_arc_consistency = true;

  // Use the target's RelationIndex to narrow the tuple scans of the
  // propagation loop to the candidates matching already-assigned
  // (singleton-domain) positions. Bit-identical results — the index only
  // excludes tuples the scan would have rejected — with fewer tuples
  // visited. Off = the pure-scan engine, kept selectable for the
  // differential tests and the indexed-vs-scan benches (E14). Only
  // meaningful together with use_arc_consistency (the naive baseline
  // probes single tuples and never scans).
  bool use_index = true;

  // Number of worker threads for the parallel engine (hom/parallel.h).
  // 0 = serial search, bit-identical to the pre-parallel engine. With
  // n > 0 the search splits the top decision levels into independent
  // subtree tasks on a work-stealing pool; the has/none decision is the
  // same as serial, but which witness is found depends on thread timing
  // unless deterministic_witness is set.
  int num_threads = 0;

  // With num_threads > 0: return the witness of the lexicographically
  // first completed subtree instead of the first finisher's, making the
  // witness a deterministic function of the inputs (including
  // num_threads). Costs some parallelism: subtrees left of a witness run
  // to completion instead of being cancelled.
  bool deterministic_witness = false;

  // Factor the search through the connected components of the source's
  // Gaifman graph: each component is solved independently, a witness is
  // the concatenation of the per-component witnesses, and a count is the
  // (saturating) product of the per-component counts. Off = the old
  // monolithic search, kept selectable for the differential tests.
  // Factorization is skipped (regardless of this flag) when it cannot be
  // applied soundly: surjective mode (a global property) and pre-assigned
  // `forced` pairs fall back to the monolithic engine. Answers are
  // bit-identical either way; which witness is found may differ between
  // the two modes (both always verify).
  bool factorize = true;

  // Consult and fill the global homomorphism-result cache
  // (hom/hom_cache.h) in HasHomomorphismBudgeted /
  // CountHomomorphismsBudgeted, keyed by the structures' value
  // fingerprints. Off by default: the differential harnesses must not let
  // one engine's memoized answer mask another engine's bug. The
  // preservation pipeline, core search, and UCQ evaluation opt in.
  bool use_cache = false;

  // The engine-layer equivalent of these options (field for field).
  EngineConfig ToEngineConfig() const {
    EngineConfig config;
    config.surjective = surjective;
    config.forced = forced;
    config.use_arc_consistency = use_arc_consistency;
    config.use_index = use_index;
    config.num_threads = num_threads;
    config.deterministic_witness = deterministic_witness;
    config.factorize = factorize;
    config.use_cache = use_cache;
    return config;
  }
};

// Returns a homomorphism from a to b as an element map, or nullopt.
// Vocabularies must agree.
std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 const HomOptions& options = {});

// Budgeted search. Done(witness) / Done(nullopt = certainly none) /
// Exhausted / Cancelled. A witness found just as the budget runs out is
// still reported as Done.
Outcome<std::optional<std::vector<int>>> FindHomomorphismBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const HomOptions& options = {});

bool HasHomomorphism(const Structure& a, const Structure& b,
                     const HomOptions& options = {});

Outcome<bool> HasHomomorphismBudgeted(const Structure& a, const Structure& b,
                                      Budget& budget,
                                      const HomOptions& options = {});

// True iff h maps every tuple of a to a tuple of b (and is total/in-range).
bool VerifyHomomorphism(const Structure& a, const Structure& b,
                        const std::vector<int>& h);

// Homomorphic equivalence: homs in both directions (Section 2.1).
bool AreHomEquivalent(const Structure& a, const Structure& b);

// Counts homomorphisms a -> b, stopping at `limit` (0 = count all).
// Honors options.surjective/forced; options.num_threads > 0 fans the
// disjoint subtree counts out to the parallel engine.
uint64_t CountHomomorphisms(const Structure& a, const Structure& b,
                            uint64_t limit = 0,
                            const HomOptions& options = {});

// Budgeted count: Done(count) only when the enumeration completed (or hit
// `limit`); a partial count is never reported as an answer.
Outcome<uint64_t> CountHomomorphismsBudgeted(const Structure& a,
                                             const Structure& b,
                                             Budget& budget,
                                             uint64_t limit = 0,
                                             const HomOptions& options = {});

// Enumerates homomorphisms a -> b; the callback returns false to stop.
// Enumeration is always serial (the callback is not required to be
// thread-safe): options.num_threads is ignored here.
void EnumerateHomomorphisms(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& callback,
    const HomOptions& options = {});

// Budgeted enumeration. Done(true) = exhausted the solution space,
// Done(false) = the callback stopped it; Exhausted/Cancelled = the budget
// stopped it (some homomorphisms may not have been visited).
Outcome<bool> EnumerateHomomorphismsBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const std::function<bool(const std::vector<int>&)>& callback,
    const HomOptions& options = {});

}  // namespace hompres

#endif  // HOMPRES_HOM_HOMOMORPHISM_H_
