// Homomorphisms between finite relational structures (Section 2.1).
//
// Deciding whether a homomorphism A -> B exists is the constraint
// satisfaction problem in the Feder-Vardi sense: elements of A are
// variables, elements of B are values, and every tuple of A is a table
// constraint requiring its image to be a tuple of B. The solver runs
// generalized arc consistency (AC-3 over tuple constraints) inside a
// smallest-domain-first backtracking search; a plain backtracking baseline
// is provided for the engine benchmarks (E14).

#ifndef HOMPRES_HOM_HOMOMORPHISM_H_
#define HOMPRES_HOM_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "structure/structure.h"

namespace hompres {

// Options for the homomorphism search.
struct HomOptions {
  // Require the witness to be surjective onto the target's universe
  // (used by Lemma 7.3: minimal models are surjective images).
  bool surjective = false;

  // Pre-assigned pairs (a, b): h(a) must equal b. Used for pointed
  // structures / retraction searches.
  std::vector<std::pair<int, int>> forced;

  // Disable arc consistency (naive backtracking baseline).
  bool use_arc_consistency = true;

  // Cap on search nodes; 0 = unlimited. A budgeted search that runs out
  // returns nullopt, so pass 0 whenever the answer must be certain.
  long long node_budget = 0;
};

// Returns a homomorphism from a to b as an element map, or nullopt.
// Vocabularies must agree.
std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 const HomOptions& options = {});

bool HasHomomorphism(const Structure& a, const Structure& b);

// True iff h maps every tuple of a to a tuple of b (and is total/in-range).
bool VerifyHomomorphism(const Structure& a, const Structure& b,
                        const std::vector<int>& h);

// Homomorphic equivalence: homs in both directions (Section 2.1).
bool AreHomEquivalent(const Structure& a, const Structure& b);

// Counts homomorphisms a -> b, stopping at `limit` (0 = count all).
uint64_t CountHomomorphisms(const Structure& a, const Structure& b,
                            uint64_t limit = 0);

// Enumerates homomorphisms a -> b; the callback returns false to stop.
void EnumerateHomomorphisms(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& callback);

}  // namespace hompres

#endif  // HOMPRES_HOM_HOMOMORPHISM_H_
