#include "hom/core.h"

#include "base/check.h"
#include "hom/homomorphism.h"

namespace hompres {

namespace {

// If some one-step removal of `a` (one element with its incident tuples,
// or one tuple) admits a homomorphism from `a`, writes it to `out` and
// returns true.
bool FindOneStepRetract(const Structure& a, Structure* out) {
  for (int e = 0; e < a.UniverseSize(); ++e) {
    Structure candidate = a.RemoveElement(e);
    if (HasHomomorphism(a, candidate)) {
      *out = std::move(candidate);
      return true;
    }
  }
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    const int count = static_cast<int>(a.Tuples(rel).size());
    for (int i = 0; i < count; ++i) {
      Structure candidate = a.RemoveTuple(rel, i);
      if (HasHomomorphism(a, candidate)) {
        *out = std::move(candidate);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Structure ComputeCore(const Structure& a) {
  Structure current = a;
  Structure next(current.GetVocabulary(), 0);
  while (FindOneStepRetract(current, &next)) {
    // `next` is hom-equivalent to `current`: current -> next was just
    // witnessed, and next embeds into current... note the embedding is not
    // the identity after element renumbering, but next was built from
    // current by a removal, so the inclusion (modulo renumbering) is a
    // homomorphism by construction.
    current = std::move(next);
    next = Structure(current.GetVocabulary(), 0);
  }
  HOMPRES_CHECK(IsCore(current));
  return current;
}

bool IsCore(const Structure& a) {
  Structure scratch(a.GetVocabulary(), 0);
  return !FindOneStepRetract(a, &scratch);
}

}  // namespace hompres
