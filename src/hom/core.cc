#include "hom/core.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/parallel_driver.h"
#include "base/thread_pool.h"
#include "engine/engine.h"

namespace hompres {

namespace {

enum class RetractResult { kFound, kNone, kStopped };

// If some one-step removal of `a` (one element with its incident tuples,
// or one tuple) admits a homomorphism from `a`, writes it to `out` and
// returns kFound. kNone is a certain answer; kStopped means the budget
// ran out mid-search and nothing is known — `*stop` then says why (the
// parent budget itself may carry no reason after a parallel region).
// Retract probes opt into the global result cache: the core loop's final
// IsCore pass repeats every probe of its last reduction round verbatim,
// and unchanged candidates recur across rounds.
EngineConfig RetractProbeConfig() {
  EngineConfig config;
  config.use_cache = true;
  return config;
}

RetractResult FindOneStepRetractSerial(const Structure& a, Budget& budget,
                                       Structure* out, StopReason* stop) {
  for (int e = 0; e < a.UniverseSize(); ++e) {
    Structure candidate = a.RemoveElement(e);
    auto has = Engine::Has(a, candidate, budget, RetractProbeConfig());
    if (!has.IsDone()) {
      *stop = budget.Reason();
      return RetractResult::kStopped;
    }
    if (has.Value()) {
      *out = std::move(candidate);
      return RetractResult::kFound;
    }
  }
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    const int count = static_cast<int>(a.Tuples(rel).size());
    for (int i = 0; i < count; ++i) {
      Structure candidate = a.RemoveTuple(rel, i);
      auto has = Engine::Has(a, candidate, budget, RetractProbeConfig());
      if (!has.IsDone()) {
        *stop = budget.Reason();
        return RetractResult::kStopped;
      }
      if (has.Value()) {
        *out = std::move(candidate);
        return RetractResult::kFound;
      }
    }
  }
  return RetractResult::kNone;
}

// Parallel variant: one task per candidate removal, indexed in the serial
// scan order (element removals first, then tuples relation by relation).
// The accepted retraction is the lowest-index candidate whose check
// succeeded with every lower-index check completed "no" — exactly the
// serial choice — so the greedy reduction is deterministic for any
// thread count. A task that finds a retraction cancels the candidates to
// its right (their answers can no longer be chosen).
RetractResult FindOneStepRetractParallel(const Structure& a, Budget& budget,
                                         int num_threads, Structure* out,
                                         StopReason* stop) {
  const int n = a.UniverseSize();
  std::vector<std::pair<int, int>> tuple_jobs;
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    const int count = static_cast<int>(a.Tuples(rel).size());
    for (int i = 0; i < count; ++i) tuple_jobs.emplace_back(rel, i);
  }
  const int num_tasks = n + static_cast<int>(tuple_jobs.size());
  if (num_tasks == 0) return RetractResult::kNone;

  struct TaskState {
    bool completed = false;
    std::optional<Structure> retract;
    StopReason stop = StopReason::kNone;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));
  std::mutex state_mu;
  int best = num_tasks;  // smallest candidate index with a retraction

  ParallelRegion region(budget, num_tasks);
  ThreadPool pool(std::min(num_threads, num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    pool.Submit([&, i] {
      Budget worker = region.WorkerBudget(i);
      Structure candidate =
          i < n ? a.RemoveElement(i)
                : a.RemoveTuple(tuple_jobs[static_cast<size_t>(i - n)].first,
                                tuple_jobs[static_cast<size_t>(i - n)].second);
      auto has = Engine::Has(a, candidate, worker, RetractProbeConfig());
      {
        std::lock_guard<std::mutex> lock(state_mu);
        TaskState& state = states[static_cast<size_t>(i)];
        if (has.IsDone()) {
          state.completed = true;
          if (has.Value()) {
            state.retract = std::move(candidate);
            if (i < best) {
              best = i;
              region.CancelFrom(best + 1);
            }
          }
        } else {
          state.stop = has.Report().reason;
        }
      }
      region.TaskDone();
    });
  }
  const bool external_cancel = region.Join(pool);

  for (int i = 0; i < num_tasks; ++i) {
    TaskState& state = states[static_cast<size_t>(i)];
    if (state.retract.has_value()) {
      // Every earlier candidate completed without a retraction, so this
      // is the candidate the serial scan would descend into.
      *out = std::move(*state.retract);
      return RetractResult::kFound;
    }
    if (!state.completed) {
      WorkerStopScan scan;
      for (int j = i; j < num_tasks; ++j) {
        const TaskState& later = states[static_cast<size_t>(j)];
        scan.Observe(later.completed, later.stop);
      }
      *stop = scan.StoppedReport(budget, external_cancel).reason;
      return RetractResult::kStopped;
    }
  }
  return RetractResult::kNone;
}

RetractResult FindOneStepRetract(const Structure& a, Budget& budget,
                                 int num_threads, Structure* out,
                                 StopReason* stop) {
  if (num_threads > 0) {
    return FindOneStepRetractParallel(a, budget, num_threads, out, stop);
  }
  return FindOneStepRetractSerial(a, budget, out, stop);
}

Outcome<Structure> StoppedCore(const Budget& budget, StopReason stop) {
  BudgetReport report = budget.Report();
  if (report.reason == StopReason::kNone) report.reason = stop;
  return Outcome<Structure>::StoppedShort(report);
}

}  // namespace

Outcome<Structure> ComputeCoreBudgeted(const Structure& a, Budget& budget,
                                       int num_threads) {
  Structure current = a;
  Structure next(current.GetVocabulary(), 0);
  StopReason stop = StopReason::kNone;
  for (;;) {
    const RetractResult step =
        FindOneStepRetract(current, budget, num_threads, &next, &stop);
    if (step == RetractResult::kStopped) return StoppedCore(budget, stop);
    if (step == RetractResult::kNone) break;
    // `next` is hom-equivalent to `current`: current -> next was just
    // witnessed, and next embeds into current... note the embedding is not
    // the identity after element renumbering, but next was built from
    // current by a removal, so the inclusion (modulo renumbering) is a
    // homomorphism by construction.
    current = std::move(next);
    next = Structure(current.GetVocabulary(), 0);
  }
  // The final FindOneStepRetract returned kNone with budget to spare,
  // which is exactly the IsCore condition.
  return Outcome<Structure>::Done(std::move(current), budget.Report());
}

Structure ComputeCore(const Structure& a, int num_threads) {
  Budget unlimited = Budget::Unlimited();
  Structure core =
      std::move(ComputeCoreBudgeted(a, unlimited, num_threads)).TakeValue();
  HOMPRES_CHECK(IsCore(core));
  return core;
}

bool IsCore(const Structure& a, int num_threads) {
  Budget unlimited = Budget::Unlimited();
  return IsCoreBudgeted(a, unlimited, num_threads).Value();
}

Outcome<bool> IsCoreBudgeted(const Structure& a, Budget& budget,
                             int num_threads) {
  Structure scratch(a.GetVocabulary(), 0);
  StopReason stop = StopReason::kNone;
  switch (FindOneStepRetract(a, budget, num_threads, &scratch, &stop)) {
    case RetractResult::kFound:
      return Outcome<bool>::Done(false, budget.Report());
    case RetractResult::kNone:
      return Outcome<bool>::Done(true, budget.Report());
    case RetractResult::kStopped:
      break;
  }
  BudgetReport report = budget.Report();
  if (report.reason == StopReason::kNone) report.reason = stop;
  return Outcome<bool>::StoppedShort(report);
}

}  // namespace hompres
