#include "hom/core.h"

#include "base/check.h"
#include "hom/homomorphism.h"

namespace hompres {

namespace {

enum class RetractResult { kFound, kNone, kStopped };

// If some one-step removal of `a` (one element with its incident tuples,
// or one tuple) admits a homomorphism from `a`, writes it to `out` and
// returns kFound. kNone is a certain answer; kStopped means the budget
// ran out mid-search and nothing is known.
RetractResult FindOneStepRetract(const Structure& a, Budget& budget,
                                 Structure* out) {
  for (int e = 0; e < a.UniverseSize(); ++e) {
    Structure candidate = a.RemoveElement(e);
    auto has = HasHomomorphismBudgeted(a, candidate, budget);
    if (!has.IsDone()) return RetractResult::kStopped;
    if (has.Value()) {
      *out = std::move(candidate);
      return RetractResult::kFound;
    }
  }
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    const int count = static_cast<int>(a.Tuples(rel).size());
    for (int i = 0; i < count; ++i) {
      Structure candidate = a.RemoveTuple(rel, i);
      auto has = HasHomomorphismBudgeted(a, candidate, budget);
      if (!has.IsDone()) return RetractResult::kStopped;
      if (has.Value()) {
        *out = std::move(candidate);
        return RetractResult::kFound;
      }
    }
  }
  return RetractResult::kNone;
}

}  // namespace

Outcome<Structure> ComputeCoreBudgeted(const Structure& a, Budget& budget) {
  Structure current = a;
  Structure next(current.GetVocabulary(), 0);
  for (;;) {
    const RetractResult step = FindOneStepRetract(current, budget, &next);
    if (step == RetractResult::kStopped) {
      return Outcome<Structure>::StoppedShort(budget.Report());
    }
    if (step == RetractResult::kNone) break;
    // `next` is hom-equivalent to `current`: current -> next was just
    // witnessed, and next embeds into current... note the embedding is not
    // the identity after element renumbering, but next was built from
    // current by a removal, so the inclusion (modulo renumbering) is a
    // homomorphism by construction.
    current = std::move(next);
    next = Structure(current.GetVocabulary(), 0);
  }
  // The final FindOneStepRetract returned kNone with budget to spare,
  // which is exactly the IsCore condition.
  return Outcome<Structure>::Done(std::move(current), budget.Report());
}

Structure ComputeCore(const Structure& a) {
  Budget unlimited = Budget::Unlimited();
  Structure core = std::move(ComputeCoreBudgeted(a, unlimited)).TakeValue();
  HOMPRES_CHECK(IsCore(core));
  return core;
}

bool IsCore(const Structure& a) {
  Budget unlimited = Budget::Unlimited();
  return IsCoreBudgeted(a, unlimited).Value();
}

Outcome<bool> IsCoreBudgeted(const Structure& a, Budget& budget) {
  Structure scratch(a.GetVocabulary(), 0);
  switch (FindOneStepRetract(a, budget, &scratch)) {
    case RetractResult::kFound:
      return Outcome<bool>::Done(false, budget.Report());
    case RetractResult::kNone:
      return Outcome<bool>::Done(true, budget.Report());
    case RetractResult::kStopped:
      break;
  }
  return Outcome<bool>::StoppedShort(budget.Report());
}

}  // namespace hompres
