// Parallel homomorphism search (the CSP view of Chandra-Merlin, fanned
// out over a work-stealing thread pool).
//
// The driver splits the search space at the top decision levels: it picks
// the source elements that occur in the most tuples (the strongest
// constraints), forms one task per assignment of target values to those
// elements, and runs the existing serial AC-3 + smallest-domain-first
// search inside each task with the split assignment passed as forced
// pairs. Tasks are independent subtrees — their assignment sets partition
// the full space — so existence, certain absence, and exact counts
// compose without coordination beyond:
//
//  - a shared atomic step counter (Budget::SpawnWorker) so the workers
//    together respect the caller's step limit;
//  - per-task cancellation flags for first-finisher cancellation: a task
//    that finds a witness cancels the subtrees that can no longer affect
//    the answer.
//
// Determinism: the has/none decision equals the serial engine's. The
// witness returned depends on thread timing unless
// options.deterministic_witness is set, in which case it is the witness
// of the lexicographically first subtree — a pure function of the inputs
// and options (including num_threads), though not necessarily the same
// map the serial engine finds. Under budget exhaustion the accounting is
// approximate: concurrent workers may overshoot the step limit by up to
// one step each.
//
// These entry points are normally reached through the HomOptions
// num_threads field on the hom/homomorphism.h API; they are exported for
// callers that want the parallel engine explicitly.

#ifndef HOMPRES_HOM_PARALLEL_H_
#define HOMPRES_HOM_PARALLEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "hom/homomorphism.h"
#include "structure/structure.h"

namespace hompres {

// Parallel witness search. options.num_threads <= 0 falls back to the
// serial engine.
std::optional<std::vector<int>> ParallelFindHomomorphism(
    const Structure& a, const Structure& b, const HomOptions& options);

Outcome<std::optional<std::vector<int>>> ParallelFindHomomorphismBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const HomOptions& options);

Outcome<bool> ParallelHasHomomorphismBudgeted(const Structure& a,
                                              const Structure& b,
                                              Budget& budget,
                                              const HomOptions& options);

// Parallel counting: subtree counts are summed (the subtrees partition
// the assignment space, so the total is exact). With limit > 0 the count
// stops early once `limit` homomorphisms have been seen across all
// subtrees and returns `limit`, like the serial count.
uint64_t ParallelCountHomomorphisms(const Structure& a, const Structure& b,
                                    uint64_t limit,
                                    const HomOptions& options);

Outcome<uint64_t> ParallelCountHomomorphismsBudgeted(
    const Structure& a, const Structure& b, Budget& budget, uint64_t limit,
    const HomOptions& options);

}  // namespace hompres

#endif  // HOMPRES_HOM_PARALLEL_H_
