#include "hom/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "base/check.h"
#include "base/parallel_driver.h"
#include "base/thread_pool.h"
#include "engine/ordering.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// Split assignments, one per task, in lexicographic order of the values
// assigned to the split elements (the order that defines the
// deterministic_witness winner).
using SplitPlan = std::vector<std::vector<std::pair<int, int>>>;

// Crosses the value ranges of the planner-chosen split elements
// (engine/ordering.h: the highest-occurrence source elements) into one
// forced-pair prefix per task. Returns an empty plan when splitting is
// pointless (trivial instance, or m < 2).
SplitPlan PlanSplit(const Structure& a, const Structure& b,
                    const HomOptions& options, int num_threads) {
  const SplitChoice choice =
      ChooseSplitElements(a, b, options.forced, num_threads);
  if (choice.elements.empty()) return {};
  const int m = b.UniverseSize();
  SplitPlan plan(1);
  for (int v : choice.elements) {
    SplitPlan next;
    next.reserve(plan.size() * static_cast<size_t>(m));
    for (const auto& prefix : plan) {
      for (int val = 0; val < m; ++val) {
        auto task = prefix;
        task.emplace_back(v, val);
        next.push_back(std::move(task));
      }
    }
    plan = std::move(next);
  }
  return plan;
}

bool ForcedPairsInRange(const Structure& a, const Structure& b,
                        const HomOptions& options) {
  for (const auto& [var, val] : options.forced) {
    if (var < 0 || var >= a.UniverseSize() || val < 0 ||
        val >= b.UniverseSize()) {
      return false;
    }
  }
  return true;
}

// Builds the indexes the subtree searches will share before the workers
// start, so the lazy build happens exactly once instead of the first
// tasks racing for the build lock.
void WarmIndexes(const Structure& a, const Structure& b,
                 const HomOptions& options) {
  if (!options.use_arc_consistency || !options.use_index) return;
  (void)a.Index();
  (void)b.Index();
}

}  // namespace

Outcome<std::optional<std::vector<int>>> ParallelFindHomomorphismBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const HomOptions& options) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  HomOptions serial = options;
  serial.num_threads = 0;
  if (options.num_threads <= 0 || !ForcedPairsInRange(a, b, options)) {
    return FindHomomorphismBudgeted(a, b, budget, serial);
  }
  const SplitPlan plan = PlanSplit(a, b, options, options.num_threads);
  if (plan.size() < 2) {
    return FindHomomorphismBudgeted(a, b, budget, serial);
  }
  if (!budget.Checkpoint()) return Result::StoppedShort(budget.Report());
  WarmIndexes(a, b, serial);

  const int num_tasks = static_cast<int>(plan.size());
  struct TaskState {
    bool completed = false;
    std::optional<std::vector<int>> witness;
    StopReason stop = StopReason::kNone;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));
  std::mutex state_mu;
  int best_witness = num_tasks;  // smallest task index with a witness

  ParallelRegion region(budget, num_tasks);
  ThreadPool pool(std::min(options.num_threads, num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    pool.Submit(region.GuardedTask([&, i] {
      Budget worker = region.WorkerBudget(i);
      HomOptions task_options = serial;
      task_options.forced.insert(task_options.forced.end(),
                                 plan[static_cast<size_t>(i)].begin(),
                                 plan[static_cast<size_t>(i)].end());
      auto out = FindHomomorphismBudgeted(a, b, worker, task_options);
      {
        std::lock_guard<std::mutex> lock(state_mu);
        TaskState& state = states[static_cast<size_t>(i)];
        if (out.IsDone()) {
          state.completed = true;
          state.witness = std::move(out).TakeValue();
          if (state.witness.has_value()) {
            if (!options.deterministic_witness) {
              // First finisher: no other subtree can change the decision.
              region.CancelAll();
            } else if (i < best_witness) {
              // Subtrees right of the best witness can no longer win;
              // those left of it may still produce an earlier one.
              best_witness = i;
              region.CancelFrom(best_witness + 1);
            }
          }
        } else {
          state.stop = out.Report().reason;
        }
      }
      region.TaskDone();
    }));
  }
  const bool external_cancel = region.Join(pool);

  for (TaskState& state : states) {
    if (state.witness.has_value()) {
      HOMPRES_CHECK(VerifyHomomorphism(a, b, *state.witness));
      return Result::Done(std::move(state.witness), budget.Report());
    }
  }
  WorkerStopScan scan;
  for (const TaskState& state : states) {
    scan.Observe(state.completed, state.stop);
  }
  if (!scan.AnyIncomplete()) {
    return Result::Done(std::nullopt, budget.Report());
  }
  return Result::StoppedShort(scan.StoppedReport(budget, external_cancel));
}

std::optional<std::vector<int>> ParallelFindHomomorphism(
    const Structure& a, const Structure& b, const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return ParallelFindHomomorphismBudgeted(a, b, unlimited, options).Value();
}

Outcome<bool> ParallelHasHomomorphismBudgeted(const Structure& a,
                                              const Structure& b,
                                              Budget& budget,
                                              const HomOptions& options) {
  auto found = ParallelFindHomomorphismBudgeted(a, b, budget, options);
  if (!found.IsDone()) return Outcome<bool>::StoppedShort(found.Report());
  return Outcome<bool>::Done(found.Value().has_value(), found.Report());
}

Outcome<uint64_t> ParallelCountHomomorphismsBudgeted(
    const Structure& a, const Structure& b, Budget& budget, uint64_t limit,
    const HomOptions& options) {
  using Result = Outcome<uint64_t>;
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  HomOptions serial = options;
  serial.num_threads = 0;
  if (options.num_threads <= 0 || !ForcedPairsInRange(a, b, options)) {
    return CountHomomorphismsBudgeted(a, b, budget, limit, serial);
  }
  const SplitPlan plan = PlanSplit(a, b, options, options.num_threads);
  if (plan.size() < 2) {
    return CountHomomorphismsBudgeted(a, b, budget, limit, serial);
  }
  if (!budget.Checkpoint()) return Result::StoppedShort(budget.Report());
  WarmIndexes(a, b, serial);

  const int num_tasks = static_cast<int>(plan.size());
  std::atomic<uint64_t> found{0};
  struct TaskState {
    bool completed = false;
    StopReason stop = StopReason::kNone;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));

  ParallelRegion region(budget, num_tasks);
  ThreadPool pool(std::min(options.num_threads, num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    pool.Submit(region.GuardedTask([&, i] {
      Budget worker = region.WorkerBudget(i);
      HomOptions task_options = serial;
      task_options.forced.insert(task_options.forced.end(),
                                 plan[static_cast<size_t>(i)].begin(),
                                 plan[static_cast<size_t>(i)].end());
      auto out = EnumerateHomomorphismsBudgeted(
          a, b, worker,
          [&](const std::vector<int>&) {
            const uint64_t now =
                found.fetch_add(1, std::memory_order_relaxed) + 1;
            if (limit != 0 && now >= limit) {
              // The answer is `limit`; stop every subtree.
              region.CancelAll();
              return false;
            }
            return true;
          },
          task_options);
      // Done(false) means the limit callback stopped the enumeration,
      // which only happens once the global count reached the limit — a
      // completed outcome for this driver. The state is task-exclusive:
      // TaskDone/Join publish it to the joining thread.
      TaskState& state = states[static_cast<size_t>(i)];
      if (out.IsDone()) {
        state.completed = true;
      } else {
        state.stop = out.Report().reason;
      }
      region.TaskDone();
    }));
  }
  const bool external_cancel = region.Join(pool);

  const uint64_t total = found.load(std::memory_order_relaxed);
  if (limit != 0 && total >= limit) {
    return Result::Done(limit, budget.Report());
  }
  WorkerStopScan scan;
  for (const TaskState& state : states) {
    scan.Observe(state.completed, state.stop);
  }
  if (!scan.AnyIncomplete()) return Result::Done(total, budget.Report());
  return Result::StoppedShort(scan.StoppedReport(budget, external_cancel));
}

uint64_t ParallelCountHomomorphisms(const Structure& a, const Structure& b,
                                    uint64_t limit,
                                    const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return ParallelCountHomomorphismsBudgeted(a, b, unlimited, limit, options)
      .Value();
}

}  // namespace hompres
