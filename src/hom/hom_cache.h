// A bounded, mutex-sharded LRU cache of homomorphism results.
//
// The preservation pipeline, core computation, and UCQ evaluation issue
// thousands of near-identical homomorphism probes: minimal-model checks
// re-evaluate the same quotient images, the core loop's final IsCore pass
// repeats every retract probe of the last iteration, and the exhaustive
// verification scan asks each UCQ disjunct about structures it has
// already seen. This cache memoizes the *answers* (has-hom / count) —
// never witnesses — keyed by the 64-bit value fingerprints of the two
// structures (Structure::Fingerprint) plus a digest of the
// answer-relevant options (surjective, forced pairs, count limit).
//
// Soundness: a fingerprint is a pure function of a structure's value and
// is invalidated by the same mutations that invalidate the relation
// index, so a stale entry can only be read through a 64-bit collision
// (probability ~2^-64 per distinct pair). Engine-selection options
// (use_arc_consistency, use_index, num_threads, factorize) are *excluded*
// from the key: the engines are bit-identical on has/count by contract,
// so they share entries. Only completed (Done) results are ever stored —
// an exhausted search caches nothing.
//
// Caching is opt-in per call site (HomOptions::use_cache, default off):
// the differential test harnesses compare engines against each other and
// must not let one engine's memoized answer mask another's bug.
//
// Concurrency: the table is split into 16 shards, each a small
// independently-locked LRU list, so parallel pipeline workers do not
// serialize on one mutex. Capacity is bounded (kShardCapacity entries per
// shard); eviction is least-recently-used per shard.

#ifndef HOMPRES_HOM_HOM_CACHE_H_
#define HOMPRES_HOM_HOM_CACHE_H_

#include <cstdint>
#include <optional>

namespace hompres {

struct HomCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  // Injected/real shard failures: lookups reported failed, insertions
  // skipped, shards dropped by EvictShardFor.
  uint64_t failed_lookups = 0;
  uint64_t failed_insertions = 0;
  uint64_t shard_evictions = 0;
};

class HomCache {
 public:
  // What question the cached value answers.
  enum class Kind : uint8_t {
    kHas = 0,    // value: 0 / 1
    kCount = 1,  // value: CountHomomorphisms result under the keyed limit
  };

  // The process-wide cache used by the solver entry points.
  static HomCache& Global();

  // Looks up (source_fp, target_fp, options_digest, kind) and refreshes
  // its LRU position. nullopt = miss. A shard failure (the
  // "hom_cache/lookup" failpoint; a real store would report corruption
  // here) also returns nullopt and sets *failed when non-null, so the
  // caller can distinguish "not cached" from "cache unusable" and evict
  // the shard.
  std::optional<uint64_t> Lookup(uint64_t source_fp, uint64_t target_fp,
                                 uint64_t options_digest, Kind kind,
                                 bool* failed = nullptr);

  // Inserts or refreshes an entry, evicting the shard's LRU tail when
  // full. Returns false when the store was skipped (the
  // "hom_cache/shard_insert" failpoint): the answer is simply not
  // memoized.
  bool Insert(uint64_t source_fp, uint64_t target_fp,
              uint64_t options_digest, Kind kind, uint64_t value);

  // Drops every entry of the shard that would hold (source_fp,
  // target_fp): the degradation ladder's response to a failed lookup
  // (a shard that cannot be read is discarded wholesale rather than
  // trusted).
  void EvictShardFor(uint64_t source_fp, uint64_t target_fp);

  // Drops every entry (tests use this to isolate trials).
  void Clear();

  HomCacheStats Stats() const;

  HomCache();
  ~HomCache();
  HomCache(const HomCache&) = delete;
  HomCache& operator=(const HomCache&) = delete;

 private:
  struct Shard;
  static constexpr int kNumShards = 16;
  static constexpr int kShardCapacity = 1024;

  Shard* shards_;  // kNumShards of them
};

}  // namespace hompres

#endif  // HOMPRES_HOM_HOM_CACHE_H_
