// Cores of finite structures (Section 6.2).
//
// A substructure B of A is a core of A if there is a homomorphism A -> B
// but none to any proper substructure of B. Every finite structure has a
// unique core up to isomorphism, and A is homomorphically equivalent to
// core(A). Substructures here follow the paper: they may drop tuples as
// well as elements, so the computation reduces through both kinds of
// one-step removals (the maximal proper substructures).

#ifndef HOMPRES_HOM_CORE_H_
#define HOMPRES_HOM_CORE_H_

#include "base/budget.h"
#include "base/outcome.h"
#include "structure/structure.h"

namespace hompres {

// The core of `a`, computed by greedy one-step reduction: while some
// "remove one element" or "remove one tuple" substructure admits a
// homomorphism from the current structure, descend into it. The result is
// hom-equivalent to `a` and is a core. Exponential worst case (each step
// is a homomorphism search); intended for the modest structures the paper
// discusses.
//
// With num_threads > 0 the retraction searches of each reduction step fan
// out over a work-stealing pool (one task per candidate removal). The
// reduction still descends into the first candidate (in the serial scan
// order) that admits a retraction, so the result is the same structure
// the serial computation produces, for any thread count.
Structure ComputeCore(const Structure& a, int num_threads = 0);

// Budgeted core computation; the budget is shared across all inner
// homomorphism searches. Done(core) is a verified core; Exhausted /
// Cancelled mean the reduction stopped short and no intermediate result
// is claimed (a partial retract is not hom-distinguishable from the
// input, but it is not known to be the core either).
Outcome<Structure> ComputeCoreBudgeted(const Structure& a, Budget& budget,
                                       int num_threads = 0);

// True iff `a` is its own core: no homomorphism from `a` into any proper
// substructure. Equivalently (by the maximal-substructure argument), no
// homomorphism into any one-step removal.
bool IsCore(const Structure& a, int num_threads = 0);

Outcome<bool> IsCoreBudgeted(const Structure& a, Budget& budget,
                             int num_threads = 0);

}  // namespace hompres

#endif  // HOMPRES_HOM_CORE_H_
