// The serial homomorphism search kernel, stripped of orchestration.
//
// Everything above this line — caching, Gaifman-component factorization,
// parallel subtree splitting, result-shape mapping — lives in the engine
// layer (engine/engine.h). What remains here is the innermost loop: one
// backtracking search over candidate maps a -> b, with optional AC-3
// bitset propagation and index-narrowed scans, emitting each total
// homomorphism it finds.
//
// Budget contract: the kernel charges exactly one Budget::Checkpoint()
// per search node and stops (without emitting further) when the budget
// runs out. A forced pair naming an element outside either universe is a
// certain "no": the kernel returns immediately, charging nothing.
//
// The emit callback returns whether to continue the enumeration. It is
// invoked on the kernel's internal assignment buffer; copy it to keep it.

#ifndef HOMPRES_HOM_KERNEL_H_
#define HOMPRES_HOM_KERNEL_H_

#include <functional>
#include <utility>
#include <vector>

#include "base/budget.h"
#include "structure/structure.h"

namespace hompres {

// The subset of the configuration the serial kernel actually reads.
struct KernelOptions {
  bool surjective = false;
  std::vector<std::pair<int, int>> forced;
  bool use_arc_consistency = true;
  bool use_index = true;
};

// Runs the serial search, emitting every homomorphism until `emit`
// returns false or the budget stops. Inspect `budget` afterwards to
// distinguish exhaustion from a completed enumeration.
void RunSerialHomKernel(const Structure& a, const Structure& b,
                        const KernelOptions& options, Budget& budget,
                        const std::function<bool(const std::vector<int>&)>& emit);

}  // namespace hompres

#endif  // HOMPRES_HOM_KERNEL_H_
