#include "hom/homomorphism.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <utility>

#include "base/bitset64.h"
#include "base/check.h"
#include "base/failpoint.h"
#include "base/row_pool.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/problem.h"
#include "hom/kernel.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// One table constraint: the A-tuple `pattern` (over variables) must map
// into the tuple list of relation `rel` of B.
struct TupleConstraint {
  int rel;
  Tuple pattern;
};

// Reusable per-thread scratch of the packed solver. Domains live in flat
// row pools: at search depth l, level_words[l] holds n rows of `stride`
// uint64_t words (one packed candidate set per variable) and
// level_sizes[l] the matching popcounts, so "copy all domains for the
// next search node" is one contiguous memcpy instead of n vector<bool>
// copies. The pools are 64-byte aligned and the stride is padded
// (bitset64::PaddedWordsFor) so wide instances run full SIMD lanes with
// no ragged tail; the padding words start zero and every kernel keeps
// them zero. The pool grows to the largest instance a thread has seen
// and is reused across searches (leased, so nested searches on the same
// thread — e.g. one started from an enumeration callback — get their
// own).
struct SolverWorkspace {
  std::vector<AlignedWordPool> level_words;
  std::vector<std::vector<int>> level_sizes;
  AlignedWordPool supported;  // Propagate scratch: arity x stride rows
  AlignedWordPool covered;    // surjectivity scratch
  AlignedWordPool reachable;  // surjectivity scratch
  AlignedWordPool full_row;   // all m bits set
  AlignedWordPool adjacency;  // bitwise-AC value rows (see BuildAdjacency)
  std::vector<int> assignment;
};

std::vector<std::unique_ptr<SolverWorkspace>>& WorkspacePool() {
  thread_local std::vector<std::unique_ptr<SolverWorkspace>> pool;
  return pool;
}

// Checks a workspace out of the thread's pool for the lifetime of one
// HomSearch and returns it on destruction.
class WorkspaceLease {
 public:
  WorkspaceLease() {
    auto& pool = WorkspacePool();
    if (pool.empty()) {
      ws_ = std::make_unique<SolverWorkspace>();
    } else {
      ws_ = std::move(pool.back());
      pool.pop_back();
    }
  }
  ~WorkspaceLease() { WorkspacePool().push_back(std::move(ws_)); }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  SolverWorkspace& Get() { return *ws_; }

 private:
  std::unique_ptr<SolverWorkspace> ws_;
};

class HomSearch {
 public:
  HomSearch(const Structure& a, const Structure& b,
            const KernelOptions& options, Budget& budget)
      : a_(a), b_(b), options_(options), budget_(budget), ws_(lease_.Get()) {
    size_t max_arity = 0;
    for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
      for (const Tuple& t : a.Tuples(rel)) {
        constraints_.push_back(TupleConstraint{rel, t});
        max_arity = std::max(max_arity, t.size());
      }
    }
    if (options_.use_arc_consistency && options_.use_index &&
        !constraints_.empty()) {
      // A failed index build (allocation failure or injected fault)
      // degrades to pure-scan propagation: same answers, more tuples
      // visited per revision.
      index_ = b.TryIndex();
    }
    n_ = a.UniverseSize();
    m_ = b.UniverseSize();
    stride_ = bitset64::PaddedWordsFor(m_);
    max_arity_ = static_cast<int>(max_arity);
    // Var -> constraints mentioning it (each constraint once), for the
    // propagation worklist.
    constraints_of_var_.assign(static_cast<size_t>(n_), {});
    for (size_t ci = 0; ci < constraints_.size(); ++ci) {
      const Tuple& pattern = constraints_[ci].pattern;
      for (size_t i = 0; i < pattern.size(); ++i) {
        bool dup = false;
        for (size_t j = 0; j < i; ++j) dup |= pattern[j] == pattern[i];
        if (!dup) {
          constraints_of_var_[static_cast<size_t>(pattern[i])].push_back(
              static_cast<int>(ci));
        }
      }
    }
  }

  // Runs the search; invokes `emit` for every homomorphism found. `emit`
  // returns false to stop the enumeration. After Run, the caller
  // distinguishes "space exhausted" from "budget exhausted" via
  // budget_.Stopped().
  void Run(const std::function<bool(const std::vector<int>&)>& emit) {
    // A pre-assignment referencing an element outside either universe can
    // be satisfied by no map: report "no homomorphism" instead of
    // aborting (and never index past the domain rows).
    for (const auto& [var, val] : options_.forced) {
      if (var < 0 || var >= n_ || val < 0 || val >= m_) return;
    }
    if (n_ == 0) {
      // The empty map is the unique homomorphism; surjectivity requires an
      // empty target.
      if (!options_.surjective || m_ == 0) emit(std::vector<int>{});
      return;
    }
    if (m_ == 0) return;  // nonempty universe cannot map anywhere

    // Size the workspace for this instance. The outer level vectors are
    // sized once up front: Solve holds references into them across
    // recursive calls, so they must never reallocate mid-search.
    if (static_cast<int>(ws_.level_words.size()) < n_ + 1) {
      ws_.level_words.resize(static_cast<size_t>(n_ + 1));
      ws_.level_sizes.resize(static_cast<size_t>(n_ + 1));
    }
    ws_.supported.Resize(static_cast<size_t>(max_arity_) *
                         static_cast<size_t>(stride_));
    ws_.covered.Resize(static_cast<size_t>(stride_));
    ws_.reachable.Resize(static_cast<size_t>(stride_));
    ws_.full_row.Resize(static_cast<size_t>(stride_));
    bitset64::SetFirstN(ws_.full_row.data(), stride_, m_);
    BuildAdjacency();

    AlignedWordPool& words = LevelWords(0);
    std::vector<int>& sizes = LevelSizes(0);
    for (int v = 0; v < n_; ++v) {
      std::memcpy(Row(words, v), ws_.full_row.data(), RowBytes());
      sizes[static_cast<size_t>(v)] = m_;
    }
    for (const auto& [var, val] : options_.forced) {
      uint64_t* row = Row(words, var);
      const bool allowed = bitset64::Test(row, val);
      bitset64::ClearAll(row, stride_);
      if (!allowed) return;  // conflicting pre-assignments empty the domain
      bitset64::Set(row, val);
      sizes[static_cast<size_t>(var)] = 1;
    }
    if (options_.use_arc_consistency && !Propagate(words, sizes)) return;
    ws_.assignment.assign(static_cast<size_t>(n_), -1);
    stopped_ = false;
    Solve(0, words, sizes, emit);
  }

 private:
  size_t RowBytes() const {
    return static_cast<size_t>(stride_) * sizeof(uint64_t);
  }

  uint64_t* Row(AlignedWordPool& words, int var) const {
    return words.data() + static_cast<size_t>(var) * static_cast<size_t>(stride_);
  }
  const uint64_t* Row(const AlignedWordPool& words, int var) const {
    return words.data() + static_cast<size_t>(var) * static_cast<size_t>(stride_);
  }

  AlignedWordPool& LevelWords(int level) {
    AlignedWordPool& w = ws_.level_words[static_cast<size_t>(level)];
    const size_t need = static_cast<size_t>(n_) * static_cast<size_t>(stride_);
    // Resize zeroes the pool; skip it when the size already matches (the
    // rows get memcpy-overwritten before any read).
    if (w.size() != need) w.Resize(need);
    return w;
  }
  std::vector<int>& LevelSizes(int level) {
    std::vector<int>& s = ws_.level_sizes[static_cast<size_t>(level)];
    s.resize(static_cast<size_t>(n_));
    return s;
  }

  // Bitwise-AC adjacency rows for the binary constraints (the dominant
  // case: every graph query). For a binary relation R of B the pool holds
  // 2m packed rows of `stride_` words:
  //
  //   row(base + v)      = { u : (u, v) in R }   (support for position 0)
  //   row(base + m + u)  = { v : (u, v) in R }   (support for position 1)
  //
  // A revision of a binary constraint with distinct variables then
  // computes each side's support set as a union of the other side's
  // domain rows — whole-row kernel work proportional to |domain| * stride
  // instead of a scan over all of R's tuples. The union over dom(var1) of
  // { u : (u, v) in R } is exactly { u : exists v in dom(var1), (u, v) in
  // R }; intersecting dom(var0) with it equals intersecting with the
  // tuple scan's marked set (the scan's extra dom(var0) membership test
  // is absorbed by the intersection), so the propagation fixpoint — and
  // every answer derived from it — is bit-identical to the scan path.
  //
  // The rows are part of the indexed kernel (use_index): the pure-scan
  // ablation keeps measuring genuine tuple scans. Memory is
  // 2m * stride words per binary relation with at least one
  // distinct-variable constraint; relations without one never allocate.
  void BuildAdjacency() {
    const int num_rels = b_.GetVocabulary().NumRelations();
    adjacency_base_.assign(static_cast<size_t>(num_rels), -1);
    if (index_ == nullptr || !options_.use_arc_consistency) return;
    size_t rows = 0;
    for (const TupleConstraint& c : constraints_) {
      if (c.pattern.size() != 2 || c.pattern[0] == c.pattern[1]) continue;
      if (adjacency_base_[static_cast<size_t>(c.rel)] >= 0) continue;
      adjacency_base_[static_cast<size_t>(c.rel)] =
          static_cast<int64_t>(rows);
      rows += 2 * static_cast<size_t>(m_);
    }
    if (rows == 0) return;
    ws_.adjacency.Resize(rows * static_cast<size_t>(stride_));  // zeroed
    for (int rel = 0; rel < num_rels; ++rel) {
      const int64_t base = adjacency_base_[static_cast<size_t>(rel)];
      if (base < 0) continue;
      for (const Tuple& t : b_.Tuples(rel)) {
        bitset64::Set(AdjacencyRow(base, t[1]), t[0]);
        bitset64::Set(AdjacencyRow(base + m_, t[0]), t[1]);
      }
    }
  }

  uint64_t* AdjacencyRow(int64_t index) {
    return ws_.adjacency.data() +
           static_cast<size_t>(index) * static_cast<size_t>(stride_);
  }
  uint64_t* AdjacencyRow(int64_t base, int value) {
    return AdjacencyRow(base + value);
  }

  // Generalized arc consistency: drop unsupported values until fixpoint.
  // Returns false if some domain empties.
  //
  // Worklist discipline: a constraint is (re)queued exactly when one of
  // its variables' domains shrinks; `seed_var >= 0` starts from only the
  // constraints mentioning that variable (Solve narrows one variable per
  // level, so everything else is already at fixpoint from the parent
  // level), `seed_var < 0` starts from every constraint. The revision
  // operators are monotone and reductive, so chaotic iteration converges
  // to the same greatest fixpoint in any order — the final domains, and
  // every answer derived from them, match the round-robin schedule bit
  // for bit, including the empty-domain (infeasible) verdict.
  //
  // Binary constraints with distinct variables take the bitwise path
  // (BuildAdjacency above) when the adjacency rows exist. Otherwise, with
  // the index enabled, a constraint whose pattern has a singleton-domain
  // (assigned) position only scans the inverted list of that position's
  // value — the shortest such list if several positions are assigned.
  // Every skipped tuple disagrees with a singleton domain, so Compatible
  // would have rejected it: the support sets, and hence the propagation
  // fixpoint, are bit-identical to the full scan on every path.
  bool Propagate(AlignedWordPool& words, std::vector<int>& sizes,
                 int seed_var = -1) {
    uint64_t* supported = ws_.supported.data();
    const int num_constraints = static_cast<int>(constraints_.size());
    ac_queued_.assign(static_cast<size_t>(num_constraints), 0);
    ac_queue_.clear();
    if (seed_var >= 0) {
      EnqueueConstraintsOf(seed_var);
    } else {
      for (int ci = num_constraints - 1; ci >= 0; --ci) {
        ac_queued_[static_cast<size_t>(ci)] = 1;
        ac_queue_.push_back(ci);
      }
    }
    while (!ac_queue_.empty()) {
      const int ci = ac_queue_.back();
      ac_queue_.pop_back();
      // Clear before revising: a revision that shrinks one of its own
      // variables must requeue itself (its other support sets were
      // computed from the pre-shrink domain).
      ac_queued_[static_cast<size_t>(ci)] = 0;
      const TupleConstraint& c = constraints_[static_cast<size_t>(ci)];
      // For each position, collect the values that appear in some
      // compatible B-tuple.
      const int arity = static_cast<int>(c.pattern.size());
      if (arity == 2 && c.pattern[0] != c.pattern[1] &&
          adjacency_base_[static_cast<size_t>(c.rel)] >= 0) {
        if (!ReviseBinaryBitwise(c, words, sizes)) return false;
        continue;
      }
      bitset64::ClearAll(supported, arity * stride_);
      const std::vector<Tuple>& tuples = b_.Tuples(c.rel);
      std::span<const int> narrowed;
      bool use_narrowed = false;
      if (index_ != nullptr) {
        size_t best = tuples.size();
        for (int i = 0; i < arity; ++i) {
          const int var = c.pattern[static_cast<size_t>(i)];
          if (sizes[static_cast<size_t>(var)] != 1) continue;
          const int only = bitset64::FindFirst(Row(words, var), stride_);
          const auto ids = index_->TuplesAt(c.rel, i, only);
          if (ids.size() <= best) {
            best = ids.size();
            narrowed = ids;
            use_narrowed = true;
          }
        }
      }
      const auto mark = [&](const Tuple& s) {
        if (!Compatible(c.pattern, s, words)) return;
        for (int i = 0; i < arity; ++i) {
          bitset64::Set(supported + i * stride_,
                        s[static_cast<size_t>(i)]);
        }
      };
      if (use_narrowed) {
        for (int id : narrowed) mark(tuples[static_cast<size_t>(id)]);
      } else {
        for (const Tuple& s : tuples) mark(s);
      }
      for (int i = 0; i < arity; ++i) {
        const int var = c.pattern[static_cast<size_t>(i)];
        uint64_t* row = Row(words, var);
        if (bitset64::IntersectInPlace(row, supported + i * stride_,
                                       stride_)) {
          sizes[static_cast<size_t>(var)] =
              bitset64::Popcount(row, stride_);
          if (sizes[static_cast<size_t>(var)] == 0) return false;
          EnqueueConstraintsOf(var);
        }
      }
    }
    return true;
  }

  void EnqueueConstraintsOf(int var) {
    for (int ci : constraints_of_var_[static_cast<size_t>(var)]) {
      if (!ac_queued_[static_cast<size_t>(ci)]) {
        ac_queued_[static_cast<size_t>(ci)] = 1;
        ac_queue_.push_back(ci);
      }
    }
  }

  // One bitwise revision of a binary distinct-variable constraint: each
  // side's support set is the union of the adjacency rows selected by the
  // other side's domain, then intersected into the domain. Equal to the
  // tuple-scan revision bit for bit (see BuildAdjacency), but all
  // whole-row kernel work — the unions and intersections vectorize.
  bool ReviseBinaryBitwise(const TupleConstraint& c, AlignedWordPool& words,
                           std::vector<int>& sizes) {
    const int64_t base = adjacency_base_[static_cast<size_t>(c.rel)];
    uint64_t* supported = ws_.supported.data();
    for (int i = 0; i < 2; ++i) {
      // Support for position i unions the rows indexed by the values
      // still in the *other* position's domain. The first row is a copy
      // (saves the clear pass; singleton domains — the common case during
      // search — finish in one row op).
      const int other = c.pattern[static_cast<size_t>(1 - i)];
      const int64_t dir_base = i == 0 ? base : base + m_;
      uint64_t* sup = supported + i * stride_;
      const uint64_t* other_row = Row(words, other);
      int v = bitset64::FindFirst(other_row, stride_);
      if (v < 0) {  // unreachable: empty domains abort the propagation
        bitset64::ClearAll(sup, stride_);
        continue;
      }
      std::memcpy(sup, AdjacencyRow(dir_base, v), RowBytes());
      for (v = bitset64::FindNext(other_row, stride_, v); v >= 0;
           v = bitset64::FindNext(other_row, stride_, v)) {
        bitset64::UnionInPlace(sup, AdjacencyRow(dir_base, v), stride_);
      }
    }
    for (int i = 0; i < 2; ++i) {
      const int var = c.pattern[static_cast<size_t>(i)];
      uint64_t* row = Row(words, var);
      if (bitset64::IntersectInPlace(row, supported + i * stride_,
                                     stride_)) {
        sizes[static_cast<size_t>(var)] = bitset64::Popcount(row, stride_);
        if (sizes[static_cast<size_t>(var)] == 0) return false;
        EnqueueConstraintsOf(var);
      }
    }
    return true;
  }

  // Is B-tuple s compatible with the pattern under current domains
  // (including repeated-variable consistency)?
  bool Compatible(const Tuple& pattern, const Tuple& s,
                  const AlignedWordPool& words) const {
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (!bitset64::Test(Row(words, pattern[i]),
                          s[i])) {
        return false;
      }
      for (size_t j = i + 1; j < pattern.size(); ++j) {
        if (pattern[i] == pattern[j] && s[i] != s[j]) return false;
      }
    }
    return true;
  }

  // Check constraints whose variables are all assigned.
  bool AssignedConsistent() const {
    for (const TupleConstraint& c : constraints_) {
      Tuple image;
      image.reserve(c.pattern.size());
      bool full = true;
      for (int var : c.pattern) {
        const int val = ws_.assignment[static_cast<size_t>(var)];
        if (val == -1) {
          full = false;
          break;
        }
        image.push_back(val);
      }
      if (full && !b_.HasTuple(c.rel, image)) return false;
    }
    return true;
  }

  // Surjectivity pruning: every target value must be assigned or still
  // available in some unassigned domain, and the uncovered values must
  // fit in the unassigned variables.
  bool SurjectivityPossible(const AlignedWordPool& words) {
    uint64_t* covered = ws_.covered.data();
    uint64_t* reach = ws_.reachable.data();
    bitset64::ClearAll(covered, stride_);
    bitset64::ClearAll(reach, stride_);
    int unassigned = 0;
    for (int var = 0; var < n_; ++var) {
      const int val = ws_.assignment[static_cast<size_t>(var)];
      if (val != -1) {
        bitset64::Set(covered, val);
      } else {
        ++unassigned;
        bitset64::UnionInPlace(reach, Row(words, var), stride_);
      }
    }
    int missing = 0;
    for (int w = 0; w < stride_; ++w) {
      const uint64_t uncovered = ws_.full_row.data()[w] & ~covered[w];
      if ((uncovered & ~reach[w]) != 0) return false;  // unreachable value
      missing += std::popcount(uncovered);
    }
    return missing <= unassigned;
  }

  void Solve(int level, AlignedWordPool& words, std::vector<int>& sizes,
             const std::function<bool(const std::vector<int>&)>& emit) {
    if (stopped_) return;
    if (!budget_.Checkpoint()) {
      stopped_ = true;
      return;
    }

    // Pick the unassigned variable with the smallest domain.
    int var = -1;
    int best_size = -1;
    for (int v = 0; v < n_; ++v) {
      if (ws_.assignment[static_cast<size_t>(v)] != -1) continue;
      const int size = sizes[static_cast<size_t>(v)];
      if (var == -1 || size < best_size) {
        var = v;
        best_size = size;
      }
    }
    if (var == -1) {
      // Complete assignment.
      if (options_.surjective) {
        bitset64::ClearAll(ws_.covered.data(), stride_);
        for (int val : ws_.assignment) bitset64::Set(ws_.covered.data(), val);
        if (bitset64::Popcount(ws_.covered.data(), stride_) != m_) return;
      }
      if (!emit(ws_.assignment)) stopped_ = true;
      return;
    }

    // The next level's buffers are fixed for the whole value loop: each
    // candidate overwrites them with a flat copy of this level's domains.
    const uint64_t* row = Row(words, var);
    AlignedWordPool& next_words = LevelWords(level + 1);
    std::vector<int>& next_sizes = LevelSizes(level + 1);
    for (int val = bitset64::FindFirst(row, stride_); val >= 0;
         val = bitset64::FindNext(row, stride_, val)) {
      ws_.assignment[static_cast<size_t>(var)] = val;
      std::memcpy(next_words.data(), words.data(),
                  words.size() * sizeof(uint64_t));
      std::memcpy(next_sizes.data(), sizes.data(), sizes.size() * sizeof(int));
      uint64_t* next_row = Row(next_words, var);
      bitset64::ClearAll(next_row, stride_);
      bitset64::Set(next_row, val);
      next_sizes[static_cast<size_t>(var)] = 1;
      bool feasible = true;
      if (options_.use_arc_consistency) {
        // Only `var` changed relative to this level's propagated domains,
        // so the worklist starts from its constraints alone.
        feasible = Propagate(next_words, next_sizes, var);
      } else {
        feasible = AssignedConsistent();
      }
      if (feasible && options_.surjective) {
        feasible = SurjectivityPossible(next_words);
      }
      if (feasible) Solve(level + 1, next_words, next_sizes, emit);
      ws_.assignment[static_cast<size_t>(var)] = -1;
      if (stopped_) return;
    }
  }

  const Structure& a_;
  const Structure& b_;
  KernelOptions options_;
  Budget& budget_;
  const RelationIndex* index_ = nullptr;  // null = pure-scan propagation
  std::vector<TupleConstraint> constraints_;
  // Per-relation first row of the bitwise-AC adjacency pool; -1 when the
  // relation has no binary distinct-variable constraint (or no index).
  std::vector<int64_t> adjacency_base_;
  // Propagation worklist state (see Propagate).
  std::vector<std::vector<int>> constraints_of_var_;
  std::vector<int> ac_queue_;
  std::vector<char> ac_queued_;
  int n_ = 0;
  int m_ = 0;
  int stride_ = 0;  // words per packed domain row
  int max_arity_ = 0;
  bool stopped_ = false;
  WorkspaceLease lease_;  // declared before ws_: initialization order
  SolverWorkspace& ws_;
};

}  // namespace

void RunSerialHomKernel(
    const Structure& a, const Structure& b, const KernelOptions& options,
    Budget& budget,
    const std::function<bool(const std::vector<int>&)>& emit) {
  // An allocation failure while leasing or sizing the solver workspace
  // (real, or the injected "hom/workspace_alloc_hard" fault) is
  // unrecoverable at this level: contain it as a structured kMemory stop
  // so the caller sees an exhausted Outcome, never a crash. The
  // recoverable simulation — the AC workspace cannot grow, so the plan
  // falls back to the naive kernel — is the engine's
  // "hom/workspace_alloc" degradation rung.
  if (HOMPRES_FAILPOINT("hom/workspace_alloc_hard")) {
    budget.ForceStop(StopReason::kMemory);
    return;
  }
  try {
    HomSearch search(a, b, options, budget);
    search.Run(emit);
  } catch (const std::bad_alloc&) {
    budget.ForceStop(StopReason::kMemory);
  }
}

namespace {

// Legacy shim: plan in compatibility mode (incompatible options are
// silently normalized, exactly as the pre-engine entry points behaved)
// and hand the plan to the engine.
HomPlan CompatPlan(const HomProblem& problem, const HomOptions& options) {
  PlanResult planned =
      PlanHomQuery(problem, options.ToEngineConfig(), PlanMode::kCompat);
  HOMPRES_CHECK(planned.plan.has_value());
  return *std::move(planned.plan);
}

}  // namespace

Outcome<std::optional<std::vector<int>>> FindHomomorphismBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const HomOptions& options) {
  using Result = Outcome<std::optional<std::vector<int>>>;
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kFind;
  auto out = Engine::Execute(CompatPlan(problem, options), budget);
  if (!out.IsDone()) return Result::StoppedShort(out.Report());
  const BudgetReport report = out.Report();
  return Result::Done(std::move(out).TakeValue().witness, report);
}

std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return FindHomomorphismBudgeted(a, b, unlimited, options).Value();
}

bool HasHomomorphism(const Structure& a, const Structure& b,
                     const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return HasHomomorphismBudgeted(a, b, unlimited, options).Value();
}

Outcome<bool> HasHomomorphismBudgeted(const Structure& a, const Structure& b,
                                      Budget& budget,
                                      const HomOptions& options) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kHas;
  auto out = Engine::Execute(CompatPlan(problem, options), budget);
  if (!out.IsDone()) return Outcome<bool>::StoppedShort(out.Report());
  return Outcome<bool>::Done(out.Value().has, out.Report());
}

bool VerifyHomomorphism(const Structure& a, const Structure& b,
                        const std::vector<int>& h) {
  if (static_cast<int>(h.size()) != a.UniverseSize()) return false;
  for (int val : h) {
    if (val < 0 || val >= b.UniverseSize()) return false;
  }
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : a.Tuples(rel)) {
      Tuple image;
      image.reserve(t.size());
      for (int e : t) image.push_back(h[static_cast<size_t>(e)]);
      if (!b.HasTuple(rel, image)) return false;
    }
  }
  return true;
}

bool AreHomEquivalent(const Structure& a, const Structure& b) {
  return HasHomomorphism(a, b) && HasHomomorphism(b, a);
}

uint64_t CountHomomorphisms(const Structure& a, const Structure& b,
                            uint64_t limit, const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return CountHomomorphismsBudgeted(a, b, unlimited, limit, options).Value();
}

Outcome<uint64_t> CountHomomorphismsBudgeted(const Structure& a,
                                             const Structure& b,
                                             Budget& budget, uint64_t limit,
                                             const HomOptions& options) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kCount;
  problem.limit = limit;
  auto out = Engine::Execute(CompatPlan(problem, options), budget);
  if (!out.IsDone()) return Outcome<uint64_t>::StoppedShort(out.Report());
  return Outcome<uint64_t>::Done(out.Value().count, out.Report());
}

void EnumerateHomomorphisms(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& callback,
    const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  EnumerateHomomorphismsBudgeted(a, b, unlimited, callback, options);
}

Outcome<bool> EnumerateHomomorphismsBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const std::function<bool(const std::vector<int>&)>& callback,
    const HomOptions& options) {
  HomProblem problem;
  problem.source = &a;
  problem.target = &b;
  problem.mode = HomQueryMode::kEnumerate;
  problem.callback = callback;
  auto out = Engine::Execute(CompatPlan(problem, options), budget);
  if (!out.IsDone()) return Outcome<bool>::StoppedShort(out.Report());
  return Outcome<bool>::Done(out.Value().enumeration_completed, out.Report());
}

}  // namespace hompres
