#include "hom/homomorphism.h"

#include <algorithm>
#include <span>

#include "base/check.h"
#include "hom/parallel.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// One table constraint: the A-tuple `pattern` (over variables) must map
// into the tuple list of relation `rel` of B.
struct TupleConstraint {
  int rel;
  Tuple pattern;
};

// Domains as boolean membership plus a size counter.
struct Domain {
  std::vector<bool> allowed;
  int size = 0;

  void Remove(int v) {
    if (allowed[static_cast<size_t>(v)]) {
      allowed[static_cast<size_t>(v)] = false;
      --size;
    }
  }
};

class HomSearch {
 public:
  HomSearch(const Structure& a, const Structure& b, const HomOptions& options,
            Budget& budget)
      : a_(a), b_(b), options_(options), budget_(budget) {
    size_t max_arity = 0;
    for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
      for (const Tuple& t : a.Tuples(rel)) {
        constraints_.push_back(TupleConstraint{rel, t});
        max_arity = std::max(max_arity, t.size());
      }
    }
    if (options_.use_arc_consistency && options_.use_index &&
        !constraints_.empty()) {
      index_ = &b.Index();
    }
    // Scratch for Propagate, hoisted out of the fixpoint loop (one
    // allocation per search instead of one per constraint visit).
    supported_.assign(max_arity,
                      std::vector<bool>(static_cast<size_t>(b.UniverseSize()),
                                        false));
  }

  // Runs the search; invokes `emit` for every homomorphism found. `emit`
  // returns false to stop the enumeration. After Run, the caller
  // distinguishes "space exhausted" from "budget exhausted" via
  // budget_.Stopped().
  void Run(const std::function<bool(const std::vector<int>&)>& emit) {
    const int n = a_.UniverseSize();
    const int m = b_.UniverseSize();
    // A pre-assignment referencing an element outside either universe can
    // be satisfied by no map: report "no homomorphism" instead of
    // aborting (and never index past the domain vectors).
    for (const auto& [var, val] : options_.forced) {
      if (var < 0 || var >= n || val < 0 || val >= m) return;
    }
    if (n == 0) {
      // The empty map is the unique homomorphism; surjectivity requires an
      // empty target.
      if (!options_.surjective || m == 0) emit(std::vector<int>{});
      return;
    }
    if (m == 0) return;  // nonempty universe cannot map anywhere
    std::vector<Domain> domains(static_cast<size_t>(n));
    for (auto& d : domains) {
      d.allowed.assign(static_cast<size_t>(m), true);
      d.size = m;
    }
    for (const auto& [var, val] : options_.forced) {
      for (int v = 0; v < m; ++v) {
        if (v != val) domains[static_cast<size_t>(var)].Remove(v);
      }
      if (domains[static_cast<size_t>(var)].size == 0) return;
    }
    if (options_.use_arc_consistency && !Propagate(domains)) return;
    assignment_.assign(static_cast<size_t>(n), -1);
    stopped_ = false;
    Solve(domains, emit);
  }

 private:
  // The single value of a singleton domain.
  static int OnlyValue(const Domain& d) {
    for (size_t v = 0; v < d.allowed.size(); ++v) {
      if (d.allowed[v]) return static_cast<int>(v);
    }
    return -1;
  }

  // Generalized arc consistency: repeatedly drop unsupported values until
  // fixpoint. Returns false if some domain empties.
  //
  // With the index enabled, a constraint whose pattern has a
  // singleton-domain (assigned) position only scans the inverted list of
  // that position's value — the shortest such list if several positions
  // are assigned. Every skipped tuple disagrees with a singleton domain,
  // so Compatible would have rejected it: the support sets, and hence the
  // propagation fixpoint, are bit-identical to the full scan.
  bool Propagate(std::vector<Domain>& domains) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const TupleConstraint& c : constraints_) {
        // For each position, collect the values that appear in some
        // compatible B-tuple.
        const size_t arity = c.pattern.size();
        for (size_t i = 0; i < arity; ++i) {
          supported_[i].assign(static_cast<size_t>(b_.UniverseSize()), false);
        }
        const std::vector<Tuple>& tuples = b_.Tuples(c.rel);
        std::span<const int> narrowed;
        bool use_narrowed = false;
        if (index_ != nullptr) {
          size_t best = tuples.size();
          for (size_t i = 0; i < arity; ++i) {
            const Domain& d = domains[static_cast<size_t>(c.pattern[i])];
            if (d.size != 1) continue;
            const auto ids =
                index_->TuplesAt(c.rel, static_cast<int>(i), OnlyValue(d));
            if (ids.size() <= best) {
              best = ids.size();
              narrowed = ids;
              use_narrowed = true;
            }
          }
        }
        const auto mark = [&](const Tuple& s) {
          if (!Compatible(c.pattern, s, domains)) return;
          for (size_t i = 0; i < arity; ++i) {
            supported_[i][static_cast<size_t>(s[i])] = true;
          }
        };
        if (use_narrowed) {
          for (int id : narrowed) mark(tuples[static_cast<size_t>(id)]);
        } else {
          for (const Tuple& s : tuples) mark(s);
        }
        for (size_t i = 0; i < arity; ++i) {
          Domain& d = domains[static_cast<size_t>(c.pattern[i])];
          for (int v = 0; v < b_.UniverseSize(); ++v) {
            if (d.allowed[static_cast<size_t>(v)] &&
                !supported_[i][static_cast<size_t>(v)]) {
              d.Remove(v);
              changed = true;
            }
          }
          if (d.size == 0) return false;
        }
      }
    }
    return true;
  }

  // Is B-tuple s compatible with the pattern under current domains
  // (including repeated-variable consistency)?
  bool Compatible(const Tuple& pattern, const Tuple& s,
                  const std::vector<Domain>& domains) const {
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (!domains[static_cast<size_t>(pattern[i])]
               .allowed[static_cast<size_t>(s[i])]) {
        return false;
      }
      for (size_t j = i + 1; j < pattern.size(); ++j) {
        if (pattern[i] == pattern[j] && s[i] != s[j]) return false;
      }
    }
    return true;
  }

  // Check constraints whose variables are all assigned.
  bool AssignedConsistent() const {
    for (const TupleConstraint& c : constraints_) {
      Tuple image;
      image.reserve(c.pattern.size());
      bool full = true;
      for (int var : c.pattern) {
        const int val = assignment_[static_cast<size_t>(var)];
        if (val == -1) {
          full = false;
          break;
        }
        image.push_back(val);
      }
      if (full && !b_.HasTuple(c.rel, image)) return false;
    }
    return true;
  }

  // Surjectivity pruning: every target value must be assigned or still
  // available in some unassigned domain.
  bool SurjectivityPossible(const std::vector<Domain>& domains) const {
    const int m = b_.UniverseSize();
    std::vector<bool> covered(static_cast<size_t>(m), false);
    int unassigned = 0;
    for (int var = 0; var < a_.UniverseSize(); ++var) {
      const int val = assignment_[static_cast<size_t>(var)];
      if (val != -1) {
        covered[static_cast<size_t>(val)] = true;
      } else {
        ++unassigned;
      }
    }
    int missing = 0;
    for (int v = 0; v < m; ++v) {
      if (covered[static_cast<size_t>(v)]) continue;
      ++missing;
      bool reachable = false;
      for (int var = 0; var < a_.UniverseSize(); ++var) {
        if (assignment_[static_cast<size_t>(var)] == -1 &&
            domains[static_cast<size_t>(var)].allowed[static_cast<size_t>(v)]) {
          reachable = true;
          break;
        }
      }
      if (!reachable) return false;
    }
    return missing <= unassigned;
  }

  void Solve(const std::vector<Domain>& domains,
             const std::function<bool(const std::vector<int>&)>& emit) {
    if (stopped_) return;
    if (!budget_.Checkpoint()) {
      stopped_ = true;
      return;
    }

    // Pick the unassigned variable with the smallest domain.
    int var = -1;
    int best_size = -1;
    for (int v = 0; v < a_.UniverseSize(); ++v) {
      if (assignment_[static_cast<size_t>(v)] != -1) continue;
      const int size = domains[static_cast<size_t>(v)].size;
      if (var == -1 || size < best_size) {
        var = v;
        best_size = size;
      }
    }
    if (var == -1) {
      // Complete assignment.
      if (options_.surjective) {
        std::vector<bool> covered(static_cast<size_t>(b_.UniverseSize()),
                                  false);
        for (int val : assignment_) covered[static_cast<size_t>(val)] = true;
        for (bool c : covered) {
          if (!c) return;
        }
      }
      if (!emit(assignment_)) stopped_ = true;
      return;
    }

    for (int val = 0; val < b_.UniverseSize(); ++val) {
      if (!domains[static_cast<size_t>(var)].allowed[static_cast<size_t>(val)]) {
        continue;
      }
      assignment_[static_cast<size_t>(var)] = val;
      std::vector<Domain> next = domains;
      for (int other = 0; other < b_.UniverseSize(); ++other) {
        if (other != val) next[static_cast<size_t>(var)].Remove(other);
      }
      bool feasible = true;
      if (options_.use_arc_consistency) {
        feasible = Propagate(next);
      } else {
        feasible = AssignedConsistent();
      }
      if (feasible && options_.surjective) {
        feasible = SurjectivityPossible(next);
      }
      if (feasible) Solve(next, emit);
      assignment_[static_cast<size_t>(var)] = -1;
      if (stopped_) return;
    }
  }

  const Structure& a_;
  const Structure& b_;
  HomOptions options_;
  Budget& budget_;
  const RelationIndex* index_ = nullptr;  // null = pure-scan propagation
  std::vector<TupleConstraint> constraints_;
  std::vector<std::vector<bool>> supported_;  // Propagate scratch
  std::vector<int> assignment_;
  bool stopped_ = false;
};

}  // namespace

Outcome<std::optional<std::vector<int>>> FindHomomorphismBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const HomOptions& options) {
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  if (options.num_threads > 0) {
    return ParallelFindHomomorphismBudgeted(a, b, budget, options);
  }
  std::optional<std::vector<int>> result;
  HomSearch search(a, b, options, budget);
  search.Run([&](const std::vector<int>& h) {
    result = h;
    return false;  // stop at the first witness
  });
  if (result.has_value()) {
    HOMPRES_CHECK(VerifyHomomorphism(a, b, *result));
    // A witness is a witness even if the budget ran out as it was found.
    return Outcome<std::optional<std::vector<int>>>::Done(std::move(result),
                                                          budget.Report());
  }
  return Outcome<std::optional<std::vector<int>>>::Finish(budget,
                                                          std::nullopt);
}

std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return FindHomomorphismBudgeted(a, b, unlimited, options).Value();
}

bool HasHomomorphism(const Structure& a, const Structure& b) {
  return FindHomomorphism(a, b).has_value();
}

Outcome<bool> HasHomomorphismBudgeted(const Structure& a, const Structure& b,
                                      Budget& budget) {
  auto found = FindHomomorphismBudgeted(a, b, budget);
  if (!found.IsDone()) return Outcome<bool>::StoppedShort(found.Report());
  return Outcome<bool>::Done(found.Value().has_value(), found.Report());
}

bool VerifyHomomorphism(const Structure& a, const Structure& b,
                        const std::vector<int>& h) {
  if (static_cast<int>(h.size()) != a.UniverseSize()) return false;
  for (int val : h) {
    if (val < 0 || val >= b.UniverseSize()) return false;
  }
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : a.Tuples(rel)) {
      Tuple image;
      image.reserve(t.size());
      for (int e : t) image.push_back(h[static_cast<size_t>(e)]);
      if (!b.HasTuple(rel, image)) return false;
    }
  }
  return true;
}

bool AreHomEquivalent(const Structure& a, const Structure& b) {
  return HasHomomorphism(a, b) && HasHomomorphism(b, a);
}

uint64_t CountHomomorphisms(const Structure& a, const Structure& b,
                            uint64_t limit, const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return CountHomomorphismsBudgeted(a, b, unlimited, limit, options).Value();
}

Outcome<uint64_t> CountHomomorphismsBudgeted(const Structure& a,
                                             const Structure& b,
                                             Budget& budget, uint64_t limit,
                                             const HomOptions& options) {
  if (options.num_threads > 0) {
    return ParallelCountHomomorphismsBudgeted(a, b, budget, limit, options);
  }
  uint64_t count = 0;
  auto ran = EnumerateHomomorphismsBudgeted(
      a, b, budget,
      [&](const std::vector<int>&) {
        ++count;
        return limit == 0 || count < limit;
      },
      options);
  if (!ran.IsDone()) return Outcome<uint64_t>::StoppedShort(ran.Report());
  return Outcome<uint64_t>::Done(count, ran.Report());
}

void EnumerateHomomorphisms(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& callback,
    const HomOptions& options) {
  Budget unlimited = Budget::Unlimited();
  EnumerateHomomorphismsBudgeted(a, b, unlimited, callback, options);
}

Outcome<bool> EnumerateHomomorphismsBudgeted(
    const Structure& a, const Structure& b, Budget& budget,
    const std::function<bool(const std::vector<int>&)>& callback,
    const HomOptions& options) {
  HOMPRES_CHECK(a.GetVocabulary() == b.GetVocabulary());
  // Enumeration is always serial: the callback makes no thread-safety
  // promise.
  HomOptions serial = options;
  serial.num_threads = 0;
  bool callback_stopped = false;
  HomSearch search(a, b, serial, budget);
  search.Run([&](const std::vector<int>& h) {
    if (!callback(h)) {
      callback_stopped = true;
      return false;
    }
    return true;
  });
  if (callback_stopped) {
    return Outcome<bool>::Done(false, budget.Report());
  }
  return Outcome<bool>::Finish(budget, true);
}

}  // namespace hompres
