#include "hom/hom_cache.h"

#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "base/failpoint.h"
#include "base/hash.h"

namespace hompres {

namespace {

struct Key {
  uint64_t source_fp;
  uint64_t target_fp;
  uint64_t options_digest;
  uint8_t kind;

  friend bool operator==(const Key& a, const Key& b) {
    return a.source_fp == b.source_fp && a.target_fp == b.target_fp &&
           a.options_digest == b.options_digest && a.kind == b.kind;
  }
};

struct KeyHash {
  size_t operator()(const Key& k) const {
    uint64_t h = Mix64(k.source_fp);
    h = Mix64(h ^ k.target_fp);
    h = Mix64(h ^ k.options_digest);
    h = Mix64(h ^ k.kind);
    return static_cast<size_t>(h);
  }
};

}  // namespace

// One independently locked LRU table. `order` is most-recent-first; the
// map holds iterators into it so both lookup-refresh and tail eviction
// are O(1).
struct HomCache::Shard {
  std::mutex mu;
  std::list<std::pair<Key, uint64_t>> order;
  std::unordered_map<Key, std::list<std::pair<Key, uint64_t>>::iterator,
                     KeyHash>
      table;
  HomCacheStats stats;
};

namespace {

inline int ShardOf(uint64_t source_fp, uint64_t target_fp) {
  return static_cast<int>(Mix64(source_fp ^ (target_fp * 0x9E3779B97F4A7C15ULL)) &
                          15u);
}

}  // namespace

HomCache::HomCache() : shards_(new Shard[kNumShards]) {}

HomCache::~HomCache() { delete[] shards_; }

HomCache& HomCache::Global() {
  // Leaked intentionally: solver calls may run during static destruction
  // of test fixtures; a function-local leaked singleton has no
  // destruction-order hazard.
  static HomCache* cache = new HomCache();
  return *cache;
}

std::optional<uint64_t> HomCache::Lookup(uint64_t source_fp,
                                         uint64_t target_fp,
                                         uint64_t options_digest, Kind kind,
                                         bool* failed) {
  if (failed != nullptr) *failed = false;
  Shard& shard = shards_[ShardOf(source_fp, target_fp)];
  const Key key{source_fp, target_fp, options_digest,
                static_cast<uint8_t>(kind)};
  std::lock_guard<std::mutex> lock(shard.mu);
  if (HOMPRES_FAILPOINT("hom_cache/lookup")) {
    ++shard.stats.failed_lookups;
    if (failed != nullptr) *failed = true;
    return std::nullopt;
  }
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  ++shard.stats.hits;
  // Refresh: splice the entry to the front of the recency list.
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  return it->second->second;
}

bool HomCache::Insert(uint64_t source_fp, uint64_t target_fp,
                      uint64_t options_digest, Kind kind, uint64_t value) {
  Shard& shard = shards_[ShardOf(source_fp, target_fp)];
  const Key key{source_fp, target_fp, options_digest,
                static_cast<uint8_t>(kind)};
  std::lock_guard<std::mutex> lock(shard.mu);
  if (HOMPRES_FAILPOINT("hom_cache/shard_insert")) {
    ++shard.stats.failed_insertions;
    return false;
  }
  auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    it->second->second = value;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return true;
  }
  if (shard.table.size() >= static_cast<size_t>(kShardCapacity)) {
    shard.table.erase(shard.order.back().first);
    shard.order.pop_back();
    ++shard.stats.evictions;
  }
  shard.order.emplace_front(key, value);
  shard.table.emplace(key, shard.order.begin());
  ++shard.stats.insertions;
  return true;
}

void HomCache::EvictShardFor(uint64_t source_fp, uint64_t target_fp) {
  Shard& shard = shards_[ShardOf(source_fp, target_fp)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.order.clear();
  shard.table.clear();
  ++shard.stats.shard_evictions;
}

void HomCache::Clear() {
  for (int i = 0; i < kNumShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].order.clear();
    shards_[i].table.clear();
  }
}

HomCacheStats HomCache::Stats() const {
  HomCacheStats total;
  for (int i = 0; i < kNumShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total.hits += shards_[i].stats.hits;
    total.misses += shards_[i].stats.misses;
    total.insertions += shards_[i].stats.insertions;
    total.evictions += shards_[i].stats.evictions;
    total.failed_lookups += shards_[i].stats.failed_lookups;
    total.failed_insertions += shards_[i].stats.failed_insertions;
    total.shard_evictions += shards_[i].stats.shard_evictions;
  }
  return total;
}

}  // namespace hompres
