// The end-to-end homomorphism-preservation pipeline (the paper's
// concluding remark that its proofs are effective): given a first-order
// sentence preserved under homomorphisms on a class C, produce the
// equivalent existential-positive sentence by enumerating minimal models
// and taking the union of their canonical conjunctive queries.
//
// The paper's proofs yield a computable bound on the size of minimal
// models; the bound is astronomically large, so the pipeline takes an
// explicit search cap instead and reports what it verified. On top of
// the cap, every variant below is budget-aware: the search can be bounded
// in steps and wall-clock time, and PreservationPipelineWithRetry retries
// with geometrically escalating budgets, returning a best-effort report
// when even the final attempt is exhausted.

#ifndef HOMPRES_CORE_PRESERVATION_H_
#define HOMPRES_CORE_PRESERVATION_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "core/classes.h"
#include "core/minimal_models.h"
#include "cq/ucq.h"
#include "fo/formula.h"

namespace hompres {

struct PreservationResult {
  // The minimal models found within the search cap, up to isomorphism.
  std::vector<Structure> minimal_models = {};
  // Their union of canonical conjunctive queries (Theorem 3.1 direction
  // (1) => (2)), minimized.
  UnionOfCq equivalent_ucq = UnionOfCq({}, 0);
  // True iff q and the UCQ agreed on every structure in C up to the
  // verification cap.
  bool verified = false;
  // How far the search and verification went.
  int search_universe = 0;
  int verify_universe = 0;
};

// Runs the pipeline for an abstract Boolean query. `search_universe`
// bounds the minimal-model search; `verify_universe` bounds the
// exhaustive equivalence check (both exponential: keep <= 3-4 for binary
// vocabularies).
PreservationResult PreservationPipeline(const BooleanQuery& q,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe);

// Convenience overload: q given as a first-order sentence (evaluated
// naively). CHECK-fails if f is not a sentence.
PreservationResult PreservationPipeline(const FormulaPtr& sentence,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe);

// Budgeted pipeline. Done(result) iff both the minimal-model search and
// the verification scan ran to completion within the budget. On
// exhaustion, if `partial` is non-null it receives the minimal models
// confirmed before the stop (best-effort; `verified` cannot be claimed).
Outcome<PreservationResult> PreservationPipelineBudgeted(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe,
    Budget& budget, std::vector<Structure>* partial = nullptr);

// Retry policy for PreservationPipelineWithRetry: attempt i (0-based)
// runs with step limit initial_steps * escalation_factor^i and timeout
// initial_timeout * escalation_factor^i, for at most max_attempts
// attempts. A zero initial limit means "unlimited" for that dimension.
// (Executed through the general RetrySchedule of base/retry.h; this
// struct remains the pipeline's stable options surface.)
struct PreservationBudgetOptions {
  uint64_t initial_steps = 1u << 16;
  std::chrono::nanoseconds initial_timeout = std::chrono::milliseconds(250);
  int max_attempts = 3;
  uint64_t escalation_factor = 4;
  // Optional external cancellation, checked by every attempt.
  const std::atomic<bool>* cancel = nullptr;
};

// One attempt's record in the structured report.
struct PreservationAttempt {
  uint64_t max_steps = 0;  // 0 = unlimited
  std::chrono::nanoseconds timeout{0};  // 0 = unlimited
  BudgetReport report;  // how the attempt ended and what it used
  bool completed = false;
};

// The structured best-effort report of the retrying pipeline.
struct PreservationReport {
  // True iff some attempt completed; `result` is then its full answer.
  bool completed = false;
  // Completed answer, or the best-effort partial from the last attempt
  // (minimal models confirmed before exhaustion; verified == false).
  PreservationResult result;
  // One entry per attempt, in order.
  std::vector<PreservationAttempt> attempts;
};

// Runs the budgeted pipeline under the escalation schedule of `options`,
// stopping at the first attempt that completes (or on cancellation).
// Never hangs and never aborts: the caller always gets a report.
PreservationReport PreservationPipelineWithRetry(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe,
    const PreservationBudgetOptions& options = {});

}  // namespace hompres

#endif  // HOMPRES_CORE_PRESERVATION_H_
