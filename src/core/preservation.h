// The end-to-end homomorphism-preservation pipeline (the paper's
// concluding remark that its proofs are effective): given a first-order
// sentence preserved under homomorphisms on a class C, produce the
// equivalent existential-positive sentence by enumerating minimal models
// and taking the union of their canonical conjunctive queries.
//
// The paper's proofs yield a computable bound on the size of minimal
// models; the bound is astronomically large, so the pipeline takes an
// explicit search cap instead and reports what it verified.

#ifndef HOMPRES_CORE_PRESERVATION_H_
#define HOMPRES_CORE_PRESERVATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/classes.h"
#include "core/minimal_models.h"
#include "cq/ucq.h"
#include "fo/formula.h"

namespace hompres {

struct PreservationResult {
  // The minimal models found within the search cap, up to isomorphism.
  std::vector<Structure> minimal_models = {};
  // Their union of canonical conjunctive queries (Theorem 3.1 direction
  // (1) => (2)), minimized.
  UnionOfCq equivalent_ucq;
  // True iff q and the UCQ agreed on every structure in C up to the
  // verification cap.
  bool verified = false;
  // How far the search and verification went.
  int search_universe = 0;
  int verify_universe = 0;
};

// Runs the pipeline for an abstract Boolean query. `search_universe`
// bounds the minimal-model search; `verify_universe` bounds the
// exhaustive equivalence check (both exponential: keep <= 3-4 for binary
// vocabularies).
PreservationResult PreservationPipeline(const BooleanQuery& q,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe);

// Convenience overload: q given as a first-order sentence (evaluated
// naively). CHECK-fails if f is not a sentence.
PreservationResult PreservationPipeline(const FormulaPtr& sentence,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe);

}  // namespace hompres

#endif  // HOMPRES_CORE_PRESERVATION_H_
