// Constructive versions of the paper's combinatorial lemmas.
//
// Each procedure implements the proof of the corresponding statement and
// returns an explicitly verified witness; the companion Bound function
// computes the paper's (often astronomic, saturating) sufficient size.
// The benches (E3, E4, E6, E7) compare the paper bounds against measured
// thresholds.

#ifndef HOMPRES_CORE_LEMMAS_H_
#define HOMPRES_CORE_LEMMAS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/scattered.h"
#include "tw/tree_decomposition.h"

namespace hompres {

// ---- Lemma 3.4: bounded degree, s = 0 -----------------------------------

// The paper's stated sufficient size m * k^d. NOTE: as stated this is
// loose for small k and d — the Petersen graph (10 vertices, 3-regular,
// diameter 2) has no 1-scattered pair at all even though it exceeds
// 3 * 3^1 = 9; the proof's "d-neighborhoods have size <= k^d" estimate
// undercounts small balls (|N_1| = k + 1 > k). The benches report both
// this literal value and the safe ball-packing bound below.
uint64_t Lemma34Bound(int k, int d, int m);

// A sufficient size that the greedy ball-packing provably meets:
// m * (k+1)^{2d} (each chosen vertex excludes at most its 2d-ball, which
// has at most (k+1)^{2d} vertices in a degree <= k graph).
uint64_t Lemma34BallPackingBound(int k, int d, int m);

// Greedy d-scattered set on a degree <= k graph: repeatedly pick a vertex
// and discard its 2d-ball. Returns a set of size >= m if it finds one
// (guaranteed once |V| > m * (k+1)^{2d} >= m * |ball|), else nullopt.
std::optional<std::vector<int>> Lemma34ScatteredSet(const Graph& g, int d,
                                                    int m);

// ---- Lemma 4.2: treewidth < k -------------------------------------------

// p = (m-1)(2d+1) + 1, M = k!(p-1)^k, N = k * (m-1)^M (saturating).
uint64_t Lemma42Bound(int k, int d, int m);

// The constructive proof: take a width-(k-1) tree decomposition, make its
// bags an antichain, then either (Case 1) remove a high-degree node's bag
// to disconnect >= m subtrees, or (Case 2) find a sunflower on the bags of
// a long path and pick petals (2d+1) apart. Verified before returning;
// nullopt when neither case fires at this size (the graph is too small).
// Requires a valid width-(k-1) decomposition of g.
std::optional<ScatteredWitness> Lemma42Witness(const Graph& g,
                                               const TreeDecomposition& td,
                                               int k, int d, int m);

// ---- Lemma 5.2: bipartite, no K_k minor ---------------------------------

struct BipartiteWitness {
  std::vector<int> a_prime;  // > m vertices of side A
  std::vector<int> b_prime;  // < k-1 vertices of side B, complete to A'
};

// Direct decision procedure for the lemma's conclusion on a bipartite
// graph whose side A is {0..side_a-1} and side B the rest: find A' and B'
// with |A'| > m, |B'| <= max_b (use k-2 for the lemma), A' x B' ⊆ E, and
// A' 1-scattered in H - B'. Exhaustive over B' subsets + exact
// independent set; exponential worst case, bench-sized inputs only.
std::optional<BipartiteWitness> Lemma52Witness(const Graph& h, int side_a,
                                               int m, int max_b);

// Verifies a BipartiteWitness against h.
bool VerifyBipartiteWitness(const Graph& h, int side_a,
                            const BipartiteWitness& witness, int m,
                            int max_b);

// Variant maximizing |A'| under the |B'| <= max_b budget (greedy + budgeted
// exact independent sets instead of a fixed target). Used by the Theorem
// 5.3 construction; returns nullopt only when side A is empty.
std::optional<BipartiteWitness> Lemma52BestWitness(const Graph& h,
                                                   int side_a, int max_b);

// ---- Theorem 5.3: no K_k minor ------------------------------------------

// N = c^d(m) where c(n) = r(2,2,b^{k-2}(n)) (saturating).
uint64_t Theorem53BoundValue(int k, int d, uint64_t m);

// The constructive proof: d stages of (independent set over the
// i-neighborhood contact graph, then Lemma 5.2 on the derived bipartite
// graph). Returns a verified witness (|Z| <= k-2, S d-scattered in G-Z,
// |S| >= m), or nullopt if the stages shrink below m at this size.
std::optional<ScatteredWitness> Theorem53Witness(const Graph& g, int k,
                                                 int d, int m);

}  // namespace hompres

#endif  // HOMPRES_CORE_LEMMAS_H_
