// Plebian companions (Section 6.1, after Ajtai-Gurevich).
//
// To move between n-ary and Boolean queries, the paper expands the
// vocabulary with n constants and then eliminates the constants again:
// the plebian companion pA of a structure A with distinguished constants
// lives over a vocabulary ρ that has, for every relation R of arity r and
// every nonempty partial map from positions to constants, a relation R_m
// of arity r - |dom m|. Observations 6.1-6.3: G(pA) ⊆ G(A), homs A -> B
// (preserving constants) correspond exactly to homs pA -> pB, and the
// closure properties transfer.

#ifndef HOMPRES_CORE_PLEBIAN_H_
#define HOMPRES_CORE_PLEBIAN_H_

#include <vector>

#include "structure/structure.h"

namespace hompres {

// A structure with distinguished elements interpreting constants
// c_0, ..., c_{n-1} (repetitions allowed).
struct PointedStructure {
  Structure structure;
  std::vector<int> constants;
};

// The plebian vocabulary ρ for `sigma` with n constants: every R of sigma
// plus R@m for every nonempty partial map m (encoded in the relation name
// as R@p0=c,...). Relations whose arity would be 0 are included (0-ary).
Vocabulary PlebianVocabulary(const Vocabulary& sigma, int num_constants);

// The plebian companion pA: universe = elements of A not interpreting any
// constant; R_m holds a tuple iff reinserting the constants lands in R^A.
Structure PlebianCompanion(const PointedStructure& a);

// Homomorphisms of pointed structures must preserve the constants
// (h(c^A) = c^B). Observation 6.2 says this is equivalent to a plain
// homomorphism between the companions.
bool HasPointedHomomorphism(const PointedStructure& a,
                            const PointedStructure& b);

}  // namespace hompres

#endif  // HOMPRES_CORE_PLEBIAN_H_
