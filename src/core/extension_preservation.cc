#include "core/extension_preservation.h"

#include <string>

#include "base/check.h"
#include "base/subsets.h"
#include "fo/eval.h"
#include "structure/isomorphism.h"

namespace hompres {

bool IsExtensionMinimalModel(const BooleanQuery& q, const Structure& a,
                             const StructureClass& c) {
  if (!c.contains(a) || !q(a)) return false;
  for (int e = 0; e < a.UniverseSize(); ++e) {
    const Structure reduced = a.RemoveElement(e);
    if (c.contains(reduced) && q(reduced)) return false;
  }
  return true;
}

std::vector<Structure> ExtensionMinimalModelsBySearch(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int max_universe) {
  std::vector<Structure> models;
  ForEachStructureInClass(vocabulary, max_universe, c,
                          [&](const Structure& a) {
                            if (!q(a)) return true;
                            if (!IsExtensionMinimalModel(q, a, c)) {
                              return true;
                            }
                            for (const Structure& seen : models) {
                              if (AreIsomorphic(seen, a)) return true;
                            }
                            models.push_back(a);
                            return true;
                          });
  return models;
}

FormulaPtr ExistentialSentenceFromModels(
    const std::vector<Structure>& models) {
  HOMPRES_CHECK(!models.empty());
  std::vector<FormulaPtr> disjuncts;
  for (const Structure& m : models) {
    const int n = m.UniverseSize();
    auto var = [](int i) { return "y" + std::to_string(i); };
    std::vector<FormulaPtr> conjuncts;
    // Pairwise distinctness makes the witness an embedding.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        conjuncts.push_back(
            Formula::Not(Formula::Equal(var(i), var(j))));
      }
    }
    // The full (positive and negative) diagram: the witness is an
    // INDUCED copy.
    for (int rel = 0; rel < m.GetVocabulary().NumRelations(); ++rel) {
      ForEachTuple(n, m.GetVocabulary().Arity(rel),
                   [&](const std::vector<int>& t) {
                     std::vector<std::string> arguments;
                     arguments.reserve(t.size());
                     for (int e : t) arguments.push_back(var(e));
                     FormulaPtr atom = Formula::Atom(
                         m.GetVocabulary().Name(rel), arguments);
                     conjuncts.push_back(m.HasTuple(rel, t)
                                             ? atom
                                             : Formula::Not(atom));
                     return true;
                   });
    }
    FormulaPtr body;
    if (conjuncts.empty()) {
      // The empty model: "true" — which as an extension-minimal model
      // means q holds everywhere; render as ∀z (z = z).
      body = Formula::Forall("z", Formula::Equal("z", "z"));
      disjuncts.push_back(body);
      continue;
    }
    body = conjuncts.size() == 1 ? conjuncts[0]
                                 : Formula::And(std::move(conjuncts));
    for (int i = n - 1; i >= 0; --i) body = Formula::Exists(var(i), body);
    disjuncts.push_back(body);
  }
  return disjuncts.size() == 1 ? disjuncts[0]
                               : Formula::Or(std::move(disjuncts));
}

ExtensionPreservationResult ExtensionPreservationPipeline(
    const FormulaPtr& sentence, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe) {
  HOMPRES_CHECK(IsSentence(sentence));
  const BooleanQuery q = [&sentence](const Structure& a) {
    return EvaluateSentence(a, sentence);
  };
  ExtensionPreservationResult result;
  result.search_universe = search_universe;
  result.verify_universe = verify_universe;
  result.minimal_models =
      ExtensionMinimalModelsBySearch(q, vocabulary, c, search_universe);
  if (result.minimal_models.empty()) {
    // q is false on everything searched; "false" has no existential
    // rendering here — verified only if q is false everywhere checked.
    bool all_false = true;
    ForEachStructureInClass(vocabulary, verify_universe, c,
                            [&](const Structure& a) {
                              all_false &= !q(a);
                              return all_false;
                            });
    result.verified = all_false;
    return result;
  }
  result.equivalent_existential =
      ExistentialSentenceFromModels(result.minimal_models);
  bool all_agree = true;
  ForEachStructureInClass(
      vocabulary, verify_universe, c, [&](const Structure& a) {
        if (q(a) != EvaluateSentence(a, result.equivalent_existential)) {
          all_agree = false;
          return false;
        }
        return true;
      });
  result.verified = all_agree;
  return result;
}

}  // namespace hompres
