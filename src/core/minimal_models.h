// Minimal models and Theorem 3.1.
//
// A structure A in class C is a minimal model of a Boolean query q if
// q(A) = 1 and no proper substructure of A inside C satisfies q. For
// classes closed under substructures and queries preserved under
// homomorphisms on C, minimality reduces to the maximal proper
// substructures: "A minus one tuple" and "A minus one isolated element".
// Theorem 3.1: q has finitely many minimal models in C iff q is definable
// on C by an existential-positive sentence — and both directions are
// constructive here.

#ifndef HOMPRES_CORE_MINIMAL_MODELS_H_
#define HOMPRES_CORE_MINIMAL_MODELS_H_

#include <functional>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "core/classes.h"
#include "cq/ucq.h"
#include "structure/structure.h"

namespace hompres {

// An abstract Boolean query (isomorphism invariance is the caller's
// responsibility).
using BooleanQuery = std::function<bool(const Structure&)>;

// Minimality via one-step removals (sound and complete for classes closed
// under substructures and queries monotone on C, e.g. preserved under
// homomorphisms there).
bool IsMinimalModel(const BooleanQuery& q, const Structure& a,
                    const StructureClass& c);

// Budgeted minimality check (one step per one-step removal examined; the
// opaque query itself is not interruptible).
Outcome<bool> IsMinimalModelBudgeted(const BooleanQuery& q, const Structure& a,
                                     const StructureClass& c, Budget& budget);

// All minimal models of a Boolean UCQ within C, up to isomorphism. Uses
// the Theorem 3.1 proof: every minimal model in C is a homomorphic image
// of some disjunct's canonical structure, so it enumerates all quotients
// of each canonical structure (Bell(n) partitions — keep disjuncts
// small), filters to C-members that are minimal, and deduplicates.
//
// With num_threads > 0 the per-candidate minimality checks (the expensive
// part: each is a batch of homomorphism searches) fan out over a
// work-stealing pool; candidates are merged back in enumeration order, so
// the model list is identical to the serial one. Requires c.contains and
// the query evaluation to be thread-safe (true for the classes and
// queries in this library: they are stateless const calls).
std::vector<Structure> MinimalModelsOfUcq(const UnionOfCq& q,
                                          const StructureClass& c,
                                          int num_threads = 0);

// Budgeted enumeration (one step per candidate quotient). On exhaustion
// no model list is claimed: a truncated enumeration could both miss
// models and retain non-minimal ones.
Outcome<std::vector<Structure>> MinimalModelsOfUcqBudgeted(
    const UnionOfCq& q, const StructureClass& c, Budget& budget,
    int num_threads = 0);

// Theorem 3.1 (1) => (2): the existential-positive sentence equivalent to
// q on C, as the union of the canonical conjunctive queries of the
// minimal models.
UnionOfCq UcqFromMinimalModels(const std::vector<Structure>& models);

// Enumerates every structure over `vocabulary` with universe size up to
// `max_universe` that belongs to C, invoking fn (which returns false to
// stop). The number of structures is 2^(sum n^arity) per universe size —
// strictly a small-n tool. Returns true iff the enumeration completed.
bool ForEachStructureInClass(const Vocabulary& vocabulary, int max_universe,
                             const StructureClass& c,
                             const std::function<bool(const Structure&)>& fn);

// Budgeted enumeration (one step per structure generated). Done(true) =
// enumeration completed, Done(false) = fn stopped it, Exhausted /
// Cancelled = the budget stopped it.
Outcome<bool> ForEachStructureInClassBudgeted(
    const Vocabulary& vocabulary, int max_universe, const StructureClass& c,
    Budget& budget, const std::function<bool(const Structure&)>& fn);

// Brute-force minimal models of an arbitrary Boolean query q (e.g. an FO
// sentence under evaluation) within C, scanning all structures up to
// `max_universe` elements and deduplicating up to isomorphism. This is
// the paper's effective procedure with the astronomic size bound replaced
// by an explicit search cap.
std::vector<Structure> MinimalModelsBySearch(const BooleanQuery& q,
                                             const Vocabulary& vocabulary,
                                             const StructureClass& c,
                                             int max_universe);

// Budgeted brute-force search. If `partial` is non-null it receives, even
// on exhaustion, the minimal models confirmed before the stop — the
// best-effort answer the preservation pipeline reports.
Outcome<std::vector<Structure>> MinimalModelsBySearchBudgeted(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int max_universe, Budget& budget,
    std::vector<Structure>* partial = nullptr);

// Empirical preservation check: for every ordered pair of samples with a
// homomorphism between them, q must transfer along it.
bool CheckPreservedUnderHomomorphisms(const BooleanQuery& q,
                                      const std::vector<Structure>& samples);

}  // namespace hompres

#endif  // HOMPRES_CORE_MINIMAL_MODELS_H_
