// Classes of finite structures (the C of the paper's theorems).
//
// A StructureClass is a named membership predicate plus the closure
// properties the theorems assume. The stock classes are the ones the
// paper proves preservation for: bounded degree (Theorem 3.5), bounded
// treewidth (Theorem 4.4), excluded minor (Theorem 5.4), and the
// core-relaxed variants of Section 6 (Theorems 6.5-6.7).

#ifndef HOMPRES_CORE_CLASSES_H_
#define HOMPRES_CORE_CLASSES_H_

#include <functional>
#include <string>
#include <vector>

#include "structure/structure.h"

namespace hompres {

struct StructureClass {
  std::string name;
  std::function<bool(const Structure&)> contains;
};

// The class of all finite structures.
StructureClass AllStructuresClass();

// Gaifman degree <= k.
StructureClass BoundedDegreeClass(int k);

// Treewidth < k (the paper's T(k)). Uses exact treewidth; structures must
// stay small (<= 22 elements).
StructureClass BoundedTreewidthClass(int k);

// Gaifman graph excludes K_h as a minor.
StructureClass ExcludesMinorClass(int h);

// Cores-based classes of Section 6: the predicate is applied to the
// Gaifman graph of core(A).
StructureClass CoresBoundedDegreeClass(int k);
StructureClass CoresBoundedTreewidthClass(int k);  // the paper's H(T(k))
StructureClass CoresExcludeMinorClass(int h);

// Empirical closure checks used by the tests: every one-step substructure
// (tuple or element removal) of each sample stays in the class, and every
// pairwise disjoint union does.
bool CheckClosedUnderSubstructures(const StructureClass& c,
                                   const std::vector<Structure>& samples);
bool CheckClosedUnderDisjointUnions(const StructureClass& c,
                                    const std::vector<Structure>& samples);

}  // namespace hompres

#endif  // HOMPRES_CORE_CLASSES_H_
