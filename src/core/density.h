// The Theorem 3.2 density condition, measurable.
//
// Ajtai-Gurevich: if q is first-order and preserved under homomorphisms
// (on a class closed under substructures and disjoint unions), then for
// every s there are d and m such that no minimal model of q has a
// d-scattered set of size m after removing at most s elements. This
// header turns the condition into a measurement: the scattered-set
// profile of a structure, used by the benches to show that minimal
// models stay "dense" while arbitrary large class members do not.

#ifndef HOMPRES_CORE_DENSITY_H_
#define HOMPRES_CORE_DENSITY_H_

#include "graph/graph.h"
#include "structure/structure.h"

namespace hompres {

// The largest m such that some removal of at most s vertices leaves a
// d-scattered set of size m. Exact (exponential in s and the
// independent-set search); intended for small graphs.
int MaxScatteredAfterRemoval(const Graph& g, int s, int d);

// The same measure applied to a structure's Gaifman graph.
int StructureScatterProfile(const Structure& a, int s, int d);

}  // namespace hompres

#endif  // HOMPRES_CORE_DENSITY_H_
