#include "core/lemmas.h"

#include <algorithm>

#include "base/check.h"
#include "base/saturating.h"
#include "base/subsets.h"
#include "combinatorics/ramsey.h"
#include "combinatorics/sunflower.h"
#include "graph/algorithms.h"

namespace hompres {

// ---- Lemma 3.4 ------------------------------------------------------------

uint64_t Lemma34Bound(int k, int d, int m) {
  HOMPRES_CHECK_GE(k, 0);
  HOMPRES_CHECK_GE(d, 0);
  HOMPRES_CHECK_GE(m, 0);
  return SatMul(static_cast<uint64_t>(m),
                SatPow(static_cast<uint64_t>(k), static_cast<uint64_t>(d)));
}

uint64_t Lemma34BallPackingBound(int k, int d, int m) {
  HOMPRES_CHECK_GE(k, 0);
  HOMPRES_CHECK_GE(d, 0);
  HOMPRES_CHECK_GE(m, 0);
  return SatMul(static_cast<uint64_t>(m),
                SatPow(static_cast<uint64_t>(k + 1),
                       static_cast<uint64_t>(2 * d)));
}

std::optional<std::vector<int>> Lemma34ScatteredSet(const Graph& g, int d,
                                                    int m) {
  // The proof's argument is a greedy ball-packing: each chosen vertex
  // rules out only its 2d-ball.
  std::vector<bool> excluded(static_cast<size_t>(g.NumVertices()), false);
  std::vector<int> chosen;
  for (int v = 0; v < g.NumVertices(); ++v) {
    if (excluded[static_cast<size_t>(v)]) continue;
    chosen.push_back(v);
    for (int w : NeighborhoodBall(g, v, 2 * d)) {
      excluded[static_cast<size_t>(w)] = true;
    }
  }
  if (static_cast<int>(chosen.size()) < m) return std::nullopt;
  chosen.resize(static_cast<size_t>(m));
  HOMPRES_CHECK(IsDScattered(g, chosen, d));
  return chosen;
}

// ---- Lemma 4.2 ------------------------------------------------------------

uint64_t Lemma42Bound(int k, int d, int m) {
  HOMPRES_CHECK_GE(k, 1);
  HOMPRES_CHECK_GE(d, 0);
  HOMPRES_CHECK_GE(m, 1);
  const uint64_t p = static_cast<uint64_t>(m - 1) *
                         static_cast<uint64_t>(2 * d + 1) +
                     1;
  const uint64_t big_m = SatMul(SatFactorial(static_cast<uint64_t>(k)),
                                SatPow(p - 1, static_cast<uint64_t>(k)));
  if (big_m == kSaturated) return kSaturated;
  return SatMul(static_cast<uint64_t>(k),
                SatPow(static_cast<uint64_t>(m - 1), big_m));
}

namespace {

// Longest path in a tree (the diameter path), as a list of node ids.
std::vector<int> TreeDiameterPath(const Graph& tree) {
  HOMPRES_CHECK_GE(tree.NumVertices(), 1);
  auto farthest = [&tree](int from) {
    const auto dist = BfsDistances(tree, from);
    int best = from;
    for (int v = 0; v < tree.NumVertices(); ++v) {
      if (dist[static_cast<size_t>(v)] > dist[static_cast<size_t>(best)]) {
        best = v;
      }
    }
    return best;
  };
  const int a = farthest(0);
  const int b = farthest(a);
  // Reconstruct the a..b path by walking down the BFS distances from b.
  const auto dist = BfsDistances(tree, b);
  std::vector<int> path = {a};
  int current = a;
  while (current != b) {
    for (int w : tree.Neighbors(current)) {
      if (dist[static_cast<size_t>(w)] ==
          dist[static_cast<size_t>(current)] - 1) {
        current = w;
        break;
      }
    }
    path.push_back(current);
  }
  return path;
}

}  // namespace

std::optional<ScatteredWitness> Lemma42Witness(const Graph& g,
                                               const TreeDecomposition& td,
                                               int k, int d, int m) {
  HOMPRES_CHECK(IsValidTreeDecomposition(g, td));
  HOMPRES_CHECK_LE(td.Width(), k - 1);
  HOMPRES_CHECK_GE(m, 1);
  const TreeDecomposition clean = MakeBagsIncomparable(td);

  // Case 1: a tree node of degree >= m. Its bag separates the neighbor
  // subtrees; one private vertex per neighbor bag is infinitely
  // scattered in G - bag.
  for (int v = 0; v < clean.tree.NumVertices(); ++v) {
    if (clean.tree.Degree(v) < m) continue;
    const auto& separator = clean.bags[static_cast<size_t>(v)];
    ScatteredWitness witness;
    witness.removed = separator;
    for (int u : clean.tree.Neighbors(v)) {
      if (static_cast<int>(witness.scattered.size()) == m) break;
      for (int x : clean.bags[static_cast<size_t>(u)]) {
        if (std::find(separator.begin(), separator.end(), x) ==
            separator.end()) {
          witness.scattered.push_back(x);
          break;
        }
      }
    }
    if (static_cast<int>(witness.scattered.size()) >= m &&
        VerifyScatteredWitness(g, witness, k, d, m)) {
      return witness;
    }
  }

  // Case 2: a sunflower on the bags of the diameter path, petals picked
  // 2d+1 apart.
  const std::vector<int> path = TreeDiameterPath(clean.tree);
  std::vector<std::vector<int>> family;
  family.reserve(path.size());
  for (int node : path) {
    family.push_back(clean.bags[static_cast<size_t>(node)]);
  }
  const int p = (m - 1) * (2 * d + 1) + 1;
  const auto sunflower = FindSunflower(family, p);
  if (!sunflower.has_value()) return std::nullopt;
  ScatteredWitness witness;
  witness.removed = sunflower->core;
  for (int i = 0; i < m; ++i) {
    const int petal_index = sunflower->petals[static_cast<size_t>(
        i * (2 * d + 1))];
    for (int x : family[static_cast<size_t>(petal_index)]) {
      if (std::find(sunflower->core.begin(), sunflower->core.end(), x) ==
          sunflower->core.end()) {
        witness.scattered.push_back(x);
        break;
      }
    }
  }
  if (static_cast<int>(witness.scattered.size()) >= m &&
      VerifyScatteredWitness(g, witness, k, d, m)) {
    return witness;
  }
  return std::nullopt;
}

// ---- Lemma 5.2 ------------------------------------------------------------

namespace {

// The A-side conflict graph after removing B': vertices are positions in
// `candidates` (A-side vertex ids); edge iff the two share a neighbor in
// B outside `removed_b`.
Graph CommonNeighborConflictGraph(const Graph& h, int side_a,
                                  const std::vector<int>& candidates,
                                  const std::vector<int>& removed_b) {
  Graph conflict(static_cast<int>(candidates.size()));
  std::vector<bool> removed(static_cast<size_t>(h.NumVertices()), false);
  for (int b : removed_b) removed[static_cast<size_t>(b)] = true;
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      bool common = false;
      for (int b : h.Neighbors(candidates[i])) {
        if (b < side_a || removed[static_cast<size_t>(b)]) continue;
        if (h.HasEdge(candidates[j], b)) {
          common = true;
          break;
        }
      }
      if (common) {
        conflict.AddEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return conflict;
}

}  // namespace

std::optional<BipartiteWitness> Lemma52Witness(const Graph& h, int side_a,
                                               int m, int max_b) {
  HOMPRES_CHECK_GE(side_a, 0);
  HOMPRES_CHECK_LE(side_a, h.NumVertices());
  HOMPRES_CHECK_GE(max_b, 0);
  // Sanity: no edges within side A (the bipartite contract).
  for (int a = 0; a < side_a; ++a) {
    for (int w : h.Neighbors(a)) HOMPRES_CHECK_GE(w, side_a);
  }
  std::vector<int> b_side;
  for (int b = side_a; b < h.NumVertices(); ++b) b_side.push_back(b);

  std::optional<BipartiteWitness> best;
  for (int b_size = 0; b_size <= std::min<int>(max_b, b_side.size());
       ++b_size) {
    ForEachCombination(
        static_cast<int>(b_side.size()), b_size,
        [&](const std::vector<int>& picks) {
          std::vector<int> removed_b;
          for (int pick : picks) {
            removed_b.push_back(b_side[static_cast<size_t>(pick)]);
          }
          // A' must be complete to B'.
          std::vector<int> candidates;
          for (int a = 0; a < side_a; ++a) {
            bool complete = true;
            for (int b : removed_b) {
              if (!h.HasEdge(a, b)) {
                complete = false;
                break;
              }
            }
            if (complete) candidates.push_back(a);
          }
          const int needed = m + 1;  // |A'| > m
          if (static_cast<int>(candidates.size()) < needed) return true;
          const Graph conflict =
              CommonNeighborConflictGraph(h, side_a, candidates, removed_b);
          auto independent = FindIndependentSetOfSize(conflict, needed);
          if (!independent.has_value()) return true;
          BipartiteWitness witness;
          for (int index : *independent) {
            witness.a_prime.push_back(
                candidates[static_cast<size_t>(index)]);
          }
          witness.b_prime = removed_b;
          HOMPRES_CHECK(VerifyBipartiteWitness(h, side_a, witness, m, max_b));
          best = std::move(witness);
          return false;  // found one at the smallest |B'|
        });
    if (best.has_value()) return best;
  }
  return std::nullopt;
}

bool VerifyBipartiteWitness(const Graph& h, int side_a,
                            const BipartiteWitness& witness, int m,
                            int max_b) {
  if (static_cast<int>(witness.a_prime.size()) <= m) return false;
  if (static_cast<int>(witness.b_prime.size()) > max_b) return false;
  for (int a : witness.a_prime) {
    if (a < 0 || a >= side_a) return false;
    for (int b : witness.b_prime) {
      if (!h.HasEdge(a, b)) return false;  // A' x B' ⊆ E
    }
  }
  // 1-scattered in H - B'.
  std::vector<int> old_to_new;
  const Graph reduced = h.RemoveVertices(witness.b_prime, &old_to_new);
  std::vector<int> mapped;
  for (int a : witness.a_prime) {
    const int now = old_to_new[static_cast<size_t>(a)];
    if (now < 0) return false;
    mapped.push_back(now);
  }
  return IsDScattered(reduced, mapped, 1);
}

std::optional<BipartiteWitness> Lemma52BestWitness(const Graph& h,
                                                   int side_a, int max_b) {
  HOMPRES_CHECK_GE(side_a, 0);
  HOMPRES_CHECK_GE(max_b, 0);
  if (side_a == 0) return std::nullopt;
  std::vector<int> b_side;
  for (int b = side_a; b < h.NumVertices(); ++b) b_side.push_back(b);

  std::optional<BipartiteWitness> best;
  for (int b_size = 0; b_size <= std::min<int>(max_b, b_side.size());
       ++b_size) {
    ForEachCombination(
        static_cast<int>(b_side.size()), b_size,
        [&](const std::vector<int>& picks) {
          std::vector<int> removed_b;
          for (int pick : picks) {
            removed_b.push_back(b_side[static_cast<size_t>(pick)]);
          }
          std::vector<int> candidates;
          for (int a = 0; a < side_a; ++a) {
            bool complete = true;
            for (int b : removed_b) {
              if (!h.HasEdge(a, b)) {
                complete = false;
                break;
              }
            }
            if (complete) candidates.push_back(a);
          }
          if (candidates.empty()) return true;
          if (best.has_value() &&
              candidates.size() <= best->a_prime.size()) {
            return true;  // cannot beat the best even if all survive
          }
          const Graph conflict =
              CommonNeighborConflictGraph(h, side_a, candidates, removed_b);
          const std::vector<int> independent =
              LargeIndependentSet(conflict);
          if (best.has_value() &&
              independent.size() <= best->a_prime.size()) {
            return true;
          }
          BipartiteWitness witness;
          for (int index : independent) {
            witness.a_prime.push_back(
                candidates[static_cast<size_t>(index)]);
          }
          witness.b_prime = removed_b;
          best = std::move(witness);
          return true;
        });
  }
  if (best.has_value()) {
    HOMPRES_CHECK(VerifyBipartiteWitness(
        h, side_a, *best, static_cast<int>(best->a_prime.size()) - 1,
        max_b));
  }
  return best;
}

// ---- Theorem 5.3 ----------------------------------------------------------

uint64_t Theorem53BoundValue(int k, int d, uint64_t m) {
  return Theorem53Bound(k, d, m);
}

std::optional<ScatteredWitness> Theorem53Witness(const Graph& g, int k,
                                                 int d, int m) {
  HOMPRES_CHECK_GE(k, 2);
  HOMPRES_CHECK_GE(d, 0);
  HOMPRES_CHECK_GE(m, 1);
  std::vector<int> s_current;
  for (int v = 0; v < g.NumVertices(); ++v) s_current.push_back(v);
  std::vector<int> z_current;

  for (int stage = 0; stage < d; ++stage) {
    // Work in G - Z.
    std::vector<int> old_to_new;
    const Graph reduced = g.RemoveVertices(z_current, &old_to_new);
    std::vector<int> new_to_old(static_cast<size_t>(reduced.NumVertices()));
    for (int v = 0; v < g.NumVertices(); ++v) {
      if (old_to_new[static_cast<size_t>(v)] >= 0) {
        new_to_old[static_cast<size_t>(old_to_new[static_cast<size_t>(v)])] =
            v;
      }
    }
    // i-neighborhoods of the current scattered set (in reduced ids).
    std::vector<int> s_reduced;
    for (int v : s_current) {
      const int now = old_to_new[static_cast<size_t>(v)];
      HOMPRES_CHECK_GE(now, 0);
      s_reduced.push_back(now);
    }
    std::vector<std::vector<int>> balls;
    std::vector<int> ball_of(static_cast<size_t>(reduced.NumVertices()), -1);
    for (size_t i = 0; i < s_reduced.size(); ++i) {
      balls.push_back(NeighborhoodBall(reduced, s_reduced[i], stage));
      for (int w : balls.back()) {
        // Balls are disjoint because S is stage-scattered in G - Z.
        HOMPRES_CHECK_EQ(ball_of[static_cast<size_t>(w)], -1);
        ball_of[static_cast<size_t>(w)] = static_cast<int>(i);
      }
    }
    // Contact graph between the neighborhoods.
    Graph contact(static_cast<int>(s_reduced.size()));
    for (const auto& [u, v] : reduced.Edges()) {
      const int bu = ball_of[static_cast<size_t>(u)];
      const int bv = ball_of[static_cast<size_t>(v)];
      if (bu != -1 && bv != -1 && bu != bv && !contact.HasEdge(bu, bv)) {
        contact.AddEdge(bu, bv);
      }
    }
    // An independent family of neighborhoods. (The paper gets one of a
    // guaranteed size via Ramsey; we take a large one greedily with
    // budgeted exact improvement.)
    const std::vector<int> independent = LargeIndependentSet(contact);
    if (independent.empty()) return std::nullopt;
    // Bipartite graph: side A = the chosen neighborhoods, side B = the
    // vertices of G - Z adjacent to some chosen ball (outside all balls).
    std::vector<bool> chosen_ball(balls.size(), false);
    for (int i : independent) chosen_ball[static_cast<size_t>(i)] = true;
    std::vector<int> boundary;  // reduced ids
    std::vector<int> boundary_index(
        static_cast<size_t>(reduced.NumVertices()), -1);
    for (const auto& [u, v] : reduced.Edges()) {
      for (const auto& [inside, outside] :
           {std::make_pair(u, v), std::make_pair(v, u)}) {
        const int bi = ball_of[static_cast<size_t>(inside)];
        if (bi == -1 || !chosen_ball[static_cast<size_t>(bi)]) continue;
        // B is everything adjacent to a chosen ball but not itself inside
        // a chosen ball (vertices of non-chosen balls are allowed; the
        // paper only needs A and B disjoint, which independence of the
        // contact graph gives for chosen balls).
        const int bo = ball_of[static_cast<size_t>(outside)];
        if (bo != -1 && chosen_ball[static_cast<size_t>(bo)]) continue;
        if (boundary_index[static_cast<size_t>(outside)] == -1) {
          boundary_index[static_cast<size_t>(outside)] =
              static_cast<int>(boundary.size());
          boundary.push_back(outside);
        }
      }
    }
    const int side_a = static_cast<int>(independent.size());
    Graph bipartite(side_a + static_cast<int>(boundary.size()));
    for (int ai = 0; ai < side_a; ++ai) {
      const int ball_index = independent[static_cast<size_t>(ai)];
      for (int w : balls[static_cast<size_t>(ball_index)]) {
        for (int nb : reduced.Neighbors(w)) {
          const int bindex = boundary_index[static_cast<size_t>(nb)];
          if (bindex != -1 && !bipartite.HasEdge(ai, side_a + bindex)) {
            bipartite.AddEdge(ai, side_a + bindex);
          }
        }
      }
    }
    // Lemma 5.2 on the bipartite contact structure, with the remaining
    // removal budget; pick the largest surviving A'.
    const int budget = (k - 2) - static_cast<int>(z_current.size());
    if (budget < 0) return std::nullopt;
    const std::optional<BipartiteWitness> witness =
        Lemma52BestWitness(bipartite, side_a, budget);
    if (!witness.has_value()) return std::nullopt;
    // Translate back: new S = centers of the surviving neighborhoods, new
    // Z adds B' (boundary vertices, mapped to original ids).
    std::vector<int> next_s;
    for (int ai : witness->a_prime) {
      const int ball_index = independent[static_cast<size_t>(ai)];
      next_s.push_back(new_to_old[static_cast<size_t>(
          s_reduced[static_cast<size_t>(ball_index)])]);
    }
    for (int b : witness->b_prime) {
      z_current.push_back(
          new_to_old[static_cast<size_t>(boundary[static_cast<size_t>(
              b - side_a)])]);
    }
    s_current = std::move(next_s);
    if (static_cast<int>(s_current.size()) < m) return std::nullopt;
  }

  if (static_cast<int>(s_current.size()) < m) return std::nullopt;
  s_current.resize(static_cast<size_t>(m));
  ScatteredWitness witness;
  witness.removed = z_current;
  witness.scattered = s_current;
  if (!VerifyScatteredWitness(g, witness, k - 2, d, m)) return std::nullopt;
  return witness;
}

}  // namespace hompres
