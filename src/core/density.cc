#include "core/density.h"

#include "base/check.h"
#include "base/subsets.h"
#include "graph/scattered.h"
#include "structure/gaifman.h"

namespace hompres {

int MaxScatteredAfterRemoval(const Graph& g, int s, int d) {
  HOMPRES_CHECK_GE(s, 0);
  HOMPRES_CHECK_GE(d, 0);
  int best = 0;
  const int n = g.NumVertices();
  for (int size = 0; size <= std::min(s, n); ++size) {
    ForEachCombination(n, size, [&](const std::vector<int>& removed) {
      const Graph reduced = g.RemoveVertices(removed);
      best = std::max(best, MaxScatteredSetSize(reduced, d));
      return true;
    });
  }
  return best;
}

int StructureScatterProfile(const Structure& a, int s, int d) {
  return MaxScatteredAfterRemoval(GaifmanGraph(a), s, d);
}

}  // namespace hompres
