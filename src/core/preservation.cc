#include "core/preservation.h"

#include <utility>

#include "base/check.h"
#include "cq/cq.h"
#include "fo/eval.h"

namespace hompres {

Outcome<PreservationResult> PreservationPipelineBudgeted(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe,
    Budget& budget, std::vector<Structure>* partial) {
  using Result = Outcome<PreservationResult>;
  PreservationResult result{
      .minimal_models = {},
      .equivalent_ucq = UnionOfCq({}, 0),
      .verified = false,
      .search_universe = search_universe,
      .verify_universe = verify_universe,
  };
  auto search = MinimalModelsBySearchBudgeted(q, vocabulary, c,
                                              search_universe, budget,
                                              partial);
  if (!search.IsDone()) return Result::StoppedShort(budget.Report());
  result.minimal_models = std::move(search).TakeValue();
  result.equivalent_ucq =
      MinimizeUcq(UcqFromMinimalModels(result.minimal_models));
  // Exhaustive verification within the cap: q(A) == UCQ(A) for every
  // A in C with at most verify_universe elements.
  bool all_agree = true;
  auto scan = ForEachStructureInClassBudgeted(
      vocabulary, verify_universe, c, budget, [&](const Structure& a) {
        if (q(a) != result.equivalent_ucq.SatisfiedBy(a)) {
          all_agree = false;
          return false;
        }
        return true;
      });
  if (!scan.IsDone()) return Result::StoppedShort(budget.Report());
  result.verified = all_agree;
  return Result::Done(std::move(result), budget.Report());
}

PreservationResult PreservationPipeline(const BooleanQuery& q,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe) {
  Budget unlimited = Budget::Unlimited();
  return std::move(PreservationPipelineBudgeted(q, vocabulary, c,
                                                search_universe,
                                                verify_universe, unlimited))
      .TakeValue();
}

PreservationResult PreservationPipeline(const FormulaPtr& sentence,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe) {
  HOMPRES_CHECK(IsSentence(sentence));
  const BooleanQuery q = [&sentence](const Structure& a) {
    return EvaluateSentence(a, sentence);
  };
  return PreservationPipeline(q, vocabulary, c, search_universe,
                              verify_universe);
}

namespace {

// Multiplies a limit by the escalation factor, saturating instead of
// overflowing (a saturated limit is effectively unlimited anyway).
uint64_t Escalate(uint64_t value, uint64_t factor) {
  if (value == 0 || factor == 0) return value;
  if (value > UINT64_MAX / factor) return UINT64_MAX;
  return value * factor;
}

}  // namespace

PreservationReport PreservationPipelineWithRetry(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe,
    const PreservationBudgetOptions& options) {
  PreservationReport report;
  report.result.search_universe = search_universe;
  report.result.verify_universe = verify_universe;
  report.result.equivalent_ucq = UnionOfCq({}, 0);

  uint64_t steps = options.initial_steps;
  std::chrono::nanoseconds timeout = options.initial_timeout;
  const int attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Budget budget = Budget::Unlimited();
    if (steps != 0) budget.WithMaxSteps(steps);
    if (timeout.count() != 0) budget.WithTimeout(timeout);
    if (options.cancel != nullptr) budget.WithCancelFlag(options.cancel);

    std::vector<Structure> partial;
    auto outcome = PreservationPipelineBudgeted(
        q, vocabulary, c, search_universe, verify_universe, budget,
        &partial);

    PreservationAttempt record;
    record.max_steps = steps;
    record.timeout = timeout;
    record.report = outcome.Report();
    record.completed = outcome.IsDone();
    report.attempts.push_back(record);

    if (outcome.IsDone()) {
      report.completed = true;
      report.result = std::move(outcome).TakeValue();
      return report;
    }
    // Best-effort: keep the richest partial seen so far.
    if (partial.size() >= report.result.minimal_models.size()) {
      report.result.minimal_models = std::move(partial);
      report.result.equivalent_ucq =
          UcqFromMinimalModels(report.result.minimal_models);
      report.result.verified = false;
    }
    if (outcome.IsCancelled()) break;  // escalation will not help
    steps = Escalate(steps, options.escalation_factor);
    timeout = std::chrono::nanoseconds(
        static_cast<int64_t>(Escalate(
            static_cast<uint64_t>(timeout.count()),
            options.escalation_factor)));
  }
  return report;
}

}  // namespace hompres
