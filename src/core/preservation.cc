#include "core/preservation.h"

#include <utility>

#include "base/check.h"
#include "base/failpoint.h"
#include "base/retry.h"
#include "cq/cq.h"
#include "fo/eval.h"
#include "opt/optimizer.h"

namespace hompres {

Outcome<PreservationResult> PreservationPipelineBudgeted(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe,
    Budget& budget, std::vector<Structure>* partial) {
  using Result = Outcome<PreservationResult>;
  PreservationResult result{
      .minimal_models = {},
      .equivalent_ucq = UnionOfCq({}, 0),
      .verified = false,
      .search_universe = search_universe,
      .verify_universe = verify_universe,
  };
  auto search = MinimalModelsBySearchBudgeted(q, vocabulary, c,
                                              search_universe, budget,
                                              partial);
  if (!search.IsDone()) return Result::StoppedShort(budget.Report());
  result.minimal_models = std::move(search).TakeValue();
  // Theorem 3.1's UCQ is one disjunct per minimal model — typically full
  // of renamed duplicates and subsumed specializations. The optimizer
  // collapses them on the pipeline's own budget; when that budget runs
  // out mid-pass it hands back the unminimized (still equivalent) union
  // and the verification scan below decides whether there is budget
  // left to certify it.
  result.equivalent_ucq = OptimizeUcqBudgeted(
      UcqFromMinimalModels(result.minimal_models), budget);
  if (budget.Stopped()) return Result::StoppedShort(budget.Report());
  // Exhaustive verification within the cap: q(A) == UCQ(A) for every
  // A in C with at most verify_universe elements.
  bool all_agree = true;
  auto scan = ForEachStructureInClassBudgeted(
      vocabulary, verify_universe, c, budget, [&](const Structure& a) {
        if (q(a) != result.equivalent_ucq.SatisfiedBy(a)) {
          all_agree = false;
          return false;
        }
        return true;
      });
  if (!scan.IsDone()) return Result::StoppedShort(budget.Report());
  result.verified = all_agree;
  return Result::Done(std::move(result), budget.Report());
}

PreservationResult PreservationPipeline(const BooleanQuery& q,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe) {
  Budget unlimited = Budget::Unlimited();
  return std::move(PreservationPipelineBudgeted(q, vocabulary, c,
                                                search_universe,
                                                verify_universe, unlimited))
      .TakeValue();
}

PreservationResult PreservationPipeline(const FormulaPtr& sentence,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe) {
  HOMPRES_CHECK(IsSentence(sentence));
  const BooleanQuery q = [&sentence](const Structure& a) {
    return EvaluateSentence(a, sentence);
  };
  return PreservationPipeline(q, vocabulary, c, search_universe,
                              verify_universe);
}

PreservationReport PreservationPipelineWithRetry(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe,
    const PreservationBudgetOptions& options) {
  PreservationReport report;
  report.result.search_universe = search_universe;
  report.result.verify_universe = verify_universe;
  report.result.equivalent_ucq = UnionOfCq({}, 0);

  // The pipeline's historical escalation loop, expressed over the
  // reusable schedule (base/retry.h): same limits per attempt, no
  // backoff, saturating growth.
  RetryPolicy policy;
  policy.initial_steps = options.initial_steps;
  policy.initial_timeout = options.initial_timeout;
  policy.max_attempts = options.max_attempts;
  policy.escalation_factor = options.escalation_factor;
  policy.cancel = options.cancel;
  const RetrySchedule schedule(policy);

  for (int attempt = 0; attempt < schedule.NumAttempts(); ++attempt) {
    // Attempt 0 always runs (an already-raised cancel flag is then
    // recorded as a kCancelled attempt, not silently dropped); later
    // attempts honor the schedule's cancellation-aware backoff.
    if (attempt > 0 && !schedule.Backoff(attempt)) break;

    const RetryAttempt limits = schedule.Attempt(attempt);
    PreservationAttempt record;
    record.max_steps = limits.max_steps;
    record.timeout = limits.timeout;

    if (HOMPRES_FAILPOINT("preservation/attempt")) {
      // Injected attempt loss: the executor died before doing any work.
      // Record the attempt as exhausted and let escalation proceed.
      record.report.reason = StopReason::kSteps;
      report.attempts.push_back(record);
      continue;
    }

    Budget budget = schedule.MakeBudget(attempt);
    std::vector<Structure> partial;
    auto outcome = PreservationPipelineBudgeted(
        q, vocabulary, c, search_universe, verify_universe, budget,
        &partial);

    record.report = outcome.Report();
    record.completed = outcome.IsDone();
    report.attempts.push_back(record);

    if (outcome.IsDone()) {
      report.completed = true;
      report.result = std::move(outcome).TakeValue();
      return report;
    }
    // Best-effort: keep the richest partial seen so far.
    if (partial.size() >= report.result.minimal_models.size()) {
      report.result.minimal_models = std::move(partial);
      report.result.equivalent_ucq =
          UcqFromMinimalModels(report.result.minimal_models);
      report.result.verified = false;
    }
    if (outcome.IsCancelled()) break;  // escalation will not help
  }
  return report;
}

}  // namespace hompres
