#include "core/preservation.h"

#include "base/check.h"
#include "cq/cq.h"
#include "fo/eval.h"

namespace hompres {

PreservationResult PreservationPipeline(const BooleanQuery& q,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe) {
  PreservationResult result{
      .minimal_models = MinimalModelsBySearch(q, vocabulary, c,
                                              search_universe),
      .equivalent_ucq = UnionOfCq({}, 0),
      .verified = false,
      .search_universe = search_universe,
      .verify_universe = verify_universe,
  };
  result.equivalent_ucq =
      MinimizeUcq(UcqFromMinimalModels(result.minimal_models));
  // Exhaustive verification within the cap: q(A) == UCQ(A) for every
  // A in C with at most verify_universe elements.
  bool all_agree = true;
  ForEachStructureInClass(vocabulary, verify_universe, c,
                          [&](const Structure& a) {
                            if (q(a) != result.equivalent_ucq.SatisfiedBy(a)) {
                              all_agree = false;
                              return false;
                            }
                            return true;
                          });
  result.verified = all_agree;
  return result;
}

PreservationResult PreservationPipeline(const FormulaPtr& sentence,
                                        const Vocabulary& vocabulary,
                                        const StructureClass& c,
                                        int search_universe,
                                        int verify_universe) {
  HOMPRES_CHECK(IsSentence(sentence));
  const BooleanQuery q = [&sentence](const Structure& a) {
    return EvaluateSentence(a, sentence);
  };
  return PreservationPipeline(q, vocabulary, c, search_universe,
                              verify_universe);
}

}  // namespace hompres
