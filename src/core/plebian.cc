#include "core/plebian.h"

#include <string>

#include "base/budget.h"
#include "base/check.h"
#include "base/subsets.h"
#include "engine/engine.h"

namespace hompres {

namespace {

// Enumerates all partial maps from {0..arity-1} to {0..constants-1} as
// vectors with -1 for "undefined"; `fn` receives each (including the
// all-undefined one; callers skip it when the paper wants nonempty maps).
template <typename Fn>
void ForEachPartialMap(int arity, int constants, Fn&& fn) {
  // Odometer over (constants + 1) options per position; value `constants`
  // encodes "undefined".
  std::vector<int> state(static_cast<size_t>(arity), 0);
  for (;;) {
    std::vector<int> map(static_cast<size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      map[static_cast<size_t>(i)] =
          state[static_cast<size_t>(i)] == constants
              ? -1
              : state[static_cast<size_t>(i)];
    }
    fn(map);
    int pos = arity - 1;
    while (pos >= 0 && state[static_cast<size_t>(pos)] == constants) {
      state[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) return;
    ++state[static_cast<size_t>(pos)];
  }
}

std::string MapSuffix(const std::vector<int>& map) {
  std::string suffix;
  for (size_t i = 0; i < map.size(); ++i) {
    if (map[i] == -1) continue;
    suffix += "@p" + std::to_string(i) + "=c" + std::to_string(map[i]);
  }
  return suffix;
}

bool IsEmptyMap(const std::vector<int>& map) {
  for (int v : map) {
    if (v != -1) return false;
  }
  return true;
}

}  // namespace

Vocabulary PlebianVocabulary(const Vocabulary& sigma, int num_constants) {
  HOMPRES_CHECK_GE(num_constants, 0);
  Vocabulary rho;
  for (int rel = 0; rel < sigma.NumRelations(); ++rel) {
    rho.AddRelation(sigma.Name(rel), sigma.Arity(rel));
    ForEachPartialMap(
        sigma.Arity(rel), num_constants, [&](const std::vector<int>& map) {
          if (IsEmptyMap(map)) return;
          int defined = 0;
          for (int v : map) {
            if (v != -1) ++defined;
          }
          rho.AddRelation(sigma.Name(rel) + MapSuffix(map),
                          sigma.Arity(rel) - defined);
        });
  }
  return rho;
}

Structure PlebianCompanion(const PointedStructure& a) {
  const Vocabulary& sigma = a.structure.GetVocabulary();
  const int num_constants = static_cast<int>(a.constants.size());
  for (int c : a.constants) {
    HOMPRES_CHECK_GE(c, 0);
    HOMPRES_CHECK_LT(c, a.structure.UniverseSize());
  }
  const Vocabulary rho = PlebianVocabulary(sigma, num_constants);

  // Universe: elements not interpreting any constant.
  std::vector<int> old_to_new(
      static_cast<size_t>(a.structure.UniverseSize()), -1);
  std::vector<bool> is_constant(
      static_cast<size_t>(a.structure.UniverseSize()), false);
  for (int c : a.constants) is_constant[static_cast<size_t>(c)] = true;
  int next = 0;
  for (int e = 0; e < a.structure.UniverseSize(); ++e) {
    if (!is_constant[static_cast<size_t>(e)]) {
      old_to_new[static_cast<size_t>(e)] = next++;
    }
  }
  Structure companion(rho, next);

  for (int rel = 0; rel < sigma.NumRelations(); ++rel) {
    const int arity = sigma.Arity(rel);
    ForEachPartialMap(arity, num_constants, [&](const std::vector<int>&
                                                    map) {
      const std::string name =
          IsEmptyMap(map) ? sigma.Name(rel) : sigma.Name(rel) + MapSuffix(map);
      const int rho_rel = *rho.IndexOf(name);
      // Free positions of the map.
      std::vector<int> free_positions;
      for (int i = 0; i < arity; ++i) {
        if (map[static_cast<size_t>(i)] == -1) free_positions.push_back(i);
      }
      // Every tuple over the companion universe whose reinsertion lies in
      // R^A. We enumerate R^A's tuples and decompose instead of
      // enumerating the full tuple space.
      for (const Tuple& t : a.structure.Tuples(rel)) {
        bool matches = true;
        Tuple reduced;
        for (int i = 0; i < arity && matches; ++i) {
          const int constant = map[static_cast<size_t>(i)];
          if (constant == -1) {
            // Position must hold a non-constant element.
            if (is_constant[static_cast<size_t>(t[static_cast<size_t>(i)])]) {
              matches = false;
            } else {
              reduced.push_back(
                  old_to_new[static_cast<size_t>(t[static_cast<size_t>(i)])]);
            }
          } else if (t[static_cast<size_t>(i)] !=
                     a.constants[static_cast<size_t>(constant)]) {
            matches = false;
          }
        }
        if (matches) companion.AddTuple(rho_rel, reduced);
      }
      return;
    });
  }
  return companion;
}

bool HasPointedHomomorphism(const PointedStructure& a,
                            const PointedStructure& b) {
  HOMPRES_CHECK_EQ(a.constants.size(), b.constants.size());
  EngineConfig config;
  for (size_t i = 0; i < a.constants.size(); ++i) {
    config.forced.emplace_back(a.constants[i], b.constants[i]);
  }
  // Constants pin elements of the unsplit universe; a constant-free pair
  // of pointed structures still factorizes.
  config.factorize = config.forced.empty();
  Budget unlimited = Budget::Unlimited();
  return Engine::Has(a.structure, b.structure, unlimited, config).Value();
}

}  // namespace hompres
