#include "core/minimal_models.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/parallel_driver.h"
#include "base/subsets.h"
#include "base/thread_pool.h"
#include "cq/cq.h"
#include "engine/engine.h"
#include "structure/isomorphism.h"

namespace hompres {

Outcome<bool> IsMinimalModelBudgeted(const BooleanQuery& q, const Structure& a,
                                     const StructureClass& c,
                                     Budget& budget) {
  if (!budget.Checkpoint()) return Outcome<bool>::StoppedShort(budget.Report());
  if (!c.contains(a) || !q(a)) return Outcome<bool>::Done(false,
                                                          budget.Report());
  // Maximal proper substructures: drop one tuple...
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (int i = 0; i < static_cast<int>(a.Tuples(rel).size()); ++i) {
      if (!budget.Checkpoint()) {
        return Outcome<bool>::StoppedShort(budget.Report());
      }
      const Structure reduced = a.RemoveTuple(rel, i);
      if (c.contains(reduced) && q(reduced)) {
        return Outcome<bool>::Done(false, budget.Report());
      }
    }
  }
  // ... or one isolated element (removing a non-isolated element is
  // subsumed by removing one of its tuples first).
  for (int e : a.IsolatedElements()) {
    if (!budget.Checkpoint()) {
      return Outcome<bool>::StoppedShort(budget.Report());
    }
    const Structure reduced = a.RemoveElement(e);
    if (c.contains(reduced) && q(reduced)) {
      return Outcome<bool>::Done(false, budget.Report());
    }
  }
  return Outcome<bool>::Done(true, budget.Report());
}

bool IsMinimalModel(const BooleanQuery& q, const Structure& a,
                    const StructureClass& c) {
  Budget unlimited = Budget::Unlimited();
  return IsMinimalModelBudgeted(q, a, c, unlimited).Value();
}

namespace {

// Parallel body of MinimalModelsOfUcqBudgeted: candidate quotients are
// collected in the serial enumeration order (one budget step each, as in
// the serial path), their minimality checks fan out, and the surviving
// candidates are merged back in order — so the model list matches the
// serial result exactly.
Outcome<std::vector<Structure>> MinimalModelsOfUcqParallel(
    const UnionOfCq& q, const StructureClass& c, Budget& budget,
    int num_threads) {
  const BooleanQuery query = [&q](const Structure& s) {
    return q.SatisfiedBy(s);
  };
  std::vector<Structure> candidates;
  for (const ConjunctiveQuery& disjunct : q.Disjuncts()) {
    const Structure& canonical = disjunct.Canonical();
    ForEachSetPartition(canonical.UniverseSize(),
                        [&](const std::vector<int>& block) {
                          if (!budget.Checkpoint()) return false;
                          int blocks = 0;
                          for (int b : block) blocks = std::max(blocks, b + 1);
                          Structure image = canonical.Image(block, blocks);
                          if (c.contains(image)) {
                            candidates.push_back(std::move(image));
                          }
                          return true;
                        });
    if (budget.Stopped()) {
      return Outcome<std::vector<Structure>>::StoppedShort(budget.Report());
    }
  }
  if (candidates.empty()) {
    return Outcome<std::vector<Structure>>::Done({}, budget.Report());
  }

  const int num_tasks = static_cast<int>(candidates.size());
  struct TaskState {
    bool completed = false;
    bool minimal = false;
    StopReason stop = StopReason::kNone;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));

  ParallelRegion region(budget, num_tasks);
  ThreadPool pool(std::min(num_threads, num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    pool.Submit([&, i] {
      Budget worker = region.WorkerBudget(i);
      auto minimal = IsMinimalModelBudgeted(
          query, candidates[static_cast<size_t>(i)], c, worker);
      // Task-exclusive state; TaskDone/Join publish it to the joiner.
      TaskState& state = states[static_cast<size_t>(i)];
      if (minimal.IsDone()) {
        state.completed = true;
        state.minimal = minimal.Value();
      } else {
        state.stop = minimal.Report().reason;
      }
      region.TaskDone();
    });
  }
  const bool external_cancel = region.Join(pool);

  WorkerStopScan scan;
  for (const TaskState& state : states) {
    scan.Observe(state.completed, state.stop);
  }
  if (scan.AnyIncomplete()) {
    return Outcome<std::vector<Structure>>::StoppedShort(
        scan.StoppedReport(budget, external_cancel));
  }
  std::vector<Structure> models;
  for (int i = 0; i < num_tasks; ++i) {
    if (!states[static_cast<size_t>(i)].minimal) continue;
    Structure& image = candidates[static_cast<size_t>(i)];
    bool duplicate = false;
    for (const Structure& seen : models) {
      if (AreIsomorphic(seen, image)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) models.push_back(std::move(image));
  }
  return Outcome<std::vector<Structure>>::Done(std::move(models),
                                               budget.Report());
}

}  // namespace

Outcome<std::vector<Structure>> MinimalModelsOfUcqBudgeted(
    const UnionOfCq& q, const StructureClass& c, Budget& budget,
    int num_threads) {
  HOMPRES_CHECK_EQ(q.Arity(), 0);
  if (num_threads > 0) {
    return MinimalModelsOfUcqParallel(q, c, budget, num_threads);
  }
  const BooleanQuery query = [&q](const Structure& s) {
    return q.SatisfiedBy(s);
  };
  std::vector<Structure> models;
  for (const ConjunctiveQuery& disjunct : q.Disjuncts()) {
    const Structure& canonical = disjunct.Canonical();
    ForEachSetPartition(canonical.UniverseSize(), [&](const std::vector<
                                                      int>& block) {
      if (!budget.Checkpoint()) return false;
      int blocks = 0;
      for (int b : block) blocks = std::max(blocks, b + 1);
      const Structure image = canonical.Image(block, blocks);
      if (!c.contains(image)) return true;
      auto minimal = IsMinimalModelBudgeted(query, image, c, budget);
      if (!minimal.IsDone()) return false;
      if (!minimal.Value()) return true;
      for (const Structure& seen : models) {
        if (AreIsomorphic(seen, image)) return true;
      }
      models.push_back(image);
      return true;
    });
    if (budget.Stopped()) {
      return Outcome<std::vector<Structure>>::StoppedShort(budget.Report());
    }
  }
  return Outcome<std::vector<Structure>>::Done(std::move(models),
                                               budget.Report());
}

std::vector<Structure> MinimalModelsOfUcq(const UnionOfCq& q,
                                          const StructureClass& c,
                                          int num_threads) {
  Budget unlimited = Budget::Unlimited();
  return std::move(MinimalModelsOfUcqBudgeted(q, c, unlimited, num_threads))
      .TakeValue();
}

UnionOfCq UcqFromMinimalModels(const std::vector<Structure>& models) {
  std::vector<ConjunctiveQuery> disjuncts;
  disjuncts.reserve(models.size());
  for (const Structure& model : models) {
    disjuncts.push_back(ConjunctiveQuery::BooleanQueryOf(model));
  }
  return UnionOfCq(std::move(disjuncts), 0);
}

namespace {

// Enumerates all structures with exactly n elements over `vocabulary` by
// iterating over all subsets of the possible tuples. One budget step per
// structure generated. Returns false iff fn or the budget stopped the
// enumeration; budget.Stopped() disambiguates.
bool ForEachStructureOfSize(const Vocabulary& vocabulary, int n,
                            Budget& budget,
                            const std::function<bool(const Structure&)>& fn) {
  // Collect the full tuple space.
  std::vector<std::pair<int, Tuple>> space;
  for (int rel = 0; rel < vocabulary.NumRelations(); ++rel) {
    ForEachTuple(n, vocabulary.Arity(rel), [&](const std::vector<int>& t) {
      space.emplace_back(rel, t);
      return true;
    });
  }
  HOMPRES_CHECK_LE(space.size(), 24u);  // 2^24 structures is the ceiling
  const uint64_t limit = 1ULL << space.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (!budget.Checkpoint()) return false;
    Structure a(vocabulary, n);
    for (size_t bit = 0; bit < space.size(); ++bit) {
      if (mask & (1ULL << bit)) {
        a.AddTuple(space[bit].first, space[bit].second);
      }
    }
    if (!fn(a)) return false;
  }
  return true;
}

}  // namespace

Outcome<bool> ForEachStructureInClassBudgeted(
    const Vocabulary& vocabulary, int max_universe, const StructureClass& c,
    Budget& budget, const std::function<bool(const Structure&)>& fn) {
  for (int n = 0; n <= max_universe; ++n) {
    const bool completed =
        ForEachStructureOfSize(vocabulary, n, budget, [&](const Structure& a) {
          if (!c.contains(a)) return true;
          return fn(a);
        });
    if (budget.Stopped()) {
      return Outcome<bool>::StoppedShort(budget.Report());
    }
    if (!completed) return Outcome<bool>::Done(false, budget.Report());
  }
  return Outcome<bool>::Done(true, budget.Report());
}

bool ForEachStructureInClass(const Vocabulary& vocabulary, int max_universe,
                             const StructureClass& c,
                             const std::function<bool(const Structure&)>& fn) {
  Budget unlimited = Budget::Unlimited();
  return ForEachStructureInClassBudgeted(vocabulary, max_universe, c,
                                         unlimited, fn)
      .Value();
}

Outcome<std::vector<Structure>> MinimalModelsBySearchBudgeted(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int max_universe, Budget& budget,
    std::vector<Structure>* partial) {
  std::vector<Structure> models;
  if (partial != nullptr) partial->clear();
  auto scan = ForEachStructureInClassBudgeted(
      vocabulary, max_universe, c, budget, [&](const Structure& a) {
        if (!q(a)) return true;
        auto minimal = IsMinimalModelBudgeted(q, a, c, budget);
        if (!minimal.IsDone()) return false;
        if (!minimal.Value()) return true;
        for (const Structure& seen : models) {
          if (AreIsomorphic(seen, a)) return true;
        }
        models.push_back(a);
        if (partial != nullptr) partial->push_back(a);
        return true;
      });
  if (!scan.IsDone()) {
    return Outcome<std::vector<Structure>>::StoppedShort(budget.Report());
  }
  return Outcome<std::vector<Structure>>::Done(std::move(models),
                                               budget.Report());
}

std::vector<Structure> MinimalModelsBySearch(const BooleanQuery& q,
                                             const Vocabulary& vocabulary,
                                             const StructureClass& c,
                                             int max_universe) {
  Budget unlimited = Budget::Unlimited();
  return std::move(MinimalModelsBySearchBudgeted(q, vocabulary, c,
                                                 max_universe, unlimited))
      .TakeValue();
}

bool CheckPreservedUnderHomomorphisms(const BooleanQuery& q,
                                      const std::vector<Structure>& samples) {
  std::vector<bool> value;
  value.reserve(samples.size());
  for (const Structure& s : samples) value.push_back(q(s));
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!value[i]) continue;
    for (size_t j = 0; j < samples.size(); ++j) {
      if (i == j || value[j]) continue;
      Budget unlimited = Budget::Unlimited();
      if (Engine::Has(samples[i], samples[j], unlimited).Value()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace hompres
