#include "core/minimal_models.h"

#include <algorithm>

#include "base/check.h"
#include "base/subsets.h"
#include "cq/cq.h"
#include "hom/homomorphism.h"
#include "structure/isomorphism.h"

namespace hompres {

bool IsMinimalModel(const BooleanQuery& q, const Structure& a,
                    const StructureClass& c) {
  if (!c.contains(a) || !q(a)) return false;
  // Maximal proper substructures: drop one tuple...
  for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
    for (int i = 0; i < static_cast<int>(a.Tuples(rel).size()); ++i) {
      const Structure reduced = a.RemoveTuple(rel, i);
      if (c.contains(reduced) && q(reduced)) return false;
    }
  }
  // ... or one isolated element (removing a non-isolated element is
  // subsumed by removing one of its tuples first).
  for (int e : a.IsolatedElements()) {
    const Structure reduced = a.RemoveElement(e);
    if (c.contains(reduced) && q(reduced)) return false;
  }
  return true;
}

std::vector<Structure> MinimalModelsOfUcq(const UnionOfCq& q,
                                          const StructureClass& c) {
  HOMPRES_CHECK_EQ(q.Arity(), 0);
  const BooleanQuery query = [&q](const Structure& s) {
    return q.SatisfiedBy(s);
  };
  std::vector<Structure> models;
  for (const ConjunctiveQuery& disjunct : q.Disjuncts()) {
    const Structure& canonical = disjunct.Canonical();
    ForEachSetPartition(canonical.UniverseSize(), [&](const std::vector<
                                                      int>& block) {
      int blocks = 0;
      for (int b : block) blocks = std::max(blocks, b + 1);
      const Structure image = canonical.Image(block, blocks);
      if (!c.contains(image)) return true;
      if (!IsMinimalModel(query, image, c)) return true;
      for (const Structure& seen : models) {
        if (AreIsomorphic(seen, image)) return true;
      }
      models.push_back(image);
      return true;
    });
  }
  return models;
}

UnionOfCq UcqFromMinimalModels(const std::vector<Structure>& models) {
  std::vector<ConjunctiveQuery> disjuncts;
  disjuncts.reserve(models.size());
  for (const Structure& model : models) {
    disjuncts.push_back(ConjunctiveQuery::BooleanQueryOf(model));
  }
  return UnionOfCq(std::move(disjuncts), 0);
}

namespace {

// Enumerates all structures with exactly n elements over `vocabulary` by
// iterating over all subsets of the possible tuples.
bool ForEachStructureOfSize(const Vocabulary& vocabulary, int n,
                            const std::function<bool(const Structure&)>& fn) {
  // Collect the full tuple space.
  std::vector<std::pair<int, Tuple>> space;
  for (int rel = 0; rel < vocabulary.NumRelations(); ++rel) {
    ForEachTuple(n, vocabulary.Arity(rel), [&](const std::vector<int>& t) {
      space.emplace_back(rel, t);
      return true;
    });
  }
  HOMPRES_CHECK_LE(space.size(), 24u);  // 2^24 structures is the ceiling
  const uint64_t limit = 1ULL << space.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Structure a(vocabulary, n);
    for (size_t bit = 0; bit < space.size(); ++bit) {
      if (mask & (1ULL << bit)) {
        a.AddTuple(space[bit].first, space[bit].second);
      }
    }
    if (!fn(a)) return false;
  }
  return true;
}

}  // namespace

bool ForEachStructureInClass(const Vocabulary& vocabulary, int max_universe,
                             const StructureClass& c,
                             const std::function<bool(const Structure&)>& fn) {
  for (int n = 0; n <= max_universe; ++n) {
    const bool completed =
        ForEachStructureOfSize(vocabulary, n, [&](const Structure& a) {
          if (!c.contains(a)) return true;
          return fn(a);
        });
    if (!completed) return false;
  }
  return true;
}

std::vector<Structure> MinimalModelsBySearch(const BooleanQuery& q,
                                             const Vocabulary& vocabulary,
                                             const StructureClass& c,
                                             int max_universe) {
  std::vector<Structure> models;
  ForEachStructureInClass(vocabulary, max_universe, c,
                          [&](const Structure& a) {
                            if (!q(a)) return true;
                            if (!IsMinimalModel(q, a, c)) return true;
                            for (const Structure& seen : models) {
                              if (AreIsomorphic(seen, a)) return true;
                            }
                            models.push_back(a);
                            return true;
                          });
  return models;
}

bool CheckPreservedUnderHomomorphisms(const BooleanQuery& q,
                                      const std::vector<Structure>& samples) {
  std::vector<bool> value;
  value.reserve(samples.size());
  for (const Structure& s : samples) value.push_back(q(s));
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!value[i]) continue;
    for (size_t j = 0; j < samples.size(); ++j) {
      if (i == j || value[j]) continue;
      if (HasHomomorphism(samples[i], samples[j])) return false;
    }
  }
  return true;
}

}  // namespace hompres
