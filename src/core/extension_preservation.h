// Preservation under extensions (the paper's Section 8 pointer to
// Atserias-Dawar-Grohe, ICALP 2005).
//
// The Łoś-Tarski theorem — preserved under extensions iff existential —
// FAILS on the class of all finite structures (Tait; Gurevich), but holds
// on well-behaved classes. This module provides the machinery to explore
// it: extension-minimal models (no proper INDUCED substructure satisfies
// q), the existential sentence built from them (a disjunction of
// "contains an induced copy of M" diagrams, using negated atoms and
// inequalities), and the end-to-end pipeline mirroring
// PreservationPipeline.

#ifndef HOMPRES_CORE_EXTENSION_PRESERVATION_H_
#define HOMPRES_CORE_EXTENSION_PRESERVATION_H_

#include <vector>

#include "core/classes.h"
#include "core/minimal_models.h"
#include "fo/formula.h"

namespace hompres {

// True iff q(A) holds and no proper induced substructure of A inside C
// satisfies q. (For queries preserved under extensions on C and C closed
// under induced substructures, checking one-element removals suffices;
// this helper checks exactly those.)
bool IsExtensionMinimalModel(const BooleanQuery& q, const Structure& a,
                             const StructureClass& c);

// All extension-minimal models of q in C with at most `max_universe`
// elements, up to isomorphism (exhaustive scan, small n only).
std::vector<Structure> ExtensionMinimalModelsBySearch(
    const BooleanQuery& q, const Vocabulary& vocabulary,
    const StructureClass& c, int max_universe);

// The existential sentence "some M_i embeds as an induced substructure":
// for each model, ∃x̄ (pairwise-distinct ∧ positive diagram ∧ negated
// non-atoms). CHECK-fails on an empty model list (false is not
// existential-definable this way).
FormulaPtr ExistentialSentenceFromModels(
    const std::vector<Structure>& models);

struct ExtensionPreservationResult {
  std::vector<Structure> minimal_models;
  FormulaPtr equivalent_existential;  // null when no models were found
  bool verified = false;
  int search_universe = 0;
  int verify_universe = 0;
};

// The Łoś-Tarski analogue of PreservationPipeline: sentence + class ⇒
// candidate existential sentence, verified exhaustively on C up to the
// cap. For sentences preserved under extensions on C this verifies; for
// others (or when the theorem genuinely fails on C) it reports
// verified=false.
ExtensionPreservationResult ExtensionPreservationPipeline(
    const FormulaPtr& sentence, const Vocabulary& vocabulary,
    const StructureClass& c, int search_universe, int verify_universe);

}  // namespace hompres

#endif  // HOMPRES_CORE_EXTENSION_PRESERVATION_H_
