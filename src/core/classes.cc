#include "core/classes.h"

#include "graph/minor.h"
#include "hom/core.h"
#include "structure/gaifman.h"
#include "tw/tree_decomposition.h"

namespace hompres {

StructureClass AllStructuresClass() {
  return {"all", [](const Structure&) { return true; }};
}

StructureClass BoundedDegreeClass(int k) {
  return {"degree<=" + std::to_string(k),
          [k](const Structure& a) { return StructureDegree(a) <= k; }};
}

StructureClass BoundedTreewidthClass(int k) {
  return {"treewidth<" + std::to_string(k), [k](const Structure& a) {
            return StructureTreewidth(a) < k;
          }};
}

StructureClass ExcludesMinorClass(int h) {
  return {"no-K" + std::to_string(h) + "-minor",
          [h](const Structure& a) {
            return !HasCompleteMinor(GaifmanGraph(a), h);
          }};
}

StructureClass CoresBoundedDegreeClass(int k) {
  return {"core-degree<=" + std::to_string(k),
          [k](const Structure& a) {
            return StructureDegree(ComputeCore(a)) <= k;
          }};
}

StructureClass CoresBoundedTreewidthClass(int k) {
  return {"core-treewidth<" + std::to_string(k),
          [k](const Structure& a) {
            return StructureTreewidth(ComputeCore(a)) < k;
          }};
}

StructureClass CoresExcludeMinorClass(int h) {
  return {"core-no-K" + std::to_string(h) + "-minor",
          [h](const Structure& a) {
            return !HasCompleteMinor(GaifmanGraph(ComputeCore(a)), h);
          }};
}

bool CheckClosedUnderSubstructures(const StructureClass& c,
                                   const std::vector<Structure>& samples) {
  for (const Structure& a : samples) {
    if (!c.contains(a)) return false;
    for (int e = 0; e < a.UniverseSize(); ++e) {
      if (!c.contains(a.RemoveElement(e))) return false;
    }
    for (int rel = 0; rel < a.GetVocabulary().NumRelations(); ++rel) {
      for (int i = 0; i < static_cast<int>(a.Tuples(rel).size()); ++i) {
        if (!c.contains(a.RemoveTuple(rel, i))) return false;
      }
    }
  }
  return true;
}

bool CheckClosedUnderDisjointUnions(const StructureClass& c,
                                    const std::vector<Structure>& samples) {
  for (const Structure& a : samples) {
    for (const Structure& b : samples) {
      if (!c.contains(a.DisjointUnion(b))) return false;
    }
  }
  return true;
}

}  // namespace hompres
