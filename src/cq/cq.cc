#include "cq/cq.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "base/budget.h"
#include "base/check.h"
#include "engine/engine.h"

namespace hompres {

bool NullaryAtomsHold(const Structure& pattern, const Structure& b) {
  const Vocabulary& vocabulary = pattern.GetVocabulary();
  for (int rel = 0; rel < vocabulary.NumRelations(); ++rel) {
    if (vocabulary.Arity(rel) != 0) continue;
    if (!pattern.Tuples(rel).empty() && b.Tuples(rel).empty()) return false;
  }
  return true;
}

ConjunctiveQuery::ConjunctiveQuery(Structure canonical,
                                   std::vector<int> free_elements)
    : canonical_(std::move(canonical)),
      free_elements_(std::move(free_elements)) {
  for (int e : free_elements_) {
    HOMPRES_CHECK_GE(e, 0);
    HOMPRES_CHECK_LT(e, canonical_.UniverseSize());
  }
}

ConjunctiveQuery ConjunctiveQuery::BooleanQueryOf(Structure canonical) {
  return ConjunctiveQuery(std::move(canonical), {});
}

bool ConjunctiveQuery::SatisfiedBy(const Structure& b) const {
  if (!NullaryAtomsHold(canonical_, b)) return false;
  // Satisfaction is a pure has-hom question; the pipeline's minimal-model
  // and verification scans ask it about the same (canonical, b) pairs
  // over and over, so consult the global result cache.
  EngineConfig config;
  config.use_cache = true;
  Budget unlimited = Budget::Unlimited();
  return Engine::Has(canonical_, b, unlimited, config).Value();
}

std::vector<Tuple> ConjunctiveQuery::Evaluate(const Structure& b) const {
  if (!NullaryAtomsHold(canonical_, b)) return {};
  std::vector<Tuple> answers;
  Budget unlimited = Budget::Unlimited();
  Engine::Enumerate(canonical_, b, unlimited, [&](const std::vector<int>& h) {
    Tuple answer;
    answer.reserve(free_elements_.size());
    for (int e : free_elements_) {
      answer.push_back(h[static_cast<size_t>(e)]);
    }
    answers.push_back(std::move(answer));
    return true;
  });
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  std::vector<bool> is_free(static_cast<size_t>(canonical_.UniverseSize()),
                            false);
  for (int e : free_elements_) is_free[static_cast<size_t>(e)] = true;
  for (int e = 0; e < canonical_.UniverseSize(); ++e) {
    if (!is_free[static_cast<size_t>(e)]) out << "Ex" << e << ' ';
  }
  out << '(';
  bool first = true;
  for (int rel = 0; rel < canonical_.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : canonical_.Tuples(rel)) {
      if (!first) out << " & ";
      first = false;
      out << canonical_.GetVocabulary().Name(rel) << '(';
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ',';
        out << 'x' << t[i];
      }
      out << ')';
    }
  }
  if (first) out << "true";
  out << ')';
  return out.str();
}

Outcome<bool> CqContainedBudgeted(const ConjunctiveQuery& q1,
                                  const ConjunctiveQuery& q2, Budget& budget) {
  HOMPRES_CHECK_EQ(q1.Arity(), q2.Arity());
  // Nullary atoms constrain no variable, so the kernel's propagation
  // never sees them — and with an empty q2 universe it emits the empty
  // map unconditionally. Atoms must still map onto same-relation atoms:
  // a 0-ary tuple of q2 absent from q1 is a certain "no" here.
  const Structure& sub = q1.Canonical();
  const Structure& sup = q2.Canonical();
  if (!NullaryAtomsHold(sup, sub)) {
    return Outcome<bool>::Done(false, budget.Report());
  }
  EngineConfig config;
  for (int i = 0; i < q2.Arity(); ++i) {
    config.forced.emplace_back(q2.FreeElements()[static_cast<size_t>(i)],
                               q1.FreeElements()[static_cast<size_t>(i)]);
  }
  // Forced pairs pin the unsplit universe; a boolean containment (no
  // free variables) still factorizes.
  config.factorize = config.forced.empty();
  return Engine::Has(sup, sub, budget, config);
}

bool CqContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  Budget unlimited = Budget::Unlimited();
  return CqContainedBudgeted(q1, q2, unlimited).Value();
}

Outcome<bool> CqEquivalentBudgeted(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2,
                                   Budget& budget) {
  auto forward = CqContainedBudgeted(q1, q2, budget);
  if (!forward.IsDone()) return forward;
  if (!forward.Value()) return Outcome<bool>::Done(false, budget.Report());
  return CqContainedBudgeted(q2, q1, budget);
}

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqContained(q1, q2) && CqContained(q2, q1);
}

namespace {

// Tries to find a one-step reduction of q's canonical structure (remove
// one non-free element, or one tuple) that stays equivalent to q.
// Returns false with a stopped budget when the search ran out mid-scan.
bool FindOneStepReduction(const ConjunctiveQuery& q, Budget& budget,
                          ConjunctiveQuery* out) {
  const Structure& canonical = q.Canonical();
  std::vector<bool> is_free(static_cast<size_t>(canonical.UniverseSize()),
                            false);
  for (int e : q.FreeElements()) is_free[static_cast<size_t>(e)] = true;
  for (int e = 0; e < canonical.UniverseSize(); ++e) {
    if (is_free[static_cast<size_t>(e)]) continue;
    std::vector<int> old_to_new;
    Structure candidate = canonical.RemoveElement(e, &old_to_new);
    std::vector<int> free_elements;
    for (int f : q.FreeElements()) {
      free_elements.push_back(old_to_new[static_cast<size_t>(f)]);
    }
    ConjunctiveQuery reduced(std::move(candidate), std::move(free_elements));
    auto equivalent = CqEquivalentBudgeted(q, reduced, budget);
    if (!equivalent.IsDone()) return false;
    if (equivalent.Value()) {
      *out = std::move(reduced);
      return true;
    }
  }
  for (int rel = 0; rel < canonical.GetVocabulary().NumRelations(); ++rel) {
    const int count = static_cast<int>(canonical.Tuples(rel).size());
    for (int i = 0; i < count; ++i) {
      ConjunctiveQuery reduced(canonical.RemoveTuple(rel, i),
                               q.FreeElements());
      auto equivalent = CqEquivalentBudgeted(q, reduced, budget);
      if (!equivalent.IsDone()) return false;
      if (equivalent.Value()) {
        *out = std::move(reduced);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Outcome<ConjunctiveQuery> MinimizeCqBudgeted(const ConjunctiveQuery& q,
                                             Budget& budget) {
  ConjunctiveQuery current = q;
  ConjunctiveQuery next = q;
  while (FindOneStepReduction(current, budget, &next)) {
    current = next;
  }
  if (budget.Stopped()) {
    return Outcome<ConjunctiveQuery>::StoppedShort(budget.Report());
  }
  return Outcome<ConjunctiveQuery>::Done(std::move(current), budget.Report());
}

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q) {
  Budget unlimited = Budget::Unlimited();
  ConjunctiveQuery current =
      std::move(MinimizeCqBudgeted(q, unlimited)).TakeValue();
  HOMPRES_CHECK(CqEquivalent(q, current));
  return current;
}

}  // namespace hompres
