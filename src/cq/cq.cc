#include "cq/cq.h"

#include <algorithm>
#include <sstream>

#include "base/budget.h"
#include "base/check.h"
#include "engine/engine.h"

namespace hompres {

ConjunctiveQuery::ConjunctiveQuery(Structure canonical,
                                   std::vector<int> free_elements)
    : canonical_(std::move(canonical)),
      free_elements_(std::move(free_elements)) {
  for (int e : free_elements_) {
    HOMPRES_CHECK_GE(e, 0);
    HOMPRES_CHECK_LT(e, canonical_.UniverseSize());
  }
}

ConjunctiveQuery ConjunctiveQuery::BooleanQueryOf(Structure canonical) {
  return ConjunctiveQuery(std::move(canonical), {});
}

bool ConjunctiveQuery::SatisfiedBy(const Structure& b) const {
  // Satisfaction is a pure has-hom question; the pipeline's minimal-model
  // and verification scans ask it about the same (canonical, b) pairs
  // over and over, so consult the global result cache.
  EngineConfig config;
  config.use_cache = true;
  Budget unlimited = Budget::Unlimited();
  return Engine::Has(canonical_, b, unlimited, config).Value();
}

std::vector<Tuple> ConjunctiveQuery::Evaluate(const Structure& b) const {
  std::vector<Tuple> answers;
  Budget unlimited = Budget::Unlimited();
  Engine::Enumerate(canonical_, b, unlimited, [&](const std::vector<int>& h) {
    Tuple answer;
    answer.reserve(free_elements_.size());
    for (int e : free_elements_) {
      answer.push_back(h[static_cast<size_t>(e)]);
    }
    answers.push_back(std::move(answer));
    return true;
  });
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  std::vector<bool> is_free(static_cast<size_t>(canonical_.UniverseSize()),
                            false);
  for (int e : free_elements_) is_free[static_cast<size_t>(e)] = true;
  for (int e = 0; e < canonical_.UniverseSize(); ++e) {
    if (!is_free[static_cast<size_t>(e)]) out << "Ex" << e << ' ';
  }
  out << '(';
  bool first = true;
  for (int rel = 0; rel < canonical_.GetVocabulary().NumRelations(); ++rel) {
    for (const Tuple& t : canonical_.Tuples(rel)) {
      if (!first) out << " & ";
      first = false;
      out << canonical_.GetVocabulary().Name(rel) << '(';
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ',';
        out << 'x' << t[i];
      }
      out << ')';
    }
  }
  if (first) out << "true";
  out << ')';
  return out.str();
}

bool CqContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  HOMPRES_CHECK_EQ(q1.Arity(), q2.Arity());
  EngineConfig config;
  for (int i = 0; i < q2.Arity(); ++i) {
    config.forced.emplace_back(q2.FreeElements()[static_cast<size_t>(i)],
                               q1.FreeElements()[static_cast<size_t>(i)]);
  }
  // Forced pairs pin the unsplit universe; a boolean containment (no
  // free variables) still factorizes.
  config.factorize = config.forced.empty();
  Budget unlimited = Budget::Unlimited();
  return Engine::Has(q2.Canonical(), q1.Canonical(), unlimited, config)
      .Value();
}

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqContained(q1, q2) && CqContained(q2, q1);
}

namespace {

// Tries to find a one-step reduction of q's canonical structure (remove
// one non-free element, or one tuple) that stays equivalent to q.
bool FindOneStepReduction(const ConjunctiveQuery& q, ConjunctiveQuery* out) {
  const Structure& canonical = q.Canonical();
  std::vector<bool> is_free(static_cast<size_t>(canonical.UniverseSize()),
                            false);
  for (int e : q.FreeElements()) is_free[static_cast<size_t>(e)] = true;
  for (int e = 0; e < canonical.UniverseSize(); ++e) {
    if (is_free[static_cast<size_t>(e)]) continue;
    std::vector<int> old_to_new;
    Structure candidate = canonical.RemoveElement(e, &old_to_new);
    std::vector<int> free_elements;
    for (int f : q.FreeElements()) {
      free_elements.push_back(old_to_new[static_cast<size_t>(f)]);
    }
    ConjunctiveQuery reduced(std::move(candidate), std::move(free_elements));
    if (CqEquivalent(q, reduced)) {
      *out = std::move(reduced);
      return true;
    }
  }
  for (int rel = 0; rel < canonical.GetVocabulary().NumRelations(); ++rel) {
    const int count = static_cast<int>(canonical.Tuples(rel).size());
    for (int i = 0; i < count; ++i) {
      ConjunctiveQuery reduced(canonical.RemoveTuple(rel, i),
                               q.FreeElements());
      if (CqEquivalent(q, reduced)) {
        *out = std::move(reduced);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q;
  ConjunctiveQuery next = q;
  while (FindOneStepReduction(current, &next)) {
    current = next;
  }
  HOMPRES_CHECK(CqEquivalent(q, current));
  return current;
}

}  // namespace hompres
