#include "cq/decomposed_eval.h"

#include <algorithm>
#include <set>

#include "base/check.h"
#include "base/subsets.h"
#include "structure/gaifman.h"
#include "tw/nice.h"

namespace hompres {

namespace {

// Partial assignments over a (sorted) bag are vectors aligned with the
// bag's order.
using AssignmentSet = std::set<std::vector<int>>;

class DecompositionDp {
 public:
  DecompositionDp(const Structure& canonical, const Structure& b,
                  const NiceTreeDecomposition& nice)
      : canonical_(canonical), b_(b), nice_(nice) {}

  bool Run() { return !Solve(nice_.root).empty(); }

 private:
  // All tuples of the canonical structure fully contained in `bag` that
  // mention `fresh`.
  std::vector<std::pair<int, Tuple>> RelevantTuples(
      const std::vector<int>& bag, int fresh) const {
    std::vector<std::pair<int, Tuple>> result;
    for (int rel = 0; rel < canonical_.GetVocabulary().NumRelations();
         ++rel) {
      for (const Tuple& t : canonical_.Tuples(rel)) {
        bool mentions_fresh = false;
        bool inside = true;
        for (int e : t) {
          mentions_fresh |= (e == fresh);
          inside &= std::binary_search(bag.begin(), bag.end(), e);
        }
        if (mentions_fresh && inside) result.emplace_back(rel, t);
      }
    }
    return result;
  }

  AssignmentSet Solve(int node) const {
    const auto& bag = nice_.bags[static_cast<size_t>(node)];
    const auto& children = nice_.children[static_cast<size_t>(node)];
    switch (nice_.kinds[static_cast<size_t>(node)]) {
      case NiceNodeKind::kLeaf:
        return {std::vector<int>{}};
      case NiceNodeKind::kIntroduce: {
        const auto& child_bag =
            nice_.bags[static_cast<size_t>(children[0])];
        // The introduced canonical element.
        int fresh = -1;
        for (int e : bag) {
          if (!std::binary_search(child_bag.begin(), child_bag.end(), e)) {
            fresh = e;
            break;
          }
        }
        HOMPRES_CHECK_GE(fresh, 0);
        const size_t fresh_pos = static_cast<size_t>(
            std::lower_bound(bag.begin(), bag.end(), fresh) - bag.begin());
        const auto tuples = RelevantTuples(bag, fresh);
        const AssignmentSet below = Solve(children[0]);
        AssignmentSet result;
        for (const auto& assignment : below) {
          for (int value = 0; value < b_.UniverseSize(); ++value) {
            std::vector<int> extended = assignment;
            extended.insert(extended.begin() +
                                static_cast<long>(fresh_pos),
                            value);
            // Check every canonical tuple inside the bag that mentions
            // the fresh element (others were checked at their own
            // introduce nodes).
            bool consistent = true;
            for (const auto& [rel, t] : tuples) {
              Tuple image;
              image.reserve(t.size());
              for (int e : t) {
                const size_t pos = static_cast<size_t>(
                    std::lower_bound(bag.begin(), bag.end(), e) -
                    bag.begin());
                image.push_back(extended[pos]);
              }
              if (!b_.HasTuple(rel, image)) {
                consistent = false;
                break;
              }
            }
            if (consistent) result.insert(std::move(extended));
          }
        }
        return result;
      }
      case NiceNodeKind::kForget: {
        const auto& child_bag =
            nice_.bags[static_cast<size_t>(children[0])];
        // Position of the forgotten element in the child bag.
        size_t drop_pos = 0;
        for (size_t i = 0; i < child_bag.size(); ++i) {
          if (!std::binary_search(bag.begin(), bag.end(), child_bag[i])) {
            drop_pos = i;
            break;
          }
        }
        AssignmentSet result;
        for (const auto& assignment : Solve(children[0])) {
          std::vector<int> projected = assignment;
          projected.erase(projected.begin() + static_cast<long>(drop_pos));
          result.insert(std::move(projected));
        }
        return result;
      }
      case NiceNodeKind::kJoin: {
        const AssignmentSet left = Solve(children[0]);
        if (left.empty()) return {};
        const AssignmentSet right = Solve(children[1]);
        AssignmentSet result;
        for (const auto& assignment : left) {
          if (right.count(assignment) > 0) result.insert(assignment);
        }
        return result;
      }
    }
    HOMPRES_CHECK(false);
    return {};
  }

  const Structure& canonical_;
  const Structure& b_;
  const NiceTreeDecomposition& nice_;
};

}  // namespace

bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b,
                            const TreeDecomposition& td) {
  HOMPRES_CHECK(q.IsBoolean());
  HOMPRES_CHECK(q.Canonical().GetVocabulary() == b.GetVocabulary());
  const Graph gaifman = GaifmanGraph(q.Canonical());
  HOMPRES_CHECK(IsValidTreeDecomposition(gaifman, td));
  if (q.Canonical().UniverseSize() > 0 && b.UniverseSize() == 0) {
    return false;
  }
  const NiceTreeDecomposition nice = MakeNiceDecomposition(gaifman, td);
  return DecompositionDp(q.Canonical(), b, nice).Run();
}

bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b) {
  return SatisfiedByTreewidthDp(
      q, b, ExactTreeDecomposition(GaifmanGraph(q.Canonical())));
}

}  // namespace hompres
