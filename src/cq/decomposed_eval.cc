#include "cq/decomposed_eval.h"

#include <algorithm>
#include <numeric>

#include "base/bitset64.h"
#include "base/check.h"
#include "base/subsets.h"
#include "structure/gaifman.h"
#include "structure/relation_index.h"
#include "tw/nice.h"

namespace hompres {

namespace {

// Partial assignments over a (sorted) bag, aligned with the bag's order
// and stored row-major in one flat buffer: `width` ints per assignment,
// lexicographically sorted and duplicate-free (see Normalize). The flat
// layout replaces a std::set<std::vector<int>> — no per-assignment node
// or vector allocation, sequential scans instead of pointer chasing, and
// joins become linear merges of sorted rows. Both forms hold the same
// set of assignments at every node, so the DP's verdict is unchanged.
//
// `rows` is explicit rather than data.size()/width: width-0 tables (the
// leaf, and any bag that forgets everything) still distinguish "the one
// empty assignment" from "no assignments".
struct AssignmentTable {
  int width = 0;
  size_t rows = 0;
  std::vector<int> data;

  const int* Row(size_t r) const {
    return data.data() + r * static_cast<size_t>(width);
  }
};

bool RowLess(const int* a, const int* b, int width) {
  return std::lexicographical_compare(a, a + width, b, b + width);
}
bool RowEq(const int* a, const int* b, int width) {
  return std::equal(a, a + width, b);
}

// Canonical form: rows sorted lexicographically, duplicates dropped.
void Normalize(AssignmentTable& t) {
  if (t.width == 0) {
    t.rows = t.rows > 0 ? 1 : 0;
    return;
  }
  if (t.rows <= 1) return;
  std::vector<size_t> order(t.rows);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return RowLess(t.Row(x), t.Row(y), t.width);
  });
  std::vector<int> packed;
  packed.reserve(t.data.size());
  size_t kept = 0;
  for (const size_t r : order) {
    const int* row = t.Row(r);
    if (kept > 0 &&
        RowEq(packed.data() + (kept - 1) * static_cast<size_t>(t.width), row,
              t.width)) {
      continue;
    }
    packed.insert(packed.end(), row, row + t.width);
    ++kept;
  }
  t.data = std::move(packed);
  t.rows = kept;
}

// A canonical tuple relevant to an introduce node: fully contained in the
// bag and mentioning the introduced element. `bag_pos[j]` is the bag
// position of entry j; `is_fresh[j]` marks the entries equal to the
// introduced element.
struct RelevantTuple {
  int rel;
  Tuple t;
  std::vector<int> bag_pos;
  std::vector<bool> is_fresh;
};

class DecompositionDp {
 public:
  DecompositionDp(const Structure& canonical, const Structure& b,
                  const NiceTreeDecomposition& nice)
      : canonical_(canonical),
        b_(b),
        nice_(nice),
        canonical_index_(canonical.Index()),
        b_index_(b.Index()) {}

  bool Run() { return Solve(nice_.root).rows > 0; }

 private:
  // All tuples of the canonical structure fully contained in `bag` that
  // mention `fresh`, found through the inverted lists instead of a scan
  // over every canonical tuple per introduce node.
  std::vector<RelevantTuple> RelevantTuples(const std::vector<int>& bag,
                                            int fresh) const {
    std::vector<RelevantTuple> result;
    for (int rel = 0; rel < canonical_.GetVocabulary().NumRelations();
         ++rel) {
      const auto& tuples = canonical_.Tuples(rel);
      for (int id : canonical_index_.TuplesMentioning(rel, fresh)) {
        const Tuple& t = tuples[static_cast<size_t>(id)];
        RelevantTuple r{rel, t, {}, {}};
        r.bag_pos.reserve(t.size());
        r.is_fresh.reserve(t.size());
        bool inside = true;
        for (int e : t) {
          const auto it = std::lower_bound(bag.begin(), bag.end(), e);
          if (it == bag.end() || *it != e) {
            inside = false;
            break;
          }
          r.bag_pos.push_back(static_cast<int>(it - bag.begin()));
          r.is_fresh.push_back(e == fresh);
        }
        if (inside) result.push_back(std::move(r));
      }
    }
    return result;
  }

  // Fills `out` with the values v such that the image of `r.t` under the
  // extended assignment (fresh -> v, other bag elements -> their value in
  // `assignment`, a table row aligned with the bag minus `fresh`) is a
  // tuple of B. The enumeration runs over the shortest inverted list of a
  // bound position (or the whole relation if every position is fresh); a
  // value qualifies exactly when HasTuple would accept the image, and the
  // packed set iterates ascending, so the DP tables match the old
  // sorted-vector construction bit for bit.
  void CandidateValues(const RelevantTuple& r, const int* assignment,
                       size_t fresh_pos, Bitset64& out) const {
    const size_t arity = r.t.size();
    // Bound value per position (-1 at fresh positions). Reused scratch:
    // CandidateValues runs once per (assignment, tuple) in the introduce
    // loop, and a fresh heap allocation per call would dominate the
    // word-wise intersection it feeds.
    std::vector<int>& bound = bound_scratch_;
    bound.assign(arity, -1);
    int best_pos = -1;
    size_t best_size = 0;
    for (size_t j = 0; j < arity; ++j) {
      if (r.is_fresh[j]) continue;
      const size_t p = static_cast<size_t>(r.bag_pos[j]);
      bound[j] = assignment[p > fresh_pos ? p - 1 : p];
      const auto ids =
          b_index_.TuplesAt(r.rel, static_cast<int>(j), bound[j]);
      if (best_pos == -1 || ids.size() < best_size) {
        best_pos = static_cast<int>(j);
        best_size = ids.size();
      }
    }
    out.ClearAll();
    const auto& tuples = b_.Tuples(r.rel);
    const auto consider = [&](const Tuple& s) {
      int v = -1;
      for (size_t j = 0; j < arity; ++j) {
        if (r.is_fresh[j]) {
          if (v == -1) {
            v = s[j];
          } else if (s[j] != v) {
            return;  // repeated fresh positions must agree
          }
        } else if (s[j] != bound[j]) {
          return;
        }
      }
      out.Set(v);
    };
    if (best_pos >= 0) {
      for (int id : b_index_.TuplesAt(r.rel, best_pos, bound[static_cast<size_t>(
                                                           best_pos)])) {
        consider(tuples[static_cast<size_t>(id)]);
      }
    } else {
      for (const Tuple& s : tuples) consider(s);
    }
  }

  AssignmentTable Solve(int node) const {
    const auto& bag = nice_.bags[static_cast<size_t>(node)];
    const auto& children = nice_.children[static_cast<size_t>(node)];
    switch (nice_.kinds[static_cast<size_t>(node)]) {
      case NiceNodeKind::kLeaf: {
        AssignmentTable t;
        t.rows = 1;  // the empty assignment
        return t;
      }
      case NiceNodeKind::kIntroduce: {
        const auto& child_bag =
            nice_.bags[static_cast<size_t>(children[0])];
        // The introduced canonical element.
        int fresh = -1;
        for (int e : bag) {
          if (!std::binary_search(child_bag.begin(), child_bag.end(), e)) {
            fresh = e;
            break;
          }
        }
        HOMPRES_CHECK_GE(fresh, 0);
        const size_t fresh_pos = static_cast<size_t>(
            std::lower_bound(bag.begin(), bag.end(), fresh) - bag.begin());
        const auto tuples = RelevantTuples(bag, fresh);
        const AssignmentTable below = Solve(children[0]);
        AssignmentTable result;
        result.width = static_cast<int>(bag.size());
        // Packed candidate sets, hoisted out of the assignment loop; the
        // per-tuple intersection is a word-wise AND instead of a
        // set_intersection over sorted vectors.
        Bitset64 candidates(b_.UniverseSize());
        Bitset64 per_tuple(b_.UniverseSize());
        for (size_t r = 0; r < below.rows; ++r) {
          const int* assignment = below.Row(r);
          // Values the fresh element may take: all of B's universe when no
          // canonical tuple constrains it, otherwise the intersection of
          // the per-tuple candidate sets.
          if (tuples.empty()) {
            candidates.SetAll();
          } else {
            CandidateValues(tuples[0], assignment, fresh_pos, candidates);
            for (size_t i = 1; i < tuples.size() && candidates.Any(); ++i) {
              CandidateValues(tuples[i], assignment, fresh_pos, per_tuple);
              candidates.IntersectWith(per_tuple);
            }
          }
          for (int value = candidates.FindFirst(); value >= 0;
               value = candidates.FindNext(value)) {
            // Extended row: the child row with `value` spliced in at the
            // fresh element's bag position.
            result.data.insert(result.data.end(), assignment,
                               assignment + fresh_pos);
            result.data.push_back(value);
            result.data.insert(result.data.end(), assignment + fresh_pos,
                               assignment + below.width);
            ++result.rows;
          }
        }
        Normalize(result);
        return result;
      }
      case NiceNodeKind::kForget: {
        const auto& child_bag =
            nice_.bags[static_cast<size_t>(children[0])];
        // Position of the forgotten element in the child bag.
        size_t drop_pos = 0;
        for (size_t i = 0; i < child_bag.size(); ++i) {
          if (!std::binary_search(bag.begin(), bag.end(), child_bag[i])) {
            drop_pos = i;
            break;
          }
        }
        const AssignmentTable child = Solve(children[0]);
        AssignmentTable result;
        result.width = child.width - 1;
        result.rows = child.rows;
        result.data.reserve(child.rows * static_cast<size_t>(result.width));
        for (size_t r = 0; r < child.rows; ++r) {
          const int* row = child.Row(r);
          result.data.insert(result.data.end(), row, row + drop_pos);
          result.data.insert(result.data.end(), row + drop_pos + 1,
                             row + child.width);
        }
        Normalize(result);  // projection may collide rows
        return result;
      }
      case NiceNodeKind::kJoin: {
        const AssignmentTable left = Solve(children[0]);
        if (left.rows == 0) {
          AssignmentTable empty;
          empty.width = static_cast<int>(bag.size());
          return empty;
        }
        const AssignmentTable right = Solve(children[1]);
        // Both sides are sorted and unique: intersect with one linear
        // merge (already canonical, no Normalize needed).
        AssignmentTable result;
        result.width = left.width;
        size_t i = 0;
        size_t j = 0;
        while (i < left.rows && j < right.rows) {
          const int* a = left.Row(i);
          const int* b = right.Row(j);
          if (RowLess(a, b, left.width)) {
            ++i;
          } else if (RowLess(b, a, left.width)) {
            ++j;
          } else {
            result.data.insert(result.data.end(), a, a + left.width);
            ++result.rows;
            ++i;
            ++j;
          }
        }
        return result;
      }
    }
    HOMPRES_CHECK(false);
    return {};
  }

  const Structure& canonical_;
  const Structure& b_;
  const NiceTreeDecomposition& nice_;
  const RelationIndex& canonical_index_;
  const RelationIndex& b_index_;
  mutable std::vector<int> bound_scratch_;
};

}  // namespace

bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b,
                            const TreeDecomposition& td) {
  HOMPRES_CHECK(q.IsBoolean());
  HOMPRES_CHECK(q.Canonical().GetVocabulary() == b.GetVocabulary());
  const Graph gaifman = GaifmanGraph(q.Canonical());
  HOMPRES_CHECK(IsValidTreeDecomposition(gaifman, td));
  // Same nullary-atom guard as CQ::SatisfiedBy: 0-ary atoms appear in no
  // bag (they mention no variable), so the DP never checks them.
  if (!NullaryAtomsHold(q.Canonical(), b)) return false;
  if (q.Canonical().UniverseSize() > 0 && b.UniverseSize() == 0) {
    return false;
  }
  const NiceTreeDecomposition nice = MakeNiceDecomposition(gaifman, td);
  return DecompositionDp(q.Canonical(), b, nice).Run();
}

bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b) {
  return SatisfiedByTreewidthDp(
      q, b, ExactTreeDecomposition(GaifmanGraph(q.Canonical())));
}

}  // namespace hompres
