#include "cq/decomposed_eval.h"

#include <algorithm>
#include <set>

#include "base/bitset64.h"
#include "base/check.h"
#include "base/subsets.h"
#include "structure/gaifman.h"
#include "structure/relation_index.h"
#include "tw/nice.h"

namespace hompres {

namespace {

// Partial assignments over a (sorted) bag are vectors aligned with the
// bag's order.
using AssignmentSet = std::set<std::vector<int>>;

// A canonical tuple relevant to an introduce node: fully contained in the
// bag and mentioning the introduced element. `bag_pos[j]` is the bag
// position of entry j; `is_fresh[j]` marks the entries equal to the
// introduced element.
struct RelevantTuple {
  int rel;
  Tuple t;
  std::vector<int> bag_pos;
  std::vector<bool> is_fresh;
};

class DecompositionDp {
 public:
  DecompositionDp(const Structure& canonical, const Structure& b,
                  const NiceTreeDecomposition& nice)
      : canonical_(canonical),
        b_(b),
        nice_(nice),
        canonical_index_(canonical.Index()),
        b_index_(b.Index()) {}

  bool Run() { return !Solve(nice_.root).empty(); }

 private:
  // All tuples of the canonical structure fully contained in `bag` that
  // mention `fresh`, found through the inverted lists instead of a scan
  // over every canonical tuple per introduce node.
  std::vector<RelevantTuple> RelevantTuples(const std::vector<int>& bag,
                                            int fresh) const {
    std::vector<RelevantTuple> result;
    for (int rel = 0; rel < canonical_.GetVocabulary().NumRelations();
         ++rel) {
      const auto& tuples = canonical_.Tuples(rel);
      for (int id : canonical_index_.TuplesMentioning(rel, fresh)) {
        const Tuple& t = tuples[static_cast<size_t>(id)];
        RelevantTuple r{rel, t, {}, {}};
        r.bag_pos.reserve(t.size());
        r.is_fresh.reserve(t.size());
        bool inside = true;
        for (int e : t) {
          const auto it = std::lower_bound(bag.begin(), bag.end(), e);
          if (it == bag.end() || *it != e) {
            inside = false;
            break;
          }
          r.bag_pos.push_back(static_cast<int>(it - bag.begin()));
          r.is_fresh.push_back(e == fresh);
        }
        if (inside) result.push_back(std::move(r));
      }
    }
    return result;
  }

  // Fills `out` with the values v such that the image of `r.t` under the
  // extended assignment (fresh -> v, other bag elements -> their value in
  // `assignment`, which is aligned with the bag minus `fresh`) is a tuple
  // of B. The enumeration runs over the shortest inverted list of a bound
  // position (or the whole relation if every position is fresh); a value
  // qualifies exactly when HasTuple would accept the image, and the
  // packed set iterates ascending, so the DP tables match the old
  // sorted-vector construction bit for bit.
  void CandidateValues(const RelevantTuple& r,
                       const std::vector<int>& assignment, size_t fresh_pos,
                       Bitset64& out) const {
    const size_t arity = r.t.size();
    // Bound value per position (-1 at fresh positions).
    std::vector<int> bound(arity, -1);
    int best_pos = -1;
    size_t best_size = 0;
    for (size_t j = 0; j < arity; ++j) {
      if (r.is_fresh[j]) continue;
      const size_t p = static_cast<size_t>(r.bag_pos[j]);
      bound[j] = assignment[p > fresh_pos ? p - 1 : p];
      const auto ids =
          b_index_.TuplesAt(r.rel, static_cast<int>(j), bound[j]);
      if (best_pos == -1 || ids.size() < best_size) {
        best_pos = static_cast<int>(j);
        best_size = ids.size();
      }
    }
    out.ClearAll();
    const auto& tuples = b_.Tuples(r.rel);
    const auto consider = [&](const Tuple& s) {
      int v = -1;
      for (size_t j = 0; j < arity; ++j) {
        if (r.is_fresh[j]) {
          if (v == -1) {
            v = s[j];
          } else if (s[j] != v) {
            return;  // repeated fresh positions must agree
          }
        } else if (s[j] != bound[j]) {
          return;
        }
      }
      out.Set(v);
    };
    if (best_pos >= 0) {
      for (int id : b_index_.TuplesAt(r.rel, best_pos, bound[static_cast<size_t>(
                                                           best_pos)])) {
        consider(tuples[static_cast<size_t>(id)]);
      }
    } else {
      for (const Tuple& s : tuples) consider(s);
    }
  }

  AssignmentSet Solve(int node) const {
    const auto& bag = nice_.bags[static_cast<size_t>(node)];
    const auto& children = nice_.children[static_cast<size_t>(node)];
    switch (nice_.kinds[static_cast<size_t>(node)]) {
      case NiceNodeKind::kLeaf:
        return {std::vector<int>{}};
      case NiceNodeKind::kIntroduce: {
        const auto& child_bag =
            nice_.bags[static_cast<size_t>(children[0])];
        // The introduced canonical element.
        int fresh = -1;
        for (int e : bag) {
          if (!std::binary_search(child_bag.begin(), child_bag.end(), e)) {
            fresh = e;
            break;
          }
        }
        HOMPRES_CHECK_GE(fresh, 0);
        const size_t fresh_pos = static_cast<size_t>(
            std::lower_bound(bag.begin(), bag.end(), fresh) - bag.begin());
        const auto tuples = RelevantTuples(bag, fresh);
        const AssignmentSet below = Solve(children[0]);
        AssignmentSet result;
        // Packed candidate sets, hoisted out of the assignment loop; the
        // per-tuple intersection is a word-wise AND instead of a
        // set_intersection over sorted vectors.
        Bitset64 candidates(b_.UniverseSize());
        Bitset64 per_tuple(b_.UniverseSize());
        for (const auto& assignment : below) {
          // Values the fresh element may take: all of B's universe when no
          // canonical tuple constrains it, otherwise the intersection of
          // the per-tuple candidate sets.
          if (tuples.empty()) {
            candidates.SetAll();
          } else {
            CandidateValues(tuples[0], assignment, fresh_pos, candidates);
            for (size_t i = 1; i < tuples.size() && candidates.Any(); ++i) {
              CandidateValues(tuples[i], assignment, fresh_pos, per_tuple);
              candidates.IntersectWith(per_tuple);
            }
          }
          for (int value = candidates.FindFirst(); value >= 0;
               value = candidates.FindNext(value)) {
            std::vector<int> extended = assignment;
            extended.insert(extended.begin() + static_cast<long>(fresh_pos),
                            value);
            result.insert(std::move(extended));
          }
        }
        return result;
      }
      case NiceNodeKind::kForget: {
        const auto& child_bag =
            nice_.bags[static_cast<size_t>(children[0])];
        // Position of the forgotten element in the child bag.
        size_t drop_pos = 0;
        for (size_t i = 0; i < child_bag.size(); ++i) {
          if (!std::binary_search(bag.begin(), bag.end(), child_bag[i])) {
            drop_pos = i;
            break;
          }
        }
        AssignmentSet result;
        for (const auto& assignment : Solve(children[0])) {
          std::vector<int> projected = assignment;
          projected.erase(projected.begin() + static_cast<long>(drop_pos));
          result.insert(std::move(projected));
        }
        return result;
      }
      case NiceNodeKind::kJoin: {
        const AssignmentSet left = Solve(children[0]);
        if (left.empty()) return {};
        const AssignmentSet right = Solve(children[1]);
        AssignmentSet result;
        for (const auto& assignment : left) {
          if (right.count(assignment) > 0) result.insert(assignment);
        }
        return result;
      }
    }
    HOMPRES_CHECK(false);
    return {};
  }

  const Structure& canonical_;
  const Structure& b_;
  const NiceTreeDecomposition& nice_;
  const RelationIndex& canonical_index_;
  const RelationIndex& b_index_;
};

}  // namespace

bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b,
                            const TreeDecomposition& td) {
  HOMPRES_CHECK(q.IsBoolean());
  HOMPRES_CHECK(q.Canonical().GetVocabulary() == b.GetVocabulary());
  const Graph gaifman = GaifmanGraph(q.Canonical());
  HOMPRES_CHECK(IsValidTreeDecomposition(gaifman, td));
  if (q.Canonical().UniverseSize() > 0 && b.UniverseSize() == 0) {
    return false;
  }
  const NiceTreeDecomposition nice = MakeNiceDecomposition(gaifman, td);
  return DecompositionDp(q.Canonical(), b, nice).Run();
}

bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b) {
  return SatisfiedByTreewidthDp(
      q, b, ExactTreeDecomposition(GaifmanGraph(q.Canonical())));
}

}  // namespace hompres
