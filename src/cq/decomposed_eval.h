// Bounded-treewidth conjunctive query evaluation.
//
// The paper's introduction cites the key tractability fact (Dechter-Pearl
// 1989; Grohe-Flum-Frick; Kolaitis-Vardi): evaluating a Boolean
// conjunctive query whose canonical structure has treewidth < k takes
// time |B|^{O(k)} — polynomial for fixed k — via dynamic programming over
// a tree decomposition. This module implements that algorithm on nice
// decompositions; bench_engines compares it against the generic
// backtracking solver and EXPERIMENTS.md records the crossover.

#ifndef HOMPRES_CQ_DECOMPOSED_EVAL_H_
#define HOMPRES_CQ_DECOMPOSED_EVAL_H_

#include "cq/cq.h"
#include "tw/tree_decomposition.h"

namespace hompres {

// Decides whether the Boolean query q holds in b, using the given valid
// tree decomposition of q's canonical structure (width w => cost about
// |nodes| * |B|^{w+1}). CHECK-fails if q is not Boolean or td is not a
// valid decomposition of the canonical structure's Gaifman graph.
bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b,
                            const TreeDecomposition& td);

// Convenience: computes an exact decomposition of the canonical
// structure first (requires the canonical structure to have <= 22
// elements).
bool SatisfiedByTreewidthDp(const ConjunctiveQuery& q, const Structure& b);

}  // namespace hompres

#endif  // HOMPRES_CQ_DECOMPOSED_EVAL_H_
