#include "cq/ucq.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <sstream>

#include "base/budget.h"
#include "base/check.h"
#include "base/thread_pool.h"
#include "engine/engine.h"
#include "opt/optimizer.h"
#include "structure/relation_index.h"

namespace hompres {

UnionOfCq::UnionOfCq(std::vector<ConjunctiveQuery> disjuncts, int arity)
    : disjuncts_(std::move(disjuncts)), arity_(arity) {
  if (!disjuncts_.empty()) {
    arity_ = disjuncts_.front().Arity();
    for (const auto& d : disjuncts_) {
      HOMPRES_CHECK_EQ(d.Arity(), arity_);
    }
  }
  HOMPRES_CHECK_GE(arity_, 0);
}

bool UnionOfCq::SatisfiedBy(const Structure& b) const {
  for (const auto& d : disjuncts_) {
    if (d.SatisfiedBy(b)) return true;
  }
  return false;
}

bool UnionOfCq::SatisfiedBy(const Structure& b, int num_threads) const {
  if (num_threads <= 0 || disjuncts_.size() < 2) return SatisfiedBy(b);
  // Every disjunct's search probes the same target: build its index once
  // up front instead of the first tasks racing for the lazy build.
  (void)b.Index();
  // One task per disjunct. A satisfied disjunct raises `found`, which
  // doubles as the cancellation flag of every still-running search; if
  // `found` stays false, every search necessarily ran to completion, so
  // the negative answer is certain.
  std::atomic<bool> found{false};
  ThreadPool pool(std::min(num_threads, static_cast<int>(disjuncts_.size())));
  for (const ConjunctiveQuery& d : disjuncts_) {
    pool.Submit([&found, &d, &b] {
      if (found.load(std::memory_order_relaxed)) return;
      // Same nullary guard the serial path applies inside
      // CQ::SatisfiedBy; this path calls the engine directly for the
      // cancellation budget.
      if (!NullaryAtomsHold(d.Canonical(), b)) return;
      Budget budget = Budget().WithCancelFlag(&found);
      EngineConfig config;
      config.use_cache = true;
      auto has = Engine::Has(d.Canonical(), b, budget, config);
      if (has.IsDone() && has.Value()) {
        found.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool.WaitIdle();
  return found.load(std::memory_order_relaxed);
}

std::vector<Tuple> UnionOfCq::Evaluate(const Structure& b) const {
  std::vector<Tuple> answers;
  for (const auto& d : disjuncts_) {
    std::vector<Tuple> part = d.Evaluate(b);
    answers.insert(answers.end(), part.begin(), part.end());
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

std::vector<Tuple> UnionOfCq::Evaluate(const Structure& b,
                                       int num_threads) const {
  if (num_threads <= 0 || disjuncts_.size() < 2) return Evaluate(b);
  (void)b.Index();  // shared by every disjunct's enumeration
  std::vector<std::vector<Tuple>> parts(disjuncts_.size());
  ThreadPool pool(std::min(num_threads, static_cast<int>(disjuncts_.size())));
  ParallelFor(pool, static_cast<int>(disjuncts_.size()), [&](int i) {
    parts[static_cast<size_t>(i)] =
        disjuncts_[static_cast<size_t>(i)].Evaluate(b);
  });
  std::vector<Tuple> answers;
  for (std::vector<Tuple>& part : parts) {
    answers.insert(answers.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

std::string UnionOfCq::ToString() const {
  if (disjuncts_.empty()) return "false";
  std::ostringstream out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out << " | ";
    out << disjuncts_[i].ToString();
  }
  return out.str();
}

bool UcqContained(const UnionOfCq& q1, const UnionOfCq& q2) {
  HOMPRES_CHECK_EQ(q1.Arity(), q2.Arity());
  for (const auto& d1 : q1.Disjuncts()) {
    bool covered = false;
    for (const auto& d2 : q2.Disjuncts()) {
      if (CqContained(d1, d2)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool UcqEquivalent(const UnionOfCq& q1, const UnionOfCq& q2) {
  return UcqContained(q1, q2) && UcqContained(q2, q1);
}

UnionOfCq MinimizeUcq(const UnionOfCq& q) {
  // Delegates to the containment-driven optimizer (opt/optimizer.h):
  // fingerprint dedup collapses renamed duplicates before any search,
  // the subsumption pass prefilters and memoizes its containment
  // probes, and an equivalence class keeps its smallest-canonical-
  // fingerprint member — a function of the queries alone, where the
  // historical O(n²) scan here kept whichever member happened to come
  // first in the input.
  OptimizerOptions options;
  options.verify = true;
  return OptimizeUcq(q, options);
}

}  // namespace hompres
