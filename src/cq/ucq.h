// Unions of conjunctive queries (select-project-join-union queries) and
// the Sagiv-Yannakakis containment test (used in Theorem 7.4's proof).

#ifndef HOMPRES_CQ_UCQ_H_
#define HOMPRES_CQ_UCQ_H_

#include <string>
#include <vector>

#include "cq/cq.h"

namespace hompres {

class UnionOfCq {
 public:
  // All disjuncts must share the arity. An empty union is the constant
  // false query (pass the arity explicitly).
  explicit UnionOfCq(std::vector<ConjunctiveQuery> disjuncts, int arity = 0);

  const std::vector<ConjunctiveQuery>& Disjuncts() const {
    return disjuncts_;
  }
  int Arity() const { return arity_; }

  bool SatisfiedBy(const Structure& b) const;

  // Parallel satisfaction: the disjuncts' homomorphism searches run
  // concurrently on `num_threads` workers, and the first disjunct found
  // satisfied cancels the rest. Same answer as the serial overload;
  // num_threads <= 0 falls back to it.
  bool SatisfiedBy(const Structure& b, int num_threads) const;

  // Union of the disjuncts' answers, sorted and deduplicated.
  std::vector<Tuple> Evaluate(const Structure& b) const;

  // Parallel evaluation: one task per disjunct, answers merged, sorted
  // and deduplicated — identical output to the serial overload.
  std::vector<Tuple> Evaluate(const Structure& b, int num_threads) const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
  int arity_;
};

// Sagiv-Yannakakis: q1 ⊆ q2 iff every disjunct of q1 is contained in some
// disjunct of q2.
bool UcqContained(const UnionOfCq& q1, const UnionOfCq& q2);

bool UcqEquivalent(const UnionOfCq& q1, const UnionOfCq& q2);

// Minimizes each disjunct and drops disjuncts contained in another. Of
// any set of mutually equivalent disjuncts, the one with the smallest
// canonical fingerprint (opt/canonical.h) is kept, so the result is
// invariant under permutations of the input disjuncts. The result is
// equivalent to the input and no disjunct is contained in a different
// one. Implemented by the containment-driven optimizer
// (opt/optimizer.h); callers that need budgets, threads, or statistics
// should use OptimizeUcqBudgeted directly.
UnionOfCq MinimizeUcq(const UnionOfCq& q);

}  // namespace hompres

#endif  // HOMPRES_CQ_UCQ_H_
