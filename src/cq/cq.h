// Conjunctive queries (Section 2.2).
//
// A conjunctive query is represented by its canonical structure (elements
// = variables, tuples = atoms) together with the list of free (output)
// variables; Boolean queries have none. The Chandra-Merlin theorem makes
// this representation operational: B satisfies the query iff there is a
// homomorphism from the canonical structure to B (mapping free variables
// to the answer tuple).

#ifndef HOMPRES_CQ_CQ_H_
#define HOMPRES_CQ_CQ_H_

#include <string>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "structure/structure.h"

namespace hompres {

// True iff every 0-ary atom of `pattern` also holds in `b`. A nullary
// atom mentions no variable, so the homomorphism kernel's
// variable-driven propagation never checks it; every CQ-layer entry
// point (satisfaction, evaluation, containment) guards with this
// explicit scan instead. Vocabularies must agree.
bool NullaryAtomsHold(const Structure& pattern, const Structure& b);

class ConjunctiveQuery {
 public:
  // `free_elements` lists the canonical-structure elements playing the
  // role of free variables (order = output order; repetitions allowed).
  ConjunctiveQuery(Structure canonical, std::vector<int> free_elements);

  // The canonical Boolean conjunctive query phi_A of a structure
  // (Section 2.2).
  static ConjunctiveQuery BooleanQueryOf(Structure canonical);

  const Structure& Canonical() const { return canonical_; }
  const std::vector<int>& FreeElements() const { return free_elements_; }
  int Arity() const { return static_cast<int>(free_elements_.size()); }
  bool IsBoolean() const { return free_elements_.empty(); }

  // Boolean satisfaction: does any homomorphism canonical -> b exist?
  // (For non-Boolean queries this means "the answer is nonempty".)
  bool SatisfiedBy(const Structure& b) const;

  // All answer tuples over b, sorted and deduplicated. For Boolean
  // queries the answer is {()} or {}.
  std::vector<Tuple> Evaluate(const Structure& b) const;

  // Rendering, e.g. "∃x1 ∃x2 (E(x0,x1) ∧ E(x1,x2))" with free variables
  // unquantified.
  std::string ToString() const;

 private:
  Structure canonical_;
  std::vector<int> free_elements_;
};

// Containment q1 ⊆ q2 (every answer of q1 on every structure is an answer
// of q2), decided by the Chandra-Merlin criterion: a homomorphism from
// canonical(q2) to canonical(q1) mapping the i-th free variable of q2 to
// the i-th free variable of q1. Arities must match.
//
// Edge cases handled before the engine runs (the solver's constraint
// propagation is variable-driven and would not see them):
//   - 0-ary atoms: a nullary tuple of q2's canonical structure missing
//     from q1's admits no homomorphism (atoms must map onto same-relation
//     atoms), so the answer is a certain "no" — including when q2's
//     canonical universe is empty and the kernel would otherwise emit
//     the empty map unconditionally;
//   - repeated free variables: q2 listing one element at two output
//     positions forces that element to two (possibly different) q1
//     elements; the conflicting pre-assignments empty its domain in the
//     kernel, which this layer relies on and the cq_test rows pin down.
bool CqContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// Budgeted containment: the homomorphism search charges `budget`;
// StoppedShort when it ran out before the verdict was certain. The
// optimizer layer (src/opt) threads one budget through every probe of a
// UCQ minimization so the whole pass is governable.
Outcome<bool> CqContainedBudgeted(const ConjunctiveQuery& q1,
                                  const ConjunctiveQuery& q2, Budget& budget);

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

Outcome<bool> CqEquivalentBudgeted(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2, Budget& budget);

// Minimization (Chandra-Merlin optimization): the unique (up to
// isomorphism) smallest equivalent conjunctive query, i.e. the core of
// the canonical structure relative to the free variables.
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q);

// Budgeted minimization; the budget is shared across all inner
// containment searches. Done(q') is a verified minimal equivalent;
// StoppedShort claims no intermediate result.
Outcome<ConjunctiveQuery> MinimizeCqBudgeted(const ConjunctiveQuery& q,
                                             Budget& budget);

}  // namespace hompres

#endif  // HOMPRES_CQ_CQ_H_
