// Conjunctive queries (Section 2.2).
//
// A conjunctive query is represented by its canonical structure (elements
// = variables, tuples = atoms) together with the list of free (output)
// variables; Boolean queries have none. The Chandra-Merlin theorem makes
// this representation operational: B satisfies the query iff there is a
// homomorphism from the canonical structure to B (mapping free variables
// to the answer tuple).

#ifndef HOMPRES_CQ_CQ_H_
#define HOMPRES_CQ_CQ_H_

#include <string>
#include <vector>

#include "structure/structure.h"

namespace hompres {

class ConjunctiveQuery {
 public:
  // `free_elements` lists the canonical-structure elements playing the
  // role of free variables (order = output order; repetitions allowed).
  ConjunctiveQuery(Structure canonical, std::vector<int> free_elements);

  // The canonical Boolean conjunctive query phi_A of a structure
  // (Section 2.2).
  static ConjunctiveQuery BooleanQueryOf(Structure canonical);

  const Structure& Canonical() const { return canonical_; }
  const std::vector<int>& FreeElements() const { return free_elements_; }
  int Arity() const { return static_cast<int>(free_elements_.size()); }
  bool IsBoolean() const { return free_elements_.empty(); }

  // Boolean satisfaction: does any homomorphism canonical -> b exist?
  // (For non-Boolean queries this means "the answer is nonempty".)
  bool SatisfiedBy(const Structure& b) const;

  // All answer tuples over b, sorted and deduplicated. For Boolean
  // queries the answer is {()} or {}.
  std::vector<Tuple> Evaluate(const Structure& b) const;

  // Rendering, e.g. "∃x1 ∃x2 (E(x0,x1) ∧ E(x1,x2))" with free variables
  // unquantified.
  std::string ToString() const;

 private:
  Structure canonical_;
  std::vector<int> free_elements_;
};

// Containment q1 ⊆ q2 (every answer of q1 on every structure is an answer
// of q2), decided by the Chandra-Merlin criterion: a homomorphism from
// canonical(q2) to canonical(q1) mapping the i-th free variable of q2 to
// the i-th free variable of q1. Arities must match.
bool CqContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// Minimization (Chandra-Merlin optimization): the unique (up to
// isomorphism) smallest equivalent conjunctive query, i.e. the core of
// the canonical structure relative to the free variables.
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& q);

}  // namespace hompres

#endif  // HOMPRES_CQ_CQ_H_
