// A small work-stealing thread pool for the parallel search drivers.
//
// The pool owns a fixed set of worker threads, each with its own task
// deque in the Chase-Lev discipline: the owner pushes and pops at the
// back (LIFO, cache-friendly for recursively spawned work), thieves steal
// from the front (FIFO, takes the oldest and typically largest task).
// The deques are guarded by per-deque locks rather than the lock-free
// Chase-Lev protocol: the tasks scheduled here are coarse subtree
// searches (milliseconds to seconds), so queue contention is noise, and
// the locked form is trivially data-race-free under TSan.
//
// Cooperation with the Budget layer is by convention, not mechanism: a
// parallel driver gives every task a worker budget (Budget::SpawnWorker)
// whose shared atomic step counter and per-task cancellation flag let the
// driver stop stragglers (first-finisher cancellation) without the pool
// knowing anything about budgets. Tasks must not throw (the library is
// exception-free).

#ifndef HOMPRES_BASE_THREAD_POOL_H_
#define HOMPRES_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hompres {

class ThreadPool {
 public:
  // Starts `num_threads` workers (must be >= 1). The calling thread does
  // not execute tasks; entry points pick num_threads = the option value.
  explicit ThreadPool(int num_threads);

  // Drains every submitted task, then joins the workers. Destroying a
  // pool with tasks still running blocks until they finish (tasks polling
  // a cancelled budget exit promptly).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int NumWorkers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Submissions from outside the pool are distributed
  // round-robin across the worker deques; a submission from a worker
  // thread goes to that worker's own deque (back), where it pops it LIFO
  // and idle workers steal it FIFO.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. The pool is
  // reusable afterwards (the Datalog evaluator runs one batch per
  // fixpoint round on the same pool).
  void WaitIdle();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);

  // Pops from own back, else steals from the fronts of the others,
  // starting after `self` so thieves spread out. Returns an empty
  // function if every deque came up empty.
  std::function<void()> TakeTask(int self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int queued_ = 0;      // submitted, not yet claimed by a worker
  int in_flight_ = 0;   // submitted, not yet finished
  size_t next_queue_ = 0;
  bool stopping_ = false;
};

// Runs fn(0) ... fn(n-1) on the pool and blocks until all calls return.
// fn must be safe to invoke concurrently from the pool's workers.
void ParallelFor(ThreadPool& pool, int n,
                 const std::function<void(int)>& fn);

}  // namespace hompres

#endif  // HOMPRES_BASE_THREAD_POOL_H_
