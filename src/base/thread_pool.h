// A lock-free work-stealing thread pool for the parallel search drivers.
//
// The pool owns a fixed set of worker threads, each with its own
// Chase-Lev deque: the owner pushes and pops at the bottom (LIFO,
// cache-friendly for recursively spawned work) and thieves steal from
// the top (FIFO, takes the oldest and typically largest task). The
// deques follow the lock-free Chase-Lev protocol (the C11 formulation of
// Le, Pop, Cohen, Zappa Nardelli, with the standalone fences strengthened
// into seq_cst accesses on top/bottom so the discipline is exactly what
// TSan models); see DESIGN.md section 4.8 for the correctness argument.
// Submissions from outside the pool take a contention-free fast path
// into a bounded lock-free MPMC injection queue (Vyukov discipline) that
// every worker drains alongside its deque — no mutex is touched on
// Submit unless a sleeping worker must be woken. The only blocking
// pieces left are the parking lot (a condition variable workers sleep on
// when the pool is empty) and WaitIdle.
//
// Cooperation with the Budget layer is by convention, not mechanism: a
// parallel driver gives every task a worker budget (Budget::SpawnWorker)
// whose shared atomic step counter and per-task cancellation flag let the
// driver stop stragglers (first-finisher cancellation) without the pool
// knowing anything about budgets.
//
// Failure containment: the library itself is exception-free, but task
// bodies can still throw (std::bad_alloc, third-party callbacks). An
// exception escaping a task is swallowed at the worker boundary and
// counted (ExceptionCount) instead of reaching std::terminate; drivers
// that need cancel-on-throw semantics wrap their bodies with
// ParallelRegion::GuardedTask. Worker spawning is also fault-tolerant:
// a std::system_error from std::thread (or the "thread_pool/spawn"
// failpoint) skips that worker, and a pool left with zero workers
// degrades to running every Submit inline on the calling thread. A
// failed steal attempt (contended top, or the "thread_pool/steal"
// failpoint) leaves the task in place for the owner or a later thief —
// a retry, never a lost task.

#ifndef HOMPRES_BASE_THREAD_POOL_H_
#define HOMPRES_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hompres {

class ThreadPool {
 public:
  // Starts up to `num_threads` workers (request must be >= 1; fewer may
  // start if spawning fails). The calling thread does not execute tasks
  // unless every spawn failed; entry points pick num_threads = the
  // option value.
  explicit ThreadPool(int num_threads);

  // Drains every submitted task, then joins the workers. Destroying a
  // pool with tasks still running blocks until they finish (tasks polling
  // a cancelled budget exit promptly).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int NumWorkers() const { return static_cast<int>(workers_.size()); }

  // How many task bodies ended by throwing (swallowed at the worker
  // boundary). Diagnostic; drivers needing semantics use GuardedTask.
  uint64_t ExceptionCount() const {
    return exceptions_.load(std::memory_order_relaxed);
  }

  // Enqueues a task. A submission from a worker thread goes to that
  // worker's own deque (bottom), where it pops it LIFO and idle workers
  // steal it FIFO; submissions from outside the pool go to the lock-free
  // injection queue, which spreads across whichever workers drain it
  // first. With zero workers (total spawn failure) the task runs inline
  // on the calling thread before Submit returns — a serial degeneration,
  // not an error.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. The pool is
  // reusable afterwards (the Datalog evaluator runs one batch per
  // fixpoint round on the same pool).
  void WaitIdle();

 private:
  // Tasks travel through the lock-free structures as owned heap nodes:
  // a raw pointer is the natural unit of an atomic slot, and ownership
  // transfers to whichever thread pops the node (it deletes after
  // running).
  struct TaskNode {
    std::function<void()> fn;
  };

  // The Chase-Lev deque. PushBottom/PopBottom are owner-only; Steal is
  // safe from any thread. The circular array grows geometrically;
  // retired arrays are kept until the deque dies because a slow thief
  // may still be reading one (its stale top CAS then fails harmlessly).
  class Deque {
   public:
    Deque();
    ~Deque();

    void PushBottom(TaskNode* node);  // owner only
    TaskNode* PopBottom();            // owner only
    TaskNode* Steal();                // any thread; nullptr = empty or lost race

   private:
    struct Array {
      explicit Array(size_t cap)
          : capacity(cap),
            mask(cap - 1),
            slots(new std::atomic<TaskNode*>[cap]) {}
      size_t capacity;
      size_t mask;
      std::unique_ptr<std::atomic<TaskNode*>[]> slots;
    };

    Array* Grow(Array* old, int64_t top, int64_t bottom);

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::atomic<Array*> array_;
    std::vector<std::unique_ptr<Array>> retired_;  // owner-only; freed here
  };

  // Bounded lock-free MPMC queue (Vyukov) for submissions from outside
  // the pool. A full queue makes Submit spin-yield until a worker drains
  // a slot; the workers make progress, so so does the producer.
  class InjectionQueue {
   public:
    explicit InjectionQueue(size_t capacity_pow2);

    bool TryPush(TaskNode* node);
    TaskNode* TryPop();

   private:
    struct Cell {
      std::atomic<size_t> sequence;
      TaskNode* node;
    };

    std::vector<Cell> cells_;
    size_t mask_;
    std::atomic<size_t> enqueue_pos_{0};
    std::atomic<size_t> dequeue_pos_{0};
  };

  void WorkerLoop(int self);

  // Pops from own bottom, else the injection queue, else steals from the
  // tops of the others, starting after `self` so thieves spread out.
  TaskNode* FindTask(int self);

  void RunTask(TaskNode* node);

  // One deque per *requested* worker; when a spawn fails its deque stays
  // empty (nothing is ever pushed to it) and costs one failed steal probe.
  std::vector<std::unique_ptr<Deque>> deques_;
  InjectionQueue injection_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> exceptions_{0};

  // Counts are the wakeup/termination protocol, not the task transport:
  // unclaimed_ is incremented after a push and decremented after a
  // successful pop (so > 0 means "some structure holds a task", modulo a
  // harmless transient negative when a pop outruns its producer's
  // increment); in_flight_ is submitted-but-not-finished, for WaitIdle.
  std::atomic<int64_t> unclaimed_{0};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int> sleepers_{0};

  // Blocking is confined to parking: workers sleep here when the pool is
  // empty, WaitIdle sleeps here until the last task finishes.
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::atomic<bool> stopping_{false};
};

// Runs fn(0) ... fn(n-1) on the pool and blocks until all calls return.
// fn must be safe to invoke concurrently from the pool's workers.
void ParallelFor(ThreadPool& pool, int n,
                 const std::function<void(int)>& fn);

}  // namespace hompres

#endif  // HOMPRES_BASE_THREAD_POOL_H_
