// A small work-stealing thread pool for the parallel search drivers.
//
// The pool owns a fixed set of worker threads, each with its own task
// deque in the Chase-Lev discipline: the owner pushes and pops at the
// back (LIFO, cache-friendly for recursively spawned work), thieves steal
// from the front (FIFO, takes the oldest and typically largest task).
// The deques are guarded by per-deque locks rather than the lock-free
// Chase-Lev protocol: the tasks scheduled here are coarse subtree
// searches (milliseconds to seconds), so queue contention is noise, and
// the locked form is trivially data-race-free under TSan.
//
// Cooperation with the Budget layer is by convention, not mechanism: a
// parallel driver gives every task a worker budget (Budget::SpawnWorker)
// whose shared atomic step counter and per-task cancellation flag let the
// driver stop stragglers (first-finisher cancellation) without the pool
// knowing anything about budgets.
//
// Failure containment: the library itself is exception-free, but task
// bodies can still throw (std::bad_alloc, third-party callbacks). An
// exception escaping a task is swallowed at the worker boundary and
// counted (ExceptionCount) instead of reaching std::terminate; drivers
// that need cancel-on-throw semantics wrap their bodies with
// ParallelRegion::GuardedTask. Worker spawning is also fault-tolerant:
// a std::system_error from std::thread (or the "thread_pool/spawn"
// failpoint) skips that worker, and a pool left with zero workers
// degrades to running every Submit inline on the calling thread.

#ifndef HOMPRES_BASE_THREAD_POOL_H_
#define HOMPRES_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hompres {

class ThreadPool {
 public:
  // Starts up to `num_threads` workers (request must be >= 1; fewer may
  // start if spawning fails). The calling thread does not execute tasks
  // unless every spawn failed; entry points pick num_threads = the
  // option value.
  explicit ThreadPool(int num_threads);

  // Drains every submitted task, then joins the workers. Destroying a
  // pool with tasks still running blocks until they finish (tasks polling
  // a cancelled budget exit promptly).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int NumWorkers() const { return static_cast<int>(workers_.size()); }

  // How many task bodies ended by throwing (swallowed at the worker
  // boundary). Diagnostic; drivers needing semantics use GuardedTask.
  uint64_t ExceptionCount() const {
    return exceptions_.load(std::memory_order_relaxed);
  }

  // Enqueues a task. Submissions from outside the pool are distributed
  // round-robin across the worker deques; a submission from a worker
  // thread goes to that worker's own deque (back), where it pops it LIFO
  // and idle workers steal it FIFO. With zero workers (total spawn
  // failure) the task runs inline on the calling thread before Submit
  // returns — a serial degeneration, not an error.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. The pool is
  // reusable afterwards (the Datalog evaluator runs one batch per
  // fixpoint round on the same pool).
  void WaitIdle();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);

  // Pops from own back, else steals from the fronts of the others,
  // starting after `self` so thieves spread out. Returns an empty
  // function if every deque came up empty.
  std::function<void()> TakeTask(int self);

  // One deque per *requested* worker; when a spawn fails its deque stays
  // (tasks round-robined there are stolen by the surviving workers).
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> exceptions_{0};

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int queued_ = 0;      // submitted, not yet claimed by a worker
  int in_flight_ = 0;   // submitted, not yet finished
  size_t next_queue_ = 0;
  bool stopping_ = false;
};

// Runs fn(0) ... fn(n-1) on the pool and blocks until all calls return.
// fn must be safe to invoke concurrently from the pool's workers.
void ParallelFor(ThreadPool& pool, int n,
                 const std::function<void(int)>& fn);

}  // namespace hompres

#endif  // HOMPRES_BASE_THREAD_POOL_H_
