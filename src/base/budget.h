// Execution budgets for the library's exponential procedures.
//
// Every core procedure the paper makes effective — homomorphism search,
// core computation, the existential k-pebble game, minor containment,
// minimal-model enumeration, Datalog fixpoints — is worst-case
// exponential (and necessarily so: the bounds behind these constructions
// are non-elementary in general). A `Budget` turns each of them from
// "hope the input is small" into a governed computation: callers set a
// wall-clock deadline, a step budget, an optional cooperative memory
// budget, and/or an external cancellation flag, the search polls
// `Checkpoint()` at every unit of work, and the caller receives an
// `Outcome` (see base/outcome.h) saying whether the procedure finished or
// where it stopped.
//
// A Budget is a mutable accumulator: it is consumed by one logical
// operation (possibly spanning several library calls, which then share
// the limits) and is not thread-safe; the only cross-thread channels are
// the cancellation flag, which may be raised from any thread, and the
// shared step counter of a parallel search (see SpawnWorker), which is an
// atomic the cooperating worker budgets advance together.

#ifndef HOMPRES_BASE_BUDGET_H_
#define HOMPRES_BASE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hompres {

// Why a budgeted computation stopped short of completing.
enum class StopReason {
  kNone = 0,   // still within budget
  kSteps,      // step budget exhausted
  kDeadline,   // wall-clock deadline passed
  kMemory,     // cooperative memory budget exhausted
  kCancelled,  // external cancellation flag raised
};

// Stable lowercase name ("steps", "deadline", "memory", "cancelled",
// "none") for logs and CLI output.
const char* StopReasonName(StopReason reason);

// What a budgeted run consumed and why it stopped; embedded in Outcome.
struct BudgetReport {
  StopReason reason = StopReason::kNone;
  uint64_t steps_used = 0;
  uint64_t memory_used = 0;  // bytes charged via ChargeMemory
  std::chrono::nanoseconds elapsed{0};
};

class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr uint64_t kNoLimit = UINT64_MAX;

  // Default construction is an unlimited budget (Checkpoint never fails).
  Budget() : start_(Clock::now()) {}

  static Budget Unlimited() { return Budget(); }
  static Budget MaxSteps(uint64_t steps) {
    return Budget().WithMaxSteps(steps);
  }
  static Budget Timeout(std::chrono::nanoseconds timeout) {
    return Budget().WithTimeout(timeout);
  }

  // Builder-style limit setters; combinable (the first limit hit stops
  // the computation).
  Budget& WithMaxSteps(uint64_t steps) {
    max_steps_ = steps;
    return *this;
  }
  // A non-positive timeout is an already-expired deadline. A timeout so
  // large that now + timeout would overflow Clock::time_point saturates
  // to "no deadline" (the wrapped value would land in the past and stop
  // the budget immediately, which is the opposite of what a huge timeout
  // means).
  Budget& WithTimeout(std::chrono::nanoseconds timeout) {
    const Clock::time_point now = Clock::now();
    const auto headroom = Clock::time_point::max() - now;
    if (timeout >= headroom) return *this;  // saturate: unlimited
    has_deadline_ = true;
    deadline_ = now + std::chrono::duration_cast<Clock::duration>(timeout);
    return *this;
  }
  // Takes an absolute deadline, so no arithmetic and no overflow; pass
  // Clock::time_point::max() for "effectively never".
  Budget& WithDeadline(Clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
    return *this;
  }
  Budget& WithMaxMemoryBytes(uint64_t bytes) {
    max_memory_ = bytes;
    return *this;
  }
  // `flag` must outlive the budget; raising it (from any thread) makes
  // the next Checkpoint return false with StopReason::kCancelled.
  Budget& WithCancelFlag(const std::atomic<bool>* flag) {
    cancel_flag_ = flag;
    return *this;
  }

  // Draws steps from a pool shared with other budgets: every Checkpoint
  // also advances *counter, and the budget stops with StopReason::kSteps
  // once the shared total passes `shared_max`. Used by the parallel search
  // drivers so the workers of one logical operation together respect the
  // caller's step limit. `counter` must outlive the budget.
  Budget& WithSharedSteps(std::atomic<uint64_t>* counter,
                          uint64_t shared_max) {
    shared_steps_ = counter;
    shared_max_ = shared_max;
    return *this;
  }

  // A child budget for one worker of a parallel search: same start time
  // and deadline as this budget, steps drawn from `shared_steps` against
  // this budget's step limit, and `cancel` (typically one flag per task,
  // raised for first-finisher cancellation) in place of the cancellation
  // flag. The driver must initialize *shared_steps to StepsUsed() before
  // spawning and, after the workers join, charge the delta back via
  // ChargeSteps so the parent's accounting stays exact.
  Budget SpawnWorker(std::atomic<uint64_t>* shared_steps,
                     const std::atomic<bool>* cancel) const {
    Budget child;
    child.start_ = start_;
    child.has_deadline_ = has_deadline_;
    child.deadline_ = deadline_;
    child.cancel_flag_ = cancel;
    child.shared_steps_ = shared_steps;
    child.shared_max_ = max_steps_;
    return child;
  }

  // Counts one unit of work and polls the limits. Returns true while the
  // computation may continue; once false, it stays false (the budget is
  // spent). Step accounting is deterministic: the same sequence of
  // Checkpoint/ChargeMemory calls under the same step limit stops at the
  // same point, regardless of wall-clock behavior.
  bool Checkpoint() {
    if (reason_ != StopReason::kNone) return false;
    ++steps_used_;
    if (steps_used_ > max_steps_) {
      reason_ = StopReason::kSteps;
      return false;
    }
    if (shared_steps_ != nullptr) {
      const uint64_t total =
          shared_steps_->fetch_add(1, std::memory_order_relaxed) + 1;
      if (total > shared_max_) {
        reason_ = StopReason::kSteps;
        return false;
      }
    }
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      reason_ = StopReason::kCancelled;
      return false;
    }
    // The clock is polled every 32 steps (and on the first step, so an
    // already-expired deadline fails fast) to keep cheap inner loops
    // cheap.
    if (has_deadline_ && (steps_used_ & 31u) == 1u &&
        Clock::now() >= deadline_) {
      reason_ = StopReason::kDeadline;
      return false;
    }
    return true;
  }

  // Charges `steps` units of work at once (saturating). Used to settle a
  // parallel region's total consumption back into the parent budget after
  // its workers join; sets StopReason::kSteps once over the limit.
  bool ChargeSteps(uint64_t steps) {
    if (reason_ != StopReason::kNone) return false;
    steps_used_ =
        steps > UINT64_MAX - steps_used_ ? UINT64_MAX : steps_used_ + steps;
    if (steps_used_ > max_steps_) {
      reason_ = StopReason::kSteps;
      return false;
    }
    return true;
  }

  // Cooperative memory accounting for procedures whose blowup is state,
  // not time (e.g. the pebble game's strategy family). Returns false once
  // the cumulative charge exceeds the memory limit.
  bool ChargeMemory(uint64_t bytes) {
    if (reason_ != StopReason::kNone) return false;
    memory_used_ += bytes;
    if (memory_used_ > max_memory_) {
      reason_ = StopReason::kMemory;
      return false;
    }
    return true;
  }

  // Marks the budget stopped with `reason` (no-op if already stopped, or
  // if reason is kNone). Failure containment uses this to turn a real
  // resource failure — e.g. std::bad_alloc while growing a kernel
  // workspace — into a structured stop the caller sees as an ordinary
  // exhausted Outcome instead of a crash.
  void ForceStop(StopReason reason) {
    if (reason_ == StopReason::kNone) reason_ = reason;
  }

  // True once any limit has been hit (or the cancel flag observed).
  bool Stopped() const { return reason_ != StopReason::kNone; }
  StopReason Reason() const { return reason_; }

  // The external cancellation flag, if any (parallel drivers poll it to
  // propagate cancellation to their workers' per-task flags).
  const std::atomic<bool>* CancelFlag() const { return cancel_flag_; }

  bool IsUnlimited() const {
    return max_steps_ == kNoLimit && max_memory_ == kNoLimit &&
           !has_deadline_ && cancel_flag_ == nullptr &&
           (shared_steps_ == nullptr || shared_max_ == kNoLimit);
  }

  uint64_t StepsUsed() const { return steps_used_; }
  uint64_t MemoryUsed() const { return memory_used_; }
  std::chrono::nanoseconds Elapsed() const { return Clock::now() - start_; }

  BudgetReport Report() const {
    return BudgetReport{reason_, steps_used_, memory_used_, Elapsed()};
  }

 private:
  uint64_t max_steps_ = kNoLimit;
  uint64_t max_memory_ = kNoLimit;
  uint64_t steps_used_ = 0;
  uint64_t memory_used_ = 0;
  std::atomic<uint64_t>* shared_steps_ = nullptr;
  uint64_t shared_max_ = kNoLimit;
  Clock::time_point start_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  StopReason reason_ = StopReason::kNone;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_BUDGET_H_
