// Tri-state result type for budgeted computations.
//
// Per DESIGN.md the library does not use exceptions; procedures that can
// legitimately fail return bool/std::optional, and budgeted procedures
// return an Outcome<T>:
//
//   Done(value)  — the computation ran to completion; the value is exact
//                  and means the same thing the unbudgeted API returns
//                  (for searches, Done(nullopt) is a *certain* "no").
//   Exhausted    — a step / deadline / memory limit stopped the search;
//                  the report says which limit, how many steps were
//                  spent, and how long it ran. No value is available:
//                  "not found within budget" is not "does not exist".
//   Cancelled    — the external cancellation flag was observed.
//
// The unbudgeted entry points are thin wrappers passing
// Budget::Unlimited(), whose Outcome is always Done.

#ifndef HOMPRES_BASE_OUTCOME_H_
#define HOMPRES_BASE_OUTCOME_H_

#include <optional>
#include <utility>

#include "base/budget.h"
#include "base/check.h"

namespace hompres {

template <typename T>
class Outcome {
 public:
  static Outcome Done(T value, BudgetReport report = {}) {
    Outcome o;
    o.value_ = std::move(value);
    o.report_ = report;
    o.report_.reason = StopReason::kNone;
    return o;
  }

  // An outcome that stopped short; `report.reason` must not be kNone.
  // Classified as Cancelled for StopReason::kCancelled, Exhausted for
  // every resource limit.
  static Outcome StoppedShort(BudgetReport report) {
    HOMPRES_CHECK(report.reason != StopReason::kNone);
    Outcome o;
    o.report_ = report;
    return o;
  }

  // Done(value) if the budget never stopped, otherwise the corresponding
  // StoppedShort. The common tail of every budgeted procedure.
  static Outcome Finish(const Budget& budget, T value) {
    if (budget.Stopped()) return StoppedShort(budget.Report());
    return Done(std::move(value), budget.Report());
  }

  bool IsDone() const { return value_.has_value(); }
  bool IsCancelled() const {
    return !IsDone() && report_.reason == StopReason::kCancelled;
  }
  bool IsExhausted() const { return !IsDone() && !IsCancelled(); }

  // Requires IsDone().
  const T& Value() const& {
    HOMPRES_CHECK(IsDone());
    return *value_;
  }
  T& Value() & {
    HOMPRES_CHECK(IsDone());
    return *value_;
  }
  T&& TakeValue() && {
    HOMPRES_CHECK(IsDone());
    return std::move(*value_);
  }

  T ValueOr(T fallback) const {
    return IsDone() ? *value_ : std::move(fallback);
  }

  const BudgetReport& Report() const { return report_; }

 private:
  Outcome() = default;

  std::optional<T> value_;
  BudgetReport report_;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_OUTCOME_H_
