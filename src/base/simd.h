// Runtime SIMD dispatch for the bitset64 word kernels.
//
// The solver-bound loops (AC-3 domain revision, the pebble-game fixpoint
// sweep, the treewidth DP's candidate intersection) spend their time in a
// handful of whole-row operations over packed uint64_t words. This header
// names those operations once, as a table of function pointers
// (SimdKernels), and provides three implementations of the table: a
// portable scalar one (the differential baseline — bit-identical by
// construction, since the wide forms compute the same words in a
// different order), an AVX2 one, and an AVX-512 one.
//
// Dispatch is decided exactly once per process: CPUID (via
// __builtin_cpu_supports) picks the widest level the host executes, then
// the HOMPRES_SIMD environment variable (scalar|avx2|avx512) may clamp it
// *down* — an override can never select an ISA the CPU lacks. The chosen
// table is cached behind one relaxed atomic pointer load, so the
// per-call dispatch cost is a single indirect branch; callers that
// already know their rows are one or two words wide (most of the test
// structures) keep the inlined scalar loops in bitset64.h and never pay
// even that.
//
// Every kernel accepts arbitrary (unpadded) word counts and finishes
// ragged tails with the scalar loop, so the dispatched forms are safe on
// any caller's buffer; the row pools in the solvers additionally pad
// strides to kRowAlignWords and align allocations to kRowAlignBytes so
// the hot rows run full-width lanes with an empty tail.
//
// Tests and benches can pin a level: KernelsFor(level) exposes each
// table directly (for differential fuzzing one ISA against another), and
// ScopedSimdOverride redirects the process-wide dispatch for a scope
// (for running whole solver stacks forced to scalar).

#ifndef HOMPRES_BASE_SIMD_H_
#define HOMPRES_BASE_SIMD_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string_view>

namespace hompres {
namespace simd {

// Widest vector width a kernel table uses. Ordered: higher enum value =
// wider ISA, so clamping an override is a min().
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// "scalar", "avx2", "avx512" — the spelling HOMPRES_SIMD accepts and the
// one stamped into plan Explain()/Summary() lines and bench-JSON rows.
const char* SimdLevelName(SimdLevel level);

// Inverse of SimdLevelName; nullopt on any other spelling.
std::optional<SimdLevel> ParseSimdLevel(std::string_view name);

// Widest level this CPU supports (CPUID; cached after the first call).
// kAvx512 requires F+BW+VPOPCNTDQ together — the popcount kernel needs
// vpopcntq, and mixing per-kernel ISAs would make the `simd` stamp a lie.
SimdLevel DetectedSimdLevel();

// DetectedSimdLevel() clamped by HOMPRES_SIMD (read once). An override
// naming a wider ISA than the CPU has is ignored with the detected level
// kept; an unparseable value is ignored too.
SimdLevel ActiveSimdLevel();

// The dispatchable whole-row operations. Semantics are exactly those of
// the scalar loops in bitset64.h; every implementation preserves the
// tail-zero invariant (it writes only AND/OR combinations of existing
// words) and is bit-identical to scalar on every input.
struct SimdKernels {
  int (*popcount)(const uint64_t* words, int num_words);
  int (*find_first)(const uint64_t* words, int num_words);
  int (*find_next)(const uint64_t* words, int num_words, int bit);
  bool (*intersect_in_place)(uint64_t* dst, const uint64_t* src,
                             int num_words);  // dst &= src; true iff changed
  void (*union_in_place)(uint64_t* dst, const uint64_t* src, int num_words);
  bool (*any_set)(const uint64_t* words, int num_words);
  bool (*equal)(const uint64_t* a, const uint64_t* b, int num_words);
};

// The table for one specific level. Calling a table above
// DetectedSimdLevel() executes illegal instructions — guard with
// DetectedSimdLevel() (the differential fuzz tests do).
const SimdKernels& KernelsFor(SimdLevel level);

namespace internal {
// Set once on first use (ActiveKernels/ActiveSimdLevel), then only read.
// Relaxed is enough: the tables are immutable statics and the pointer is
// written before any worker threads exist on the normal path; the test
// override below writes it from a quiesced state.
extern std::atomic<const SimdKernels*> g_active_kernels;
const SimdKernels* InitActiveKernels();
}  // namespace internal

// The process-wide dispatched table: one relaxed atomic load per call.
inline const SimdKernels& ActiveKernels() {
  const SimdKernels* k =
      internal::g_active_kernels.load(std::memory_order_relaxed);
  if (k == nullptr) k = internal::InitActiveKernels();
  return *k;
}

// Test hook: force the dispatched level for a scope (clamped to the
// detected level, like the env override). Not for concurrent use with
// running solvers — install before spawning work, restore after joining.
class ScopedSimdOverride {
 public:
  explicit ScopedSimdOverride(SimdLevel level);
  ~ScopedSimdOverride();
  ScopedSimdOverride(const ScopedSimdOverride&) = delete;
  ScopedSimdOverride& operator=(const ScopedSimdOverride&) = delete;

 private:
  const SimdKernels* previous_;
};

}  // namespace simd
}  // namespace hompres

#endif  // HOMPRES_BASE_SIMD_H_
