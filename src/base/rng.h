// Deterministic random number generation for structure/graph generators.
//
// All randomized generators in the library take an explicit `Rng&` so that
// every experiment is reproducible from its seed. The engine is a SplitMix64
// (fast, tiny state, good statistical quality for test-workload purposes).

#ifndef HOMPRES_BASE_RNG_H_
#define HOMPRES_BASE_RNG_H_

#include <cstdint>

#include "base/check.h"

namespace hompres {

// Deterministic pseudo-random generator. Copyable so call sites can fork a
// stream; a copy replays the same sequence.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64-bit value (SplitMix64 step).
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  // sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound) {
    HOMPRES_CHECK_GT(bound, 0u);
    const uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    HOMPRES_CHECK_LE(lo, hi);
    return lo + static_cast<int>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Bernoulli trial with probability p in [0, 1].
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    // 53 random bits give a uniform double in [0, 1).
    const double u =
        static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
  }

 private:
  uint64_t state_;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_RNG_H_
