// Deterministic fault injection for chaos testing the degraded paths.
//
// A *failpoint* is a named site in the library where a failure can be
// injected on demand: an index build that "runs out of memory", a cache
// shard that "goes bad", a worker thread that "fails to spawn". Sites are
// instrumented with the HOMPRES_FAILPOINT(name) macro, which evaluates to
// true when the named point is armed and its schedule says to fire:
//
//   if (HOMPRES_FAILPOINT("relation_index/build")) return nullptr;
//
// Names follow a "subsystem/event" scheme (see DESIGN.md §4.6 for the
// full catalogue). Schedules are deterministic and seed-driven so every
// chaos run is reproducible:
//
//   "once"     fire on the first hit only
//   "always"   fire on every hit
//   "nth:K"    fire on the K-th hit only (1-based)
//   "every:K"  fire on every K-th hit
//   "prob:P"   fire with probability P per hit, from the registry seed
//
// Arming is explicit (Arm / ArmFromSpec) or environment-driven
// (ArmFromEnv reads HOMPRES_FAILPOINTS and HOMPRES_CHAOS_SEED); nothing
// is armed by default. The disarmed fast path is one relaxed atomic load
// with no branch into the registry, so production binaries pay nothing.
//
// The registry is process-global and thread-safe. Hit/fire counters are
// kept per point so tests can assert that an armed site was actually
// reached and that every fired fault produced a visible degradation.

#ifndef HOMPRES_BASE_FAILPOINT_H_
#define HOMPRES_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hompres {

class FailpointRegistry {
 public:
  // The process-wide registry.
  static FailpointRegistry& Global();

  // True when at least one point is armed. This is the macro fast path;
  // a single relaxed load, no lock.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  // Arms `name` with a schedule spec ("once", "always", "nth:K",
  // "every:K", "prob:P"). Re-arming replaces the previous schedule and
  // resets the point's counters. Returns false (and arms nothing) on a
  // malformed spec.
  bool Arm(const std::string& name, const std::string& spec);

  // Arms a semicolon- or comma-separated list of "name=spec" entries,
  // e.g. "hom_cache/lookup=once;thread_pool/spawn=prob:0.5". Returns
  // false if any entry is malformed (earlier entries stay armed).
  bool ArmFromSpec(const std::string& config);

  // Reads HOMPRES_FAILPOINTS (an ArmFromSpec string) and
  // HOMPRES_CHAOS_SEED (a decimal seed for "prob:" schedules) from the
  // environment. Returns true if anything was armed.
  bool ArmFromEnv();

  // Disarms one point / all points. Counters for disarmed points are
  // dropped.
  void Disarm(const std::string& name);
  void DisarmAll();

  // Seeds the deterministic stream behind "prob:" schedules. Applies to
  // points armed after the call.
  void SetSeed(uint64_t seed);

  // Called by the macro when AnyArmed(): records a hit on `name` and
  // returns whether the fault fires. Unarmed names return false without
  // recording anything.
  bool Hit(const char* name);

  // Counters for tests: how often an armed `name` was reached / fired.
  // Zero for unarmed names (counters reset on re-arm and disarm).
  uint64_t HitCount(const std::string& name) const;
  uint64_t FireCount(const std::string& name) const;

  // Names currently armed, in unspecified order.
  std::vector<std::string> ArmedNames() const;

 private:
  enum class Mode { kOnce, kAlways, kNth, kEvery, kProb };

  struct Point {
    Mode mode = Mode::kOnce;
    uint64_t n = 1;          // kNth / kEvery parameter
    double p = 0.0;          // kProb parameter
    uint64_t rng_state = 0;  // per-point SplitMix64 stream for kProb
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  static bool ParseSpec(const std::string& spec, Point* out);

  static std::atomic<uint64_t> armed_count_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  uint64_t seed_ = 0;
};

}  // namespace hompres

// True iff the failpoint `name` is armed and fires on this hit. `name`
// must be a string literal (the registry keys on its value). Near-zero
// cost when nothing is armed: short-circuits after one relaxed load.
#define HOMPRES_FAILPOINT(name)                 \
  (::hompres::FailpointRegistry::AnyArmed() &&  \
   ::hompres::FailpointRegistry::Global().Hit(name))

#endif  // HOMPRES_BASE_FAILPOINT_H_
