#include "base/simd.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define HOMPRES_SIMD_X86 1
#include <immintrin.h>
#else
#define HOMPRES_SIMD_X86 0
#endif

#include <bit>

namespace hompres {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar table: the differential baseline. These mirror the inline loops
// in bitset64.h word for word.

int PopcountScalar(const uint64_t* words, int num_words) {
  int count = 0;
  for (int w = 0; w < num_words; ++w) count += std::popcount(words[w]);
  return count;
}

int FindFirstScalar(const uint64_t* words, int num_words) {
  for (int w = 0; w < num_words; ++w) {
    if (words[w] != 0) return w * 64 + std::countr_zero(words[w]);
  }
  return -1;
}

bool IntersectScalar(uint64_t* dst, const uint64_t* src, int num_words) {
  bool changed = false;
  for (int w = 0; w < num_words; ++w) {
    const uint64_t next = dst[w] & src[w];
    changed |= next != dst[w];
    dst[w] = next;
  }
  return changed;
}

void UnionScalar(uint64_t* dst, const uint64_t* src, int num_words) {
  for (int w = 0; w < num_words; ++w) dst[w] |= src[w];
}

bool AnySetScalar(const uint64_t* words, int num_words) {
  for (int w = 0; w < num_words; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

bool EqualScalar(const uint64_t* a, const uint64_t* b, int num_words) {
  for (int w = 0; w < num_words; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

// FindNext shares one shape across levels: resolve the partial word after
// `bit` scalar (at most one word), then hand the rest to the level's
// FindFirst. Bit positions, not word contents, get adjusted, so the
// result is identical across levels by construction.
template <int (*FindFirstFn)(const uint64_t*, int)>
int FindNextVia(const uint64_t* words, int num_words, int bit) {
  int w = (bit + 1) >> 6;
  if (w >= num_words) return -1;
  const uint64_t masked = words[w] & (~uint64_t{0} << ((bit + 1) & 63));
  if (masked != 0) return w * 64 + std::countr_zero(masked);
  ++w;
  const int rest = FindFirstFn(words + w, num_words - w);
  return rest < 0 ? -1 : w * 64 + rest;
}

constexpr SimdKernels kScalarKernels = {
    &PopcountScalar,  &FindFirstScalar, &FindNextVia<&FindFirstScalar>,
    &IntersectScalar, &UnionScalar,     &AnySetScalar,
    &EqualScalar,
};

#if HOMPRES_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 table. 4 words (256 bits) per lane op; ragged tails fall through
// to the scalar loop so the kernels are safe on unpadded buffers. All of
// these compute the same words the scalar loop computes — only the
// grouping differs — so results are bit-identical.

__attribute__((target("avx2"))) int PopcountAvx2(const uint64_t* words,
                                                 int num_words) {
  // Nibble-LUT popcount (Mula): per-byte counts via two PSHUFB lookups,
  // horizontal-summed 8 bytes at a time with PSADBW against zero.
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int count = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; w < num_words; ++w) count += std::popcount(words[w]);
  return count;
}

__attribute__((target("avx2"))) int FindFirstAvx2(const uint64_t* words,
                                                  int num_words) {
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (!_mm256_testz_si256(v, v)) break;  // some word in this block is set
  }
  for (; w < num_words; ++w) {
    if (words[w] != 0) return w * 64 + std::countr_zero(words[w]);
  }
  return -1;
}

__attribute__((target("avx2"))) bool IntersectAvx2(uint64_t* dst,
                                                   const uint64_t* src,
                                                   int num_words) {
  __m256i diff = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i a = _mm256_and_si256(d, s);
    diff = _mm256_or_si256(diff, _mm256_xor_si256(a, d));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), a);
  }
  bool changed = !_mm256_testz_si256(diff, diff);
  for (; w < num_words; ++w) {
    const uint64_t next = dst[w] & src[w];
    changed |= next != dst[w];
    dst[w] = next;
  }
  return changed;
}

__attribute__((target("avx2"))) void UnionAvx2(uint64_t* dst,
                                               const uint64_t* src,
                                               int num_words) {
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, s));
  }
  for (; w < num_words; ++w) dst[w] |= src[w];
}

__attribute__((target("avx2"))) bool AnySetAvx2(const uint64_t* words,
                                                int num_words) {
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; w < num_words; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

__attribute__((target("avx2"))) bool EqualAvx2(const uint64_t* a,
                                               const uint64_t* b,
                                               int num_words) {
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i x = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(x, x)) return false;
  }
  for (; w < num_words; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

constexpr SimdKernels kAvx2Kernels = {
    &PopcountAvx2,  &FindFirstAvx2, &FindNextVia<&FindFirstAvx2>,
    &IntersectAvx2, &UnionAvx2,     &AnySetAvx2,
    &EqualAvx2,
};

// ---------------------------------------------------------------------------
// AVX-512 table. 8 words (512 bits) per lane op. Selected only when F,
// BW and VPOPCNTDQ are all present (vpopcntq carries the popcount
// kernel); otherwise dispatch stops at AVX2.

__attribute__((target("avx512f,avx512vpopcntdq"))) int PopcountAvx512(
    const uint64_t* words, int num_words) {
  __m512i acc = _mm512_setzero_si512();
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i v = _mm512_loadu_si512(words + w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  int count = static_cast<int>(_mm512_reduce_add_epi64(acc));
  for (; w < num_words; ++w) count += std::popcount(words[w]);
  return count;
}

__attribute__((target("avx512f"))) int FindFirstAvx512(const uint64_t* words,
                                                       int num_words) {
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i v = _mm512_loadu_si512(words + w);
    const __mmask8 nz = _mm512_test_epi64_mask(v, v);
    if (nz != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(nz));
      return (w + lane) * 64 + std::countr_zero(words[w + lane]);
    }
  }
  for (; w < num_words; ++w) {
    if (words[w] != 0) return w * 64 + std::countr_zero(words[w]);
  }
  return -1;
}

__attribute__((target("avx512f"))) bool IntersectAvx512(uint64_t* dst,
                                                        const uint64_t* src,
                                                        int num_words) {
  __mmask8 changed_mask = 0;
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i d = _mm512_loadu_si512(dst + w);
    const __m512i s = _mm512_loadu_si512(src + w);
    const __m512i a = _mm512_and_si512(d, s);
    changed_mask |= _mm512_cmpneq_epi64_mask(a, d);
    _mm512_storeu_si512(dst + w, a);
  }
  bool changed = changed_mask != 0;
  for (; w < num_words; ++w) {
    const uint64_t next = dst[w] & src[w];
    changed |= next != dst[w];
    dst[w] = next;
  }
  return changed;
}

__attribute__((target("avx512f"))) void UnionAvx512(uint64_t* dst,
                                                    const uint64_t* src,
                                                    int num_words) {
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i d = _mm512_loadu_si512(dst + w);
    const __m512i s = _mm512_loadu_si512(src + w);
    _mm512_storeu_si512(dst + w, _mm512_or_si512(d, s));
  }
  for (; w < num_words; ++w) dst[w] |= src[w];
}

__attribute__((target("avx512f"))) bool AnySetAvx512(const uint64_t* words,
                                                     int num_words) {
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i v = _mm512_loadu_si512(words + w);
    if (_mm512_test_epi64_mask(v, v) != 0) return true;
  }
  for (; w < num_words; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

__attribute__((target("avx512f"))) bool EqualAvx512(const uint64_t* a,
                                                    const uint64_t* b,
                                                    int num_words) {
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    if (_mm512_cmpneq_epi64_mask(va, vb) != 0) return false;
  }
  for (; w < num_words; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

constexpr SimdKernels kAvx512Kernels = {
    &PopcountAvx512,  &FindFirstAvx512, &FindNextVia<&FindFirstAvx512>,
    &IntersectAvx512, &UnionAvx512,     &AnySetAvx512,
    &EqualAvx512,
};

#endif  // HOMPRES_SIMD_X86

SimdLevel DetectOnce() {
#if HOMPRES_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ActiveOnce() {
  SimdLevel level = DetectedSimdLevel();
  if (const char* env = std::getenv("HOMPRES_SIMD")) {
    if (const auto forced = ParseSimdLevel(env)) {
      // Clamp down only: HOMPRES_SIMD=avx512 on an AVX2-only host keeps
      // AVX2 rather than executing illegal instructions.
      if (static_cast<int>(*forced) < static_cast<int>(level)) level = *forced;
    }
  }
  return level;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<SimdLevel> ParseSimdLevel(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = DetectOnce();
  return level;
}

SimdLevel ActiveSimdLevel() {
  // The override hook (ScopedSimdOverride) swaps the kernel table; report
  // whichever table is currently dispatched so plan/bench stamps match
  // the code that actually ran.
  const SimdKernels* active =
      internal::g_active_kernels.load(std::memory_order_relaxed);
  if (active == nullptr) active = internal::InitActiveKernels();
#if HOMPRES_SIMD_X86
  if (active == &kAvx512Kernels) return SimdLevel::kAvx512;
  if (active == &kAvx2Kernels) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

const SimdKernels& KernelsFor(SimdLevel level) {
#if HOMPRES_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx512:
      return kAvx512Kernels;
    case SimdLevel::kAvx2:
      return kAvx2Kernels;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return kScalarKernels;
}

namespace internal {

std::atomic<const SimdKernels*> g_active_kernels{nullptr};

const SimdKernels* InitActiveKernels() {
  // Racing first calls compute the same table; the store is idempotent.
  const SimdKernels* table = &KernelsFor(ActiveOnce());
  g_active_kernels.store(table, std::memory_order_relaxed);
  return table;
}

}  // namespace internal

ScopedSimdOverride::ScopedSimdOverride(SimdLevel level) {
  const SimdKernels* current =
      internal::g_active_kernels.load(std::memory_order_relaxed);
  if (current == nullptr) current = internal::InitActiveKernels();
  previous_ = current;
  SimdLevel clamped = level;
  if (static_cast<int>(clamped) > static_cast<int>(DetectedSimdLevel())) {
    clamped = DetectedSimdLevel();
  }
  internal::g_active_kernels.store(&KernelsFor(clamped),
                                   std::memory_order_relaxed);
}

ScopedSimdOverride::~ScopedSimdOverride() {
  internal::g_active_kernels.store(previous_, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace hompres
