// Enumeration helpers for k-element subsets and tuples.
//
// Several constructions in the paper quantify over "every k-element subset"
// (Ramsey colorings, sunflower petals, minor branch sets); these helpers
// centralize the enumeration so callers stay readable.

#ifndef HOMPRES_BASE_SUBSETS_H_
#define HOMPRES_BASE_SUBSETS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/check.h"

namespace hompres {

// In-place advance of a k-combination of {0, ..., n-1} in lexicographic
// order. `indices` must hold a valid combination (strictly increasing).
// Returns false when `indices` was the last combination.
bool NextCombination(int n, std::vector<int>& indices);

// First k-combination of {0, ..., n-1}: {0, 1, ..., k-1}.
// Requires 0 <= k <= n.
std::vector<int> FirstCombination(int n, int k);

// Invokes `fn(subset)` for every k-element subset of {0, ..., n-1} in
// lexicographic order until fn returns false (early exit) or the
// enumeration is exhausted. Returns true iff the enumeration completed.
template <typename Fn>
bool ForEachCombination(int n, int k, Fn&& fn) {
  HOMPRES_CHECK_GE(k, 0);
  if (k > n) return true;
  std::vector<int> c = FirstCombination(n, k);
  for (;;) {
    if (!fn(static_cast<const std::vector<int>&>(c))) return false;
    if (!NextCombination(n, c)) return true;
  }
}

// Invokes `fn(tuple)` for every length-k tuple over {0, ..., n-1} (n^k
// tuples, odometer order) until fn returns false. Returns true iff the
// enumeration completed. For k > 0 and n == 0 there are no tuples.
// Requires k >= 0, n >= 0.
template <typename Fn>
bool ForEachTuple(int n, int k, Fn&& fn) {
  HOMPRES_CHECK_GE(k, 0);
  HOMPRES_CHECK_GE(n, 0);
  std::vector<int> t(static_cast<size_t>(k), 0);
  if (k == 0) return fn(static_cast<const std::vector<int>&>(t));
  if (n == 0) return true;
  for (;;) {
    if (!fn(static_cast<const std::vector<int>&>(t))) return false;
    int pos = k - 1;
    while (pos >= 0 && t[static_cast<size_t>(pos)] == n - 1) {
      t[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) return true;
    ++t[static_cast<size_t>(pos)];
  }
}

// Number of k-element subsets of an n-element set, saturating at
// uint64_t max. Requires n, k >= 0.
uint64_t BinomialSaturating(int n, int k);

// Invokes `fn(block_of)` for every set partition of {0, ..., n-1}, where
// block_of[i] is the (0-based, first-seen order) block of element i —
// i.e. restricted growth strings. fn returns false to stop. Returns true
// iff the enumeration completed. Requires n >= 0; for n == 0 the single
// empty partition is visited. Bell(n) partitions, so keep n small.
template <typename Fn>
bool ForEachSetPartition(int n, Fn&& fn) {
  HOMPRES_CHECK_GE(n, 0);
  std::vector<int> block(static_cast<size_t>(n), 0);
  if (n == 0) return fn(static_cast<const std::vector<int>&>(block));
  // Restricted growth strings: block[0] = 0 and
  // block[i] <= 1 + max(block[0..i-1]).
  for (;;) {
    if (!fn(static_cast<const std::vector<int>&>(block))) return false;
    int i = n - 1;
    for (; i > 0; --i) {
      int max_prefix = 0;
      for (int j = 0; j < i; ++j) {
        max_prefix = std::max(max_prefix, block[static_cast<size_t>(j)]);
      }
      if (block[static_cast<size_t>(i)] <= max_prefix) {
        ++block[static_cast<size_t>(i)];
        for (int j = i + 1; j < n; ++j) block[static_cast<size_t>(j)] = 0;
        break;
      }
    }
    if (i == 0) return true;
  }
}

}  // namespace hompres

#endif  // HOMPRES_BASE_SUBSETS_H_
