#include "base/budget.h"

namespace hompres {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kSteps:
      return "steps";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemory:
      return "memory";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace hompres
