// Cache-line-aligned flat word pools for packed row families.
//
// The solver workspaces keep families of same-width bitset rows in one
// flat allocation (row r at words + r * stride). For the SIMD kernels
// (base/simd.h) to run full-width lanes on every row, two layout
// invariants must hold:
//
//   * the base pointer is 64-byte aligned (kRowAlignBytes — one cache
//     line, and the natural alignment of a 512-bit lane), and
//   * the stride is padded to a multiple of kRowAlignWords words (see
//     bitset64::PaddedWordsFor), so each row also starts on a lane
//     boundary and a whole-row op has no ragged tail.
//
// Padding words are cleared on (re)allocation and every kernel writes
// only AND/OR combinations of existing words, so the padding stays zero
// forever — Popcount/FindFirst/AnySet over the padded stride equal their
// values over the logical width. This is the same tail-zero invariant
// bitset64.h maintains for the last partial word, extended to whole
// words.
//
// std::vector<uint64_t> guarantees neither invariant (typical alignment
// is 16 bytes), hence this tiny owning buffer. Resize discards contents
// (the solvers overwrite rows before reading them) and only reallocates
// on growth, matching the grow-and-reuse lifecycle of the leased
// workspaces.

#ifndef HOMPRES_BASE_ROW_POOL_H_
#define HOMPRES_BASE_ROW_POOL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

namespace hompres {

inline constexpr size_t kRowAlignBytes = 64;

class AlignedWordPool {
 public:
  AlignedWordPool() = default;
  ~AlignedWordPool() { Release(); }

  AlignedWordPool(const AlignedWordPool&) = delete;
  AlignedWordPool& operator=(const AlignedWordPool&) = delete;
  AlignedWordPool(AlignedWordPool&& other) noexcept
      : words_(other.words_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.words_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  AlignedWordPool& operator=(AlignedWordPool&& other) noexcept {
    if (this != &other) {
      Release();
      words_ = other.words_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.words_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  // Makes the pool hold `num_words` zeroed words at 64-byte alignment.
  // Grows capacity geometrically (never shrinks); contents do not
  // survive a resize. Throws std::bad_alloc on exhaustion, which the
  // kernel entry points already contain as a structured kMemory stop.
  void Resize(size_t num_words) {
    if (num_words > capacity_) {
      size_t new_capacity = capacity_ == 0 ? size_t{64} : capacity_;
      while (new_capacity < num_words) new_capacity *= 2;
      uint64_t* grown = static_cast<uint64_t*>(::operator new(
          new_capacity * sizeof(uint64_t), std::align_val_t{kRowAlignBytes}));
      Release();
      words_ = grown;
      capacity_ = new_capacity;
    }
    size_ = num_words;
    std::memset(words_, 0, size_ * sizeof(uint64_t));
  }

  uint64_t* data() { return words_; }
  const uint64_t* data() const { return words_; }
  size_t size() const { return size_; }

 private:
  void Release() {
    if (words_ != nullptr) {
      ::operator delete(words_, std::align_val_t{kRowAlignBytes});
      words_ = nullptr;
    }
  }

  uint64_t* words_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_ROW_POOL_H_
