// Budget plumbing for parallel fan-out regions.
//
// Every parallel driver in the library follows the same shape: split one
// logical budgeted operation into a fixed set of independent subtasks,
// run them on a ThreadPool, and keep the caller's Budget contract intact.
// ParallelRegion owns the three pieces of shared state that makes
// possible:
//
//  - a shared atomic step counter (Budget::SpawnWorker) so the workers
//    together respect the parent's step limit, settled back into the
//    parent via ChargeSteps when the region joins;
//  - one cancellation flag per task, so a driver can cancel exactly the
//    subtasks whose result can no longer matter (first-finisher or
//    lexicographic cancellation);
//  - relaying of the parent's external cancellation flag (WithCancelFlag)
//    to every task while the driver blocks in Join.
//
// Protocol: construct the region with the parent budget and the task
// count, Submit one closure per task to a ThreadPool, have each closure
// draw its budget from WorkerBudget(i) and call TaskDone() as its last
// action, then call Join(pool) once from the submitting thread. After
// Join returns, the tasks' writes are visible to the caller (TaskDone /
// Join synchronize) and the parent's step accounting is settled.

#ifndef HOMPRES_BASE_PARALLEL_DRIVER_H_
#define HOMPRES_BASE_PARALLEL_DRIVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "base/budget.h"
#include "base/thread_pool.h"

namespace hompres {

class ParallelRegion {
 public:
  // `parent` must outlive the region and must not be used while the
  // region's tasks run (until Join returns).
  ParallelRegion(Budget& parent, int num_tasks);

  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

  int NumTasks() const { return num_tasks_; }

  // The budget for task `i`: same deadline as the parent, steps drawn
  // from the region's shared pool against the parent's step limit, and
  // the task's own cancellation flag. Call from the task body.
  Budget WorkerBudget(int i) const;

  // Raises the cancellation flag of every task with index >= first.
  // Callable from task bodies (e.g. a task that found a witness cancels
  // the subtrees to its right).
  void CancelFrom(int first);
  void CancelAll() { CancelFrom(0); }

  // Each task body must call this exactly once, as its last action.
  void TaskDone();

  // Wraps a task body for Submit so an escaping exception cancels the
  // whole region instead of dying at the pool's worker boundary: the
  // exception is swallowed, every task's cancellation flag is raised,
  // and TaskDone is called on the body's behalf (the body's own trailing
  // TaskDone was not reached). Join then reports the region cancelled,
  // which the drivers turn into StopReason::kCancelled. Also hosts the
  // "parallel/task_throw" failpoint, which fires a synthetic exception
  // before the body runs.
  std::function<void()> GuardedTask(std::function<void()> body);

  // Blocks until every task called TaskDone, relaying an external
  // cancellation (the parent's WithCancelFlag flag) to the per-task
  // flags, waits for `pool` to go idle, and settles the shared step
  // total into the parent via ChargeSteps. Returns true iff an external
  // cancellation was observed or a guarded task threw (either way the
  // region was cancelled and the caller should report
  // StopReason::kCancelled). Call exactly once, from the thread that
  // owns the parent budget.
  bool Join(ThreadPool& pool);

 private:
  Budget& parent_;
  const int num_tasks_;
  const uint64_t base_steps_;
  mutable std::atomic<uint64_t> shared_steps_;
  std::unique_ptr<std::atomic<bool>[]> cancels_;
  std::atomic<bool> task_threw_{false};
  std::mutex mu_;
  std::condition_variable done_cv_;
  int done_ = 0;
};

// The StopReason a driver reports when some subtask stopped short and the
// parent budget itself carries no reason: kCancelled if the region was
// externally cancelled, else kDeadline if any worker hit the deadline,
// else kSteps (the shared step pool ran dry).
StopReason CombineWorkerStops(bool external_cancel, bool any_deadline);

// The post-Join bookkeeping every parallel driver repeats: scan the task
// states, decide whether the region completed, and synthesize the stop
// report when it did not. Usage, after Join(pool) returned
// `external_cancel`:
//
//   WorkerStopScan scan;
//   for (const TaskState& s : states) scan.Observe(s.completed, s.stop);
//   if (!scan.AnyIncomplete()) return Done(...);
//   return StoppedShort(scan.StoppedReport(parent, external_cancel));
//
// The report is the parent's, with its reason replaced by the combined
// worker reason only when the parent itself carries none (a parent that
// stopped knows better than any worker why).
class WorkerStopScan {
 public:
  void Observe(bool completed, StopReason stop) {
    if (completed) return;
    any_incomplete_ = true;
    any_deadline_ |= stop == StopReason::kDeadline;
  }

  bool AnyIncomplete() const { return any_incomplete_; }

  BudgetReport StoppedReport(const Budget& parent,
                             bool external_cancel) const {
    BudgetReport report = parent.Report();
    if (report.reason == StopReason::kNone) {
      report.reason = CombineWorkerStops(external_cancel, any_deadline_);
    }
    return report;
  }

 private:
  bool any_incomplete_ = false;
  bool any_deadline_ = false;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_PARALLEL_DRIVER_H_
