// Lightweight CHECK macros for enforcing programmer-error invariants.
//
// The library does not use exceptions (see DESIGN.md); conditions that
// indicate a bug in the caller abort the process with a diagnostic, while
// operations that can legitimately fail return bool/std::optional instead.

#ifndef HOMPRES_BASE_CHECK_H_
#define HOMPRES_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hompres::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, condition);
  std::abort();
}

}  // namespace hompres::internal

// Aborts with a diagnostic if `condition` is false. Always evaluated,
// including in release builds: the library's correctness arguments (e.g.
// "every tree decomposition we output is valid") rely on these firing.
#define HOMPRES_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::hompres::internal::CheckFailed(__FILE__, __LINE__, #condition);   \
    }                                                                     \
  } while (0)

#define HOMPRES_CHECK_EQ(a, b) HOMPRES_CHECK((a) == (b))
#define HOMPRES_CHECK_NE(a, b) HOMPRES_CHECK((a) != (b))
#define HOMPRES_CHECK_LT(a, b) HOMPRES_CHECK((a) < (b))
#define HOMPRES_CHECK_LE(a, b) HOMPRES_CHECK((a) <= (b))
#define HOMPRES_CHECK_GT(a, b) HOMPRES_CHECK((a) > (b))
#define HOMPRES_CHECK_GE(a, b) HOMPRES_CHECK((a) >= (b))

#endif  // HOMPRES_BASE_CHECK_H_
