#include "base/thread_pool.h"

#include "base/check.h"

namespace hompres {

namespace {

// Identity of the current thread within a pool, so Submit from a worker
// lands on that worker's own deque (LIFO end).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  HOMPRES_CHECK_GE(num_threads, 1);
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  if (tls_pool == this && tls_worker >= 0) {
    target = static_cast<size_t>(tls_worker);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // The push precedes the count increment, so a worker that claims a unit
  // of work (decrements queued_) always finds some task in some deque.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++queued_;
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return queued_ > 0 || stopping_; });
      if (queued_ == 0) return;  // stopping and fully drained
      --queued_;  // claim one unit of work
    }
    // Claims never outnumber pushed tasks, so the claimed task is in some
    // deque; a miss is a transient interleaving with other claimants.
    std::function<void()> task;
    for (;;) {
      task = TakeTask(self);
      if (task) break;
      std::this_thread::yield();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::function<void()> ThreadPool::TakeTask(int self) {
  {
    WorkerQueue& own = *queues_[static_cast<size_t>(self)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  const int n = NumWorkers();
  for (int k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[static_cast<size_t>((self + k) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ParallelFor(ThreadPool& pool, int n,
                 const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.WaitIdle();
}

}  // namespace hompres
