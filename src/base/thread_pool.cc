#include "base/thread_pool.h"

#include <system_error>

#include "base/check.h"
#include "base/failpoint.h"

namespace hompres {

namespace {

// Identity of the current thread within a pool, so Submit from a worker
// lands on that worker's own deque (LIFO end).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  HOMPRES_CHECK_GE(num_threads, 1);
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    // A failed spawn (resource exhaustion, or the injected fault) skips
    // this worker; its deque stays and the survivors steal from it. If
    // every spawn fails the pool degrades to inline execution in Submit.
    if (HOMPRES_FAILPOINT("thread_pool/spawn")) continue;
    try {
      workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
    } catch (const std::system_error&) {
      continue;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Zero-worker degeneration: run inline so WaitIdle never hangs. The
    // in-flight counters stay untouched (the task is done before Submit
    // returns).
    try {
      task();
    } catch (...) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  size_t target;
  if (tls_pool == this && tls_worker >= 0) {
    target = static_cast<size_t>(tls_worker);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // The push precedes the count increment, so a worker that claims a unit
  // of work (decrements queued_) always finds some task in some deque.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++queued_;
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return queued_ > 0 || stopping_; });
      if (queued_ == 0) return;  // stopping and fully drained
      --queued_;  // claim one unit of work
    }
    // Claims never outnumber pushed tasks, so the claimed task is in some
    // deque; a miss is a transient interleaving with other claimants.
    std::function<void()> task;
    for (;;) {
      task = TakeTask(self);
      if (task) break;
      std::this_thread::yield();
    }
    // An exception escaping a task must not reach the thread boundary
    // (std::terminate); swallow and count it. Drivers that need
    // cancel-on-throw semantics wrap bodies in
    // ParallelRegion::GuardedTask before this backstop is reached.
    try {
      task();
    } catch (...) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::function<void()> ThreadPool::TakeTask(int self) {
  {
    WorkerQueue& own = *queues_[static_cast<size_t>(self)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Scan every deque (there is one per requested worker, possibly more
  // than live workers after spawn failures).
  const int n = static_cast<int>(queues_.size());
  for (int k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[static_cast<size_t>((self + k) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ParallelFor(ThreadPool& pool, int n,
                 const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.WaitIdle();
}

}  // namespace hompres
