#include "base/thread_pool.h"

#include <system_error>
#include <utility>

#include "base/check.h"
#include "base/failpoint.h"

namespace hompres {

namespace {

// Identity of the current thread within a pool, so Submit from a worker
// lands on that worker's own deque (LIFO end).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

constexpr size_t kDequeInitialCapacity = 256;   // slots; grows geometrically
constexpr size_t kInjectionCapacity = 8192;     // must be a power of two

}  // namespace

// ---------------------------------------------------------------------------
// Chase-Lev deque. The memory-order discipline is the C11 formulation of
// Le et al. (PPoPP 2013) with the standalone seq_cst fences strengthened
// into seq_cst accesses on top_/bottom_: the store-load orderings the
// fences provided are then carried by the total order on those accesses,
// which is at least as strong, and every ordering constraint lives on an
// atomic access TSan models exactly. Slots are atomic pointers, so a
// thief reading a slot concurrently with the owner recycling it is a
// value race resolved by the top_ CAS (the loser discards its read),
// never a data race.

ThreadPool::Deque::Deque() {
  array_.store(new Array(kDequeInitialCapacity), std::memory_order_relaxed);
}

ThreadPool::Deque::~Deque() {
  delete array_.load(std::memory_order_relaxed);
}

ThreadPool::Deque::Array* ThreadPool::Deque::Grow(Array* old, int64_t top,
                                                  int64_t bottom) {
  Array* bigger = new Array(old->capacity * 2);
  for (int64_t i = top; i < bottom; ++i) {
    bigger->slots[static_cast<size_t>(i) & bigger->mask].store(
        old->slots[static_cast<size_t>(i) & old->mask].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  array_.store(bigger, std::memory_order_release);
  // A thief that loaded `old` before the swap may still read its slots;
  // its subsequent top_ CAS decides whether that read counts. Retire the
  // array instead of deleting it — freed with the deque, after joins.
  retired_.emplace_back(old);
  return bigger;
}

void ThreadPool::Deque::PushBottom(TaskNode* node) {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_acquire);
  Array* a = array_.load(std::memory_order_relaxed);
  if (b - t > static_cast<int64_t>(a->capacity) - 1) a = Grow(a, t, b);
  a->slots[static_cast<size_t>(b) & a->mask].store(node,
                                                   std::memory_order_relaxed);
  // seq_cst publication: a thief that observes the new bottom also
  // observes the slot store above (release would give that too); the
  // seq_cst totality is what replaces the fence in PopBottom's proof.
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

ThreadPool::TaskNode* ThreadPool::Deque::PopBottom() {
  const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Array* a = array_.load(std::memory_order_relaxed);
  // Announce the claim on slot b before reading top: every thief whose
  // CAS succeeds after this store sees bottom <= b and aborts on t >= b,
  // so owner and thief can only collide on the single remaining element,
  // which the CAS below arbitrates.
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_seq_cst);
  if (t <= b) {
    TaskNode* node = a->slots[static_cast<size_t>(b) & a->mask].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        node = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return node;
  }
  // Deque was empty; restore bottom.
  bottom_.store(b + 1, std::memory_order_relaxed);
  return nullptr;
}

ThreadPool::TaskNode* ThreadPool::Deque::Steal() {
  int64_t t = top_.load(std::memory_order_seq_cst);
  const int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;  // empty (or the owner is mid-pop on the last)
  Array* a = array_.load(std::memory_order_acquire);
  TaskNode* node =
      a->slots[static_cast<size_t>(t) & a->mask].load(std::memory_order_relaxed);
  // The CAS validates the read: if top moved (another thief, or the owner
  // taking the last element), the node pointer read above is discarded.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;
  }
  return node;
}

// ---------------------------------------------------------------------------
// Vyukov bounded MPMC queue: each cell carries a sequence number that
// tickets producers and consumers; the acquire load / release store on it
// transfers the (non-atomic) node pointer without any lock.

ThreadPool::InjectionQueue::InjectionQueue(size_t capacity_pow2)
    : cells_(capacity_pow2), mask_(capacity_pow2 - 1) {
  HOMPRES_CHECK((capacity_pow2 & mask_) == 0);  // power of two
  for (size_t i = 0; i < capacity_pow2; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
    cells_[i].node = nullptr;
  }
}

bool ThreadPool::InjectionQueue::TryPush(TaskNode* node) {
  size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.node = node;
        cell.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

ThreadPool::TaskNode* ThreadPool::InjectionQueue::TryPop() {
  size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        TaskNode* node = cell.node;
        cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
        return node;
      }
    } else if (dif < 0) {
      return nullptr;  // empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) : injection_(kInjectionCapacity) {
  HOMPRES_CHECK_GE(num_threads, 1);
  deques_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    // A failed spawn (resource exhaustion, or the injected fault) skips
    // this worker; nothing is ever pushed to its deque (only workers push
    // to deques), so the survivors lose only a failed steal probe. If
    // every spawn fails the pool degrades to inline execution in Submit.
    if (HOMPRES_FAILPOINT("thread_pool/spawn")) continue;
    try {
      workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
    } catch (const std::system_error&) {
      continue;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock orders the flag with a worker's decision to sleep: a
    // worker that checked stopping_ before this store is either awake or
    // inside wait(), and notify_all reaches both.
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Zero-worker degeneration: run inline so WaitIdle never hangs. The
    // in-flight counters stay untouched (the task is done before Submit
    // returns).
    try {
      task();
    } catch (...) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  TaskNode* node = new TaskNode{std::move(task)};
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (tls_pool == this && tls_worker >= 0) {
    // Worker fast path: owner-side push, no shared state touched beyond
    // the deque's own bottom.
    deques_[static_cast<size_t>(tls_worker)]->PushBottom(node);
  } else {
    // External fast path: lock-free ticketed push. A full queue waits for
    // the workers to drain a slot; they always do, because every loop
    // iteration of every worker tries TryPop before stealing.
    while (!injection_.TryPush(node)) std::this_thread::yield();
  }
  unclaimed_.fetch_add(1, std::memory_order_seq_cst);
  // Wake a sleeper only if there is one — the contended case. While all
  // workers are busy (the common case under load), Submit never touches
  // the mutex. The seq_cst ordering of the unclaimed_ increment against
  // the sleeper's registration makes the miss impossible: either this
  // load sees the sleeper (notify under lock reaches it), or the sleeper
  // registered later and its wait predicate sees unclaimed_ > 0.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    work_available_.notify_one();
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_seq_cst) == 0;
  });
}

void ThreadPool::RunTask(TaskNode* node) {
  // An exception escaping a task must not reach the thread boundary
  // (std::terminate); swallow and count it. Drivers that need
  // cancel-on-throw semantics wrap bodies in ParallelRegion::GuardedTask
  // before this backstop is reached.
  try {
    node->fn();
  } catch (...) {
    exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
  delete node;
  if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Last task of the batch: rendezvous with WaitIdle under the lock so
    // its predicate check and our notify cannot interleave.
    std::lock_guard<std::mutex> lock(mutex_);
    all_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    TaskNode* node = FindTask(self);
    if (node != nullptr) {
      unclaimed_.fetch_sub(1, std::memory_order_seq_cst);
      RunTask(node);
      continue;
    }
    if (unclaimed_.load(std::memory_order_seq_cst) > 0) {
      // Work exists but wasn't found: a push racing our scan, or steals
      // lost to contention (or the injected steal fault). Spin again
      // rather than sleep — the claim protocol guarantees another pass
      // finds it once the producer's push lands.
      std::this_thread::yield();
      continue;
    }
    if (stopping_.load(std::memory_order_seq_cst)) return;
    std::unique_lock<std::mutex> lock(mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    work_available_.wait(lock, [this] {
      return stopping_.load(std::memory_order_seq_cst) ||
             unclaimed_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stopping_.load(std::memory_order_seq_cst) &&
        unclaimed_.load(std::memory_order_seq_cst) <= 0) {
      return;
    }
  }
}

ThreadPool::TaskNode* ThreadPool::FindTask(int self) {
  TaskNode* node = deques_[static_cast<size_t>(self)]->PopBottom();
  if (node != nullptr) return node;
  node = injection_.TryPop();
  if (node != nullptr) return node;
  // Steal scan over the other deques (one per requested worker; deques of
  // failed spawns are forever empty). A fired "thread_pool/steal"
  // failpoint abandons that victim this pass — exactly the effect of a
  // lost CAS race — so chaos schedules exercise the retry path without
  // ever dropping a task.
  const int n = static_cast<int>(deques_.size());
  for (int k = 1; k < n; ++k) {
    const int victim = (self + k) % n;
    if (HOMPRES_FAILPOINT("thread_pool/steal")) continue;
    node = deques_[static_cast<size_t>(victim)]->Steal();
    if (node != nullptr) return node;
  }
  return nullptr;
}

void ParallelFor(ThreadPool& pool, int n,
                 const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.WaitIdle();
}

}  // namespace hompres
