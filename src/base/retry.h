// A reusable retry schedule: geometric budget escalation with capped,
// seeded-jitter backoff.
//
// Generalizes the escalation loop that PreservationPipelineWithRetry
// introduced (attempt i runs with step limit initial_steps * factor^i and
// timeout initial_timeout * factor^i) into a policy any budgeted caller
// can consume: the preservation pipeline, the CLI's --retries flag, and
// the future hompresd admission control. The schedule itself is pure and
// deterministic — Attempt(i) is a function of the policy alone — so a
// retry trace can be reproduced exactly from the policy; only the
// optional backoff sleep touches the clock.
//
// Conventions match Budget: a zero initial limit means "unlimited" for
// that dimension (and stays unlimited under escalation); escalation
// saturates at uint64 max rather than wrapping.

#ifndef HOMPRES_BASE_RETRY_H_
#define HOMPRES_BASE_RETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "base/budget.h"

namespace hompres {

struct RetryPolicy {
  // First attempt's limits; 0 = unlimited for that dimension.
  uint64_t initial_steps = 1u << 16;
  std::chrono::nanoseconds initial_timeout = std::chrono::milliseconds(250);

  // Total number of attempts (>= 1), and the geometric growth per
  // attempt. A factor of 1 retries with identical limits.
  int max_attempts = 3;
  uint64_t escalation_factor = 4;

  // Optional caps the escalated limits clamp to; 0 = uncapped.
  uint64_t max_steps = 0;
  std::chrono::nanoseconds max_timeout{0};

  // Wait before attempt i (i >= 1): initial_backoff * factor^(i-1),
  // clamped to max_backoff, then jittered. A zero initial_backoff
  // disables waiting entirely.
  std::chrono::nanoseconds initial_backoff{0};
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(2);

  // With a nonzero seed, each backoff is drawn uniformly from
  // [backoff/2, backoff] by a SplitMix64 stream over (seed, attempt), so
  // a fleet of retriers sharing a policy but not a seed desynchronizes
  // deterministically. Zero = no jitter.
  uint64_t jitter_seed = 0;

  // Optional external cancellation: checked between attempts and polled
  // during backoff sleeps (which end early when raised). Must outlive
  // the schedule. Attempt budgets also carry the flag.
  const std::atomic<bool>* cancel = nullptr;
};

// One attempt's limits, fully determined by (policy, attempt index).
struct RetryAttempt {
  uint64_t max_steps = 0;                // 0 = unlimited
  std::chrono::nanoseconds timeout{0};   // 0 = unlimited
  std::chrono::nanoseconds backoff{0};   // wait before this attempt
};

class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy);

  int NumAttempts() const { return num_attempts_; }

  // The limits of attempt i (0-based, i < NumAttempts()). Deterministic.
  RetryAttempt Attempt(int i) const;

  // A Budget configured with Attempt(i)'s limits and the policy's cancel
  // flag. The deadline starts when this is called, so construct it after
  // Backoff(i).
  Budget MakeBudget(int i) const;

  // True when the policy's cancel flag is raised.
  bool Cancelled() const;

  // Sleeps Attempt(i)'s backoff (no-op for attempt 0 or a zero backoff),
  // polling the cancel flag. Returns false if cancelled before or during
  // the wait — the caller should not run the attempt.
  bool Backoff(int i) const;

 private:
  RetryPolicy policy_;
  int num_attempts_;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_RETRY_H_
