#include "base/failpoint.h"

#include <cstdlib>
#include <cstring>

#include "base/hash.h"

namespace hompres {

std::atomic<uint64_t> FailpointRegistry::armed_count_{0};

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

namespace {
// Arm env-configured failpoints before main() so any binary linking the
// library honors HOMPRES_FAILPOINTS / HOMPRES_CHAOS_SEED without code
// changes. AnyArmed() never constructs the registry on its own, so the
// env spec must be applied eagerly.
const bool g_env_armed = FailpointRegistry::Global().ArmFromEnv();
}  // namespace

bool FailpointRegistry::ParseSpec(const std::string& spec, Point* out) {
  if (spec == "once") {
    out->mode = Mode::kOnce;
    return true;
  }
  if (spec == "always") {
    out->mode = Mode::kAlways;
    return true;
  }
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return false;
  const std::string head = spec.substr(0, colon);
  const std::string arg = spec.substr(colon + 1);
  if (arg.empty()) return false;
  if (head == "nth" || head == "every") {
    uint64_t value = 0;
    for (const char c : arg) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    if (value == 0) return false;
    out->mode = head == "nth" ? Mode::kNth : Mode::kEvery;
    out->n = value;
    return true;
  }
  if (head == "prob") {
    char* end = nullptr;
    const double p = std::strtod(arg.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    if (!(p >= 0.0 && p <= 1.0)) return false;
    out->mode = Mode::kProb;
    out->p = p;
    return true;
  }
  return false;
}

bool FailpointRegistry::Arm(const std::string& name, const std::string& spec) {
  if (name.empty()) return false;
  Point point;
  if (!ParseSpec(spec, &point)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // Distinct per-point streams from one seed: mix the seed with a digest
  // of the name so two points armed "prob:P" do not fire in lockstep.
  uint64_t digest = seed_;
  for (const char c : name) {
    digest = Mix64(digest ^ static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  point.rng_state = digest;
  const bool was_armed = points_.count(name) != 0;
  points_[name] = point;
  if (!was_armed) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool FailpointRegistry::ArmFromSpec(const std::string& config) {
  bool ok = true;
  size_t start = 0;
  while (start <= config.size()) {
    size_t end = config.find_first_of(";,", start);
    if (end == std::string::npos) end = config.size();
    const std::string entry = config.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      ok = false;
      continue;
    }
    if (!Arm(entry.substr(0, eq), entry.substr(eq + 1))) ok = false;
  }
  return ok;
}

bool FailpointRegistry::ArmFromEnv() {
  if (const char* seed_text = std::getenv("HOMPRES_CHAOS_SEED")) {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(seed_text, &end, 10);
    if (end != nullptr && *end == '\0' && *seed_text != '\0') {
      SetSeed(static_cast<uint64_t>(seed));
    }
  }
  const char* spec = std::getenv("HOMPRES_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  ArmFromSpec(spec);
  std::lock_guard<std::mutex> lock(mu_);
  return !points_.empty();
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(name) != 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(points_.size(), std::memory_order_relaxed);
  points_.clear();
}

void FailpointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

bool FailpointRegistry::Hit(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (it == points_.end()) return false;
  Point& point = it->second;
  ++point.hits;
  bool fire = false;
  switch (point.mode) {
    case Mode::kOnce:
      fire = point.hits == 1;
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kNth:
      fire = point.hits == point.n;
      break;
    case Mode::kEvery:
      fire = point.hits % point.n == 0;
      break;
    case Mode::kProb: {
      point.rng_state = Mix64(point.rng_state);
      // 53 bits give a uniform double in [0, 1), as in Rng::Bernoulli.
      const double u = static_cast<double>(point.rng_state >> 11) *
                       (1.0 / 9007199254740992.0);
      fire = point.p >= 1.0 || u < point.p;
      break;
    }
  }
  if (fire) ++point.fires;
  return fire;
}

uint64_t FailpointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FailpointRegistry::FireCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

}  // namespace hompres
