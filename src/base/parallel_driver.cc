#include "base/parallel_driver.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "base/check.h"
#include "base/failpoint.h"

namespace hompres {

ParallelRegion::ParallelRegion(Budget& parent, int num_tasks)
    : parent_(parent),
      num_tasks_(num_tasks),
      base_steps_(parent.StepsUsed()),
      shared_steps_(parent.StepsUsed()),
      cancels_(new std::atomic<bool>[static_cast<size_t>(num_tasks)]) {
  HOMPRES_CHECK_GE(num_tasks, 1);
  for (int i = 0; i < num_tasks_; ++i) {
    cancels_[i].store(false, std::memory_order_relaxed);
  }
}

Budget ParallelRegion::WorkerBudget(int i) const {
  HOMPRES_CHECK_GE(i, 0);
  HOMPRES_CHECK_LT(i, num_tasks_);
  return parent_.SpawnWorker(&shared_steps_, &cancels_[i]);
}

void ParallelRegion::CancelFrom(int first) {
  for (int j = first < 0 ? 0 : first; j < num_tasks_; ++j) {
    cancels_[j].store(true, std::memory_order_relaxed);
  }
}

void ParallelRegion::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  done_cv_.notify_all();
}

std::function<void()> ParallelRegion::GuardedTask(std::function<void()> body) {
  return [this, body = std::move(body)] {
    try {
      if (HOMPRES_FAILPOINT("parallel/task_throw")) {
        throw std::runtime_error("injected task fault (parallel/task_throw)");
      }
      body();
    } catch (...) {
      // The body died before its trailing TaskDone: mark the region
      // cancelled (Join reports it; drivers synthesize kCancelled) and
      // settle the done-count on the body's behalf.
      task_threw_.store(true, std::memory_order_relaxed);
      CancelAll();
      TaskDone();
    }
  };
}

bool ParallelRegion::Join(ThreadPool& pool) {
  const std::atomic<bool>* external = parent_.CancelFlag();
  bool external_cancel = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (done_ < num_tasks_) {
      if (external == nullptr) {
        done_cv_.wait(lock);
      } else {
        // Poll the external flag so a cancellation raised while the
        // workers are deep in their searches reaches them promptly.
        done_cv_.wait_for(lock, std::chrono::milliseconds(1));
        if (!external_cancel &&
            external->load(std::memory_order_relaxed)) {
          external_cancel = true;
          CancelFrom(0);
        }
      }
    }
  }
  pool.WaitIdle();
  parent_.ChargeSteps(shared_steps_.load(std::memory_order_relaxed) -
                      base_steps_);
  return external_cancel || task_threw_.load(std::memory_order_relaxed);
}

StopReason CombineWorkerStops(bool external_cancel, bool any_deadline) {
  if (external_cancel) return StopReason::kCancelled;
  if (any_deadline) return StopReason::kDeadline;
  return StopReason::kSteps;
}

}  // namespace hompres
