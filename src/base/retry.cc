#include "base/retry.h"

#include <algorithm>
#include <thread>

#include "base/check.h"
#include "base/hash.h"
#include "base/saturating.h"

namespace hompres {

namespace {

// value * factor^i, saturating; 0 stays 0 ("unlimited" escalates to
// "unlimited").
uint64_t Escalate(uint64_t value, uint64_t factor, int i) {
  if (value == 0 || factor <= 1) return value;  // factor 0/1: no growth
  uint64_t result = value;
  for (int k = 0; k < i; ++k) {
    result = SatMul(result, factor);
    if (result == kSaturated) break;
  }
  return result;
}

std::chrono::nanoseconds EscalateDuration(std::chrono::nanoseconds value,
                                          uint64_t factor, int i) {
  const uint64_t ns = Escalate(
      value.count() > 0 ? static_cast<uint64_t>(value.count()) : 0, factor, i);
  const uint64_t max_ns =
      static_cast<uint64_t>(std::chrono::nanoseconds::max().count());
  return std::chrono::nanoseconds(
      static_cast<int64_t>(std::min(ns, max_ns)));
}

}  // namespace

RetrySchedule::RetrySchedule(const RetryPolicy& policy)
    : policy_(policy), num_attempts_(std::max(policy.max_attempts, 1)) {}

RetryAttempt RetrySchedule::Attempt(int i) const {
  HOMPRES_CHECK_GE(i, 0);
  HOMPRES_CHECK_LT(i, num_attempts_);
  RetryAttempt attempt;
  attempt.max_steps =
      Escalate(policy_.initial_steps, policy_.escalation_factor, i);
  if (policy_.max_steps != 0 && attempt.max_steps != 0) {
    attempt.max_steps = std::min(attempt.max_steps, policy_.max_steps);
  }
  attempt.timeout =
      EscalateDuration(policy_.initial_timeout, policy_.escalation_factor, i);
  if (policy_.max_timeout.count() > 0 && attempt.timeout.count() > 0) {
    attempt.timeout = std::min(attempt.timeout, policy_.max_timeout);
  }
  if (i > 0 && policy_.initial_backoff.count() > 0) {
    std::chrono::nanoseconds backoff = EscalateDuration(
        policy_.initial_backoff, policy_.escalation_factor, i - 1);
    if (policy_.max_backoff.count() > 0) {
      backoff = std::min(backoff, policy_.max_backoff);
    }
    if (policy_.jitter_seed != 0 && backoff.count() > 0) {
      // Uniform in [backoff/2, backoff], deterministic in (seed, i).
      const uint64_t half = static_cast<uint64_t>(backoff.count()) / 2;
      const uint64_t draw =
          Mix64(policy_.jitter_seed ^ Mix64(static_cast<uint64_t>(i)));
      backoff = std::chrono::nanoseconds(
          static_cast<int64_t>(half + draw % (half + 1)));
    }
    attempt.backoff = backoff;
  }
  return attempt;
}

Budget RetrySchedule::MakeBudget(int i) const {
  const RetryAttempt attempt = Attempt(i);
  Budget budget;
  if (attempt.max_steps != 0) budget.WithMaxSteps(attempt.max_steps);
  if (attempt.timeout.count() > 0) budget.WithTimeout(attempt.timeout);
  if (policy_.cancel != nullptr) budget.WithCancelFlag(policy_.cancel);
  return budget;
}

bool RetrySchedule::Cancelled() const {
  return policy_.cancel != nullptr &&
         policy_.cancel->load(std::memory_order_relaxed);
}

bool RetrySchedule::Backoff(int i) const {
  if (Cancelled()) return false;
  const std::chrono::nanoseconds wait = Attempt(i).backoff;
  if (wait.count() <= 0) return true;
  // Sleep in short slices so a raised cancel flag ends the wait promptly.
  const auto slice = std::chrono::milliseconds(10);
  auto remaining = wait;
  while (remaining.count() > 0) {
    if (Cancelled()) return false;
    const auto chunk = std::min<std::chrono::nanoseconds>(remaining, slice);
    std::this_thread::sleep_for(chunk);
    remaining -= chunk;
  }
  return !Cancelled();
}

}  // namespace hompres
