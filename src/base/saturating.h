// Saturating 64-bit arithmetic for the paper's effective bounds.
//
// The bounds in Lemma 4.2 (N = k(m-1)^{k!(p-1)^k}) and Theorem 5.3
// (iterated Ramsey towers) overflow any fixed-width integer almost
// immediately. The bound calculators in src/core use these helpers; a
// saturated value is reported as "astronomical" by the benches, which is
// faithful to the paper (they are upper bounds, and the benches measure the
// actual thresholds, which are far smaller).

#ifndef HOMPRES_BASE_SATURATING_H_
#define HOMPRES_BASE_SATURATING_H_

#include <cstdint>
#include <limits>

namespace hompres {

inline constexpr uint64_t kSaturated = std::numeric_limits<uint64_t>::max();

// a + b, saturating at uint64_t max.
constexpr uint64_t SatAdd(uint64_t a, uint64_t b) {
  return (a > kSaturated - b) ? kSaturated : a + b;
}

// a * b, saturating at uint64_t max.
constexpr uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

// base^exp, saturating at uint64_t max.
constexpr uint64_t SatPow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < exp; ++i) {
    result = SatMul(result, base);
    if (result == kSaturated) return kSaturated;
  }
  return result;
}

// n!, saturating at uint64_t max.
constexpr uint64_t SatFactorial(uint64_t n) {
  uint64_t result = 1;
  for (uint64_t i = 2; i <= n; ++i) {
    result = SatMul(result, i);
    if (result == kSaturated) return kSaturated;
  }
  return result;
}

}  // namespace hompres

#endif  // HOMPRES_BASE_SATURATING_H_
