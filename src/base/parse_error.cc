#include "base/parse_error.h"

#include <sstream>

namespace hompres {

std::string ParseError::ToString() const {
  if (line <= 0) return message;
  std::ostringstream out;
  out << "line " << line << ", column " << column << ": " << message;
  return out.str();
}

ParseError ParseErrorAt(const std::string& text, size_t pos,
                        std::string message) {
  ParseError error;
  error.line = 1;
  error.column = 1;
  const size_t limit = pos < text.size() ? pos : text.size();
  for (size_t i = 0; i < limit; ++i) {
    if (text[i] == '\n') {
      ++error.line;
      error.column = 1;
    } else {
      ++error.column;
    }
  }
  error.message = std::move(message);
  return error;
}

}  // namespace hompres
