// Packed 64-bit-word bitsets: the data layout under the CSP kernels.
//
// The hot loops of the homomorphism solver (AC-3 support marking and
// domain revision), the pebble game's position-set bookkeeping, and the
// treewidth DP's candidate intersection all manipulate subsets of a
// universe {0..bits-1}. std::vector<bool> answers one membership probe
// per call; packing the same sets into uint64_t words turns the common
// whole-set operations (copy, intersect, count, first/next element) into
// a handful of word instructions each, and lets a family of same-width
// sets live in one flat allocation with a fixed word stride so a search
// node's "copy all domains" is a single contiguous memcpy.
//
// Two layers:
//   * free kernels over raw word spans (bitset64::* below) — used where
//     rows live inside a caller-owned flat pool,
//   * Bitset64, a small owning set for callers that want one set with
//     value semantics.
//
// Whole-row operations on rows wider than kInlineWords words dispatch to
// the runtime-selected SIMD kernels (base/simd.h: scalar/AVX2/AVX-512,
// picked once by CPUID and clamped by HOMPRES_SIMD); narrower rows keep
// the inlined scalar loops. Row families that want full-width lanes pad
// their stride with PaddedWordsFor and align the pool base to
// kRowAlignBytes (base/row_pool.h).
//
// Iteration order of set bits is ascending, matching the value order of
// the std::vector<bool> loops these kernels replace — solver answers stay
// bit-identical.

#ifndef HOMPRES_BASE_BITSET64_H_
#define HOMPRES_BASE_BITSET64_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "base/check.h"
#include "base/simd.h"

namespace hompres {
namespace bitset64 {

inline constexpr int kWordBits = 64;

// Rows at or below this many words run the inlined scalar loops below;
// wider rows go through the dispatched SIMD kernels (base/simd.h). Four
// words = 256 bits: below that a vector lane cannot even fill once, and
// the indirect call would cost more than the loop it replaces. Results
// are bit-identical either way — the SIMD kernels compute the same words
// in a different grouping.
inline constexpr int kInlineWords = 4;

// Number of uint64_t words needed for `bits` bits (the fixed stride of a
// packed row family). 0 bits -> 0 words.
inline constexpr int WordsFor(int bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

// Words per row lane-group: a padded stride is a multiple of this, so a
// row is a whole number of 512-bit lanes (and of cache lines).
inline constexpr int kRowAlignWords = 8;

// Stride (in words) for a padded row family over `bits` bits: WordsFor
// rounded up to a multiple of kRowAlignWords, so the dispatched kernels
// run full-width lanes with an empty ragged tail. Rows that would fit
// the inline fast path anyway (<= kInlineWords words) keep their exact
// width — padding them would only dilute the memcpy-heavy checkpointing
// of small instances. Padding words obey the same stays-zero invariant
// as the tail bits of the last partial word.
inline constexpr int PaddedWordsFor(int bits) {
  const int words = WordsFor(bits);
  if (words <= kInlineWords) return words;
  return (words + kRowAlignWords - 1) / kRowAlignWords * kRowAlignWords;
}

inline bool Test(const uint64_t* words, int bit) {
  return (words[bit >> 6] >> (bit & 63)) & 1u;
}

inline void Set(uint64_t* words, int bit) {
  words[bit >> 6] |= uint64_t{1} << (bit & 63);
}

inline void Reset(uint64_t* words, int bit) {
  words[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
}

inline void ClearAll(uint64_t* words, int num_words) {
  std::memset(words, 0, static_cast<size_t>(num_words) * sizeof(uint64_t));
}

// Sets bits [0, bits); the tail of the last word stays zero, the
// invariant every kernel below preserves and Popcount/FindFirst rely on.
inline void SetFirstN(uint64_t* words, int num_words, int bits) {
  ClearAll(words, num_words);
  int full = bits >> 6;
  for (int w = 0; w < full; ++w) words[w] = ~uint64_t{0};
  if (bits & 63) words[full] = (uint64_t{1} << (bits & 63)) - 1;
}

inline int Popcount(const uint64_t* words, int num_words) {
  if (num_words > kInlineWords) {
    return simd::ActiveKernels().popcount(words, num_words);
  }
  int count = 0;
  for (int w = 0; w < num_words; ++w) count += std::popcount(words[w]);
  return count;
}

// Smallest set bit, or -1 if the row is empty.
inline int FindFirst(const uint64_t* words, int num_words) {
  if (num_words > kInlineWords) {
    return simd::ActiveKernels().find_first(words, num_words);
  }
  for (int w = 0; w < num_words; ++w) {
    if (words[w] != 0) {
      return w * kWordBits + std::countr_zero(words[w]);
    }
  }
  return -1;
}

// Smallest set bit strictly greater than `bit`, or -1. FindNext(row, -1)
// == FindFirst(row), so `for (b = FindFirst(...); b >= 0; b = FindNext(...,
// b))` visits every set bit in ascending order.
inline int FindNext(const uint64_t* words, int num_words, int bit) {
  if (num_words > kInlineWords) {
    return simd::ActiveKernels().find_next(words, num_words, bit);
  }
  int w = (bit + 1) >> 6;
  if (w >= num_words) return -1;
  uint64_t masked = words[w] & (~uint64_t{0} << ((bit + 1) & 63));
  if (masked != 0) return w * kWordBits + std::countr_zero(masked);
  for (++w; w < num_words; ++w) {
    if (words[w] != 0) {
      return w * kWordBits + std::countr_zero(words[w]);
    }
  }
  return -1;
}

// dst &= src. Returns true iff dst changed.
inline bool IntersectInPlace(uint64_t* dst, const uint64_t* src,
                             int num_words) {
  if (num_words > kInlineWords) {
    return simd::ActiveKernels().intersect_in_place(dst, src, num_words);
  }
  bool changed = false;
  for (int w = 0; w < num_words; ++w) {
    const uint64_t next = dst[w] & src[w];
    changed |= next != dst[w];
    dst[w] = next;
  }
  return changed;
}

// dst |= src.
inline void UnionInPlace(uint64_t* dst, const uint64_t* src, int num_words) {
  if (num_words > kInlineWords) {
    simd::ActiveKernels().union_in_place(dst, src, num_words);
    return;
  }
  for (int w = 0; w < num_words; ++w) dst[w] |= src[w];
}

inline bool AnySet(const uint64_t* words, int num_words) {
  if (num_words > kInlineWords) {
    return simd::ActiveKernels().any_set(words, num_words);
  }
  for (int w = 0; w < num_words; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

inline bool Equal(const uint64_t* a, const uint64_t* b, int num_words) {
  if (num_words > kInlineWords) {
    return simd::ActiveKernels().equal(a, b, num_words);
  }
  return std::memcmp(a, b,
                     static_cast<size_t>(num_words) * sizeof(uint64_t)) == 0;
}

}  // namespace bitset64

// One owning set over {0..SizeBits()-1} with value semantics. Thin sugar
// over the kernels above for callers outside a flat row pool. The word
// buffer is padded (PaddedWordsFor), so wide sets — e.g. the treewidth
// DP's candidate sets over B's universe — run full SIMD lanes; the
// padding words obey the same stays-zero invariant as the tail bits.
class Bitset64 {
 public:
  Bitset64() = default;
  explicit Bitset64(int bits)
      : bits_(bits),
        words_(static_cast<size_t>(bitset64::PaddedWordsFor(bits)), 0) {
    HOMPRES_CHECK_GE(bits, 0);
  }

  int SizeBits() const { return bits_; }
  int NumWords() const { return static_cast<int>(words_.size()); }

  bool Test(int bit) const {
    CheckBit(bit);
    return bitset64::Test(words_.data(), bit);
  }
  void Set(int bit) {
    CheckBit(bit);
    bitset64::Set(words_.data(), bit);
  }
  void Reset(int bit) {
    CheckBit(bit);
    bitset64::Reset(words_.data(), bit);
  }
  void ClearAll() { bitset64::ClearAll(words_.data(), NumWords()); }
  void SetAll() { bitset64::SetFirstN(words_.data(), NumWords(), bits_); }

  int Count() const { return bitset64::Popcount(words_.data(), NumWords()); }
  bool Any() const { return bitset64::AnySet(words_.data(), NumWords()); }
  int FindFirst() const {
    return bitset64::FindFirst(words_.data(), NumWords());
  }
  int FindNext(int bit) const {
    return bitset64::FindNext(words_.data(), NumWords(), bit);
  }

  // *this &= other; the widths must agree. Returns true iff *this changed.
  bool IntersectWith(const Bitset64& other) {
    HOMPRES_CHECK_EQ(bits_, other.bits_);
    return bitset64::IntersectInPlace(words_.data(), other.words_.data(),
                                      NumWords());
  }

  friend bool operator==(const Bitset64& a, const Bitset64& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

 private:
  void CheckBit(int bit) const {
    HOMPRES_CHECK_GE(bit, 0);
    HOMPRES_CHECK_LT(bit, bits_);
  }

  int bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace hompres

#endif  // HOMPRES_BASE_BITSET64_H_
