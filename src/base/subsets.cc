#include "base/subsets.h"

#include <limits>

namespace hompres {

bool NextCombination(int n, std::vector<int>& indices) {
  const int k = static_cast<int>(indices.size());
  int i = k - 1;
  while (i >= 0 && indices[static_cast<size_t>(i)] == n - k + i) --i;
  if (i < 0) return false;
  ++indices[static_cast<size_t>(i)];
  for (int j = i + 1; j < k; ++j) {
    indices[static_cast<size_t>(j)] = indices[static_cast<size_t>(j - 1)] + 1;
  }
  return true;
}

std::vector<int> FirstCombination(int n, int k) {
  HOMPRES_CHECK_GE(k, 0);
  HOMPRES_CHECK_LE(k, n);
  std::vector<int> c(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) c[static_cast<size_t>(i)] = i;
  return c;
}

uint64_t BinomialSaturating(int n, int k) {
  HOMPRES_CHECK_GE(n, 0);
  HOMPRES_CHECK_GE(k, 0);
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const uint64_t factor = static_cast<uint64_t>(n - k + i);
    if (result > kMax / factor) return kMax;
    result = result * factor / static_cast<uint64_t>(i);
  }
  return result;
}

}  // namespace hompres
