// Shared 64-bit mixing primitive.
//
// Mix64 is the splitmix64 finalizer: a cheap bijective scrambler with
// full avalanche, good enough for every non-adversarial hash in this
// library. It is chained value-by-value to build order-sensitive digests
// (Structure::Fingerprint, the hom-cache option digests) and used as the
// per-field mixer of hash-table key hashes (hom/hom_cache.cc).

#ifndef HOMPRES_BASE_HASH_H_
#define HOMPRES_BASE_HASH_H_

#include <cstdint>

namespace hompres {

inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace hompres

#endif  // HOMPRES_BASE_HASH_H_
