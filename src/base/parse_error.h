// Structured parse errors for the text front ends (structure, FO formula,
// Datalog program parsers).
//
// Parsers return std::optional; on failure they fill a ParseError with a
// 1-based line/column locating the offending input. No malformed input
// may reach a HOMPRES_CHECK abort: parsers validate everything the
// semantic constructors CHECK.

#ifndef HOMPRES_BASE_PARSE_ERROR_H_
#define HOMPRES_BASE_PARSE_ERROR_H_

#include <string>

namespace hompres {

struct ParseError {
  int line = 0;    // 1-based; 0 when no location applies
  int column = 0;  // 1-based
  std::string message;

  // "line L, column C: message" (or just the message when unlocated).
  std::string ToString() const;
};

// Builds a ParseError locating byte offset `pos` within `text`.
ParseError ParseErrorAt(const std::string& text, size_t pos,
                        std::string message);

}  // namespace hompres

#endif  // HOMPRES_BASE_PARSE_ERROR_H_
