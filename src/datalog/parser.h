// Text parser for Datalog programs.
//
// Grammar (whitespace-insensitive, one rule per '.' or newline):
//
//   program := rule*
//   rule    := atom '<-' atom (',' atom)* '.'?
//   atom    := IDENT '(' IDENT (',' IDENT)* ')'
//
// Example:
//   T(x,y) <- E(x,y).
//   T(x,y) <- E(x,z), T(z,y).
//
// The EDB vocabulary is supplied by the caller; predicates appearing in
// heads become IDBs.

#ifndef HOMPRES_DATALOG_PARSER_H_
#define HOMPRES_DATALOG_PARSER_H_

#include <optional>
#include <string>

#include "base/parse_error.h"
#include "datalog/program.h"

namespace hompres {

// Parses `text` into a program over `edb`. On failure returns nullopt
// and, if `error` is non-null, the line/column and message of the first
// problem (semantic errors — safety, arities — carry no location).
// Note that DatalogProgram's constructor CHECKs semantic validity;
// this function pre-validates everything it CHECKs so invalid input
// yields an error instead of a crash.
std::optional<DatalogProgram> ParseDatalogProgram(const std::string& text,
                                                  const Vocabulary& edb,
                                                  ParseError* error);

// String-error convenience wrapper (error formatted via
// ParseError::ToString).
std::optional<DatalogProgram> ParseDatalogProgram(const std::string& text,
                                                  const Vocabulary& edb,
                                                  std::string* error = nullptr);

}  // namespace hompres

#endif  // HOMPRES_DATALOG_PARSER_H_
