#include "datalog/stages.h"

#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "base/check.h"

namespace hompres {

namespace {

constexpr size_t kRunawayGuard = 1u << 20;

// Plain union-find over dense ints.
class IntUnion {
 public:
  explicit IntUnion(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  void Merge(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }

  int Size() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
};

// Assembles one disjunct of the unfolded stage: the rule body with the
// chosen previous-stage disjunct inlined at each IDB atom.
ConjunctiveQuery UnfoldRule(const DatalogProgram& program,
                            const DatalogRule& rule,
                            const std::vector<const ConjunctiveQuery*>&
                                chosen /* per body atom; null for EDB */) {
  // Pre-universe: rule variables first, then one block per inlined
  // disjunct.
  std::map<std::string, int> var_node;
  for (const DatalogAtom& atom : rule.body) {
    for (const auto& v : atom.arguments) {
      if (var_node.find(v) == var_node.end()) {
        const int id = static_cast<int>(var_node.size());
        var_node[v] = id;
      }
    }
  }
  int total = static_cast<int>(var_node.size());
  std::vector<int> block_offset(rule.body.size(), -1);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (chosen[i] != nullptr) {
      block_offset[i] = total;
      total += chosen[i]->Canonical().UniverseSize();
    }
  }
  IntUnion classes(total);
  // Identify each inlined disjunct's free elements with the atom's
  // argument variables.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (chosen[i] == nullptr) continue;
    const auto& free_elements = chosen[i]->FreeElements();
    HOMPRES_CHECK_EQ(free_elements.size(), rule.body[i].arguments.size());
    for (size_t pos = 0; pos < free_elements.size(); ++pos) {
      classes.Merge(
          block_offset[i] + free_elements[pos],
          var_node.at(rule.body[i].arguments[pos]));
    }
  }
  // Quotient to element ids.
  std::vector<int> element(static_cast<size_t>(total), -1);
  int next = 0;
  for (int node = 0; node < total; ++node) {
    const int root = classes.Find(node);
    if (element[static_cast<size_t>(root)] == -1) {
      element[static_cast<size_t>(root)] = next++;
    }
    element[static_cast<size_t>(node)] = element[static_cast<size_t>(root)];
  }
  Structure canonical(program.Edb(), next);
  // EDB atoms of the rule body.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (chosen[i] != nullptr) continue;
    const int rel = *program.Edb().IndexOf(rule.body[i].relation);
    Tuple t;
    for (const auto& v : rule.body[i].arguments) {
      t.push_back(element[static_cast<size_t>(var_node.at(v))]);
    }
    canonical.AddTuple(rel, t);
  }
  // Inlined disjunct tuples.
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (chosen[i] == nullptr) continue;
    const Structure& inner = chosen[i]->Canonical();
    for (int rel = 0; rel < inner.GetVocabulary().NumRelations(); ++rel) {
      for (const Tuple& t : inner.Tuples(rel)) {
        Tuple mapped;
        mapped.reserve(t.size());
        for (int e : t) {
          mapped.push_back(element[static_cast<size_t>(block_offset[i] + e)]);
        }
        canonical.AddTuple(rel, mapped);
      }
    }
  }
  std::vector<int> head_elements;
  for (const auto& v : rule.head.arguments) {
    head_elements.push_back(element[static_cast<size_t>(var_node.at(v))]);
  }
  return ConjunctiveQuery(std::move(canonical), std::move(head_elements));
}

}  // namespace

UnionOfCq StageUcq(const DatalogProgram& program, int idb_index, int m,
                   bool minimize) {
  HOMPRES_CHECK_GE(idb_index, 0);
  HOMPRES_CHECK_LT(idb_index, program.Idb().NumRelations());
  HOMPRES_CHECK_GE(m, 0);
  // Stage formulas are unions of conjunctive queries; inequalities leave
  // that fragment (Section 7.3), so Datalog(≠) programs are rejected.
  HOMPRES_CHECK(!program.HasInequalities());
  const size_t idb_count =
      static_cast<size_t>(program.Idb().NumRelations());
  // Theta^0: false for every IDB.
  std::vector<UnionOfCq> current;
  for (size_t i = 0; i < idb_count; ++i) {
    current.emplace_back(std::vector<ConjunctiveQuery>{},
                         program.Idb().Arity(static_cast<int>(i)));
  }
  for (int step = 0; step < m; ++step) {
    std::vector<std::vector<ConjunctiveQuery>> next(idb_count);
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      // Per body atom: list of previous-stage disjuncts (IDB) or a
      // single nullptr slot (EDB).
      std::vector<std::vector<const ConjunctiveQuery*>> options(
          rule.body.size());
      bool feasible = true;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const auto idb = program.IdbIndexOf(rule.body[i].relation);
        if (!idb.has_value()) {
          options[i] = {nullptr};
          continue;
        }
        for (const ConjunctiveQuery& d :
             current[static_cast<size_t>(*idb)].Disjuncts()) {
          options[i].push_back(&d);
        }
        if (options[i].empty()) feasible = false;
      }
      if (!feasible) continue;
      // Cartesian product over the options.
      std::vector<const ConjunctiveQuery*> chosen(rule.body.size());
      std::function<void(size_t)> expand = [&](size_t index) {
        if (index == rule.body.size()) {
          next[static_cast<size_t>(head)].push_back(
              UnfoldRule(program, rule, chosen));
          HOMPRES_CHECK_LT(next[static_cast<size_t>(head)].size(),
                           kRunawayGuard);
          return;
        }
        for (const ConjunctiveQuery* option : options[index]) {
          chosen[index] = option;
          expand(index + 1);
        }
      };
      expand(0);
    }
    std::vector<UnionOfCq> stage;
    for (size_t i = 0; i < idb_count; ++i) {
      UnionOfCq ucq(std::move(next[i]),
                    program.Idb().Arity(static_cast<int>(i)));
      stage.push_back(minimize ? MinimizeUcq(ucq) : ucq);
    }
    current = std::move(stage);
  }
  return current[static_cast<size_t>(idb_index)];
}

std::optional<int> FindBoundednessWitness(const DatalogProgram& program,
                                          int idb_index, int max_stage) {
  UnionOfCq previous = StageUcq(program, idb_index, 0);
  for (int s = 0; s < max_stage; ++s) {
    UnionOfCq next = StageUcq(program, idb_index, s + 1);
    if (UcqEquivalent(previous, next)) return s;
    previous = std::move(next);
  }
  return std::nullopt;
}

}  // namespace hompres
