#include "datalog/program.h"

#include <set>
#include <sstream>

#include "base/check.h"

namespace hompres {

DatalogProgram::DatalogProgram(Vocabulary edb, std::vector<DatalogRule> rules)
    : edb_(std::move(edb)), rules_(std::move(rules)) {
  // Infer IDB predicates from heads.
  for (const DatalogRule& rule : rules_) {
    HOMPRES_CHECK(!rule.body.empty());
    HOMPRES_CHECK(!edb_.IndexOf(rule.head.relation).has_value());
    const auto existing = idb_.IndexOf(rule.head.relation);
    if (existing.has_value()) {
      HOMPRES_CHECK_EQ(idb_.Arity(*existing),
                       static_cast<int>(rule.head.arguments.size()));
    } else {
      idb_.AddRelation(rule.head.relation,
                       static_cast<int>(rule.head.arguments.size()));
    }
  }
  // Validate bodies and safety.
  for (const DatalogRule& rule : rules_) {
    std::set<std::string> body_variables;
    for (const DatalogAtom& atom : rule.body) {
      const auto edb_index = edb_.IndexOf(atom.relation);
      const auto idb_index = idb_.IndexOf(atom.relation);
      HOMPRES_CHECK(edb_index.has_value() || idb_index.has_value());
      const int arity = edb_index.has_value() ? edb_.Arity(*edb_index)
                                              : idb_.Arity(*idb_index);
      HOMPRES_CHECK_EQ(arity, static_cast<int>(atom.arguments.size()));
      for (const auto& v : atom.arguments) body_variables.insert(v);
    }
    for (const auto& v : rule.head.arguments) {
      HOMPRES_CHECK(body_variables.count(v) > 0);  // safety
    }
    for (const auto& [left, right] : rule.inequalities) {
      HOMPRES_CHECK(body_variables.count(left) > 0);
      HOMPRES_CHECK(body_variables.count(right) > 0);
    }
  }
}

bool DatalogProgram::HasInequalities() const {
  for (const DatalogRule& rule : rules_) {
    if (!rule.inequalities.empty()) return true;
  }
  return false;
}

int DatalogProgram::TotalVariableCount() const {
  std::set<std::string> variables;
  for (const DatalogRule& rule : rules_) {
    for (const auto& v : rule.head.arguments) variables.insert(v);
    for (const DatalogAtom& atom : rule.body) {
      for (const auto& v : atom.arguments) variables.insert(v);
    }
  }
  return static_cast<int>(variables.size());
}

std::string DatalogProgram::DebugString() const {
  std::ostringstream out;
  for (const DatalogRule& rule : rules_) {
    out << rule.head.relation << '(';
    for (size_t i = 0; i < rule.head.arguments.size(); ++i) {
      if (i > 0) out << ',';
      out << rule.head.arguments[i];
    }
    out << ") <- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out << ", ";
      out << rule.body[i].relation << '(';
      for (size_t j = 0; j < rule.body[i].arguments.size(); ++j) {
        if (j > 0) out << ',';
        out << rule.body[i].arguments[j];
      }
      out << ')';
    }
    for (const auto& [left, right] : rule.inequalities) {
      out << ", " << left << " != " << right;
    }
    out << "\n";
  }
  return out.str();
}

DatalogProgram DatalogProgram::TransitiveClosure() {
  return DatalogProgram(
      GraphVocabulary(),
      {DatalogRule{{"T", {"x", "y"}}, {{"E", {"x", "y"}}}},
       DatalogRule{{"T", {"x", "y"}},
                   {{"E", {"x", "z"}}, {"T", {"z", "y"}}}}});
}

DatalogProgram DatalogProgram::TwoStepReachability() {
  return DatalogProgram(
      GraphVocabulary(),
      {DatalogRule{{"R", {"x", "y"}}, {{"E", {"x", "y"}}}},
       DatalogRule{{"R", {"x", "y"}},
                   {{"E", {"x", "z"}}, {"E", {"z", "y"}}}}});
}

}  // namespace hompres
