#include "datalog/rule_eval.h"

#include <map>
#include <string>

#include "base/check.h"
#include "engine/ordering.h"

namespace hompres {

CompiledRule CompileRule(const DatalogRule& rule) {
  CompiledRule cr;
  std::map<std::string, int> slot_of;
  const auto slot = [&slot_of](const std::string& v) {
    const auto [it, inserted] =
        slot_of.try_emplace(v, static_cast<int>(slot_of.size()));
    return it->second;
  };
  std::vector<std::vector<int>> atom_slots;
  atom_slots.reserve(rule.body.size());
  for (const DatalogAtom& atom : rule.body) {
    std::vector<int> slots;
    slots.reserve(atom.arguments.size());
    for (const auto& v : atom.arguments) slots.push_back(slot(v));
    atom_slots.push_back(std::move(slots));
  }
  cr.num_slots = static_cast<int>(slot_of.size());
  cr.head_slots.reserve(rule.head.arguments.size());
  for (const auto& v : rule.head.arguments) {
    const auto it = slot_of.find(v);
    HOMPRES_CHECK(it != slot_of.end());  // safety: head vars occur in body
    cr.head_slots.push_back(it->second);
  }
  const size_t n = rule.body.size();
  // Join order: most-bound-slots-first greedy (engine/ordering.h), the
  // same statistics-driven policy the hom engine's planner uses.
  for (int i : GreedyBoundFirstAtomOrder(atom_slots, cr.num_slots)) {
    cr.atoms.push_back(CompiledAtom{i, atom_slots[static_cast<size_t>(i)]});
  }
  cr.ineqs_after.assign(n, {});
  std::vector<bool> bound(static_cast<size_t>(cr.num_slots), false);
  std::vector<std::pair<int, int>> pending;
  for (const auto& [left, right] : rule.inequalities) {
    const auto l = slot_of.find(left);
    const auto r = slot_of.find(right);
    HOMPRES_CHECK(l != slot_of.end());
    HOMPRES_CHECK(r != slot_of.end());
    pending.emplace_back(l->second, r->second);
  }
  for (size_t i = 0; i < cr.atoms.size(); ++i) {
    for (int s : cr.atoms[i].slots) bound[static_cast<size_t>(s)] = true;
    for (auto it = pending.begin(); it != pending.end();) {
      if (bound[static_cast<size_t>(it->first)] &&
          bound[static_cast<size_t>(it->second)]) {
        cr.ineqs_after[i].push_back(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  HOMPRES_CHECK(pending.empty());  // every ineq var occurs in the body
  return cr;
}

std::vector<CompiledRule> CompileProgram(const DatalogProgram& program) {
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.Rules().size());
  for (const DatalogRule& rule : program.Rules()) {
    compiled.push_back(CompileRule(rule));
  }
  return compiled;
}

}  // namespace hompres
