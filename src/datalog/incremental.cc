#include "datalog/incremental.h"

#include <algorithm>
#include <deque>
#include <span>
#include <utility>

#include "base/budget.h"
#include "base/check.h"
#include "base/failpoint.h"
#include "datalog/stages.h"
#include "opt/optimizer.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// --- Adjusted tuple sources ---------------------------------------------

// One tuple store a body atom joins against during maintenance: a tuple
// set (IDB interpretations, delta sets) or a sorted EDB vector with an
// optional RelationIndex accelerator. The effective store is
// (primary - minus) + plus, with plus disjoint from primary — which
// rewinds a post-delta store to its pre-delta value (or narrows it)
// without materializing a copy.
struct Src {
  const std::set<Tuple>* set = nullptr;
  const std::vector<Tuple>* vec = nullptr;
  const RelationIndex* index = nullptr;  // may be null even with vec
  int rel = -1;
  const std::set<Tuple>* minus = nullptr;
  const std::set<Tuple>* plus = nullptr;
};

Src EdbSrc(const Structure& base, int rel, const RelationIndex* index,
           const std::set<Tuple>* minus = nullptr,
           const std::set<Tuple>* plus = nullptr) {
  Src s;
  s.vec = &base.Tuples(rel);
  s.index = index;
  s.rel = rel;
  s.minus = minus;
  s.plus = plus;
  return s;
}

Src SetSrc(const std::set<Tuple>& set,
           const std::set<Tuple>* minus = nullptr,
           const std::set<Tuple>* plus = nullptr) {
  Src s;
  s.set = &set;
  s.minus = minus;
  s.plus = plus;
  return s;
}

// The maintenance join: the compiled enumeration of datalog/eval.cc
// extended with adjusted sources and three output modes — derive heads
// into a set, accumulate signed derivation counts (the counting
// strategy's inclusion-exclusion terms), or probe whether one pre-bound
// head has any derivation (DRed rederivation, early exit at the first
// witness). Unbudgeted: maintenance work is measured, not limited. Each
// satisfying combination of source tuples is visited exactly once, so
// CountInto's per-head totals are exact derivation counts.
class DeltaJoin {
 public:
  DeltaJoin(const CompiledRule& rule, const std::vector<Src>& sources,
            long long* derivations)
      : rule_(rule), sources_(sources), derivations_(derivations) {
    binding_.assign(static_cast<size_t>(rule_.num_slots), -1);
    added_.resize(rule_.atoms.size());
    for (size_t i = 0; i < rule_.atoms.size(); ++i) {
      added_[i].reserve(rule_.atoms[i].slots.size());
    }
  }

  void DeriveInto(std::set<Tuple>* out) {
    out_ = out;
    Join(0);
  }

  void CountInto(std::map<Tuple, long long>* counts, long long weight) {
    counts_ = counts;
    weight_ = weight;
    Join(0);
  }

  // True iff some body assignment derives exactly `head`.
  bool Exists(const Tuple& head) {
    HOMPRES_CHECK_EQ(head.size(), rule_.head_slots.size());
    exists_ = true;
    for (size_t j = 0; j < head.size(); ++j) {
      const size_t s = static_cast<size_t>(rule_.head_slots[j]);
      // A repeated head variable bound to two different values cannot
      // be produced by this rule at all.
      if (binding_[s] != -1 && binding_[s] != head[j]) return false;
      binding_[s] = head[j];
    }
    Join(0);
    return found_;
  }

 private:
  bool Emit() {
    if (exists_) {
      found_ = true;
      return false;  // unwind: one witness is enough
    }
    Tuple head;
    head.reserve(rule_.head_slots.size());
    for (int s : rule_.head_slots) {
      head.push_back(binding_[static_cast<size_t>(s)]);
    }
    if (counts_ != nullptr) {
      (*counts_)[std::move(head)] += weight_;
    } else {
      out_->insert(std::move(head));
    }
    return true;
  }

  bool Visit(size_t idx, const Tuple& t) {
    ++*derivations_;
    const CompiledAtom& atom = rule_.atoms[idx];
    bool consistent = true;
    std::vector<int>& added = added_[idx];
    added.clear();
    for (size_t j = 0; j < atom.slots.size(); ++j) {
      const size_t s = static_cast<size_t>(atom.slots[j]);
      if (binding_[s] == -1) {
        binding_[s] = t[j];
        added.push_back(static_cast<int>(s));
      } else if (binding_[s] != t[j]) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      for (const auto& [l, r] : rule_.ineqs_after[idx]) {
        if (binding_[static_cast<size_t>(l)] ==
            binding_[static_cast<size_t>(r)]) {
          consistent = false;
          break;
        }
      }
    }
    bool ok = true;
    if (consistent) ok = Join(idx + 1);
    for (int s : added) binding_[static_cast<size_t>(s)] = -1;
    return ok;
  }

  bool ScanSet(size_t idx, const std::set<Tuple>& store, const Tuple& prefix,
               const std::set<Tuple>* minus) {
    auto it = prefix.empty() ? store.begin() : store.lower_bound(prefix);
    for (; it != store.end(); ++it) {
      if (!prefix.empty() &&
          !std::equal(prefix.begin(), prefix.end(), it->begin())) {
        break;
      }
      if (minus != nullptr && minus->count(*it) != 0) continue;
      if (!Visit(idx, *it)) return false;
    }
    return true;
  }

  bool ScanVec(size_t idx, const Src& src, const Tuple& prefix,
               const std::vector<int>& slots) {
    const std::vector<Tuple>& tuples = *src.vec;
    const auto visit_id = [&](int id) {
      const Tuple& t = tuples[static_cast<size_t>(id)];
      if (src.minus != nullptr && src.minus->count(t) != 0) return true;
      return Visit(idx, t);
    };
    if (src.index != nullptr) {
      const auto [lo, hi] = src.index->PrefixRange(src.rel, prefix);
      std::span<const int> ids;
      bool use_ids = false;
      size_t best = static_cast<size_t>(hi - lo);
      for (size_t j = prefix.size(); j < slots.size(); ++j) {
        const int v = binding_[static_cast<size_t>(slots[j])];
        if (v < 0) continue;
        const auto list =
            src.index->TuplesAt(src.rel, static_cast<int>(j), v);
        if (list.size() < best) {
          best = list.size();
          ids = list;
          use_ids = true;
        }
      }
      if (use_ids) {
        for (int id : ids) {
          if (!visit_id(id)) return false;
        }
      } else {
        for (int id = lo; id < hi; ++id) {
          if (!visit_id(id)) return false;
        }
      }
      return true;
    }
    // No index: manual bound-prefix range over the sorted vector.
    auto it = prefix.empty()
                  ? tuples.begin()
                  : std::lower_bound(tuples.begin(), tuples.end(), prefix);
    for (; it != tuples.end(); ++it) {
      if (!prefix.empty() &&
          !std::equal(prefix.begin(), prefix.end(), it->begin())) {
        break;
      }
      if (src.minus != nullptr && src.minus->count(*it) != 0) continue;
      if (!Visit(idx, *it)) return false;
    }
    return true;
  }

  bool Join(size_t idx) {
    if (idx == rule_.atoms.size()) return Emit();
    const CompiledAtom& atom = rule_.atoms[idx];
    const Src& src = sources_[static_cast<size_t>(atom.body_pos)];
    Tuple prefix;
    for (size_t j = 0; j < atom.slots.size(); ++j) {
      const int v = binding_[static_cast<size_t>(atom.slots[j])];
      if (v < 0) break;
      prefix.push_back(v);
    }
    if (src.set != nullptr) {
      if (!ScanSet(idx, *src.set, prefix, src.minus)) return false;
    } else {
      if (!ScanVec(idx, src, prefix, atom.slots)) return false;
    }
    if (src.plus != nullptr) {
      if (!ScanSet(idx, *src.plus, prefix, nullptr)) return false;
    }
    return true;
  }

  const CompiledRule& rule_;
  const std::vector<Src>& sources_;
  long long* derivations_;
  std::set<Tuple>* out_ = nullptr;
  std::map<Tuple, long long>* counts_ = nullptr;
  long long weight_ = 1;
  bool exists_ = false;
  bool found_ = false;
  std::vector<int> binding_;
  std::vector<std::vector<int>> added_;  // per-depth unbind scratch
};

// IDB dependency order: edge q -> p when a rule with head p reads q in
// its body. Kahn's algorithm; false (and an unspecified partial order)
// when the graph has a cycle — the program is recursive.
bool TopoOrderIdb(const DatalogProgram& program, std::vector<int>* order) {
  const int n = program.Idb().NumRelations();
  std::vector<std::set<int>> succs(static_cast<size_t>(n));
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (const DatalogRule& rule : program.Rules()) {
    const int p = *program.IdbIndexOf(rule.head.relation);
    for (const DatalogAtom& atom : rule.body) {
      const auto q = program.IdbIndexOf(atom.relation);
      if (!q.has_value()) continue;
      if (succs[static_cast<size_t>(*q)].insert(p).second) {
        ++indegree[static_cast<size_t>(p)];
      }
    }
  }
  std::deque<int> ready;
  for (int p = 0; p < n; ++p) {
    if (indegree[static_cast<size_t>(p)] == 0) ready.push_back(p);
  }
  order->clear();
  order->reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    const int q = ready.front();
    ready.pop_front();
    order->push_back(q);
    for (int p : succs[static_cast<size_t>(q)]) {
      if (--indegree[static_cast<size_t>(p)] == 0) ready.push_back(p);
    }
  }
  return static_cast<int>(order->size()) == n;
}

void DiffStats(const IdbInterpretation& before,
               const IdbInterpretation& after,
               ViewMaintenanceStats* stats) {
  for (size_t i = 0; i < before.size(); ++i) {
    for (const Tuple& t : after[i]) {
      if (before[i].count(t) == 0) ++stats->idb_inserted;
    }
    for (const Tuple& t : before[i]) {
      if (after[i].count(t) == 0) ++stats->idb_removed;
    }
  }
}

// Folds a staged Structure::Apply result into the running stats (DRed
// applies the script in stages: appends, removals, insertions).
void AccumulateBase(const DeltaApplyResult& r, ViewMaintenanceStats* stats) {
  stats->base.tuples_inserted += r.tuples_inserted;
  stats->base.tuples_removed += r.tuples_removed;
  stats->base.elements_appended += r.elements_appended;
  stats->base.noop_ops += r.noop_ops;
  stats->base.index_maintained |= r.index_maintained;
  stats->base.index_degraded |= r.index_degraded;
  stats->base.index_compacted |= r.index_compacted;
  stats->base.version = r.version;
}

}  // namespace

// Per-EDB-relation net effect of a delta script: inserts and removes of
// the same tuple cancel, so `ins` holds exactly the tuples the script
// adds to the final state and `rem` exactly those it takes away.
struct MaterializedView::NetDelta {
  std::vector<std::set<Tuple>> ins;
  std::vector<std::set<Tuple>> rem;
  int appends = 0;
  int inserted = 0;
  int removed = 0;
};

MaterializedView::NetDelta MaterializedView::ComputeNet(
    const StructureDelta& delta) const {
  NetDelta net;
  const size_t num_rels =
      static_cast<size_t>(program_.Edb().NumRelations());
  net.ins.assign(num_rels, {});
  net.rem.assign(num_rels, {});
  for (const DeltaOp& op : delta.Ops()) {
    if (op.kind == DeltaOp::Kind::kAppendElements) {
      net.appends += op.count;
      continue;
    }
    auto& ins = net.ins[static_cast<size_t>(op.rel)];
    auto& rem = net.rem[static_cast<size_t>(op.rel)];
    // Present in the state the script has built so far?
    const bool present =
        ins.count(op.tuple) != 0 ||
        (rem.count(op.tuple) == 0 && base_.HasTuple(op.rel, op.tuple));
    if (op.kind == DeltaOp::Kind::kInsertTuple) {
      if (present) continue;
      // Re-inserting a tuple the script removed restores the base value.
      if (rem.erase(op.tuple) == 0) ins.insert(op.tuple);
    } else {
      if (!present) continue;
      if (ins.erase(op.tuple) == 0) rem.insert(op.tuple);
    }
  }
  for (size_t rel = 0; rel < num_rels; ++rel) {
    net.inserted += static_cast<int>(net.ins[rel].size());
    net.removed += static_cast<int>(net.rem[rel].size());
  }
  return net;
}

MaterializedView::MaterializedView(DatalogProgram program, Structure base,
                                   MaterializedViewOptions options)
    : program_(std::move(program)),
      options_(options),
      base_(std::move(base)) {
  HOMPRES_CHECK(program_.Edb() == base_.GetVocabulary());
  compiled_ = CompileProgram(program_);
  rule_heads_.reserve(program_.Rules().size());
  for (const DatalogRule& rule : program_.Rules()) {
    rule_heads_.push_back(*program_.IdbIndexOf(rule.head.relation));
  }
  has_inequalities_ = program_.HasInequalities();
  recursive_ = !TopoOrderIdb(program_, &topo_);
  const size_t idb_count =
      static_cast<size_t>(program_.Idb().NumRelations());
  idb_.assign(idb_count, {});

  // Boundedness certification (skipped for Datalog(≠): stage unfolding
  // is unavailable there, and for the forced baseline, which never uses
  // the strategy). Every IDB must carry a witness; the stage UCQs are
  // optimized once, here, and only re-evaluated afterwards.
  if (options_.max_bounded_stage > 0 && !has_inequalities_ &&
      !options_.force_from_scratch) {
    std::vector<int> stages(idb_count, 0);
    bool all = true;
    for (size_t i = 0; i < idb_count && all; ++i) {
      const auto witness = FindBoundednessWitness(
          program_, static_cast<int>(i), options_.max_bounded_stage);
      if (witness.has_value()) {
        stages[i] = *witness;
      } else {
        all = false;
      }
    }
    if (all) {
      bounded_ = true;
      Budget unlimited = Budget::Unlimited();
      OptimizerOptions opt;
      opt.num_threads = options_.num_threads;
      stage_ucqs_.reserve(idb_count);
      for (size_t i = 0; i < idb_count; ++i) {
        bounded_stage_ = std::max(bounded_stage_, stages[i]);
        stage_ucqs_.push_back(OptimizeUcqBudgeted(
            StageUcq(program_, static_cast<int>(i), stages[i]), unlimited,
            opt));
      }
    }
  }

  counting_state_ =
      !recursive_ && !bounded_ && !options_.force_from_scratch;
  if (counting_state_) {
    counts_.assign(idb_count, {});
    long long derivations = 0;
    FullCountingEval(&derivations);
  } else {
    DatalogEvalOptions eval_options;
    eval_options.num_threads = options_.num_threads;
    idb_ = EvaluateSemiNaive(program_, base_, eval_options).idb;
  }
}

const std::set<Tuple>& MaterializedView::IdbRelation(int idb_index) const {
  HOMPRES_CHECK_GE(idb_index, 0);
  HOMPRES_CHECK_LT(idb_index, static_cast<int>(idb_.size()));
  return idb_[static_cast<size_t>(idb_index)];
}

// Non-recursive full evaluation that also (re)builds the derivation
// counts: one counting join per rule, IDBs in dependency order.
void MaterializedView::FullCountingEval(long long* derivations) {
  const RelationIndex* index = base_.TryIndex();
  for (auto& counts : counts_) counts.clear();
  for (auto& set : idb_) set.clear();
  for (int p : topo_) {
    for (size_t r = 0; r < program_.Rules().size(); ++r) {
      if (rule_heads_[r] != p) continue;
      const DatalogRule& rule = program_.Rules()[r];
      std::vector<Src> sources;
      sources.reserve(rule.body.size());
      for (const DatalogAtom& atom : rule.body) {
        if (const auto e = program_.Edb().IndexOf(atom.relation);
            e.has_value()) {
          sources.push_back(EdbSrc(base_, *e, index));
        } else {
          sources.push_back(SetSrc(
              idb_[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))]));
        }
      }
      DeltaJoin(compiled_[r], sources, derivations)
          .CountInto(&counts_[static_cast<size_t>(p)], 1);
    }
    auto& set = idb_[static_cast<size_t>(p)];
    for (const auto& [t, c] : counts_[static_cast<size_t>(p)]) {
      HOMPRES_CHECK_GT(c, 0);
      set.insert(set.end(), t);
    }
  }
}

ViewMaintenanceStats MaterializedView::Apply(const StructureDelta& delta) {
  ViewMaintenanceStats stats;
  const NetDelta net = ComputeNet(delta);

  MaintenanceTraits traits;
  traits.recursive = recursive_;
  traits.has_inequalities = has_inequalities_;
  traits.bounded = bounded_;
  traits.bounded_stage = bounded_stage_;
  traits.inserted = net.inserted;
  traits.removed = net.removed;
  traits.appended_elements = net.appends;
  traits.force_from_scratch = options_.force_from_scratch;
  stats.plan = PlanMaintenance(traits);

  // Injected maintenance fault: demote the incremental strategy to a
  // full refixpoint. Costs a recompute, never a wrong IDB; the plan
  // keeps the strategy it chose and records the demotion.
  MaintainStrategy strategy = stats.plan.strategy;
  if (strategy != MaintainStrategy::kFromScratch &&
      strategy != MaintainStrategy::kNoOp &&
      HOMPRES_FAILPOINT("view/maintain")) {
    stats.plan.degradations.push_back(DegradationEvent{
        DegradationKind::kMaintainToFromScratch, "view/maintain",
        std::string(MaintainStrategyName(strategy)) +
            " demoted to a full refixpoint"});
    strategy = MaintainStrategy::kFromScratch;
  }

  switch (strategy) {
    case MaintainStrategy::kNoOp:
      stats.base = base_.Apply(delta);
      break;
    case MaintainStrategy::kFromScratch:
      stats.base = base_.Apply(delta);
      Refixpoint(&stats);
      break;
    case MaintainStrategy::kBoundedUcq:
      stats.base = base_.Apply(delta);
      EvaluateBounded(&stats);
      break;
    case MaintainStrategy::kCounting:
      stats.base = base_.Apply(delta);
      MaintainCounting(net, &stats);
      break;
    case MaintainStrategy::kDeltaInsert:
      stats.base = base_.Apply(delta);
      DeltaInsert(net.ins, &stats);
      break;
    case MaintainStrategy::kDRed:
      DRed(net, &stats);  // staged application: removals before inserts
      break;
  }
  // A "delta/apply" fault inside the base application dropped its cached
  // RelationIndex (blanket invalidation, lazy rebuild on next use).
  // Maintenance already ran — or will run — against the unindexed
  // fallback scans, so only cost changed; record it.
  if (stats.base.index_degraded) {
    stats.plan.degradations.push_back(DegradationEvent{
        DegradationKind::kIndexDeltaToRebuild, "delta/apply",
        "index maintenance fault: blanket invalidation, lazy rebuild"});
  }
  return stats;
}

void MaterializedView::Refixpoint(ViewMaintenanceStats* stats) {
  stats->recomputed = true;
  IdbInterpretation before = std::move(idb_);
  idb_.assign(before.size(), {});
  if (counting_state_) {
    FullCountingEval(&stats->derivations);
  } else {
    DatalogEvalOptions eval_options;
    eval_options.num_threads = options_.num_threads;
    DatalogResult result = EvaluateSemiNaive(program_, base_, eval_options);
    stats->derivations += result.derivations;
    stats->rounds = result.stages;
    idb_ = std::move(result.idb);
  }
  DiffStats(before, idb_, stats);
}

void MaterializedView::EvaluateBounded(ViewMaintenanceStats* stats) {
  for (size_t i = 0; i < stage_ucqs_.size(); ++i) {
    std::vector<Tuple> rows =
        options_.num_threads > 0
            ? stage_ucqs_[i].Evaluate(base_, options_.num_threads)
            : stage_ucqs_[i].Evaluate(base_);
    std::set<Tuple> next(rows.begin(), rows.end());
    for (const Tuple& t : next) {
      if (idb_[i].count(t) == 0) ++stats->idb_inserted;
    }
    for (const Tuple& t : idb_[i]) {
      if (next.count(t) == 0) ++stats->idb_removed;
    }
    idb_[i] = std::move(next);
  }
}

// Counting maintenance (non-recursive programs): for each rule and each
// body position i whose relation changed, add the signed staging term
//
//   join(new_1, ..., new_{i-1}, Δ±_i, old_{i+1}, ..., old_k)
//
// to the head's count updates. Summed over i this is exactly the change
// in derivation counts, for insertions and deletions alike; a count
// reaching zero deletes the fact, a count leaving zero inserts it, and
// the flips feed the Δ sets of downstream IDB relations.
void MaterializedView::MaintainCounting(const NetDelta& net,
                                        ViewMaintenanceStats* stats) {
  const size_t idb_count = idb_.size();
  const RelationIndex* index = base_.TryIndex();
  std::vector<std::set<Tuple>> idb_ins(idb_count), idb_rem(idb_count);

  const auto delta_sets = [&](const DatalogAtom& atom)
      -> std::pair<const std::set<Tuple>*, const std::set<Tuple>*> {
    if (const auto e = program_.Edb().IndexOf(atom.relation);
        e.has_value()) {
      return {&net.ins[static_cast<size_t>(*e)],
              &net.rem[static_cast<size_t>(*e)]};
    }
    const int q = *program_.IdbIndexOf(atom.relation);
    return {&idb_ins[static_cast<size_t>(q)],
            &idb_rem[static_cast<size_t>(q)]};
  };
  const auto new_src = [&](const DatalogAtom& atom) -> Src {
    if (const auto e = program_.Edb().IndexOf(atom.relation);
        e.has_value()) {
      return EdbSrc(base_, *e, index);
    }
    return SetSrc(
        idb_[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))]);
  };
  const auto old_src = [&](const DatalogAtom& atom) -> Src {
    // Rewind the post-delta store: hide what the delta inserted, re-add
    // what it removed.
    const auto [ins, rem] = delta_sets(atom);
    const std::set<Tuple>* minus = ins->empty() ? nullptr : ins;
    const std::set<Tuple>* plus = rem->empty() ? nullptr : rem;
    if (const auto e = program_.Edb().IndexOf(atom.relation);
        e.has_value()) {
      return EdbSrc(base_, *e, index, minus, plus);
    }
    return SetSrc(
        idb_[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))],
        minus, plus);
  };

  for (int p : topo_) {
    std::map<Tuple, long long> delta_counts;
    for (size_t r = 0; r < program_.Rules().size(); ++r) {
      if (rule_heads_[r] != p) continue;
      const DatalogRule& rule = program_.Rules()[r];
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const auto [ins_i, rem_i] = delta_sets(rule.body[i]);
        const std::set<Tuple>* deltas[2] = {ins_i, rem_i};
        const long long weights[2] = {1, -1};
        for (int d = 0; d < 2; ++d) {
          if (deltas[d]->empty()) continue;
          std::vector<Src> sources;
          sources.reserve(rule.body.size());
          for (size_t j = 0; j < rule.body.size(); ++j) {
            if (j < i) {
              sources.push_back(new_src(rule.body[j]));
            } else if (j == i) {
              sources.push_back(SetSrc(*deltas[d]));
            } else {
              sources.push_back(old_src(rule.body[j]));
            }
          }
          DeltaJoin(compiled_[r], sources, &stats->derivations)
              .CountInto(&delta_counts, weights[d]);
        }
      }
    }
    auto& counts = counts_[static_cast<size_t>(p)];
    auto& set = idb_[static_cast<size_t>(p)];
    for (const auto& [t, dc] : delta_counts) {
      if (dc == 0) continue;
      const auto it = counts.find(t);
      const long long before = it == counts.end() ? 0 : it->second;
      const long long after = before + dc;
      HOMPRES_CHECK_GE(after, 0);
      if (after == 0) {
        if (it != counts.end()) counts.erase(it);
        if (set.erase(t) != 0) {
          idb_rem[static_cast<size_t>(p)].insert(t);
          ++stats->idb_removed;
        }
      } else {
        if (it == counts.end()) {
          counts.emplace(t, after);
        } else {
          it->second = after;
        }
        if (before == 0 && set.insert(t).second) {
          idb_ins[static_cast<size_t>(p)].insert(t);
          ++stats->idb_inserted;
        }
      }
    }
  }
}

// Semi-naive maintenance under insertion: rounds seeded by the inserted
// EDB tuples, every non-delta position reading the full current state.
// Over-derivation of already-known facts is harmless under set
// semantics; completeness holds because every genuinely new derivation
// uses at least one delta fact at some position, and that position's job
// finds it the round after the fact appeared.
void MaterializedView::DeltaInsert(
    const std::vector<std::set<Tuple>>& edb_ins,
    ViewMaintenanceStats* stats) {
  const size_t idb_count = idb_.size();
  const RelationIndex* index = base_.TryIndex();
  const auto full_src = [&](const DatalogAtom& atom) -> Src {
    if (const auto e = program_.Edb().IndexOf(atom.relation);
        e.has_value()) {
      return EdbSrc(base_, *e, index);
    }
    return SetSrc(
        idb_[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))]);
  };
  const auto run = [&](size_t r, size_t delta_pos,
                       const std::set<Tuple>& dset,
                       IdbInterpretation* out) {
    const DatalogRule& rule = program_.Rules()[r];
    std::vector<Src> sources;
    sources.reserve(rule.body.size());
    for (size_t j = 0; j < rule.body.size(); ++j) {
      sources.push_back(j == delta_pos ? SetSrc(dset)
                                       : full_src(rule.body[j]));
    }
    DeltaJoin(compiled_[r], sources, &stats->derivations)
        .DeriveInto(&(*out)[static_cast<size_t>(rule_heads_[r])]);
  };

  IdbInterpretation delta(idb_count);
  bool any = false;
  const auto absorb = [&](const IdbInterpretation& derived) {
    any = false;
    for (size_t p = 0; p < idb_count; ++p) {
      delta[p].clear();
      for (const Tuple& t : derived[p]) {
        if (idb_[p].insert(t).second) {
          delta[p].insert(t);
          ++stats->idb_inserted;
          any = true;
        }
      }
    }
  };

  // Seed round: the inserted tuples at each matching body position.
  IdbInterpretation seeded(idb_count);
  for (size_t r = 0; r < program_.Rules().size(); ++r) {
    const DatalogRule& rule = program_.Rules()[r];
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const auto e = program_.Edb().IndexOf(rule.body[i].relation);
      if (!e.has_value()) continue;
      const auto& inserted = edb_ins[static_cast<size_t>(*e)];
      if (inserted.empty()) continue;
      run(r, i, inserted, &seeded);
    }
  }
  absorb(seeded);
  while (any) {
    ++stats->rounds;
    IdbInterpretation derived(idb_count);
    for (size_t r = 0; r < program_.Rules().size(); ++r) {
      const DatalogRule& rule = program_.Rules()[r];
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const auto q = program_.IdbIndexOf(rule.body[i].relation);
        if (!q.has_value()) continue;
        const auto& frontier = delta[static_cast<size_t>(*q)];
        if (frontier.empty()) continue;
        run(r, i, frontier, &derived);
      }
    }
    absorb(derived);
  }
}

// DRed (recursive programs with deletions), in stages:
//
//   1. element appends (cannot affect the IDB);
//   2. overdeletion fixpoint on the OLD state: everything with a
//      derivation through a removed fact, overapproximated;
//   3. the removals hit the base;
//   4. rederivation: overdeleted facts with a surviving derivation
//      (head-bound existence probes against the post-removal state,
//      repeated until closure — a rederived fact can support another);
//   5. the insertions hit the base, maintained by delta-insert.
void MaterializedView::DRed(const NetDelta& net,
                            ViewMaintenanceStats* stats) {
  const size_t idb_count = idb_.size();
  if (net.appends > 0) {
    StructureDelta appends;
    appends.AppendElements(net.appends);
    AccumulateBase(base_.Apply(appends), stats);
  }

  std::vector<std::set<Tuple>> overdeleted(idb_count);
  {
    const RelationIndex* index = base_.TryIndex();
    const auto old_src = [&](const DatalogAtom& atom) -> Src {
      if (const auto e = program_.Edb().IndexOf(atom.relation);
          e.has_value()) {
        return EdbSrc(base_, *e, index);
      }
      return SetSrc(
          idb_[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))]);
    };
    const auto run = [&](size_t r, size_t delta_pos,
                         const std::set<Tuple>& dset,
                         IdbInterpretation* out) {
      const DatalogRule& rule = program_.Rules()[r];
      std::vector<Src> sources;
      sources.reserve(rule.body.size());
      for (size_t j = 0; j < rule.body.size(); ++j) {
        sources.push_back(j == delta_pos ? SetSrc(dset)
                                         : old_src(rule.body[j]));
      }
      DeltaJoin(compiled_[r], sources, &stats->derivations)
          .DeriveInto(&(*out)[static_cast<size_t>(rule_heads_[r])]);
    };

    std::vector<std::set<Tuple>> frontier(idb_count);
    bool any = false;
    const auto absorb = [&](const IdbInterpretation& derived) {
      any = false;
      for (size_t p = 0; p < idb_count; ++p) {
        frontier[p].clear();
        for (const Tuple& t : derived[p]) {
          if (idb_[p].count(t) != 0 && overdeleted[p].insert(t).second) {
            frontier[p].insert(t);
            any = true;
          }
        }
      }
    };

    IdbInterpretation seeded(idb_count);
    for (size_t r = 0; r < program_.Rules().size(); ++r) {
      const DatalogRule& rule = program_.Rules()[r];
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const auto e = program_.Edb().IndexOf(rule.body[i].relation);
        if (!e.has_value()) continue;
        const auto& removed = net.rem[static_cast<size_t>(*e)];
        if (removed.empty()) continue;
        run(r, i, removed, &seeded);
      }
    }
    absorb(seeded);
    while (any) {
      ++stats->rounds;
      IdbInterpretation derived(idb_count);
      for (size_t r = 0; r < program_.Rules().size(); ++r) {
        const DatalogRule& rule = program_.Rules()[r];
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const auto q = program_.IdbIndexOf(rule.body[i].relation);
          if (!q.has_value()) continue;
          const auto& front = frontier[static_cast<size_t>(*q)];
          if (front.empty()) continue;
          run(r, i, front, &derived);
        }
      }
      absorb(derived);
    }
    for (size_t p = 0; p < idb_count; ++p) {
      for (const Tuple& t : overdeleted[p]) idb_[p].erase(t);
    }
  }

  if (net.removed > 0) {
    StructureDelta removals;
    for (size_t rel = 0; rel < net.rem.size(); ++rel) {
      for (const Tuple& t : net.rem[rel]) {
        removals.RemoveTuple(static_cast<int>(rel), t);
      }
    }
    AccumulateBase(base_.Apply(removals), stats);
  }

  // Rederivation. idb_ currently excludes every overdeleted fact, so a
  // probe can only succeed through facts that are certainly alive or
  // already rederived — repeating until closure restores exactly the
  // still-derivable ones.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t p = 0; p < idb_count; ++p) {
      auto& dead = overdeleted[p];
      for (auto it = dead.begin(); it != dead.end();) {
        if (ExistsDerivation(static_cast<int>(p), *it,
                             &stats->derivations)) {
          idb_[p].insert(*it);
          it = dead.erase(it);
          ++stats->rederived;
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }
  for (size_t p = 0; p < idb_count; ++p) {
    stats->idb_removed += static_cast<int>(overdeleted[p].size());
  }

  if (net.inserted > 0) {
    StructureDelta inserts;
    for (size_t rel = 0; rel < net.ins.size(); ++rel) {
      for (const Tuple& t : net.ins[rel]) {
        inserts.InsertTuple(static_cast<int>(rel), t);
      }
    }
    AccumulateBase(base_.Apply(inserts), stats);
    DeltaInsert(net.ins, stats);
  }
}

bool MaterializedView::ExistsDerivation(int idb_index, const Tuple& fact,
                                        long long* derivations) const {
  const RelationIndex* index = base_.TryIndex();
  for (size_t r = 0; r < program_.Rules().size(); ++r) {
    if (rule_heads_[r] != idb_index) continue;
    const DatalogRule& rule = program_.Rules()[r];
    std::vector<Src> sources;
    sources.reserve(rule.body.size());
    for (const DatalogAtom& atom : rule.body) {
      if (const auto e = program_.Edb().IndexOf(atom.relation);
          e.has_value()) {
        sources.push_back(EdbSrc(base_, *e, index));
      } else {
        sources.push_back(SetSrc(
            idb_[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))]));
      }
    }
    if (DeltaJoin(compiled_[r], sources, derivations).Exists(fact)) {
      return true;
    }
  }
  return false;
}

}  // namespace hompres
