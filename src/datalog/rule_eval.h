// Compiled rule bodies, shared by the batch evaluators (datalog/eval.cc)
// and the incremental view maintainer (datalog/incremental.cc).
//
// Variable names resolve to dense integer slots once per evaluation, so
// join loops never touch a string map. Body atoms are reordered greedily
// — the atom with the most already-bound positions joins next, ties
// keeping the original order — and every inequality is attached to the
// earliest atom after which both of its slots are bound. Compilation is
// a pure function of the rule: both consumers compile identically, so a
// maintained view enumerates the same joins the batch engine would.

#ifndef HOMPRES_DATALOG_RULE_EVAL_H_
#define HOMPRES_DATALOG_RULE_EVAL_H_

#include <utility>
#include <vector>

#include "datalog/program.h"

namespace hompres {

struct CompiledAtom {
  int body_pos;            // original body index (keys into job sources)
  std::vector<int> slots;  // variable slot per argument position
};

struct CompiledRule {
  int num_slots = 0;
  std::vector<CompiledAtom> atoms;  // greedy bound-first order
  std::vector<int> head_slots;
  // ineqs_after[i]: slot pairs to check right after atoms[i] unifies.
  std::vector<std::vector<std::pair<int, int>>> ineqs_after;
};

CompiledRule CompileRule(const DatalogRule& rule);

// One compiled rule per program rule, in rule order.
std::vector<CompiledRule> CompileProgram(const DatalogProgram& program);

}  // namespace hompres

#endif  // HOMPRES_DATALOG_RULE_EVAL_H_
