// Incremental Datalog view maintenance (DESIGN.md §4.10).
//
// A MaterializedView owns a program, a base structure, and the program's
// least fixpoint over it, and keeps all three consistent under
// StructureDelta edit scripts without refixpointing from scratch. The
// strategy is chosen per delta by engine/maintain.h's planner:
//
//   * bounded-UCQ     — when every IDB carries an Ajtai-Gurevich
//                       boundedness certificate (datalog/stages.h), the
//                       fixpoint IS the stage-s unfolding Theta^s, a
//                       plain UCQ over the EDB. The view optimizes each
//                       unfolding once at certification time
//                       (opt/optimizer.h) and afterwards maintains by
//                       re-evaluating it: cost independent of the delta
//                       shape, no deletion machinery at all.
//   * counting        — non-recursive programs keep the number of
//                       derivations of every IDB fact. A delta updates
//                       the counts by the signed inclusion-exclusion
//                       staging sum (one join per rule and delta
//                       position, positions left of the delta reading
//                       the new state, positions right of it the old),
//                       exact under insertion AND deletion.
//   * delta-insert    — insertion-only deltas into recursive programs
//                       run semi-naive rounds seeded by the inserted
//                       tuples; set semantics make over-derivation
//                       harmless.
//   * DRed            — deletions in recursive programs overdelete
//                       (everything with a derivation through a deleted
//                       fact, computed on the old state), then rederive
//                       survivors by head-bound existence probes, then
//                       handle the inserted half by delta-insert.
//   * from-scratch    — the always-sound fallback: a full semi-naive
//                       refixpoint. Forced by options (the differential
//                       baseline) or by a "view/maintain" fault, which
//                       is recorded as a kMaintainToFromScratch
//                       degradation — faults cost time, never answers.
//
// Every strategy yields the same IDB a from-scratch evaluation of the
// mutated base would: the randomized differential harness
// (tests/incremental_datalog_test.cc) replays insert/delete streams
// against both and requires equality at every step.
//
// Deltas are applied by NET effect: inserts and removes of the same
// tuple within one script cancel, and element appends take effect before
// any tuple op. The resulting base state equals the sequential
// Structure::Apply of the same script.

#ifndef HOMPRES_DATALOG_INCREMENTAL_H_
#define HOMPRES_DATALOG_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "cq/ucq.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/rule_eval.h"
#include "engine/maintain.h"
#include "structure/delta.h"
#include "structure/structure.h"

namespace hompres {

struct MaterializedViewOptions {
  // Cap for the construction-time Ajtai-Gurevich boundedness probe
  // (datalog/stages.h): the smallest witness <= cap certifies the
  // program for the bounded-UCQ strategy. 0 disables the probe (and the
  // strategy). Programs with inequalities are never probed — stage
  // unfolding is unavailable for Datalog(≠).
  int max_bounded_stage = 2;

  // Worker threads for the certification-time stage-UCQ optimization
  // and for bounded-UCQ re-evaluation. 0 = serial.
  int num_threads = 0;

  // Always maintain by full refixpoint: the bit-identical baseline the
  // differential tests compare the incremental strategies against.
  bool force_from_scratch = false;
};

// What one Apply() did, for callers that report or assert on it
// (hompresd's per-request maintenance block, the benches, the tests).
struct ViewMaintenanceStats {
  // Chosen strategy, the traits that chose it, and any degradations
  // taken while executing it (Explain()/Summary() render it).
  MaintenancePlan plan;

  // What the base structure's own delta application did (index
  // maintenance, compaction, version). For DRed the script is applied
  // in stages (removals before insertions) and the fields accumulate.
  DeltaApplyResult base;

  // Rule-body assignments enumerated by the maintenance joins.
  long long derivations = 0;

  // Semi-naive / overdeletion rounds run (from-scratch: fixpoint
  // stages).
  int rounds = 0;

  // Gross IDB tuple flow out of this Apply: facts inserted into /
  // removed from the maintained interpretation.
  int idb_inserted = 0;
  int idb_removed = 0;

  // DRed only: overdeleted facts saved by the rederivation pass.
  int rederived = 0;

  // A full refixpoint ran (from-scratch strategy, forced or degraded).
  bool recomputed = false;
};

class MaterializedView {
 public:
  // Evaluates the initial fixpoint (and, when enabled, runs the
  // boundedness probe + stage-UCQ optimization) up front, so Apply()
  // never pays first-call setup. Requires program.Edb() ==
  // base.GetVocabulary().
  MaterializedView(DatalogProgram program, Structure base,
                   MaterializedViewOptions options = {});

  const DatalogProgram& GetProgram() const { return program_; }
  const Structure& Base() const { return base_; }

  // Version of the maintained base structure (bumps with every
  // effective op applied through this view).
  uint64_t Version() const { return base_.Version(); }

  // The maintained least fixpoint: one tuple set per IDB index.
  const IdbInterpretation& Idb() const { return idb_; }
  const std::set<Tuple>& IdbRelation(int idb_index) const;

  bool Recursive() const { return recursive_; }

  // True iff every IDB was certified bounded at construction;
  // BoundedStage() is then the largest witness stage.
  bool Bounded() const { return bounded_; }
  int BoundedStage() const { return bounded_stage_; }

  // Applies `delta` to the base structure and maintains the fixpoint.
  ViewMaintenanceStats Apply(const StructureDelta& delta);

 private:
  struct NetDelta;  // per-relation net insert/remove sets

  NetDelta ComputeNet(const StructureDelta& delta) const;
  void FullCountingEval(long long* derivations);
  void Refixpoint(ViewMaintenanceStats* stats);
  void EvaluateBounded(ViewMaintenanceStats* stats);
  void MaintainCounting(const NetDelta& net, ViewMaintenanceStats* stats);
  void DeltaInsert(const std::vector<std::set<Tuple>>& edb_ins,
                   ViewMaintenanceStats* stats);
  void DRed(const NetDelta& net, ViewMaintenanceStats* stats);
  bool ExistsDerivation(int idb_index, const Tuple& fact,
                        long long* derivations) const;

  DatalogProgram program_;
  MaterializedViewOptions options_;
  Structure base_;
  std::vector<CompiledRule> compiled_;
  std::vector<int> rule_heads_;  // IDB index per rule

  bool recursive_ = false;
  bool has_inequalities_ = false;
  std::vector<int> topo_;  // IDB evaluation order (empty when recursive)

  bool bounded_ = false;
  int bounded_stage_ = 0;
  std::vector<UnionOfCq> stage_ucqs_;  // per IDB, optimized; when bounded

  IdbInterpretation idb_;
  // Derivation counts per IDB fact; maintained exactly when the
  // counting strategy is reachable (non-recursive, not bounded, not a
  // forced baseline).
  std::vector<std::map<Tuple, long long>> counts_;
  bool counting_state_ = false;
};

}  // namespace hompres

#endif  // HOMPRES_DATALOG_INCREMENTAL_H_
