// Bottom-up Datalog evaluation: naive (recompute all rules per stage) and
// semi-naive (delta-driven). Stage semantics follow Section 2.3: stage
// m+1 applies the operator to stage m simultaneously (Jacobi iteration),
// so stage counts line up with the formulas of Theorem 7.1.

#ifndef HOMPRES_DATALOG_EVAL_H_
#define HOMPRES_DATALOG_EVAL_H_

#include <set>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "datalog/program.h"
#include "structure/structure.h"

namespace hompres {

// Interpretation of the IDB predicates: one tuple set per IDB index.
using IdbInterpretation = std::vector<std::set<Tuple>>;

struct DatalogResult {
  IdbInterpretation idb;
  // Smallest m with stage(m) == stage(m+1) (m_0 in the paper's notation).
  int stages = 0;
  // Total rule-body assignments enumerated (work measure for benches).
  long long derivations = 0;
};

// The m-th stage Phi^m of the program's operator on `edb` (m >= 0).
IdbInterpretation Stage(const DatalogProgram& program, const Structure& edb,
                        int m);

// Budgeted stage computation (one step per rule-body assignment
// enumerated).
Outcome<IdbInterpretation> StageBudgeted(const DatalogProgram& program,
                                         const Structure& edb, int m,
                                         Budget& budget);

// Least fixpoint by naive iteration.
DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb);

// Budgeted naive fixpoint: Done(result) only when the fixpoint was
// reached; Exhausted/Cancelled mean evaluation stopped mid-iteration and
// no (partial) interpretation is claimed.
Outcome<DatalogResult> EvaluateNaiveBudgeted(const DatalogProgram& program,
                                             const Structure& edb,
                                             Budget& budget);

// Least fixpoint by semi-naive (delta) iteration; produces the same
// relations and stage count, typically with far fewer derivations.
//
// With num_threads > 0 the rule-body evaluations of each round — one job
// per (rule, delta position) pair — fan out over a work-stealing pool,
// each job deriving into its own tuple set, merged after the round. The
// fixpoint, stage count and derivation total are identical to the serial
// evaluation (every job enumerates the same assignments either way).
DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb, int num_threads = 0);

Outcome<DatalogResult> EvaluateSemiNaiveBudgeted(const DatalogProgram& program,
                                                 const Structure& edb,
                                                 Budget& budget,
                                                 int num_threads = 0);

}  // namespace hompres

#endif  // HOMPRES_DATALOG_EVAL_H_
