// Bottom-up Datalog evaluation: naive (recompute all rules per stage) and
// semi-naive (delta-driven). Stage semantics follow Section 2.3: stage
// m+1 applies the operator to stage m simultaneously (Jacobi iteration),
// so stage counts line up with the formulas of Theorem 7.1.
//
// Two rule-body engines sit underneath every entry point:
//
//   * compiled + indexed (default): each rule is compiled once per
//     evaluation — variable names resolved to dense integer slots (no
//     per-join-node string maps), body atoms greedily reordered so atoms
//     with the most bound positions join first, inequality constraints
//     checked the moment both sides are bound — and bound-position atoms
//     are answered with index lookups (bound-prefix ranges on the sorted
//     EDB/IDB tuple stores, inverted lists on the EDB) instead of full
//     scans. The derived facts, fixpoints, and stage counts are identical
//     to the scan engine; only the number of assignments visited (the
//     `derivations` work measure, = budget steps) shrinks.
//
//   * interpretive scan (options.use_index = false): the original
//     evaluator, kept bit-identical (including its derivation counts) as
//     the baseline for the differential tests and the indexed-vs-scan
//     benches (E10).

#ifndef HOMPRES_DATALOG_EVAL_H_
#define HOMPRES_DATALOG_EVAL_H_

#include <set>
#include <vector>

#include "base/budget.h"
#include "base/outcome.h"
#include "datalog/program.h"
#include "structure/structure.h"

namespace hompres {

// Interpretation of the IDB predicates: one tuple set per IDB index.
using IdbInterpretation = std::vector<std::set<Tuple>>;

struct DatalogEvalOptions {
  // Number of worker threads for the per-round rule jobs (semi-naive
  // only); 0 = serial. The fixpoint, stage count and derivation total
  // are identical to the serial run for any thread count.
  int num_threads = 0;

  // Use the compiled/indexed rule engine (see the header comment). Off =
  // the original interpretive scan evaluator.
  bool use_index = true;

  DatalogEvalOptions() = default;
  // Implicit so existing `EvaluateSemiNaive(program, edb, 3)` call sites
  // keep reading as a thread count.
  DatalogEvalOptions(int threads) : num_threads(threads) {}
};

struct DatalogResult {
  IdbInterpretation idb;
  // Smallest m with stage(m) == stage(m+1) (m_0 in the paper's notation).
  int stages = 0;
  // Total rule-body assignments enumerated (work measure for benches).
  // The indexed engine visits fewer assignments than the scan engine for
  // the same fixpoint, so compare counts only within one engine.
  long long derivations = 0;
};

// The m-th stage Phi^m of the program's operator on `edb` (m >= 0).
IdbInterpretation Stage(const DatalogProgram& program, const Structure& edb,
                        int m, const DatalogEvalOptions& options = {});

// Budgeted stage computation (one step per rule-body assignment
// enumerated).
Outcome<IdbInterpretation> StageBudgeted(const DatalogProgram& program,
                                         const Structure& edb, int m,
                                         Budget& budget,
                                         const DatalogEvalOptions& options = {});

// Least fixpoint by naive iteration.
DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb,
                            const DatalogEvalOptions& options = {});

// Budgeted naive fixpoint: Done(result) only when the fixpoint was
// reached; Exhausted/Cancelled mean evaluation stopped mid-iteration and
// no (partial) interpretation is claimed.
Outcome<DatalogResult> EvaluateNaiveBudgeted(
    const DatalogProgram& program, const Structure& edb, Budget& budget,
    const DatalogEvalOptions& options = {});

// Least fixpoint by semi-naive (delta) iteration; produces the same
// relations and stage count, typically with far fewer derivations.
//
// With options.num_threads > 0 the rule-body evaluations of each round —
// one job per (rule, delta position) pair — fan out over a work-stealing
// pool, each job deriving into its own tuple set, merged after the round.
// The fixpoint, stage count and derivation total are identical to the
// serial evaluation (every job enumerates the same assignments either
// way).
DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb,
                                const DatalogEvalOptions& options = {});

Outcome<DatalogResult> EvaluateSemiNaiveBudgeted(
    const DatalogProgram& program, const Structure& edb, Budget& budget,
    const DatalogEvalOptions& options = {});

}  // namespace hompres

#endif  // HOMPRES_DATALOG_EVAL_H_
