// Datalog programs (Section 2.3).
//
// A program is a finite set of rules head <- body over extensional (EDB)
// and intensional (IDB) predicates. IDB predicates are those occurring in
// rule heads; the program defines them as the least fixpoint of the
// monotone operator obtained by reading each rule as an existential
// positive formula. k-Datalog = at most k distinct variables in total.

#ifndef HOMPRES_DATALOG_PROGRAM_H_
#define HOMPRES_DATALOG_PROGRAM_H_

#include <optional>
#include <string>
#include <vector>

#include "structure/vocabulary.h"

namespace hompres {

// An atom whose arguments are variable names (constants are not needed
// for any construction in the paper).
struct DatalogAtom {
  std::string relation;
  std::vector<std::string> arguments;
};

struct DatalogRule {
  DatalogAtom head;
  std::vector<DatalogAtom> body;
  // Optional inequality constraints x != y between body variables — the
  // Datalog(≠) extension of Section 7.3, for which the Ajtai-Gurevich
  // theorem FAILS. Stage unfolding (Theorem 7.1) is only available for
  // programs without them.
  std::vector<std::pair<std::string, std::string>> inequalities = {};
};

class DatalogProgram {
 public:
  // Builds and validates a program over the given EDB vocabulary:
  // IDB predicates and arities are inferred from rule heads; every rule
  // must be safe (head variables occur in the body), bodies may use EDB
  // and IDB predicates, arities must be consistent, and rule bodies must
  // be nonempty. CHECK-fails on violations (programs are written by the
  // library user, not parsed from untrusted input).
  DatalogProgram(Vocabulary edb, std::vector<DatalogRule> rules);

  const Vocabulary& Edb() const { return edb_; }
  const Vocabulary& Idb() const { return idb_; }
  const std::vector<DatalogRule>& Rules() const { return rules_; }

  // Number of distinct variable names across the whole program (the k of
  // k-Datalog; the transitive-closure example is 3-Datalog).
  int TotalVariableCount() const;

  // Index of an IDB predicate by name.
  std::optional<int> IdbIndexOf(const std::string& name) const {
    return idb_.IndexOf(name);
  }

  // True iff some rule carries an inequality constraint (Datalog(≠)).
  bool HasInequalities() const;

  std::string DebugString() const;

  // The transitive-closure program of Section 2.3:
  //   T(x,y) <- E(x,y)
  //   T(x,y) <- E(x,z), T(z,y)
  static DatalogProgram TransitiveClosure();

  // A bounded program: two-step reachability, no recursion.
  //   R(x,y) <- E(x,y)
  //   R(x,y) <- E(x,z), E(z,y)
  static DatalogProgram TwoStepReachability();

 private:
  Vocabulary edb_;
  Vocabulary idb_;
  std::vector<DatalogRule> rules_;
};

}  // namespace hompres

#endif  // HOMPRES_DATALOG_PROGRAM_H_
