#include "datalog/parser.h"

#include <cctype>
#include <map>
#include <set>

#include "base/failpoint.h"

namespace hompres {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<std::vector<DatalogRule>> Run(ParseError* error) {
    std::vector<DatalogRule> rules;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size()) break;
      auto rule = ParseRule();
      if (!rule.has_value()) {
        if (error != nullptr) *error = error_;
        return std::nullopt;
      }
      rules.push_back(std::move(*rule));
    }
    return rules;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeArrow() {
    SkipWhitespace();
    if (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
        text_[pos_ + 1] == '-') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  std::optional<std::string> ConsumeIdentifier() {
    SkipWhitespace();
    const size_t start = pos_;
    if (start >= text_.size()) return std::nullopt;
    const unsigned char first = static_cast<unsigned char>(text_[start]);
    if (!std::isalpha(first) && text_[start] != '_') return std::nullopt;
    size_t end = start + 1;
    while (end < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[end]);
      if (std::isalnum(c) || text_[end] == '_' || text_[end] == '\'') {
        ++end;
      } else {
        break;
      }
    }
    pos_ = end;
    return text_.substr(start, end - start);
  }

  void Fail(const std::string& message) {
    if (error_.message.empty()) error_ = ParseErrorAt(text_, pos_, message);
  }

  std::optional<DatalogAtom> ParseAtom() {
    auto name = ConsumeIdentifier();
    if (!name.has_value()) {
      Fail("expected predicate name");
      return std::nullopt;
    }
    if (!ConsumeChar('(')) {
      Fail("expected '(' after predicate name");
      return std::nullopt;
    }
    DatalogAtom atom{*name, {}};
    auto arg = ConsumeIdentifier();
    if (!arg.has_value()) {
      Fail("expected variable");
      return std::nullopt;
    }
    atom.arguments.push_back(*arg);
    while (ConsumeChar(',')) {
      arg = ConsumeIdentifier();
      if (!arg.has_value()) {
        Fail("expected variable");
        return std::nullopt;
      }
      atom.arguments.push_back(*arg);
    }
    if (!ConsumeChar(')')) {
      Fail("expected ')'");
      return std::nullopt;
    }
    return atom;
  }

  bool ConsumeNotEquals() {
    SkipWhitespace();
    if (pos_ + 1 < text_.size() && text_[pos_] == '!' &&
        text_[pos_ + 1] == '=') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  // Parses one body element: either a relational atom or an inequality
  // `x != y` (appended to rule.inequalities).
  bool ParseBodyElement(DatalogRule& rule) {
    const size_t saved = pos_;
    auto name = ConsumeIdentifier();
    if (name.has_value() && ConsumeNotEquals()) {
      auto right = ConsumeIdentifier();
      if (!right.has_value()) {
        Fail("expected variable after '!='");
        return false;
      }
      rule.inequalities.emplace_back(*name, *right);
      return true;
    }
    pos_ = saved;
    auto atom = ParseAtom();
    if (!atom.has_value()) return false;
    rule.body.push_back(std::move(*atom));
    return true;
  }

  std::optional<DatalogRule> ParseRule() {
    auto head = ParseAtom();
    if (!head.has_value()) return std::nullopt;
    if (!ConsumeArrow()) {
      Fail("expected '<-'");
      return std::nullopt;
    }
    DatalogRule rule{*head, {}, {}};
    if (!ParseBodyElement(rule)) return std::nullopt;
    while (ConsumeChar(',')) {
      if (!ParseBodyElement(rule)) return std::nullopt;
    }
    if (rule.body.empty()) {
      Fail("rule body needs at least one relational atom");
      return std::nullopt;
    }
    ConsumeChar('.');  // optional terminator
    return rule;
  }

  const std::string& text_;
  size_t pos_ = 0;
  ParseError error_;
};

// Pre-validates the semantic conditions DatalogProgram's constructor
// CHECKs, so that untrusted text fails gracefully. Semantic errors carry
// no source location.
bool Validate(const std::vector<DatalogRule>& rules, const Vocabulary& edb,
              ParseError* error) {
  std::map<std::string, int> idb_arity;
  for (const DatalogRule& rule : rules) {
    if (edb.IndexOf(rule.head.relation).has_value()) {
      if (error != nullptr) {
        error->message =
            "EDB predicate '" + rule.head.relation + "' in rule head";
      }
      return false;
    }
    auto [it, inserted] = idb_arity.emplace(
        rule.head.relation, static_cast<int>(rule.head.arguments.size()));
    if (!inserted &&
        it->second != static_cast<int>(rule.head.arguments.size())) {
      if (error != nullptr) {
        error->message =
            "inconsistent arity for '" + rule.head.relation + "'";
      }
      return false;
    }
  }
  for (const DatalogRule& rule : rules) {
    std::set<std::string> body_variables;
    for (const DatalogAtom& atom : rule.body) {
      const auto e = edb.IndexOf(atom.relation);
      const auto i = idb_arity.find(atom.relation);
      int arity = -1;
      if (e.has_value()) {
        arity = edb.Arity(*e);
      } else if (i != idb_arity.end()) {
        arity = i->second;
      } else {
        if (error != nullptr) {
          error->message = "unknown predicate '" + atom.relation + "'";
        }
        return false;
      }
      if (arity != static_cast<int>(atom.arguments.size())) {
        if (error != nullptr) {
          error->message = "wrong arity for '" + atom.relation + "'";
        }
        return false;
      }
      for (const auto& v : atom.arguments) body_variables.insert(v);
    }
    for (const auto& v : rule.head.arguments) {
      if (body_variables.count(v) == 0) {
        if (error != nullptr) {
          error->message = "unsafe rule: head variable '" + v +
                           "' missing from the body";
        }
        return false;
      }
    }
    for (const auto& [left, right] : rule.inequalities) {
      if (body_variables.count(left) == 0 ||
          body_variables.count(right) == 0) {
        if (error != nullptr) {
          error->message =
              "inequality over variables missing from the body";
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::optional<DatalogProgram> ParseDatalogProgram(const std::string& text,
                                                  const Vocabulary& edb,
                                                  ParseError* error) {
  if (HOMPRES_FAILPOINT("parser/datalog_io")) {
    if (error != nullptr) {
      *error = ParseError{0, 0, "injected I/O fault (parser/datalog_io)"};
    }
    return std::nullopt;
  }
  Parser parser(text);
  auto rules = parser.Run(error);
  if (!rules.has_value()) return std::nullopt;
  if (rules->empty()) {
    if (error != nullptr) error->message = "empty program";
    return std::nullopt;
  }
  if (!Validate(*rules, edb, error)) return std::nullopt;
  return DatalogProgram(edb, std::move(*rules));
}

std::optional<DatalogProgram> ParseDatalogProgram(const std::string& text,
                                                  const Vocabulary& edb,
                                                  std::string* error) {
  ParseError parse_error;
  auto result = ParseDatalogProgram(text, edb, &parse_error);
  if (!result.has_value() && error != nullptr) {
    *error = parse_error.ToString();
  }
  return result;
}

}  // namespace hompres
