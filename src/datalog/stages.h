// Theorem 7.1: the m-th stage of a k-Datalog program's operator is
// definable by a finite disjunction of CQ^k formulas; the program itself
// by the infinitary disjunction over all stages. This header materializes
// the stage formulas as unions of conjunctive queries by unfolding rules.

#ifndef HOMPRES_DATALOG_STAGES_H_
#define HOMPRES_DATALOG_STAGES_H_

#include <optional>

#include "cq/ucq.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace hompres {

// The UCQ (over the EDB vocabulary, with arity = the IDB's arity) that
// defines stage m of IDB predicate `idb_index`: Theta^0 = false,
// Theta^{m+1} = union over rules of the rule body with every IDB atom
// replaced by a disjunct of the previous stage. Disjunct counts can grow
// exponentially in m; `max_disjuncts` caps the result (0 = uncapped;
// construction CHECK-fails past 1e6 as a runaway guard). If `minimize`,
// each stage is UCQ-minimized before unfolding the next, which usually
// keeps the union small.
UnionOfCq StageUcq(const DatalogProgram& program, int idb_index, int m,
                   bool minimize = true);

// Ajtai-Gurevich boundedness probe: the smallest s <= max_stage with
// Theta^s ≡ Theta^{s+1} (then the program computes `idb_index` within s
// stages on every finite structure), or nullopt if none below the cap.
// Equivalence of stage formulas is decided by Sagiv-Yannakakis.
std::optional<int> FindBoundednessWitness(const DatalogProgram& program,
                                          int idb_index, int max_stage);

}  // namespace hompres

#endif  // HOMPRES_DATALOG_STAGES_H_
