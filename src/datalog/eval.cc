#include "datalog/eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <span>
#include <utility>

#include "base/check.h"
#include "base/failpoint.h"
#include "base/parallel_driver.h"
#include "base/thread_pool.h"
#include "datalog/rule_eval.h"
#include "structure/relation_index.h"

namespace hompres {

namespace {

// One tuple store a body atom joins against: either an IDB/delta tuple
// set, or an EDB relation (sorted vector plus its RelationIndex).
struct TupleSource {
  const std::set<Tuple>* set = nullptr;
  const std::vector<Tuple>* vec = nullptr;
  const RelationIndex* index = nullptr;
  int rel = -1;
};

// Indexed join over the compiled atom order. Each atom enumerates only
// candidates matching its bound positions — the longest bound prefix via
// a range lookup on the sorted store, or the shortest inverted list of a
// bound position (EDB sources) — and unification re-checks every
// position, so the derived heads equal the full scan's. One budget step
// per candidate visited.
class CompiledJoin {
 public:
  CompiledJoin(const CompiledRule& rule,
               const std::vector<TupleSource>& sources, Budget& budget,
               long long* derivations, std::set<Tuple>* out)
      : rule_(rule),
        sources_(sources),
        budget_(budget),
        derivations_(derivations),
        out_(out) {}

  // Returns false iff the budget stopped the enumeration.
  bool Run() {
    binding_.assign(static_cast<size_t>(rule_.num_slots), -1);
    added_.resize(rule_.atoms.size());
    for (size_t i = 0; i < rule_.atoms.size(); ++i) {
      added_[i].reserve(rule_.atoms[i].slots.size());
    }
    return Join(0);
  }

 private:
  bool Visit(size_t idx, const Tuple& t) {
    if (!budget_.Checkpoint()) return false;
    ++*derivations_;
    const CompiledAtom& atom = rule_.atoms[idx];
    bool consistent = true;
    // Per-depth scratch: Visit at this depth is not re-entered while its
    // slots are still bound (the recursion proceeds to idx + 1).
    std::vector<int>& added = added_[idx];
    added.clear();
    for (size_t j = 0; j < atom.slots.size(); ++j) {
      const size_t s = static_cast<size_t>(atom.slots[j]);
      if (binding_[s] == -1) {
        binding_[s] = t[j];
        added.push_back(static_cast<int>(s));
      } else if (binding_[s] != t[j]) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      // Eager inequality pruning: both sides are bound from this atom on.
      for (const auto& [l, r] : rule_.ineqs_after[idx]) {
        if (binding_[static_cast<size_t>(l)] ==
            binding_[static_cast<size_t>(r)]) {
          consistent = false;
          break;
        }
      }
    }
    bool ok = true;
    if (consistent) ok = Join(idx + 1);
    for (int s : added) binding_[static_cast<size_t>(s)] = -1;
    return ok;
  }

  bool Join(size_t idx) {
    if (idx == rule_.atoms.size()) {
      Tuple head;
      head.reserve(rule_.head_slots.size());
      for (int s : rule_.head_slots) {
        head.push_back(binding_[static_cast<size_t>(s)]);
      }
      out_->insert(std::move(head));
      return true;
    }
    const CompiledAtom& atom = rule_.atoms[idx];
    const TupleSource& src = sources_[static_cast<size_t>(atom.body_pos)];
    const size_t arity = atom.slots.size();
    Tuple prefix;
    for (size_t j = 0; j < arity; ++j) {
      const int v = binding_[static_cast<size_t>(atom.slots[j])];
      if (v < 0) break;
      prefix.push_back(v);
    }
    if (src.set != nullptr) {
      if (prefix.empty()) {
        for (const Tuple& t : *src.set) {
          if (!Visit(idx, t)) return false;
        }
      } else {
        for (auto it = src.set->lower_bound(prefix); it != src.set->end();
             ++it) {
          if (!std::equal(prefix.begin(), prefix.end(), it->begin())) break;
          if (!Visit(idx, *it)) return false;
        }
      }
      return true;
    }
    const auto [lo, hi] = src.index->PrefixRange(src.rel, prefix);
    std::span<const int> ids;
    bool use_ids = false;
    size_t best = static_cast<size_t>(hi - lo);
    for (size_t j = prefix.size(); j < arity; ++j) {
      const int v = binding_[static_cast<size_t>(atom.slots[j])];
      if (v < 0) continue;
      const auto list = src.index->TuplesAt(src.rel, static_cast<int>(j), v);
      if (list.size() < best) {
        best = list.size();
        ids = list;
        use_ids = true;
      }
    }
    const std::vector<Tuple>& tuples = *src.vec;
    if (use_ids) {
      for (int id : ids) {
        if (!Visit(idx, tuples[static_cast<size_t>(id)])) return false;
      }
    } else {
      for (int id = lo; id < hi; ++id) {
        if (!Visit(idx, tuples[static_cast<size_t>(id)])) return false;
      }
    }
    return true;
  }

  const CompiledRule& rule_;
  const std::vector<TupleSource>& sources_;
  Budget& budget_;
  long long* derivations_;
  std::set<Tuple>* out_;
  std::vector<int> binding_;
  std::vector<std::vector<int>> added_;  // per-depth unbind scratch
};

// --- Interpretive scan engine (the pre-index baseline, bit-identical) ---
//
// Enumerates all assignments satisfying the rule body and emits head
// tuples into `out`. For each body atom, `sources` gives the tuple set to
// match it against. Adds the number of assignments enumerated to
// `*derivations`; each assignment is one budget step. Returns false iff
// the budget stopped the enumeration (out may hold a partial result).
bool ApplyRuleScan(const DatalogRule& rule,
                   const std::vector<TupleSource>& sources, Budget& budget,
                   long long* derivations, std::set<Tuple>* out) {
  std::map<std::string, int> binding;
  bool stopped = false;
  // Recursive join over the body atoms.
  std::function<void(size_t)> join = [&](size_t index) {
    if (stopped) return;
    if (index == rule.body.size()) {
      for (const auto& [left, right] : rule.inequalities) {
        if (binding.at(left) == binding.at(right)) return;
      }
      Tuple head;
      head.reserve(rule.head.arguments.size());
      for (const auto& v : rule.head.arguments) {
        head.push_back(binding.at(v));
      }
      out->insert(std::move(head));
      return;
    }
    const DatalogAtom& atom = rule.body[index];
    for (const Tuple& t : *sources[index].set) {
      if (!budget.Checkpoint()) {
        stopped = true;
        return;
      }
      ++*derivations;
      // Try to unify the atom's arguments with t.
      std::vector<std::pair<std::string, int>> added;
      bool consistent = true;
      for (size_t i = 0; i < atom.arguments.size() && consistent; ++i) {
        const std::string& v = atom.arguments[i];
        auto it = binding.find(v);
        if (it == binding.end()) {
          binding[v] = t[i];
          added.emplace_back(v, t[i]);
        } else if (it->second != t[i]) {
          consistent = false;
        }
      }
      if (consistent) join(index + 1);
      for (const auto& [v, unused] : added) {
        (void)unused;
        binding.erase(v);
      }
      if (stopped) return;
    }
  };
  join(0);
  return !stopped;
}

// Tuple sets of the EDB relations of `edb` (copied once per evaluation;
// scan engine only — the indexed engine joins against the structure's
// own sorted vectors through its RelationIndex).
std::vector<std::set<Tuple>> EdbSets(const DatalogProgram& program,
                                     const Structure& edb) {
  std::vector<std::set<Tuple>> sets(
      static_cast<size_t>(program.Edb().NumRelations()));
  for (int rel = 0; rel < program.Edb().NumRelations(); ++rel) {
    for (const Tuple& t : edb.Tuples(rel)) {
      sets[static_cast<size_t>(rel)].insert(t);
    }
  }
  return sets;
}

// One rule-body evaluation of a semi-naive round: the rule (in whichever
// engine's form), the resolved sources for its body atoms (by original
// body position), and the IDB index its head derives into.
struct RuleJob {
  const DatalogRule* rule = nullptr;
  const CompiledRule* compiled = nullptr;  // null = scan engine
  std::vector<TupleSource> sources;
  int head = 0;
};

bool ApplyJob(const RuleJob& job, Budget& budget, long long* derivations,
              std::set<Tuple>* out) {
  if (job.compiled != nullptr) {
    return CompiledJoin(*job.compiled, job.sources, budget, derivations, out)
        .Run();
  }
  return ApplyRuleScan(*job.rule, job.sources, budget, derivations, out);
}

// Resolves body-atom sources for one evaluation: EDB atoms hit either the
// indexed structure or the copied sets, IDB atoms hit the interpretation
// the caller names.
class SourcePlan {
 public:
  SourcePlan(const DatalogProgram& program, const Structure& edb,
             bool use_index)
      : program_(program), edb_(edb), use_index_(use_index) {
    if (use_index_) {
      index_ = &edb.Index();
    } else {
      edb_sets_ = EdbSets(program, edb);
    }
  }

  TupleSource EdbSource(int rel) const {
    TupleSource s;
    if (use_index_) {
      s.vec = &edb_.Tuples(rel);
      s.index = index_;
      s.rel = rel;
    } else {
      s.set = &edb_sets_[static_cast<size_t>(rel)];
    }
    return s;
  }

  static TupleSource IdbSource(const std::set<Tuple>& set) {
    TupleSource s;
    s.set = &set;
    return s;
  }

  // Source for body atom `atom`, taking IDB relations from `idb`.
  TupleSource Resolve(const DatalogAtom& atom,
                      const IdbInterpretation& idb) const {
    if (const auto e = program_.Edb().IndexOf(atom.relation);
        e.has_value()) {
      return EdbSource(*e);
    }
    return IdbSource(
        idb[static_cast<size_t>(*program_.IdbIndexOf(atom.relation))]);
  }

 private:
  const DatalogProgram& program_;
  const Structure& edb_;
  bool use_index_;
  const RelationIndex* index_ = nullptr;
  std::vector<std::set<Tuple>> edb_sets_;
};

// Runs every job, inserting each job's head tuples into (*out)[job.head]
// and adding the assignments enumerated to *derivations. Serial when
// num_threads <= 0; otherwise the jobs fan out over a work-stealing pool,
// each deriving into its own set (the sources are read-only during the
// region), merged after the join — the same tuples and derivation count
// as the serial run. Returns true iff every job completed; on false,
// *stop says why (the parent budget may carry no reason itself).
bool RunRuleJobs(const std::vector<RuleJob>& jobs, Budget& budget,
                 int num_threads, long long* derivations,
                 IdbInterpretation* out, StopReason* stop) {
  // Injected mid-fixpoint degradation: a round whose fan-out fails runs
  // serially instead. Tuples and derivation counts are identical by the
  // merge contract below, so answers are unchanged.
  if (num_threads > 0 && HOMPRES_FAILPOINT("datalog/parallel_round")) {
    num_threads = 0;
  }
  if (num_threads <= 0 || jobs.size() < 2) {
    for (const RuleJob& job : jobs) {
      if (!ApplyJob(job, budget, derivations,
                    &(*out)[static_cast<size_t>(job.head)])) {
        *stop = budget.Reason();
        return false;
      }
    }
    return true;
  }
  const int num_tasks = static_cast<int>(jobs.size());
  struct TaskState {
    bool completed = false;
    std::set<Tuple> derived;
    long long derivations = 0;
    StopReason stop = StopReason::kNone;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));
  ParallelRegion region(budget, num_tasks);
  ThreadPool pool(std::min(num_threads, num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    pool.Submit(region.GuardedTask([&, i] {
      Budget worker = region.WorkerBudget(i);
      // Task-exclusive state; TaskDone/Join publish it to the joiner.
      TaskState& state = states[static_cast<size_t>(i)];
      const RuleJob& job = jobs[static_cast<size_t>(i)];
      state.completed =
          ApplyJob(job, worker, &state.derivations, &state.derived);
      if (!state.completed) state.stop = worker.Reason();
      region.TaskDone();
    }));
  }
  const bool external_cancel = region.Join(pool);
  WorkerStopScan scan;
  for (const TaskState& state : states) {
    scan.Observe(state.completed, state.stop);
  }
  if (scan.AnyIncomplete()) {
    *stop = scan.StoppedReport(budget, external_cancel).reason;
    return false;
  }
  for (int i = 0; i < num_tasks; ++i) {
    TaskState& state = states[static_cast<size_t>(i)];
    *derivations += state.derivations;
    (*out)[static_cast<size_t>(jobs[static_cast<size_t>(i)].head)].insert(
        state.derived.begin(), state.derived.end());
  }
  return true;
}

Outcome<DatalogResult> StoppedEval(const Budget& budget, StopReason stop) {
  BudgetReport report = budget.Report();
  if (report.reason == StopReason::kNone) report.reason = stop;
  return Outcome<DatalogResult>::StoppedShort(report);
}

// Per-rule engine handles for one evaluation: compiled forms when the
// indexed engine is selected, rule pointers otherwise.
struct EvalSetup {
  std::vector<CompiledRule> compiled;  // empty in scan mode
  // False when compilation was skipped: the SourcePlan must then resolve
  // scan-shaped (set-backed) sources, which ApplyRuleScan requires.
  bool use_compiled = false;

  EvalSetup(const DatalogProgram& program, bool use_index) {
    // A failed rule compilation (injected via "datalog/compile") leaves
    // `compiled` empty: every job falls back to the interpretive scan
    // engine. Same fixpoint, same stage assignment; only the per-round
    // derivation accounting can differ between the two engines.
    if (use_index && !HOMPRES_FAILPOINT("datalog/compile")) {
      compiled = CompileProgram(program);
      use_compiled = true;
    }
  }

  void Bind(RuleJob* job, const DatalogRule& rule, size_t rule_idx) const {
    job->rule = &rule;
    if (!compiled.empty()) job->compiled = &compiled[rule_idx];
  }
};

}  // namespace

Outcome<IdbInterpretation> StageBudgeted(const DatalogProgram& program,
                                         const Structure& edb, int m,
                                         Budget& budget,
                                         const DatalogEvalOptions& options) {
  HOMPRES_CHECK_GE(m, 0);
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const EvalSetup setup(program, options.use_index);
  // Sources must match the engine the jobs will actually run: a failed
  // compilation degrades the plan to scan-shaped (set-backed) sources.
  const SourcePlan plan(program, edb, setup.use_compiled);
  IdbInterpretation current(
      static_cast<size_t>(program.Idb().NumRelations()));
  long long derivations = 0;
  for (int step = 0; step < m; ++step) {
    IdbInterpretation next(
        static_cast<size_t>(program.Idb().NumRelations()));
    for (size_t r = 0; r < program.Rules().size(); ++r) {
      const DatalogRule& rule = program.Rules()[r];
      const int head = *program.IdbIndexOf(rule.head.relation);
      RuleJob job;
      setup.Bind(&job, rule, r);
      job.head = head;
      for (const DatalogAtom& atom : rule.body) {
        job.sources.push_back(plan.Resolve(atom, current));
      }
      if (!ApplyJob(job, budget, &derivations,
                    &next[static_cast<size_t>(head)])) {
        return Outcome<IdbInterpretation>::StoppedShort(budget.Report());
      }
    }
    current = std::move(next);
  }
  return Outcome<IdbInterpretation>::Done(std::move(current),
                                          budget.Report());
}

IdbInterpretation Stage(const DatalogProgram& program, const Structure& edb,
                        int m, const DatalogEvalOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return std::move(StageBudgeted(program, edb, m, unlimited, options))
      .TakeValue();
}

Outcome<DatalogResult> EvaluateNaiveBudgeted(
    const DatalogProgram& program, const Structure& edb, Budget& budget,
    const DatalogEvalOptions& options) {
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const EvalSetup setup(program, options.use_index);
  // Sources must match the engine the jobs will actually run: a failed
  // compilation degrades the plan to scan-shaped (set-backed) sources.
  const SourcePlan plan(program, edb, setup.use_compiled);
  DatalogResult result;
  result.idb.assign(static_cast<size_t>(program.Idb().NumRelations()), {});
  for (;;) {
    IdbInterpretation next(
        static_cast<size_t>(program.Idb().NumRelations()));
    for (size_t r = 0; r < program.Rules().size(); ++r) {
      const DatalogRule& rule = program.Rules()[r];
      const int head = *program.IdbIndexOf(rule.head.relation);
      RuleJob job;
      setup.Bind(&job, rule, r);
      job.head = head;
      for (const DatalogAtom& atom : rule.body) {
        job.sources.push_back(plan.Resolve(atom, result.idb));
      }
      if (!ApplyJob(job, budget, &result.derivations,
                    &next[static_cast<size_t>(head)])) {
        return Outcome<DatalogResult>::StoppedShort(budget.Report());
      }
    }
    if (next == result.idb) break;
    result.idb = std::move(next);
    ++result.stages;
  }
  return Outcome<DatalogResult>::Done(std::move(result), budget.Report());
}

DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb,
                            const DatalogEvalOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return std::move(EvaluateNaiveBudgeted(program, edb, unlimited, options))
      .TakeValue();
}

Outcome<DatalogResult> EvaluateSemiNaiveBudgeted(
    const DatalogProgram& program, const Structure& edb, Budget& budget,
    const DatalogEvalOptions& options) {
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const EvalSetup setup(program, options.use_index);
  // Sources must match the engine the jobs will actually run: a failed
  // compilation degrades the plan to scan-shaped (set-backed) sources.
  const SourcePlan plan(program, edb, setup.use_compiled);
  const size_t idb_count =
      static_cast<size_t>(program.Idb().NumRelations());
  DatalogResult result;
  result.idb.assign(idb_count, {});
  StopReason stop = StopReason::kNone;

  // Round 1: plain application against the empty IDB (fires the EDB-only
  // rules).
  IdbInterpretation delta(idb_count);
  {
    std::vector<RuleJob> jobs;
    for (size_t r = 0; r < program.Rules().size(); ++r) {
      const DatalogRule& rule = program.Rules()[r];
      bool has_idb_atom = false;
      for (const DatalogAtom& atom : rule.body) {
        has_idb_atom |= program.IdbIndexOf(atom.relation).has_value();
      }
      if (has_idb_atom) continue;  // needs IDB facts; none yet
      RuleJob job;
      setup.Bind(&job, rule, r);
      job.head = *program.IdbIndexOf(rule.head.relation);
      for (const DatalogAtom& atom : rule.body) {
        job.sources.push_back(
            plan.EdbSource(*program.Edb().IndexOf(atom.relation)));
      }
      jobs.push_back(std::move(job));
    }
    if (!RunRuleJobs(jobs, budget, options.num_threads, &result.derivations,
                     &delta, &stop)) {
      return StoppedEval(budget, stop);
    }
  }

  bool any_delta = false;
  for (const auto& d : delta) any_delta |= !d.empty();
  while (any_delta) {
    ++result.stages;
    // Merge delta into full.
    for (size_t i = 0; i < idb_count; ++i) {
      result.idb[i].insert(delta[i].begin(), delta[i].end());
    }
    // Derive the next delta: for each rule and each IDB body position,
    // evaluate with that position restricted to the current delta. The
    // jobs only read delta / result.idb / the EDB sources, none of which
    // change until the round's jobs have all completed.
    IdbInterpretation derived(idb_count);
    std::vector<RuleJob> jobs;
    for (size_t r = 0; r < program.Rules().size(); ++r) {
      const DatalogRule& rule = program.Rules()[r];
      const int head = *program.IdbIndexOf(rule.head.relation);
      for (size_t delta_position = 0; delta_position < rule.body.size();
           ++delta_position) {
        const auto idb_index =
            program.IdbIndexOf(rule.body[delta_position].relation);
        if (!idb_index.has_value()) continue;
        RuleJob job;
        setup.Bind(&job, rule, r);
        job.head = head;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const DatalogAtom& atom = rule.body[i];
          if (i == delta_position) {
            job.sources.push_back(SourcePlan::IdbSource(
                delta[static_cast<size_t>(*idb_index)]));
          } else {
            job.sources.push_back(plan.Resolve(atom, result.idb));
          }
        }
        jobs.push_back(std::move(job));
      }
    }
    if (!RunRuleJobs(jobs, budget, options.num_threads, &result.derivations,
                     &derived, &stop)) {
      return StoppedEval(budget, stop);
    }
    // New facts only.
    IdbInterpretation next_delta(idb_count);
    any_delta = false;
    for (size_t i = 0; i < idb_count; ++i) {
      for (const Tuple& t : derived[i]) {
        if (result.idb[i].count(t) == 0) {
          next_delta[i].insert(t);
          any_delta = true;
        }
      }
    }
    delta = std::move(next_delta);
  }
  return Outcome<DatalogResult>::Done(std::move(result), budget.Report());
}

DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb,
                                const DatalogEvalOptions& options) {
  Budget unlimited = Budget::Unlimited();
  return std::move(
             EvaluateSemiNaiveBudgeted(program, edb, unlimited, options))
      .TakeValue();
}

}  // namespace hompres
