#include "datalog/eval.h"

#include <functional>
#include <map>

#include "base/check.h"

namespace hompres {

namespace {

// Enumerates all assignments satisfying the rule body and emits head
// tuples into `out`. For each body atom, `sources` gives the tuple set to
// match it against. Adds the number of assignments enumerated to
// `*derivations`; each assignment is one budget step. Returns false iff
// the budget stopped the enumeration (out may hold a partial result).
bool ApplyRule(const DatalogRule& rule,
               const std::vector<const std::set<Tuple>*>& sources,
               Budget& budget, long long* derivations,
               std::set<Tuple>* out) {
  std::map<std::string, int> binding;
  bool stopped = false;
  // Recursive join over the body atoms.
  std::function<void(size_t)> join = [&](size_t index) {
    if (stopped) return;
    if (index == rule.body.size()) {
      for (const auto& [left, right] : rule.inequalities) {
        if (binding.at(left) == binding.at(right)) return;
      }
      Tuple head;
      head.reserve(rule.head.arguments.size());
      for (const auto& v : rule.head.arguments) {
        head.push_back(binding.at(v));
      }
      out->insert(std::move(head));
      return;
    }
    const DatalogAtom& atom = rule.body[index];
    for (const Tuple& t : *sources[index]) {
      if (!budget.Checkpoint()) {
        stopped = true;
        return;
      }
      ++*derivations;
      // Try to unify the atom's arguments with t.
      std::vector<std::pair<std::string, int>> added;
      bool consistent = true;
      for (size_t i = 0; i < atom.arguments.size() && consistent; ++i) {
        const std::string& v = atom.arguments[i];
        auto it = binding.find(v);
        if (it == binding.end()) {
          binding[v] = t[i];
          added.emplace_back(v, t[i]);
        } else if (it->second != t[i]) {
          consistent = false;
        }
      }
      if (consistent) join(index + 1);
      for (const auto& [v, unused] : added) {
        (void)unused;
        binding.erase(v);
      }
      if (stopped) return;
    }
  };
  join(0);
  return !stopped;
}

// Tuple sets of the EDB relations of `edb` (copied once per evaluation).
std::vector<std::set<Tuple>> EdbSets(const DatalogProgram& program,
                                     const Structure& edb) {
  std::vector<std::set<Tuple>> sets(
      static_cast<size_t>(program.Edb().NumRelations()));
  for (int rel = 0; rel < program.Edb().NumRelations(); ++rel) {
    for (const Tuple& t : edb.Tuples(rel)) {
      sets[static_cast<size_t>(rel)].insert(t);
    }
  }
  return sets;
}

}  // namespace

Outcome<IdbInterpretation> StageBudgeted(const DatalogProgram& program,
                                         const Structure& edb, int m,
                                         Budget& budget) {
  HOMPRES_CHECK_GE(m, 0);
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const auto edb_sets = EdbSets(program, edb);
  IdbInterpretation current(
      static_cast<size_t>(program.Idb().NumRelations()));
  long long derivations = 0;
  for (int step = 0; step < m; ++step) {
    IdbInterpretation next(
        static_cast<size_t>(program.Idb().NumRelations()));
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      std::vector<const std::set<Tuple>*> sources;
      for (const DatalogAtom& atom : rule.body) {
        if (const auto e = program.Edb().IndexOf(atom.relation);
            e.has_value()) {
          sources.push_back(&edb_sets[static_cast<size_t>(*e)]);
        } else {
          sources.push_back(
              &current[static_cast<size_t>(*program.IdbIndexOf(
                  atom.relation))]);
        }
      }
      if (!ApplyRule(rule, sources, budget, &derivations,
                     &next[static_cast<size_t>(head)])) {
        return Outcome<IdbInterpretation>::StoppedShort(budget.Report());
      }
    }
    current = std::move(next);
  }
  return Outcome<IdbInterpretation>::Done(std::move(current),
                                          budget.Report());
}

IdbInterpretation Stage(const DatalogProgram& program, const Structure& edb,
                        int m) {
  Budget unlimited = Budget::Unlimited();
  return std::move(StageBudgeted(program, edb, m, unlimited)).TakeValue();
}

Outcome<DatalogResult> EvaluateNaiveBudgeted(const DatalogProgram& program,
                                             const Structure& edb,
                                             Budget& budget) {
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const auto edb_sets = EdbSets(program, edb);
  DatalogResult result;
  result.idb.assign(static_cast<size_t>(program.Idb().NumRelations()), {});
  for (;;) {
    IdbInterpretation next(
        static_cast<size_t>(program.Idb().NumRelations()));
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      std::vector<const std::set<Tuple>*> sources;
      for (const DatalogAtom& atom : rule.body) {
        if (const auto e = program.Edb().IndexOf(atom.relation);
            e.has_value()) {
          sources.push_back(&edb_sets[static_cast<size_t>(*e)]);
        } else {
          sources.push_back(&result.idb[static_cast<size_t>(
              *program.IdbIndexOf(atom.relation))]);
        }
      }
      if (!ApplyRule(rule, sources, budget, &result.derivations,
                     &next[static_cast<size_t>(head)])) {
        return Outcome<DatalogResult>::StoppedShort(budget.Report());
      }
    }
    if (next == result.idb) break;
    result.idb = std::move(next);
    ++result.stages;
  }
  return Outcome<DatalogResult>::Done(std::move(result), budget.Report());
}

DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb) {
  Budget unlimited = Budget::Unlimited();
  return std::move(EvaluateNaiveBudgeted(program, edb, unlimited))
      .TakeValue();
}

Outcome<DatalogResult> EvaluateSemiNaiveBudgeted(const DatalogProgram& program,
                                                 const Structure& edb,
                                                 Budget& budget) {
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const auto edb_sets = EdbSets(program, edb);
  const size_t idb_count =
      static_cast<size_t>(program.Idb().NumRelations());
  DatalogResult result;
  result.idb.assign(idb_count, {});

  // Round 1: plain application against the empty IDB (fires the EDB-only
  // rules).
  IdbInterpretation delta(idb_count);
  for (const DatalogRule& rule : program.Rules()) {
    bool has_idb_atom = false;
    for (const DatalogAtom& atom : rule.body) {
      has_idb_atom |= program.IdbIndexOf(atom.relation).has_value();
    }
    if (has_idb_atom) continue;  // needs IDB facts; none yet
    const int head = *program.IdbIndexOf(rule.head.relation);
    std::vector<const std::set<Tuple>*> sources;
    for (const DatalogAtom& atom : rule.body) {
      sources.push_back(
          &edb_sets[static_cast<size_t>(*program.Edb().IndexOf(
              atom.relation))]);
    }
    if (!ApplyRule(rule, sources, budget, &result.derivations,
                   &delta[static_cast<size_t>(head)])) {
      return Outcome<DatalogResult>::StoppedShort(budget.Report());
    }
  }

  bool any_delta = false;
  for (const auto& d : delta) any_delta |= !d.empty();
  while (any_delta) {
    ++result.stages;
    // Merge delta into full.
    for (size_t i = 0; i < idb_count; ++i) {
      result.idb[i].insert(delta[i].begin(), delta[i].end());
    }
    // Derive the next delta: for each rule and each IDB body position,
    // evaluate with that position restricted to the current delta.
    IdbInterpretation derived(idb_count);
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      for (size_t delta_position = 0; delta_position < rule.body.size();
           ++delta_position) {
        const auto idb_index =
            program.IdbIndexOf(rule.body[delta_position].relation);
        if (!idb_index.has_value()) continue;
        std::vector<const std::set<Tuple>*> sources;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const DatalogAtom& atom = rule.body[i];
          if (i == delta_position) {
            sources.push_back(&delta[static_cast<size_t>(*idb_index)]);
          } else if (const auto e = program.Edb().IndexOf(atom.relation);
                     e.has_value()) {
            sources.push_back(&edb_sets[static_cast<size_t>(*e)]);
          } else {
            sources.push_back(&result.idb[static_cast<size_t>(
                *program.IdbIndexOf(atom.relation))]);
          }
        }
        if (!ApplyRule(rule, sources, budget, &result.derivations,
                       &derived[static_cast<size_t>(head)])) {
          return Outcome<DatalogResult>::StoppedShort(budget.Report());
        }
      }
    }
    // New facts only.
    IdbInterpretation next_delta(idb_count);
    any_delta = false;
    for (size_t i = 0; i < idb_count; ++i) {
      for (const Tuple& t : derived[i]) {
        if (result.idb[i].count(t) == 0) {
          next_delta[i].insert(t);
          any_delta = true;
        }
      }
    }
    delta = std::move(next_delta);
  }
  return Outcome<DatalogResult>::Done(std::move(result), budget.Report());
}

DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb) {
  Budget unlimited = Budget::Unlimited();
  return std::move(EvaluateSemiNaiveBudgeted(program, edb, unlimited))
      .TakeValue();
}

}  // namespace hompres
