#include "datalog/eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

#include "base/check.h"
#include "base/parallel_driver.h"
#include "base/thread_pool.h"

namespace hompres {

namespace {

// Enumerates all assignments satisfying the rule body and emits head
// tuples into `out`. For each body atom, `sources` gives the tuple set to
// match it against. Adds the number of assignments enumerated to
// `*derivations`; each assignment is one budget step. Returns false iff
// the budget stopped the enumeration (out may hold a partial result).
bool ApplyRule(const DatalogRule& rule,
               const std::vector<const std::set<Tuple>*>& sources,
               Budget& budget, long long* derivations,
               std::set<Tuple>* out) {
  std::map<std::string, int> binding;
  bool stopped = false;
  // Recursive join over the body atoms.
  std::function<void(size_t)> join = [&](size_t index) {
    if (stopped) return;
    if (index == rule.body.size()) {
      for (const auto& [left, right] : rule.inequalities) {
        if (binding.at(left) == binding.at(right)) return;
      }
      Tuple head;
      head.reserve(rule.head.arguments.size());
      for (const auto& v : rule.head.arguments) {
        head.push_back(binding.at(v));
      }
      out->insert(std::move(head));
      return;
    }
    const DatalogAtom& atom = rule.body[index];
    for (const Tuple& t : *sources[index]) {
      if (!budget.Checkpoint()) {
        stopped = true;
        return;
      }
      ++*derivations;
      // Try to unify the atom's arguments with t.
      std::vector<std::pair<std::string, int>> added;
      bool consistent = true;
      for (size_t i = 0; i < atom.arguments.size() && consistent; ++i) {
        const std::string& v = atom.arguments[i];
        auto it = binding.find(v);
        if (it == binding.end()) {
          binding[v] = t[i];
          added.emplace_back(v, t[i]);
        } else if (it->second != t[i]) {
          consistent = false;
        }
      }
      if (consistent) join(index + 1);
      for (const auto& [v, unused] : added) {
        (void)unused;
        binding.erase(v);
      }
      if (stopped) return;
    }
  };
  join(0);
  return !stopped;
}

// Tuple sets of the EDB relations of `edb` (copied once per evaluation).
std::vector<std::set<Tuple>> EdbSets(const DatalogProgram& program,
                                     const Structure& edb) {
  std::vector<std::set<Tuple>> sets(
      static_cast<size_t>(program.Edb().NumRelations()));
  for (int rel = 0; rel < program.Edb().NumRelations(); ++rel) {
    for (const Tuple& t : edb.Tuples(rel)) {
      sets[static_cast<size_t>(rel)].insert(t);
    }
  }
  return sets;
}

// One rule-body evaluation of a semi-naive round: the rule, the resolved
// tuple-set sources for its body atoms, and the IDB index its head
// derives into.
struct RuleJob {
  const DatalogRule* rule;
  std::vector<const std::set<Tuple>*> sources;
  int head;
};

// Runs every job, inserting each job's head tuples into (*out)[job.head]
// and adding the assignments enumerated to *derivations. Serial when
// num_threads <= 0; otherwise the jobs fan out over a work-stealing pool,
// each deriving into its own set (the sources are read-only during the
// region), merged after the join — the same tuples and derivation count
// as the serial run. Returns true iff every job completed; on false,
// *stop says why (the parent budget may carry no reason itself).
bool RunRuleJobs(const std::vector<RuleJob>& jobs, Budget& budget,
                 int num_threads, long long* derivations,
                 IdbInterpretation* out, StopReason* stop) {
  if (num_threads <= 0 || jobs.size() < 2) {
    for (const RuleJob& job : jobs) {
      if (!ApplyRule(*job.rule, job.sources, budget, derivations,
                     &(*out)[static_cast<size_t>(job.head)])) {
        *stop = budget.Reason();
        return false;
      }
    }
    return true;
  }
  const int num_tasks = static_cast<int>(jobs.size());
  struct TaskState {
    bool completed = false;
    std::set<Tuple> derived;
    long long derivations = 0;
    StopReason stop = StopReason::kNone;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));
  ParallelRegion region(budget, num_tasks);
  ThreadPool pool(std::min(num_threads, num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    pool.Submit([&, i] {
      Budget worker = region.WorkerBudget(i);
      // Task-exclusive state; TaskDone/Join publish it to the joiner.
      TaskState& state = states[static_cast<size_t>(i)];
      const RuleJob& job = jobs[static_cast<size_t>(i)];
      state.completed = ApplyRule(*job.rule, job.sources, worker,
                                  &state.derivations, &state.derived);
      if (!state.completed) state.stop = worker.Reason();
      region.TaskDone();
    });
  }
  const bool external_cancel = region.Join(pool);
  bool any_incomplete = false;
  bool any_deadline = false;
  for (const TaskState& state : states) {
    if (state.completed) continue;
    any_incomplete = true;
    any_deadline |= state.stop == StopReason::kDeadline;
  }
  if (any_incomplete) {
    *stop = budget.Stopped()
                ? budget.Reason()
                : CombineWorkerStops(external_cancel, any_deadline);
    return false;
  }
  for (int i = 0; i < num_tasks; ++i) {
    TaskState& state = states[static_cast<size_t>(i)];
    *derivations += state.derivations;
    (*out)[static_cast<size_t>(jobs[static_cast<size_t>(i)].head)].insert(
        state.derived.begin(), state.derived.end());
  }
  return true;
}

Outcome<DatalogResult> StoppedEval(const Budget& budget, StopReason stop) {
  BudgetReport report = budget.Report();
  if (report.reason == StopReason::kNone) report.reason = stop;
  return Outcome<DatalogResult>::StoppedShort(report);
}

}  // namespace

Outcome<IdbInterpretation> StageBudgeted(const DatalogProgram& program,
                                         const Structure& edb, int m,
                                         Budget& budget) {
  HOMPRES_CHECK_GE(m, 0);
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const auto edb_sets = EdbSets(program, edb);
  IdbInterpretation current(
      static_cast<size_t>(program.Idb().NumRelations()));
  long long derivations = 0;
  for (int step = 0; step < m; ++step) {
    IdbInterpretation next(
        static_cast<size_t>(program.Idb().NumRelations()));
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      std::vector<const std::set<Tuple>*> sources;
      for (const DatalogAtom& atom : rule.body) {
        if (const auto e = program.Edb().IndexOf(atom.relation);
            e.has_value()) {
          sources.push_back(&edb_sets[static_cast<size_t>(*e)]);
        } else {
          sources.push_back(
              &current[static_cast<size_t>(*program.IdbIndexOf(
                  atom.relation))]);
        }
      }
      if (!ApplyRule(rule, sources, budget, &derivations,
                     &next[static_cast<size_t>(head)])) {
        return Outcome<IdbInterpretation>::StoppedShort(budget.Report());
      }
    }
    current = std::move(next);
  }
  return Outcome<IdbInterpretation>::Done(std::move(current),
                                          budget.Report());
}

IdbInterpretation Stage(const DatalogProgram& program, const Structure& edb,
                        int m) {
  Budget unlimited = Budget::Unlimited();
  return std::move(StageBudgeted(program, edb, m, unlimited)).TakeValue();
}

Outcome<DatalogResult> EvaluateNaiveBudgeted(const DatalogProgram& program,
                                             const Structure& edb,
                                             Budget& budget) {
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const auto edb_sets = EdbSets(program, edb);
  DatalogResult result;
  result.idb.assign(static_cast<size_t>(program.Idb().NumRelations()), {});
  for (;;) {
    IdbInterpretation next(
        static_cast<size_t>(program.Idb().NumRelations()));
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      std::vector<const std::set<Tuple>*> sources;
      for (const DatalogAtom& atom : rule.body) {
        if (const auto e = program.Edb().IndexOf(atom.relation);
            e.has_value()) {
          sources.push_back(&edb_sets[static_cast<size_t>(*e)]);
        } else {
          sources.push_back(&result.idb[static_cast<size_t>(
              *program.IdbIndexOf(atom.relation))]);
        }
      }
      if (!ApplyRule(rule, sources, budget, &result.derivations,
                     &next[static_cast<size_t>(head)])) {
        return Outcome<DatalogResult>::StoppedShort(budget.Report());
      }
    }
    if (next == result.idb) break;
    result.idb = std::move(next);
    ++result.stages;
  }
  return Outcome<DatalogResult>::Done(std::move(result), budget.Report());
}

DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb) {
  Budget unlimited = Budget::Unlimited();
  return std::move(EvaluateNaiveBudgeted(program, edb, unlimited))
      .TakeValue();
}

Outcome<DatalogResult> EvaluateSemiNaiveBudgeted(const DatalogProgram& program,
                                                 const Structure& edb,
                                                 Budget& budget,
                                                 int num_threads) {
  HOMPRES_CHECK(program.Edb() == edb.GetVocabulary());
  const auto edb_sets = EdbSets(program, edb);
  const size_t idb_count =
      static_cast<size_t>(program.Idb().NumRelations());
  DatalogResult result;
  result.idb.assign(idb_count, {});
  StopReason stop = StopReason::kNone;

  // Round 1: plain application against the empty IDB (fires the EDB-only
  // rules).
  IdbInterpretation delta(idb_count);
  {
    std::vector<RuleJob> jobs;
    for (const DatalogRule& rule : program.Rules()) {
      bool has_idb_atom = false;
      for (const DatalogAtom& atom : rule.body) {
        has_idb_atom |= program.IdbIndexOf(atom.relation).has_value();
      }
      if (has_idb_atom) continue;  // needs IDB facts; none yet
      RuleJob job;
      job.rule = &rule;
      job.head = *program.IdbIndexOf(rule.head.relation);
      for (const DatalogAtom& atom : rule.body) {
        job.sources.push_back(
            &edb_sets[static_cast<size_t>(*program.Edb().IndexOf(
                atom.relation))]);
      }
      jobs.push_back(std::move(job));
    }
    if (!RunRuleJobs(jobs, budget, num_threads, &result.derivations, &delta,
                     &stop)) {
      return StoppedEval(budget, stop);
    }
  }

  bool any_delta = false;
  for (const auto& d : delta) any_delta |= !d.empty();
  while (any_delta) {
    ++result.stages;
    // Merge delta into full.
    for (size_t i = 0; i < idb_count; ++i) {
      result.idb[i].insert(delta[i].begin(), delta[i].end());
    }
    // Derive the next delta: for each rule and each IDB body position,
    // evaluate with that position restricted to the current delta. The
    // jobs only read delta / result.idb / edb_sets, none of which change
    // until the round's jobs have all completed.
    IdbInterpretation derived(idb_count);
    std::vector<RuleJob> jobs;
    for (const DatalogRule& rule : program.Rules()) {
      const int head = *program.IdbIndexOf(rule.head.relation);
      for (size_t delta_position = 0; delta_position < rule.body.size();
           ++delta_position) {
        const auto idb_index =
            program.IdbIndexOf(rule.body[delta_position].relation);
        if (!idb_index.has_value()) continue;
        RuleJob job;
        job.rule = &rule;
        job.head = head;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const DatalogAtom& atom = rule.body[i];
          if (i == delta_position) {
            job.sources.push_back(&delta[static_cast<size_t>(*idb_index)]);
          } else if (const auto e = program.Edb().IndexOf(atom.relation);
                     e.has_value()) {
            job.sources.push_back(&edb_sets[static_cast<size_t>(*e)]);
          } else {
            job.sources.push_back(&result.idb[static_cast<size_t>(
                *program.IdbIndexOf(atom.relation))]);
          }
        }
        jobs.push_back(std::move(job));
      }
    }
    if (!RunRuleJobs(jobs, budget, num_threads, &result.derivations,
                     &derived, &stop)) {
      return StoppedEval(budget, stop);
    }
    // New facts only.
    IdbInterpretation next_delta(idb_count);
    any_delta = false;
    for (size_t i = 0; i < idb_count; ++i) {
      for (const Tuple& t : derived[i]) {
        if (result.idb[i].count(t) == 0) {
          next_delta[i].insert(t);
          any_delta = true;
        }
      }
    }
    delta = std::move(next_delta);
  }
  return Outcome<DatalogResult>::Done(std::move(result), budget.Report());
}

DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb, int num_threads) {
  Budget unlimited = Budget::Unlimited();
  return std::move(
             EvaluateSemiNaiveBudgeted(program, edb, unlimited, num_threads))
      .TakeValue();
}

}  // namespace hompres
