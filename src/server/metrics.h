// Server-side metrics for hompresd: request/connection counters, batch
// shape, engine cache effectiveness, and request latency percentiles.
//
// Counters are relaxed atomics (each is a monotone event count; exact
// cross-counter consistency is not needed for monitoring). Latency is a
// fixed-size ring of the most recent samples under a mutex; p50/p99 are
// computed on demand from a copy, so the hot path is one lock + one
// store. The STATS request and the load-generator bench both read the
// same snapshot.

#ifndef HOMPRES_SERVER_METRICS_H_
#define HOMPRES_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "server/json.h"

namespace hompres {

struct LatencyPercentiles {
  uint64_t samples = 0;  // samples currently in the window
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
};

// Sliding window of the most recent request latencies (microseconds).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 4096);

  void Record(uint64_t micros);
  LatencyPercentiles Compute() const;

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> ring_;
  size_t capacity_;
  size_t size_ = 0;
  size_t next_ = 0;
};

struct ServerMetricsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_dropped = 0;  // accept faults + read/write failures
  uint64_t requests_received = 0;    // frames parsed into requests
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;     // structured error responses sent
  uint64_t requests_rejected = 0;  // admission rejections (subset of error)
  uint64_t requests_dropped = 0;   // queued work skipped (client gone)
  uint64_t queue_depth = 0;        // pending requests right now
  uint64_t batches_executed = 0;
  uint64_t batched_requests = 0;  // requests executed through batches
  uint64_t max_batch_size = 0;
  uint64_t cache_consults = 0;  // engine trace: cache consulted
  uint64_t cache_hits = 0;      // engine trace: answered from cache
  uint64_t degraded_executions = 0;  // executions recording >= 1 fallback
  LatencyPercentiles latency;

  // The "stats" object of a STATS response.
  JsonValue ToJson() const;
};

class ServerMetrics {
 public:
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> connections_dropped{0};
  std::atomic<uint64_t> requests_received{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_error{0};
  std::atomic<uint64_t> requests_rejected{0};
  std::atomic<uint64_t> requests_dropped{0};
  std::atomic<uint64_t> queue_depth{0};
  std::atomic<uint64_t> batches_executed{0};
  std::atomic<uint64_t> batched_requests{0};
  std::atomic<uint64_t> max_batch_size{0};
  std::atomic<uint64_t> cache_consults{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> degraded_executions{0};

  LatencyRecorder latency;

  void RecordBatch(size_t size);
  ServerMetricsSnapshot Snapshot() const;
};

}  // namespace hompres

#endif  // HOMPRES_SERVER_METRICS_H_
