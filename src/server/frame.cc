#include "server/frame.h"

#include "base/check.h"

namespace hompres {

std::string EncodeFrame(const std::string& payload) {
  HOMPRES_CHECK(!payload.empty());
  HOMPRES_CHECK_LE(payload.size(), kMaxFramePayloadBytes);
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xFF));
  frame.push_back(static_cast<char>((n >> 16) & 0xFF));
  frame.push_back(static_cast<char>((n >> 8) & 0xFF));
  frame.push_back(static_cast<char>(n & 0xFF));
  frame += payload;
  return frame;
}

void FrameReader::Feed(const char* data, size_t n) {
  if (failed_) return;  // the stream is already condemned
  // Compact once the consumed prefix dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameReader::Status FrameReader::Next(std::string* payload,
                                      ParseError* error) {
  if (failed_) {
    if (error != nullptr) error->message = error_message_;
    return Status::kError;
  }
  if (Buffered() < kFrameHeaderBytes) return Status::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
                     (static_cast<uint32_t>(p[1]) << 16) |
                     (static_cast<uint32_t>(p[2]) << 8) |
                     static_cast<uint32_t>(p[3]);
  if (n == 0) {
    failed_ = true;
    error_message_ = "zero-length frame";
    if (error != nullptr) error->message = error_message_;
    return Status::kError;
  }
  if (n > kMaxFramePayloadBytes) {
    failed_ = true;
    error_message_ = "frame length " + std::to_string(n) +
                     " exceeds cap " + std::to_string(kMaxFramePayloadBytes);
    if (error != nullptr) error->message = error_message_;
    return Status::kError;
  }
  if (Buffered() < kFrameHeaderBytes + n) return Status::kNeedMore;
  payload->assign(buffer_, consumed_ + kFrameHeaderBytes, n);
  consumed_ += kFrameHeaderBytes + n;
  return Status::kFrame;
}

}  // namespace hompres
