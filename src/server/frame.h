// Length-prefixed framing for the hompresd wire protocol.
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON (one request or response object). The length must
// be nonzero and at most kMaxFramePayloadBytes: a daemon that trusted a
// client-supplied length would hand the client an allocation primitive,
// so an oversized (or zero) prefix is a protocol error and the
// connection is torn down — there is no way to resynchronize a stream
// whose framing cannot be trusted.
//
// FrameReader is an incremental decoder: bytes arrive in whatever chunks
// the socket delivers (interleaved partial writes are the common case,
// not the exception), Feed() buffers them, and Next() pops complete
// frames. Errors are sticky: after the first malformed prefix every
// subsequent Next() reports the same error.

#ifndef HOMPRES_SERVER_FRAME_H_
#define HOMPRES_SERVER_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/parse_error.h"

namespace hompres {

// Hard cap on a frame's payload. Larger structures should be defined
// once ("define") and referenced by name, not re-shipped per request.
inline constexpr uint32_t kMaxFramePayloadBytes = 4u << 20;  // 4 MiB

inline constexpr size_t kFrameHeaderBytes = 4;

// The frame for `payload`: 4-byte big-endian length + the bytes.
// Requires 0 < payload.size() <= kMaxFramePayloadBytes (checked).
std::string EncodeFrame(const std::string& payload);

class FrameReader {
 public:
  enum class Status {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // *payload holds the next frame's bytes
    kError,     // the stream is malformed (sticky; close the connection)
  };

  // Appends `n` raw bytes from the stream.
  void Feed(const char* data, size_t n);

  // Pops the next complete frame into *payload, or reports why not.
  // On kError, *error (when non-null) describes the malformation.
  Status Next(std::string* payload, ParseError* error = nullptr);

  // True when the buffer holds a partial frame — an EOF now means the
  // peer truncated a frame mid-write.
  bool MidFrame() const { return !failed_ && Buffered() > 0; }

  size_t Buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already handed out
  bool failed_ = false;
  std::string error_message_;
};

}  // namespace hompres

#endif  // HOMPRES_SERVER_FRAME_H_
