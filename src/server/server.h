// hompresd: a long-lived daemon serving homomorphism/CQ/UCQ queries
// over a local (unix-domain) socket. See DESIGN.md §4.7 for the serving
// model; the protocol lives in server/protocol.h, the framing in
// server/frame.h.
//
// Threading: one accept thread, one reader thread per connection, and a
// small pool of worker threads draining one bounded queue. Readers
// parse frames, resolve structures (inline texts and "@name" registry
// references) and run admission; workers pull *batches* — runs of
// queued requests against the same target structure, recognized by
// Structure::Fingerprint() — so one RelationIndex build and one pass of
// HomCache warming is shared across every request in the batch. The
// answer-level cache is the global HomCache, keyed by fingerprints, so
// cross-request reuse needs no extra invalidation protocol: mutating a
// named structure (the "mutate" op) swaps in a copy-on-write snapshot
// with a new fingerprint, in-flight batches keep the old snapshot, and
// stale cache entries simply become unreachable.
//
// Failure behavior (chaos-tested; see tests/chaos_test.cc): a fault in
// accept drops only the new connection; a fault reading or writing one
// client's frames tears down only that connection; an admission fault
// rejects exactly one request with a structured error; a fault building
// a batch's shared index degrades that batch to per-request index
// builds (and, through the engine ladder of §4.6, to scans) without
// changing any answer. Disconnection raises the connection's cancel
// flag, which every in-flight Budget of that client polls.

#ifndef HOMPRES_SERVER_SERVER_H_
#define HOMPRES_SERVER_SERVER_H_

#include <memory>
#include <string>

#include "server/admission.h"
#include "server/metrics.h"

namespace hompres {

struct ServerOptions {
  // Filesystem path of the unix-domain listening socket. Must fit
  // sockaddr_un (~100 bytes); an existing socket file is replaced.
  std::string socket_path;

  // Worker threads executing queued requests.
  int num_workers = 2;

  // Largest run of same-target requests executed as one batch.
  size_t max_batch = 16;

  // Group queued requests by target fingerprint (off = every request
  // executes alone; differential tests compare both).
  bool batching = true;

  // Default HomCache use for has/count requests whose client did not
  // set "config.cache" itself.
  bool shared_cache = true;

  // Run every served UCQ through the containment-driven optimizer
  // (opt/optimizer.h) before evaluation, memoizing the optimized query
  // by its order- and renaming-invariant fingerprint so a batch of
  // requests over the same (possibly re-sent) union pays the
  // minimization once. Answers are identical either way — the optimizer
  // only removes redundant disjuncts — so differential tests compare
  // both settings. The hompresd --no-optimize flag clears this.
  bool optimize = true;

  // Step cap for one optimization pass. An exhausted pass degrades to
  // serving the unoptimized union (and memoizes that verdict, so a
  // pathological query is not re-attempted per request).
  uint64_t optimize_max_steps = 1u << 22;

  // Admission gates and budget caps.
  AdmissionPolicy admission;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the accept/worker threads. False (with
  // *error filled) when the socket cannot be set up.
  bool Start(std::string* error);

  // Stops accepting, cancels in-flight work, joins every thread, and
  // removes the socket file. Idempotent.
  void Stop();

  bool Running() const;
  const std::string& SocketPath() const;

  ServerMetricsSnapshot Metrics() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hompres

#endif  // HOMPRES_SERVER_SERVER_H_
